#include "core/bisection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/detail/search_state.hpp"
#include "core/finetune.hpp"

namespace fpm::core {

bool bracket_converged(std::span<const double> small,
                       std::span<const double> large) {
  for (std::size_t i = 0; i < small.size(); ++i) {
    double k = std::floor(large[i]);
    if (k == large[i]) k -= 1.0;
    if (k > small[i]) return false;
  }
  return true;
}

PartitionResult partition_basic(const SpeedList& speeds, std::int64_t n,
                                const BasicBisectionOptions& opts) {
  if (speeds.empty())
    throw std::invalid_argument("partition_basic: no speeds");
  PartitionResult result;
  result.stats.algorithm = kAlgorithmBasic;
  if (n <= 0) {
    result.distribution.counts.assign(speeds.size(), 0);
    return result;
  }
  detail::SearchState state(speeds, n, &opts.observer,
                            opts.hint ? &*opts.hint : nullptr);
  while (!state.converged() && state.iterations() < opts.max_iterations)
    state.step_basic(opts.bisect_angles);
  result.stats.iterations = state.iterations();
  result.stats.intersections = state.intersections();
  result.stats.final_slope = state.hi_slope();
  result.stats.search_speed_evals = state.speed_evals();
  result.stats.search_intersect_solves = state.intersect_solves();
  result.distribution = state.fine_tune_epilogue(n);
  result.stats.speed_evals = state.speed_evals();
  result.stats.intersect_solves = state.intersect_solves();
  result.stats.bracket_saturations = state.bracket_saturations();
  result.stats.warmstart = state.warmstart();
  if (result.stats.warmstart == WarmStart::Hit)
    result.stats.iterations_saved = std::max(
        0, opts.hint->baseline_iterations - result.stats.iterations);
  return result;
}

}  // namespace fpm::core
