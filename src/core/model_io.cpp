#include "core/model_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace fpm::core {
namespace {

[[noreturn]] void parse_error(int line, const std::string& what) {
  throw std::runtime_error("fpm-model parse error at line " +
                           std::to_string(line) + ": " + what);
}

}  // namespace

PiecewiseLinearSpeed NamedModel::curve() const {
  if (lower.size() != upper.size() || lower.empty())
    throw std::runtime_error("NamedModel::curve: malformed band");
  std::vector<SpeedPoint> pts(lower.size());
  for (std::size_t i = 0; i < lower.size(); ++i)
    pts[i] = {lower[i].size, 0.5 * (lower[i].speed + upper[i].speed)};
  return PiecewiseLinearSpeed(repair_shape_requirement(std::move(pts)));
}

NamedModel make_named_model(std::string name,
                            const PiecewiseLinearSpeed& curve,
                            double epsilon) {
  NamedModel m;
  m.name = std::move(name);
  m.epsilon = epsilon;
  m.lower.assign(curve.points().begin(), curve.points().end());
  m.upper = m.lower;
  return m;
}

NamedModel make_named_model(std::string name, const PerformanceBand& band,
                            double epsilon) {
  NamedModel m;
  m.name = std::move(name);
  m.epsilon = epsilon;
  m.lower.assign(band.lower_points().begin(), band.lower_points().end());
  m.upper.assign(band.upper_points().begin(), band.upper_points().end());
  return m;
}

void save_models(std::ostream& os, const std::vector<NamedModel>& models) {
  os << "# fpm-model v1\n";
  os << std::setprecision(17);
  for (const NamedModel& m : models) {
    if (m.name.empty() || m.name.find_first_of(" \t\n") != std::string::npos)
      throw std::runtime_error("save_models: model names must be non-empty "
                               "and contain no whitespace");
    if (m.lower.size() != m.upper.size())
      throw std::runtime_error("save_models: malformed band in '" + m.name +
                               "'");
    os << "model " << m.name << "\n";
    os << "band " << m.epsilon << "\n";
    for (std::size_t i = 0; i < m.lower.size(); ++i) {
      if (m.lower[i].size != m.upper[i].size)
        throw std::runtime_error("save_models: envelope x mismatch in '" +
                                 m.name + "'");
      os << "point " << m.lower[i].size << ' ' << m.lower[i].speed << ' '
         << m.upper[i].speed << "\n";
    }
    os << "end\n";
  }
}

std::vector<NamedModel> load_models(std::istream& is) {
  std::vector<NamedModel> models;
  NamedModel current;
  bool in_model = false;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword) || keyword[0] == '#') continue;
    if (keyword == "model") {
      if (in_model) parse_error(line_no, "nested 'model'");
      current = NamedModel{};
      if (!(ss >> current.name)) parse_error(line_no, "missing model name");
      in_model = true;
    } else if (keyword == "band") {
      if (!in_model) parse_error(line_no, "'band' outside a model");
      // NaN compares false against everything, so reject non-finite values
      // explicitly — they would silently pass the range checks below and
      // flow straight into the partitioners.
      if (!(ss >> current.epsilon) || !std::isfinite(current.epsilon) ||
          current.epsilon < 0.0)
        parse_error(line_no, "band epsilon must be finite and >= 0");
    } else if (keyword == "point") {
      if (!in_model) parse_error(line_no, "'point' outside a model");
      double size = 0.0, lo = 0.0, hi = 0.0;
      if (!(ss >> size >> lo >> hi)) parse_error(line_no, "bad point");
      if (!std::isfinite(size) || !std::isfinite(lo) || !std::isfinite(hi))
        parse_error(line_no, "point values must be finite (no NaN/inf)");
      if (size <= 0.0) parse_error(line_no, "point size must be > 0");
      if (lo < 0.0 || hi < lo)
        parse_error(line_no, "need 0 <= lower <= upper (negative or "
                             "inverted speeds rejected)");
      if (!current.lower.empty() && size <= current.lower.back().size)
        parse_error(line_no, "sizes must be strictly increasing");
      current.lower.push_back({size, lo});
      current.upper.push_back({size, hi});
    } else if (keyword == "end") {
      if (!in_model) parse_error(line_no, "'end' outside a model");
      if (current.lower.empty()) parse_error(line_no, "model has no points");
      models.push_back(std::move(current));
      in_model = false;
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (in_model) parse_error(line_no, "unterminated model (missing 'end')");
  return models;
}

void save_models_file(const std::string& path,
                      const std::vector<NamedModel>& models) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_models_file: cannot open " + path);
  save_models(os, models);
  if (!os) throw std::runtime_error("save_models_file: write failed: " + path);
}

std::vector<NamedModel> load_models_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_models_file: cannot open " + path);
  return load_models(is);
}

}  // namespace fpm::core
