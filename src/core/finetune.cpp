#include "core/finetune.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace fpm::core {
namespace {

double time_at(const SpeedFunction& f, std::int64_t x) {
  return f.time(static_cast<double>(x));
}

/// Awards `deficit` single elements, each to the processor whose
/// post-award completion time is smallest.
void award_greedily(const SpeedList& speeds, Distribution& d,
                    std::int64_t deficit) {
  using Entry = std::pair<double, std::size_t>;  // (post-award time, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < speeds.size(); ++i)
    heap.emplace(time_at(*speeds[i], d.counts[i] + 1), i);
  while (deficit > 0) {
    const auto [t, i] = heap.top();
    heap.pop();
    ++d.counts[i];
    --deficit;
    heap.emplace(time_at(*speeds[i], d.counts[i] + 1), i);
  }
}

}  // namespace

Distribution fine_tune(const SpeedList& speeds, std::int64_t n,
                       std::span<const double> small_sizes) {
  if (speeds.size() != small_sizes.size())
    throw std::invalid_argument("fine_tune: size mismatch");
  Distribution d;
  d.counts.resize(speeds.size());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    d.counts[i] = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::floor(small_sizes[i])));
    assigned += d.counts[i];
  }
  if (assigned > n) {
    // Defensive: the steep line should under-fill, but round-off can leave
    // an excess of a few elements; shed them from the slowest finishers.
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry> heap;  // max by current completion time
    for (std::size_t i = 0; i < speeds.size(); ++i)
      if (d.counts[i] > 0) heap.emplace(time_at(*speeds[i], d.counts[i]), i);
    for (std::int64_t excess = assigned - n; excess > 0; --excess) {
      assert(!heap.empty());
      const auto [t, i] = heap.top();
      heap.pop();
      --d.counts[i];
      if (d.counts[i] > 0) heap.emplace(time_at(*speeds[i], d.counts[i]), i);
    }
    return d;
  }
  award_greedily(speeds, d, n - assigned);
  return d;
}

namespace {

/// time(x) over one compiled entry, counted at the same boundary as
/// CountingSpeedView / CompiledEntryView (one speed eval per call; x >= 1
/// here, so the time() zero-guard never fires).
double compiled_time_at(const CompiledSpeedList& speeds,
                        EvalCounters* counters, std::size_t i,
                        std::int64_t x) {
  if (counters) ++counters->speed_evals;
  const double xd = static_cast<double>(x);
  return xd / speeds.speed(i, xd);
}

}  // namespace

Distribution fine_tune(const CompiledSpeedList& speeds, std::int64_t n,
                       std::span<const double> small_sizes,
                       EvalCounters* counters) {
  if (speeds.size() != small_sizes.size())
    throw std::invalid_argument("fine_tune: size mismatch");
  Distribution d;
  d.counts.resize(speeds.size());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    d.counts[i] = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::floor(small_sizes[i])));
    assigned += d.counts[i];
  }
  using Entry = std::pair<double, std::size_t>;
  if (assigned > n) {
    // Defensive shed, as in the SpeedList overload: rare (round-off only),
    // so it stays per-entry.
    std::priority_queue<Entry> heap;  // max by current completion time
    for (std::size_t i = 0; i < speeds.size(); ++i)
      if (d.counts[i] > 0)
        heap.emplace(compiled_time_at(speeds, counters, i, d.counts[i]), i);
    for (std::int64_t excess = assigned - n; excess > 0; --excess) {
      assert(!heap.empty());
      const auto [t, i] = heap.top();
      heap.pop();
      --d.counts[i];
      if (d.counts[i] > 0)
        heap.emplace(compiled_time_at(speeds, counters, i, d.counts[i]), i);
    }
    return d;
  }
  // Seed the award heap from one batched sweep over the post-award sizes
  // (counts + 1 >= 1, all in-domain). The heap sees the same (time, index)
  // pairs in the same i-ascending push order as award_greedily, so with the
  // scalar kernels the pop sequence — and the allocation — is bit-identical.
  std::vector<double> xs(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i)
    xs[i] = static_cast<double>(d.counts[i] + 1);
  const std::vector<double> sp = speeds_at(speeds, xs, counters);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < speeds.size(); ++i)
    heap.emplace(xs[i] / sp[i], i);
  for (std::int64_t deficit = n - assigned; deficit > 0; --deficit) {
    const auto [t, i] = heap.top();
    heap.pop();
    ++d.counts[i];
    heap.emplace(compiled_time_at(speeds, counters, i, d.counts[i] + 1), i);
  }
  return d;
}

Distribution greedy_from_zero(const SpeedList& speeds, std::int64_t n) {
  if (speeds.empty()) throw std::invalid_argument("greedy_from_zero: no speeds");
  Distribution d;
  d.counts.assign(speeds.size(), 0);
  award_greedily(speeds, d, n);
  return d;
}

Distribution exact_optimum(const SpeedList& speeds, std::int64_t n) {
  if (speeds.empty()) throw std::invalid_argument("exact_optimum: no speeds");
  Distribution d;
  d.counts.assign(speeds.size(), 0);
  if (n <= 0) return d;

  // cap(T): the largest x in [0, n] a processor can finish within time T.
  // Well-defined because x/s(x) is non-decreasing in x.
  const auto cap = [n](const SpeedFunction& f, double T) -> std::int64_t {
    if (time_at(f, 1) > T) return 0;
    std::int64_t lo = 1;  // feasible
    std::int64_t hi = n;  // maybe infeasible
    if (time_at(f, hi) <= T) return hi;
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (time_at(f, mid) <= T)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  };
  const auto total_cap = [&](double T) {
    std::int64_t sum = 0;
    for (const SpeedFunction* f : speeds) sum += cap(*f, T);
    return sum;
  };

  // Feasible upper bound: the fastest single processor taking everything.
  double t_hi = std::numeric_limits<double>::infinity();
  for (const SpeedFunction* f : speeds) t_hi = std::min(t_hi, time_at(*f, n));
  double t_lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (mid <= t_lo || mid >= t_hi) break;
    if (total_cap(mid) >= n)
      t_hi = mid;
    else
      t_lo = mid;
  }

  std::int64_t sum = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    d.counts[i] = cap(*speeds[i], t_hi);
    sum += d.counts[i];
  }
  assert(sum >= n);
  // Trim the overshoot from the slowest finishers; every trim keeps the
  // makespan at or below t_hi, and reducing the current maximum first keeps
  // the final makespan minimal among completions of this cap vector.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < speeds.size(); ++i)
    if (d.counts[i] > 0) heap.emplace(time_at(*speeds[i], d.counts[i]), i);
  for (std::int64_t excess = sum - n; excess > 0; --excess) {
    const auto [t, i] = heap.top();
    heap.pop();
    --d.counts[i];
    if (d.counts[i] > 0) heap.emplace(time_at(*speeds[i], d.counts[i]), i);
  }
  return d;
}

}  // namespace fpm::core
