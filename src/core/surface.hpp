// Two-parameter problem sizes (paper §3.1): for the striped matrix
// applications the per-processor problem is an n1 x n2 sub-matrix, so the
// speed function is geometrically a surface s = f(n1, n2). The paper's key
// observation (Tables 3 and 4): with one parameter fixed, the surface
// reduces to a line, and for the studied kernels the speed depends only on
// the element count n1·n2, not on the shape — so speed functions built with
// square matrices serve non-square slices too.
#pragma once

#include <memory>

#include "core/speed_function.hpp"

namespace fpm::core {

/// Abstract speed surface over two size parameters.
class SpeedSurface {
 public:
  virtual ~SpeedSurface() = default;

  /// Speed when processing an n1 x n2 problem.
  virtual double speed(double n1, double n2) const = 0;

  /// Largest modelled n1 for a given n2.
  virtual double max_n1(double n2) const = 0;
};

/// A surface whose speed depends (almost) only on the element count
/// n1·n2 — the experimentally observed behaviour of Tables 3/4. An optional
/// aspect sensitivity adds a mild penalty for extreme aspect ratios, for
/// studying when the shape-invariance assumption breaks.
class ShapeInvariantSurface final : public SpeedSurface {
 public:
  /// `by_elements` maps total element count to speed; `aspect_sensitivity`
  /// (>= 0) scales a log-aspect penalty (0 = perfectly shape-invariant).
  ShapeInvariantSurface(std::shared_ptr<const SpeedFunction> by_elements,
                        double aspect_sensitivity = 0.0);

  double speed(double n1, double n2) const override;
  double max_n1(double n2) const override;

 private:
  std::shared_ptr<const SpeedFunction> by_elements_;
  double aspect_sensitivity_;
};

/// Reduction of a surface to a one-parameter speed function by fixing the
/// second parameter (paper Figure 16b: n2 = n during set partitioning). The
/// resulting function's argument is the *element count* x = n1·n2, matching
/// the partitioning convention.
class FixedParamSpeed final : public SpeedFunction {
 public:
  FixedParamSpeed(std::shared_ptr<const SpeedSurface> surface, double n2);

  double speed(double x) const override;
  double max_size() const override;

 private:
  std::shared_ptr<const SpeedSurface> surface_;
  double n2_;
};

}  // namespace fpm::core
