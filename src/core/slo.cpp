#include "core/slo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace fpm::core {

const char* to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::Low:
      return "low";
    case Priority::Normal:
      return "normal";
    case Priority::High:
      return "high";
  }
  return "?";
}

const char* to_string(ServeStatus status) noexcept {
  switch (status) {
    case ServeStatus::Ok:
      return "ok";
    case ServeStatus::Degraded:
      return "degraded";
    case ServeStatus::Shed:
      return "shed";
  }
  return "?";
}

const char* to_string(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::None:
      return "none";
    case ShedReason::Admission:
      return "admission";
    case ShedReason::QueueFull:
      return "queue_full";
    case ShedReason::Expired:
      return "expired";
    case ShedReason::Shutdown:
      return "shutdown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// degraded_answer
// ---------------------------------------------------------------------------

namespace {

/// Log-space refinement steps tightening the makespan lower bound. Six
/// halvings shrink the bracket's log-width by 64x, which in practice puts
/// c_hi within a percent of the optimal slope at a cost of 6p solves.
constexpr int kBoundRefineSteps = 6;
/// Geometric-expansion cap for the initial upper slope; 1/makespan is
/// already a lower bound on c*, so a few doublings always suffice for any
/// model whose total size is not pathologically flat in the slope.
constexpr int kBoundExpandSteps = 200;

/// 128-bit intermediate for the exact prev_i * n rescale products.
__extension__ using int128 = __int128;

}  // namespace

std::optional<DegradedAnswer> degraded_answer(
    const SpeedList& speeds, std::int64_t n,
    std::span<const std::int64_t> prev_counts, std::int64_t prev_n) {
  const std::size_t p = speeds.size();
  if (p == 0 || n < 1 || prev_n < 1 || prev_counts.size() != p)
    return std::nullopt;
  std::int64_t prev_total = 0;
  for (const std::int64_t c : prev_counts) {
    if (c < 0) return std::nullopt;
    prev_total += c;
  }
  if (prev_total < 1) return std::nullopt;

  // Linear rescale by n/prev_total with largest-remainder rounding: each
  // processor gets floor(prev_i * n / prev_total), and the r < p leftover
  // elements go to the largest fractional remainders (ties to lower index).
  // 128-bit intermediates keep prev_i * n exact for any int64 workload.
  DegradedAnswer out;
  out.distribution.counts.assign(p, 0);
  std::vector<std::pair<std::int64_t, std::size_t>> remainders;  // (-rem, i)
  remainders.reserve(p);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const auto scaled = static_cast<int128>(prev_counts[i]) * n;
    const auto whole = static_cast<std::int64_t>(scaled / prev_total);
    const auto rem = static_cast<std::int64_t>(scaled % prev_total);
    out.distribution.counts[i] = whole;
    assigned += whole;
    remainders.emplace_back(-rem, i);
  }
  std::sort(remainders.begin(), remainders.end());
  const std::int64_t leftover = n - assigned;  // < p by construction
  for (std::int64_t j = 0; j < leftover; ++j)
    ++out.distribution.counts[remainders[static_cast<std::size_t>(j)].second];

  out.makespan = makespan(speeds, out.distribution);
  if (!std::isfinite(out.makespan) || out.makespan <= 0.0)
    return std::nullopt;

  // Lower bound on the exact optimum: any feasible allocation of n elements
  // has makespan >= 1/c for every slope c with total_size_at(c) <= n
  // (single-crossing: time_i <= T puts every point on or above the slope-
  // 1/T line, so n = sum counts <= total_size_at(1/T)). The degraded
  // answer itself certifies total_size_at(1/makespan) >= n, so expand
  // geometrically from there until the total drops to n, then bisect in
  // log space to tighten.
  const double nd = static_cast<double>(n);
  double c_lo = 1.0 / out.makespan;  // total >= n here
  double c_hi = c_lo;
  bool bracketed = false;
  for (int i = 0; i < kBoundExpandSteps; ++i) {
    c_hi *= 2.0;
    if (!std::isfinite(c_hi)) return std::nullopt;
    if (total_size_at(speeds, c_hi) <= nd) {
      bracketed = true;
      break;
    }
    c_lo = c_hi;
  }
  if (!bracketed) return std::nullopt;
  for (int i = 0; i < kBoundRefineSteps; ++i) {
    const double mid = std::sqrt(c_lo * c_hi);
    if (!(mid > c_lo && mid < c_hi)) break;
    if (total_size_at(speeds, mid) <= nd)
      c_hi = mid;
    else
      c_lo = mid;
  }
  // makespan >= 1/c_hi would make the bound negative only through floating
  // noise; clamp at zero (the answer cannot beat the certified optimum).
  out.error_bound = std::max(0.0, out.makespan * c_hi - 1.0);
  return out;
}

// ---------------------------------------------------------------------------
// QueueDelayEstimator
// ---------------------------------------------------------------------------

QueueDelayEstimator::QueueDelayEstimator(double alpha) noexcept
    : alpha_(alpha > 0.0 && alpha <= 1.0 ? alpha : 0.2) {}

double QueueDelayEstimator::read(const Cell& cell) noexcept {
  return cell.count.load(std::memory_order_relaxed) > 0
             ? cell.ewma.load(std::memory_order_relaxed)
             : -1.0;
}

void QueueDelayEstimator::update(Cell& cell, double service_s) noexcept {
  const std::int64_t seen = cell.count.load(std::memory_order_relaxed);
  const double old = cell.ewma.load(std::memory_order_relaxed);
  const double next =
      seen == 0 ? service_s : alpha_ * service_s + (1.0 - alpha_) * old;
  cell.ewma.store(next, std::memory_order_relaxed);
  cell.count.store(seen + 1, std::memory_order_relaxed);
}

void QueueDelayEstimator::record(Priority priority, double service_s) noexcept {
  if (!(service_s >= 0.0) || !std::isfinite(service_s)) return;
  update(per_class_[static_cast<std::size_t>(priority)], service_s);
  update(all_, service_s);
}

double QueueDelayEstimator::service_estimate(
    Priority priority) const noexcept {
  const double mine = read(per_class_[static_cast<std::size_t>(priority)]);
  if (mine >= 0.0) return mine;
  const double any = read(all_);
  return any >= 0.0 ? any : 0.0;
}

double QueueDelayEstimator::queue_delay(Priority priority,
                                        std::size_t jobs_ahead,
                                        unsigned workers) const noexcept {
  return service_estimate(priority) * static_cast<double>(jobs_ahead) /
         static_cast<double>(std::max(1u, workers));
}

std::int64_t QueueDelayEstimator::samples(Priority priority) const noexcept {
  return per_class_[static_cast<std::size_t>(priority)].count.load(
      std::memory_order_relaxed);
}

}  // namespace fpm::core
