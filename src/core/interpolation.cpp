#include "core/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/detail/search_state.hpp"
#include "core/finetune.hpp"

namespace fpm::core {

PartitionResult partition_interpolation(const SpeedList& speeds,
                                        std::int64_t n,
                                        const InterpolationOptions& opts) {
  if (speeds.empty())
    throw std::invalid_argument("partition_interpolation: no speeds");
  PartitionResult result;
  result.stats.algorithm = kAlgorithmInterpolation;
  if (n <= 0) {
    result.distribution.counts.assign(speeds.size(), 0);
    return result;
  }
  detail::SearchState state(speeds, n, &opts.observer,
                            opts.hint ? &*opts.hint : nullptr);
  const double target = std::log(static_cast<double>(n));

  while (!state.converged() && state.iterations() < opts.max_iterations) {
    const double n_large = std::accumulate(state.large().begin(),
                                           state.large().end(), 0.0);
    const double n_small = std::accumulate(state.small().begin(),
                                           state.small().end(), 0.0);
    const double lc_lo = std::log(state.lo_slope());
    const double lc_hi = std::log(state.hi_slope());
    double lc = 0.5 * (lc_lo + lc_hi);  // log-space bisection fallback

    // Illinois-style safeguard: every fourth step bisects unconditionally,
    // preventing the one-sided stagnation classic regula falsi suffers.
    const bool force_bisect = state.iterations() % 4 == 3;
    if (!force_bisect && n_large > static_cast<double>(n) &&
        n_small < static_cast<double>(n) && n_small > 0.0) {
      // Secant of log(total size) vs log(slope) through the bracket ends,
      // evaluated at the target size.
      const double lN_lo = std::log(n_large);   // at lo_slope
      const double lN_hi = std::log(n_small);   // at hi_slope
      if (lN_hi < lN_lo) {
        const double t = (target - lN_lo) / (lN_hi - lN_lo);
        const double candidate = lc_lo + t * (lc_hi - lc_lo);
        // Keep the step inside the safeguard band so the bracket shrinks
        // geometrically even when the secant model is poor.
        const double margin = opts.safeguard_margin * (lc_hi - lc_lo);
        if (candidate > lc_lo + margin && candidate < lc_hi - margin)
          lc = candidate;
      }
    }
    state.step_custom(std::exp(lc));
  }
  result.stats.iterations = state.iterations();
  result.stats.intersections = state.intersections();
  result.stats.final_slope = state.hi_slope();
  result.stats.search_speed_evals = state.speed_evals();
  result.stats.search_intersect_solves = state.intersect_solves();
  result.distribution = state.fine_tune_epilogue(n);
  result.stats.speed_evals = state.speed_evals();
  result.stats.intersect_solves = state.intersect_solves();
  result.stats.bracket_saturations = state.bracket_saturations();
  result.stats.warmstart = state.warmstart();
  if (result.stats.warmstart == WarmStart::Hit)
    result.stats.iterations_saved = std::max(
        0, opts.hint->baseline_iterations - result.stats.iterations);
  return result;
}

}  // namespace fpm::core
