#include "core/bounded.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/combined.hpp"

namespace fpm::core {

PartitionResult partition_bounded(const SpeedList& speeds, std::int64_t n,
                                  std::span<const std::int64_t> bounds,
                                  const BoundedOptions& opts) {
  if (speeds.size() != bounds.size())
    throw std::invalid_argument("partition_bounded: size mismatch");
  std::int64_t capacity = 0;
  for (const std::int64_t b : bounds) {
    if (b < 0) throw std::invalid_argument("partition_bounded: bound < 0");
    capacity += b;
  }
  if (capacity < n)
    throw std::invalid_argument("partition_bounded: bounds cannot hold n");

  PartitionResult result;
  result.stats.algorithm = kAlgorithmBounded;
  result.distribution.counts.assign(speeds.size(), 0);

  std::vector<std::size_t> active(speeds.size());
  std::iota(active.begin(), active.end(), std::size_t{0});
  std::int64_t remaining = n;

  CombinedOptions inner = opts.inner;
  bool first_round = true;
  while (remaining > 0 && !active.empty()) {
    SpeedList sub;
    sub.reserve(active.size());
    for (const std::size_t i : active) sub.push_back(speeds[i]);
    PartitionResult sub_result = partition_combined(sub, remaining, inner);
    if (first_round) {
      // The hint describes the full unclamped problem; the residual rounds
      // solve a different one (fewer processors, fewer elements), so only
      // the first inner search warm-starts.
      result.stats.warmstart = sub_result.stats.warmstart;
      result.stats.iterations_saved = sub_result.stats.iterations_saved;
      inner.hint.reset();
      first_round = false;
    }
    result.stats.iterations += sub_result.stats.iterations;
    result.stats.intersections += sub_result.stats.intersections;
    result.stats.speed_evals += sub_result.stats.speed_evals;
    result.stats.intersect_solves += sub_result.stats.intersect_solves;
    result.stats.search_speed_evals += sub_result.stats.search_speed_evals;
    result.stats.search_intersect_solves +=
        sub_result.stats.search_intersect_solves;
    result.stats.bracket_saturations += sub_result.stats.bracket_saturations;
    result.stats.final_slope = sub_result.stats.final_slope;
    result.stats.switched_to_modified |= sub_result.stats.switched_to_modified;

    // Clamp the over-bound processors; everyone else keeps the tentative
    // share only if no clamping happened (otherwise the residual is
    // re-partitioned among the unclamped).
    std::vector<std::size_t> still_active;
    bool clamped_any = false;
    for (std::size_t k = 0; k < active.size(); ++k) {
      const std::size_t i = active[k];
      const std::int64_t share = sub_result.distribution.counts[k];
      if (share >= bounds[i] && result.distribution.counts[i] == 0) {
        result.distribution.counts[i] = bounds[i];
        remaining -= bounds[i];
        clamped_any = true;
      } else {
        still_active.push_back(i);
      }
    }
    if (!clamped_any) {
      for (std::size_t k = 0; k < active.size(); ++k)
        result.distribution.counts[active[k]] =
            sub_result.distribution.counts[k];
      remaining = 0;
      break;
    }
    active = std::move(still_active);
  }
  if (remaining > 0) {
    // All processors clamped but capacity >= n means round-off left some
    // elements; spread them within the remaining slack deterministically.
    for (std::size_t i = 0; i < speeds.size() && remaining > 0; ++i) {
      const std::int64_t slack = bounds[i] - result.distribution.counts[i];
      const std::int64_t take = std::min(slack, remaining);
      result.distribution.counts[i] += take;
      remaining -= take;
    }
  }
  assert(result.distribution.total() == n);
  return result;
}

Distribution exact_optimum_bounded(const SpeedList& speeds, std::int64_t n,
                                   std::span<const std::int64_t> bounds) {
  if (speeds.size() != bounds.size())
    throw std::invalid_argument("exact_optimum_bounded: size mismatch");
  std::int64_t capacity = 0;
  for (const std::int64_t b : bounds) capacity += b;
  if (capacity < n)
    throw std::invalid_argument("exact_optimum_bounded: infeasible");

  const auto cap = [&](std::size_t i, double T) -> std::int64_t {
    const SpeedFunction& f = *speeds[i];
    const std::int64_t limit = std::min<std::int64_t>(bounds[i], n);
    if (limit == 0 || f.time(1.0) > T) return 0;
    std::int64_t lo = 1;
    std::int64_t hi = limit;
    if (f.time(static_cast<double>(hi)) <= T) return hi;
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (f.time(static_cast<double>(mid)) <= T)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  };
  const auto total_cap = [&](double T) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < speeds.size(); ++i) sum += cap(i, T);
    return sum;
  };

  // Feasible upper bound: every processor filled to its bound must cover n,
  // so the largest per-processor time at the bound is feasible.
  double t_hi = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i)
    t_hi = std::max(t_hi, speeds[i]->time(static_cast<double>(
                              std::min<std::int64_t>(bounds[i], n))));
  double t_lo = 0.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (mid <= t_lo || mid >= t_hi) break;
    if (total_cap(mid) >= n)
      t_hi = mid;
    else
      t_lo = mid;
  }

  Distribution d;
  d.counts.resize(speeds.size());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    d.counts[i] = cap(i, t_hi);
    sum += d.counts[i];
  }
  // Trim overshoot from the slowest finishers.
  while (sum > n) {
    std::size_t worst = 0;
    double worst_t = -1.0;
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      if (d.counts[i] == 0) continue;
      const double t = speeds[i]->time(static_cast<double>(d.counts[i]));
      if (t > worst_t) {
        worst_t = t;
        worst = i;
      }
    }
    --d.counts[worst];
    --sum;
  }
  return d;
}

std::vector<std::size_t> partition_weighted_contiguous(
    const SpeedList& speeds, std::span<const double> weights) {
  if (speeds.empty())
    throw std::invalid_argument("partition_weighted_contiguous: no speeds");
  for (const double w : weights)
    if (!(w > 0.0))
      throw std::invalid_argument(
          "partition_weighted_contiguous: weights must be > 0");
  const std::size_t p = speeds.size();
  const std::size_t m = weights.size();

  std::vector<double> prefix(m + 1, 0.0);
  for (std::size_t j = 0; j < m; ++j) prefix[j + 1] = prefix[j] + weights[j];

  // Feasibility sweep: can the whole sequence be consumed with every range
  // finishing within T? Greedily give each processor the longest prefix it
  // can complete (the range time is non-decreasing in the prefix length by
  // the documented precondition).
  const auto feasible = [&](double T, std::vector<std::size_t>* out) {
    std::size_t start = 0;
    if (out) out->assign(p + 1, m);
    if (out) (*out)[0] = 0;
    for (std::size_t i = 0; i < p; ++i) {
      // Binary search the largest end with time(start, end) <= T.
      std::size_t lo = start;  // feasible (empty range: time 0)
      std::size_t hi = m;
      const auto range_time = [&](std::size_t end) {
        const double W = prefix[end] - prefix[start];
        const double c = static_cast<double>(end - start);
        return c == 0.0 ? 0.0 : W / speeds[i]->speed(c);
      };
      if (range_time(hi) <= T) {
        lo = hi;
      } else {
        while (hi - lo > 1) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (range_time(mid) <= T)
            lo = mid;
          else
            hi = mid;
        }
      }
      start = lo;
      if (out) (*out)[i + 1] = start;
      if (start == m) {
        if (out)
          for (std::size_t k = i + 1; k <= p; ++k) (*out)[k] = m;
        return true;
      }
    }
    return start == m;
  };

  // Makespan bisection. Upper bound: the fastest processor taking all.
  double t_hi = std::numeric_limits<double>::infinity();
  for (const SpeedFunction* f : speeds)
    t_hi = std::min(t_hi, prefix[m] / f->speed(static_cast<double>(m)));
  if (!feasible(t_hi, nullptr)) {
    // Precondition violated or degenerate curves: fall back to a generous
    // bound that is always feasible (slowest processor alone).
    for (const SpeedFunction* f : speeds)
      t_hi = std::max(t_hi, prefix[m] / f->speed(static_cast<double>(m)));
  }
  double t_lo = 0.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (mid <= t_lo || mid >= t_hi) break;
    if (feasible(mid, nullptr))
      t_hi = mid;
    else
      t_lo = mid;
  }
  std::vector<std::size_t> boundaries;
  const bool ok = feasible(t_hi, &boundaries);
  assert(ok);
  (void)ok;
  return boundaries;
}

double weighted_makespan(const SpeedList& speeds,
                         std::span<const double> weights,
                         std::span<const std::size_t> boundaries) {
  assert(boundaries.size() == speeds.size() + 1);
  std::vector<double> prefix(weights.size() + 1, 0.0);
  for (std::size_t j = 0; j < weights.size(); ++j)
    prefix[j + 1] = prefix[j] + weights[j];
  double worst = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const std::size_t a = boundaries[i];
    const std::size_t b = boundaries[i + 1];
    if (b <= a) continue;
    const double W = prefix[b] - prefix[a];
    const double c = static_cast<double>(b - a);
    worst = std::max(worst, W / speeds[i]->speed(c));
  }
  return worst;
}

}  // namespace fpm::core
