// The combined algorithm (paper §2, Figure 15): for most real-life curve
// families the optimal line lies in a region of polynomial slopes where the
// basic bisection converges fastest; for near-horizontal curve regions (very
// large problem sizes) the modified algorithm's shape-insensitive guarantee
// wins. The combined algorithm runs basic bisection and monitors how fast
// the candidate-solution count shrinks; when the shrink rate falls below
// what a well-behaved search would achieve, it switches to the modified
// strategy for the remainder of the search.
#pragma once

#include <cstdint>
#include <optional>

#include "core/observer.hpp"
#include "core/partition.hpp"

namespace fpm::core {

struct CombinedOptions {
  /// Number of consecutive basic steps over which the candidate count must
  /// at least halve; otherwise the search switches to the modified steps.
  int stall_window = 8;
  /// See BasicBisectionOptions::bisect_angles.
  bool bisect_angles = true;
  int max_iterations = 1 << 22;
  /// Optional per-step trace callback (see core/observer.hpp). Empty
  /// disables instrumentation.
  SearchObserver observer{};
  /// Optional warm-start hint from a previous solve of a nearby problem
  /// (see PartitionHint); never changes the distribution, only the cost.
  std::optional<PartitionHint> hint{};
};

/// Partitions n elements with the combined basic/modified strategy followed
/// by fine-tuning. Requires a non-empty speed list.
PartitionResult partition_combined(const SpeedList& speeds, std::int64_t n,
                                   const CombinedOptions& opts = {});

}  // namespace fpm::core
