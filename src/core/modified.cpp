#include "core/modified.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/detail/search_state.hpp"
#include "core/finetune.hpp"

namespace fpm::core {

PartitionResult partition_modified(const SpeedList& speeds, std::int64_t n,
                                   const ModifiedBisectionOptions& opts) {
  if (speeds.empty())
    throw std::invalid_argument("partition_modified: no speeds");
  PartitionResult result;
  result.stats.algorithm = kAlgorithmModified;
  if (n <= 0) {
    result.distribution.counts.assign(speeds.size(), 0);
    return result;
  }
  detail::SearchState state(speeds, n, &opts.observer,
                            opts.hint ? &*opts.hint : nullptr);
  // The guaranteed bound: each p steps halve the candidate count of at most
  // p·n lines, so p·log2(p·n) steps suffice; slack covers the bracket setup.
  const double pd = static_cast<double>(speeds.size());
  const int bound = static_cast<int>(
      pd * (std::log2(static_cast<double>(n) * pd) + 4.0)) + 64;
  const int cap = std::min(opts.max_iterations, bound);
  while (!state.converged() && state.iterations() < cap)
    state.step_modified();
  result.stats.iterations = state.iterations();
  result.stats.intersections = state.intersections();
  result.stats.final_slope = state.hi_slope();
  result.stats.search_speed_evals = state.speed_evals();
  result.stats.search_intersect_solves = state.intersect_solves();
  result.distribution = state.fine_tune_epilogue(n);
  result.stats.speed_evals = state.speed_evals();
  result.stats.intersect_solves = state.intersect_solves();
  result.stats.bracket_saturations = state.bracket_saturations();
  result.stats.warmstart = state.warmstart();
  if (result.stats.warmstart == WarmStart::Hit)
    result.stats.iterations_saved = std::max(
        0, opts.hint->baseline_iterations - result.stats.iterations);
  return result;
}

}  // namespace fpm::core
