#include "core/hierarchy.hpp"

#include <cassert>
#include <stdexcept>

#include "core/policy.hpp"

namespace fpm::core {

AggregateSpeed::AggregateSpeed(SpeedList members)
    : members_(std::move(members)) {
  if (members_.empty())
    throw std::invalid_argument("AggregateSpeed: empty group");
  for (const SpeedFunction* m : members_)
    if (m == nullptr)
      throw std::invalid_argument("AggregateSpeed: null member");
}

double AggregateSpeed::max_size() const {
  double total = 0.0;
  for (const SpeedFunction* m : members_) total += m->max_size();
  return total;
}

double AggregateSpeed::slope_for(double x) const {
  assert(x > 0.0);
  // Bracket the slope: N(c) is strictly decreasing, so expand around a
  // heuristic start until N straddles x, then bisect.
  double c_hi = members_.front()->ratio(
      std::min(x, members_.front()->max_size()));
  double c_lo = c_hi;
  for (int i = 0; i < 256 && total_size_at(members_, c_hi) > x; ++i)
    c_hi *= 2.0;
  for (int i = 0; i < 256 && total_size_at(members_, c_lo) < x; ++i)
    c_lo *= 0.5;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (c_lo + c_hi);
    if (mid <= c_lo || mid >= c_hi) break;
    if (total_size_at(members_, mid) > x)
      c_lo = mid;  // line too shallow: group absorbs more than x
    else
      c_hi = mid;
  }
  return 0.5 * (c_lo + c_hi);
}

double AggregateSpeed::speed(double x) const {
  if (x <= 0.0) {
    // Limit x -> 0+: every member's share -> 0, all at their top speeds;
    // the group behaves like the sum of small-size speeds.
    double sum = 0.0;
    for (const SpeedFunction* m : members_) sum += m->speed(0.0);
    return sum;
  }
  return x * slope_for(x);
}

double AggregateSpeed::intersect(double slope) const {
  assert(slope > 0.0);
  return total_size_at(members_, slope);
}

std::vector<std::int64_t> HierarchicalResult::flatten() const {
  std::vector<std::int64_t> all;
  for (const Distribution& d : within)
    all.insert(all.end(), d.counts.begin(), d.counts.end());
  return all;
}

HierarchicalResult partition_hierarchical(
    const std::vector<SpeedList>& groups, std::int64_t n,
    const PartitionPolicy& policy) {
  if (groups.empty())
    throw std::invalid_argument("partition_hierarchical: no groups");
  if (!policy.bounds.empty())
    throw std::invalid_argument(
        "partition_hierarchical: per-processor bounds do not map onto the "
        "group/member levels");
  std::vector<AggregateSpeed> aggregates;
  aggregates.reserve(groups.size());
  for (const SpeedList& members : groups) aggregates.emplace_back(members);

  SpeedList top;
  top.reserve(aggregates.size());
  for (const AggregateSpeed& a : aggregates) top.push_back(&a);

  HierarchicalResult result;
  PartitionResult top_result = partition(top, n, policy);
  result.group_counts = std::move(top_result.distribution.counts);
  result.stats = std::move(top_result.stats);
  result.stats.algorithm = kAlgorithmHierarchical;

  result.within.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (result.group_counts[g] == 0) {
      Distribution empty;
      empty.counts.assign(groups[g].size(), 0);
      result.within.push_back(std::move(empty));
      continue;
    }
    PartitionResult inner = partition(groups[g], result.group_counts[g], policy);
    result.stats.iterations += inner.stats.iterations;
    result.stats.intersections += inner.stats.intersections;
    result.stats.speed_evals += inner.stats.speed_evals;
    result.stats.intersect_solves += inner.stats.intersect_solves;
    result.stats.bracket_saturations += inner.stats.bracket_saturations;
    result.within.push_back(std::move(inner.distribution));
  }
  return result;
}

}  // namespace fpm::core
