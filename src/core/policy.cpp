#include "core/policy.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace fpm::core {

namespace {

/// Extracts the options struct matching the dispatched algorithm: defaults
/// on monostate, the held value on a match, invalid_argument otherwise.
template <typename Opts>
Opts options_for(const PartitionPolicy& policy, const char* id) {
  if (std::holds_alternative<std::monostate>(policy.options)) return Opts{};
  if (const Opts* held = std::get_if<Opts>(&policy.options)) return *held;
  throw std::invalid_argument(
      std::string("partition: options variant does not match algorithm '") +
      id + "'");
}

std::vector<std::int64_t> bounds_or_capacity(const PartitionPolicy& policy,
                                             const SpeedList& speeds) {
  if (!policy.bounds.empty()) return policy.bounds;
  // Default capacity: the modelled range end of each curve (the paper's
  // point b — the size at which the processor pages itself to a halt).
  std::vector<std::int64_t> bounds;
  bounds.reserve(speeds.size());
  for (const SpeedFunction* f : speeds)
    bounds.push_back(static_cast<std::int64_t>(std::ceil(f->max_size())));
  return bounds;
}

PartitionerRegistry build_registry() {
  PartitionerRegistry reg;
  reg.add({kAlgorithmBasic,
           "angle/tangent bisection of the slope interval (paper Fig. 7-8)",
           "O(p*log n) on polynomial slopes, O(p*n) worst case", false},
          [](const SpeedList& speeds, std::int64_t n,
             const PartitionPolicy& policy) {
            auto opts = options_for<BasicBisectionOptions>(policy,
                                                          kAlgorithmBasic);
            if (policy.observer) opts.observer = policy.observer;
            if (policy.hint) opts.hint = policy.hint;
            return partition_basic(speeds, n, opts);
          });
  reg.add({kAlgorithmModified,
           "space-of-solutions bisection (paper Fig. 10-12)",
           "O(p^2*log2 n) guaranteed, shape-insensitive", false},
          [](const SpeedList& speeds, std::int64_t n,
             const PartitionPolicy& policy) {
            auto opts = options_for<ModifiedBisectionOptions>(
                policy, kAlgorithmModified);
            if (policy.observer) opts.observer = policy.observer;
            if (policy.hint) opts.hint = policy.hint;
            return partition_modified(speeds, n, opts);
          });
  reg.add({kAlgorithmCombined,
           "basic bisection with stall-triggered switch to modified "
           "(paper Fig. 15)",
           "O(p*log n) typical, O(p^2*log2 n) after the switch", false},
          [](const SpeedList& speeds, std::int64_t n,
             const PartitionPolicy& policy) {
            auto opts = options_for<CombinedOptions>(policy,
                                                     kAlgorithmCombined);
            if (policy.observer) opts.observer = policy.observer;
            if (policy.hint) opts.hint = policy.hint;
            return partition_combined(speeds, n, opts);
          });
  reg.add({kAlgorithmInterpolation,
           "safeguarded log-log regula-falsi on the total-size curve",
           "superlinear in practice, <= 2x basic worst case", false},
          [](const SpeedList& speeds, std::int64_t n,
             const PartitionPolicy& policy) {
            auto opts = options_for<InterpolationOptions>(
                policy, kAlgorithmInterpolation);
            if (policy.observer) opts.observer = policy.observer;
            if (policy.hint) opts.hint = policy.hint;
            return partition_interpolation(speeds, n, opts);
          });
  reg.add({kAlgorithmBounded,
           "clamp-and-resolve under per-processor capacity bounds",
           "<= p combined solves", true},
          [](const SpeedList& speeds, std::int64_t n,
             const PartitionPolicy& policy) {
            auto opts = options_for<BoundedOptions>(policy, kAlgorithmBounded);
            if (policy.observer) opts.inner.observer = policy.observer;
            if (policy.hint) opts.inner.hint = policy.hint;
            const std::vector<std::int64_t> bounds =
                bounds_or_capacity(policy, speeds);
            return partition_bounded(speeds, n, bounds, opts);
          });
  return reg;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  throw std::invalid_argument("parse_policy: key '" + key +
                              "' expects true/false/1/0, got '" + value + "'");
}

int parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_policy: key '" + key +
                                "' expects an integer, got '" + value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_policy: key '" + key +
                                "' expects a number, got '" + value + "'");
  }
}

[[noreturn]] void throw_unknown_key(const std::string& algorithm,
                                    const std::string& key) {
  throw std::invalid_argument("parse_policy: algorithm '" + algorithm +
                              "' has no key '" + key + "'");
}

}  // namespace

void PartitionerRegistry::add(PartitionerInfo info, Runner runner) {
  if (find(info.id) != nullptr)
    throw std::logic_error("PartitionerRegistry: duplicate id '" + info.id +
                           "'");
  infos_.push_back(std::move(info));
  runners_.push_back(std::move(runner));
}

std::vector<std::string> PartitionerRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const PartitionerInfo& info : infos_) out.push_back(info.id);
  return out;
}

std::string PartitionerRegistry::joined_ids() const {
  std::string out;
  for (const PartitionerInfo& info : infos_) {
    if (!out.empty()) out += ", ";
    out += info.id;
  }
  return out;
}

const PartitionerInfo* PartitionerRegistry::find(std::string_view id) const {
  for (const PartitionerInfo& info : infos_)
    if (info.id == id) return &info;
  return nullptr;
}

PartitionResult PartitionerRegistry::run(const SpeedList& speeds,
                                         std::int64_t n,
                                         const PartitionPolicy& policy) const {
  for (std::size_t i = 0; i < infos_.size(); ++i)
    if (infos_[i].id == policy.algorithm) return runners_[i](speeds, n, policy);
  throw std::invalid_argument("partition: unknown algorithm '" +
                              policy.algorithm + "' (valid: " + joined_ids() +
                              ")");
}

const PartitionerRegistry& partitioner_registry() {
  static const PartitionerRegistry registry = build_registry();
  return registry;
}

PartitionResult partition(const SpeedList& speeds, std::int64_t n,
                          const PartitionPolicy& policy) {
  PartitionResult result = partitioner_registry().run(speeds, n, policy);
  // Roll the per-call PartitionStats accounting into the process-wide
  // registry: one invocation counter per algorithm id, plus the
  // SpeedFunction-boundary totals. Registry lookup cost is negligible next
  // to the search itself.
  obs::MetricsRegistry& reg = obs::metrics();
  reg.counter(std::string(obs::names::kPartitionInvocationsPrefix) +
              result.stats.algorithm)
      .add(1);
  reg.counter(obs::names::kPartitionSpeedEvals).add(result.stats.speed_evals);
  reg.counter(obs::names::kPartitionIntersectSolves)
      .add(result.stats.intersect_solves);
  if (result.stats.bracket_saturations != 0)
    reg.counter(obs::names::kPartitionBracketSaturations)
        .add(result.stats.bracket_saturations);
  if (result.stats.warmstart == WarmStart::Hit) {
    reg.counter(obs::names::kPartitionWarmstartHits).add(1);
    reg.counter(obs::names::kPartitionWarmstartIterationsSaved)
        .add(result.stats.iterations_saved);
  } else if (result.stats.warmstart == WarmStart::Stale) {
    reg.counter(obs::names::kPartitionWarmstartStale).add(1);
  }
  return result;
}

PartitionPolicy parse_policy(std::string_view algorithm,
                             std::span<const std::string> tokens) {
  PartitionPolicy policy;
  policy.algorithm = std::string(algorithm);
  const PartitionerInfo* info = partitioner_registry().find(policy.algorithm);
  if (info == nullptr)
    throw std::invalid_argument(
        "parse_policy: unknown algorithm '" + policy.algorithm +
        "' (valid: " + partitioner_registry().joined_ids() + ")");
  if (tokens.size() % 2 != 0)
    throw std::invalid_argument("parse_policy: key '" + tokens.back() +
                                "' is missing its value");

  // Materialize the matching options struct so parsed keys land somewhere
  // even when every value equals the default.
  if (policy.algorithm == kAlgorithmBasic)
    policy.options = BasicBisectionOptions{};
  else if (policy.algorithm == kAlgorithmModified)
    policy.options = ModifiedBisectionOptions{};
  else if (policy.algorithm == kAlgorithmCombined)
    policy.options = CombinedOptions{};
  else if (policy.algorithm == kAlgorithmInterpolation)
    policy.options = InterpolationOptions{};
  else if (policy.algorithm == kAlgorithmBounded)
    policy.options = BoundedOptions{};

  for (std::size_t i = 0; i + 1 < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (auto* basic = std::get_if<BasicBisectionOptions>(&policy.options)) {
      if (key == "bisect_angles")
        basic->bisect_angles = parse_bool(key, value);
      else if (key == "max_iterations")
        basic->max_iterations = parse_int(key, value);
      else
        throw_unknown_key(policy.algorithm, key);
    } else if (auto* modified =
                   std::get_if<ModifiedBisectionOptions>(&policy.options)) {
      if (key == "max_iterations")
        modified->max_iterations = parse_int(key, value);
      else
        throw_unknown_key(policy.algorithm, key);
    } else if (auto* combined = std::get_if<CombinedOptions>(&policy.options)) {
      if (key == "stall_window")
        combined->stall_window = parse_int(key, value);
      else if (key == "bisect_angles")
        combined->bisect_angles = parse_bool(key, value);
      else if (key == "max_iterations")
        combined->max_iterations = parse_int(key, value);
      else
        throw_unknown_key(policy.algorithm, key);
    } else if (auto* interp =
                   std::get_if<InterpolationOptions>(&policy.options)) {
      if (key == "safeguard_margin")
        interp->safeguard_margin = parse_double(key, value);
      else if (key == "max_iterations")
        interp->max_iterations = parse_int(key, value);
      else
        throw_unknown_key(policy.algorithm, key);
    } else if (auto* bounded = std::get_if<BoundedOptions>(&policy.options)) {
      if (key == "stall_window")
        bounded->inner.stall_window = parse_int(key, value);
      else if (key == "bisect_angles")
        bounded->inner.bisect_angles = parse_bool(key, value);
      else if (key == "max_iterations")
        bounded->inner.max_iterations = parse_int(key, value);
      else
        throw_unknown_key(policy.algorithm, key);
    }
  }
  return policy;
}

std::string format_policy(const PartitionPolicy& policy) {
  std::ostringstream out;
  out << policy.algorithm;
  const auto emit_combined_keys = [&out](const CombinedOptions& opts) {
    const CombinedOptions defaults;
    if (opts.stall_window != defaults.stall_window)
      out << " stall_window " << opts.stall_window;
    if (opts.bisect_angles != defaults.bisect_angles)
      out << " bisect_angles " << (opts.bisect_angles ? "true" : "false");
    if (opts.max_iterations != defaults.max_iterations)
      out << " max_iterations " << opts.max_iterations;
  };
  if (const auto* basic = std::get_if<BasicBisectionOptions>(&policy.options)) {
    const BasicBisectionOptions defaults;
    if (basic->bisect_angles != defaults.bisect_angles)
      out << " bisect_angles " << (basic->bisect_angles ? "true" : "false");
    if (basic->max_iterations != defaults.max_iterations)
      out << " max_iterations " << basic->max_iterations;
  } else if (const auto* modified =
                 std::get_if<ModifiedBisectionOptions>(&policy.options)) {
    const ModifiedBisectionOptions defaults;
    if (modified->max_iterations != defaults.max_iterations)
      out << " max_iterations " << modified->max_iterations;
  } else if (const auto* combined =
                 std::get_if<CombinedOptions>(&policy.options)) {
    emit_combined_keys(*combined);
  } else if (const auto* interp =
                 std::get_if<InterpolationOptions>(&policy.options)) {
    const InterpolationOptions defaults;
    if (interp->safeguard_margin != defaults.safeguard_margin)
      out << " safeguard_margin " << interp->safeguard_margin;
    if (interp->max_iterations != defaults.max_iterations)
      out << " max_iterations " << interp->max_iterations;
  } else if (const auto* bounded =
                 std::get_if<BoundedOptions>(&policy.options)) {
    emit_combined_keys(bounded->inner);
  }
  return out.str();
}

}  // namespace fpm::core
