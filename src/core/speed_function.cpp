#include "core/speed_function.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/detail/speed_kernels.hpp"

namespace fpm::core {

double SpeedFunction::intersect(double slope) const {
  assert(slope > 0.0);
  // The shared bisection kernel (see detail/speed_kernels.hpp): bracket
  // expansion beyond max_size() keeps the problem well-posed for any n,
  // then 200 halvings reach round-off exactness.
  return detail::generic_intersect([this](double x) { return speed(x); },
                                   max_size(), slope);
}

bool satisfies_shape_requirement(const SpeedFunction& f, int samples) {
  const double b = f.max_size();
  if (!(b > 0.0)) return false;
  // Geometric spacing puts most samples at small x where ratio changes fast.
  const double x_min = std::max(1.0, b * 1e-9);
  const double step = std::pow(b / x_min, 1.0 / (samples - 1));
  double prev_ratio = f.ratio(x_min);
  if (!(prev_ratio > 0.0)) return false;
  double x = x_min;
  for (int i = 1; i < samples; ++i) {
    x *= step;
    const double r = f.ratio(std::min(x, b));
    // Allow exact ties only within round-off; strict decrease otherwise.
    if (r > prev_ratio * (1.0 + 1e-12)) return false;
    prev_ratio = r;
  }
  return true;
}

// --------------------------------------------------------------------------

ConstantSpeed::ConstantSpeed(double s0, double max_size)
    : s0_(s0), max_size_(max_size) {
  if (!(s0 > 0.0) || !(max_size > 0.0))
    throw std::invalid_argument("ConstantSpeed: s0 and max_size must be > 0");
}

double ConstantSpeed::intersect(double slope) const {
  // The constant model has no memory wall: the crossing is exact and may
  // lie beyond the modelled range (consistent with speed() everywhere s0).
  return detail::constant_intersect(s0_, slope);
}

LinearDecaySpeed::LinearDecaySpeed(double s0, double max_size,
                                   double floor_fraction)
    : s0_(s0), max_size_(max_size), floor_(s0 * floor_fraction) {
  if (!(s0 > 0.0) || !(max_size > 0.0) || !(floor_fraction > 0.0) ||
      !(floor_fraction < 1.0))
    throw std::invalid_argument("LinearDecaySpeed: invalid parameters");
}

double LinearDecaySpeed::speed(double x) const {
  return detail::linear_decay_speed(s0_, max_size_, floor_, x);
}

double LinearDecaySpeed::intersect(double slope) const {
  // c·x = s0·(1 - x/B)  =>  x = s0 / (c + s0/B); valid while above floor,
  // then the floor plateau crossing floor/c (possibly beyond B).
  return detail::linear_decay_intersect(s0_, max_size_, floor_, slope);
}

PowerDecaySpeed::PowerDecaySpeed(double s0, double x0, double exponent,
                                 double max_size)
    : s0_(s0), x0_(x0), k_(exponent), max_size_(max_size) {
  if (!(s0 > 0.0) || !(x0 > 0.0) || !(exponent > 0.0) || !(max_size > 0.0))
    throw std::invalid_argument("PowerDecaySpeed: invalid parameters");
}

double PowerDecaySpeed::speed(double x) const {
  return detail::power_decay_speed(s0_, x0_, k_, x);
}

double PowerDecaySpeed::intersect(double slope) const {
  assert(slope > 0.0);
  return detail::power_decay_intersect(s0_, x0_, k_, max_size_, slope);
}

UnimodalSpeed::UnimodalSpeed(double s_low, double s_peak, double x_peak,
                             double decay_x0, double decay_exponent,
                             double max_size)
    : s_low_(s_low),
      s_peak_(s_peak),
      x_peak_(x_peak),
      x0_(decay_x0),
      k_(decay_exponent),
      max_size_(max_size) {
  if (!(s_low > 0.0) || !(s_peak >= s_low) || !(x_peak > 0.0) ||
      !(decay_x0 > 0.0) || !(decay_exponent > 0.0) || !(max_size > x_peak))
    throw std::invalid_argument("UnimodalSpeed: invalid parameters");
}

double UnimodalSpeed::speed(double x) const {
  return detail::unimodal_speed(s_low_, s_peak_, x_peak_, x0_, k_, x);
}

SteppedSpeed::SteppedSpeed(double s0, std::vector<Step> steps, double max_size)
    : s0_(s0), steps_(std::move(steps)), max_size_(max_size) {
  if (!(s0 > 0.0) || !(max_size > 0.0))
    throw std::invalid_argument("SteppedSpeed: invalid parameters");
  double prev_at = 0.0;
  double prev_to = s0;
  for (const Step& st : steps_) {
    if (!(st.at > prev_at) || !(st.to > 0.0) || !(st.to < prev_to) ||
        !(st.width > 0.0))
      throw std::invalid_argument(
          "SteppedSpeed: steps must be ordered with decreasing plateaus");
    prev_at = st.at;
    prev_to = st.to;
  }
}

double SteppedSpeed::speed(double x) const {
  // Product of smooth sigmoids: each step multiplies the current level by
  // a factor interpolating 1 -> to/from around `at`.
  double s = s0_;
  double level = s0_;
  for (const Step& st : steps_) {
    s *= detail::stepped_step_factor(st.at, st.to, st.width, level, x);
    level = st.to;
  }
  return s;
}

ExpDecaySpeed::ExpDecaySpeed(double s0, double lambda, double max_size)
    : s0_(s0), lambda_(lambda), max_size_(max_size) {
  if (!(s0 > 0.0) || !(lambda > 0.0) || !(max_size > 0.0))
    throw std::invalid_argument("ExpDecaySpeed: invalid parameters");
}

double ExpDecaySpeed::speed(double x) const {
  // A tiny positive floor keeps times finite (and the ratio decreasing)
  // even when exp(-x/lambda) underflows for absurdly oversized problems.
  return detail::exp_decay_speed(s0_, lambda_, x);
}

double ExpDecaySpeed::intersect(double slope) const {
  assert(slope > 0.0);
  return detail::exp_decay_intersect(s0_, lambda_, max_size_, slope);
}

GranularSpeed::GranularSpeed(std::shared_ptr<const SpeedFunction> base,
                             double elements_per_item)
    : base_(std::move(base)), k_(elements_per_item) {
  if (!base_ || !(elements_per_item > 0.0))
    throw std::invalid_argument("GranularSpeed: invalid parameters");
}

double GranularSpeed::speed(double items) const {
  return base_->speed(items * k_) / k_;
}

double GranularSpeed::max_size() const { return base_->max_size() / k_; }

GranularSpeedView::GranularSpeedView(const SpeedFunction& base,
                                     double elements_per_item)
    : base_(&base), k_(elements_per_item) {
  if (!(elements_per_item > 0.0))
    throw std::invalid_argument("GranularSpeedView: invalid parameters");
}

double GranularSpeedView::speed(double items) const {
  return base_->speed(items * k_) / k_;
}

double GranularSpeedView::max_size() const { return base_->max_size() / k_; }

ScaledSpeed::ScaledSpeed(std::shared_ptr<const SpeedFunction> base,
                         double factor)
    : base_(std::move(base)), factor_(factor) {
  if (!base_ || !(factor > 0.0))
    throw std::invalid_argument("ScaledSpeed: invalid parameters");
}

double ScaledSpeed::speed(double x) const { return factor_ * base_->speed(x); }

double ScaledSpeed::max_size() const { return base_->max_size(); }

}  // namespace fpm::core
