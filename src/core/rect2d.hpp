// Two-dimensional rectangular partitioning — the multi-parameter extension
// the paper sketches in §3.1: "the optimal solution provided by a geometric
// algorithm would divide these surfaces to produce a set of rectangular
// partitions equal in number to the number of processors such that the
// number of elements in each partition (the area of the partition) is
// proportional to the speed of the processor."
//
// This module implements the classic column-based construction (the one
// heterogeneous ScaLAPACK-style codes use): processors are arranged into
// columns; column widths are proportional to the summed optimal areas of
// their processors, and each processor receives a horizontal slab of its
// column with height proportional to its own area. The per-processor areas
// come from the 1-D functional partitioner, so size-dependent speeds (and
// paging) are honoured. The column count is chosen by minimizing the total
// half-perimeter, the standard communication-volume proxy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"

namespace fpm::core {

/// One processor's rectangle in an M x N element grid (rows x cols).
struct Rect {
  std::int64_t row = 0;
  std::int64_t col = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  std::int64_t area() const noexcept { return rows * cols; }
  /// Half-perimeter, the standard proxy for a processor's communication
  /// volume in 2-D matrix algorithms.
  std::int64_t half_perimeter() const noexcept { return rows + cols; }
};

/// A full 2-D partition: one rectangle per processor, exactly covering the
/// grid.
struct RectPartition {
  std::int64_t grid_rows = 0;
  std::int64_t grid_cols = 0;
  std::vector<Rect> rects;       ///< rects[i] belongs to processor i
  std::size_t columns = 0;       ///< processor-column count chosen
  PartitionStats stats;          ///< from the underlying 1-D area solve

  /// Sum of half-perimeters of all non-empty rectangles.
  std::int64_t total_half_perimeter() const;
};

struct Rect2dOptions {
  /// Fix the processor-column count; 0 searches 1..p for the smallest
  /// total half-perimeter.
  std::size_t force_columns = 0;
};

/// Partitions an M x N grid of elements over the processors. Rectangles
/// tile the grid exactly; each processor's area tracks its optimal 1-D
/// share (from partition_combined over M·N elements) up to the integer
/// rounding that exact tiling requires. Processors whose optimal share is
/// zero receive an empty rectangle. Requires rows, cols >= 1.
RectPartition partition_rectangles(const SpeedList& speeds,
                                   std::int64_t rows, std::int64_t cols,
                                   const Rect2dOptions& opts = {});

/// Verifies that the rectangles tile the grid exactly (no gap, no overlap).
/// Exposed for tests and user assertions; O(p²).
bool is_exact_tiling(const RectPartition& partition);

}  // namespace fpm::core
