// Fine-tuning (paper Figure 9): once the bisection brackets the optimal line
// tightly enough that no integer problem size lies strictly inside any
// processor's bracket, the final integer allocation is chosen from the
// candidate integer points around the two bracketing lines.
//
// The paper describes sorting the 2p candidate execution times and keeping
// the p best. We implement the equivalent, fully specified procedure: start
// from the floor allocation of the steep (small-sum) line and repeatedly
// award one element to the processor whose post-award completion time is
// smallest, until the allocation sums to n. Because execution time
// x/s(x) is non-decreasing in x (a consequence of the shape requirement),
// this greedy yields a makespan-optimal integer completion — verified in the
// test suite against exact_optimum() below.
#pragma once

#include <cstdint>
#include <span>

#include "core/compiled.hpp"
#include "core/partition.hpp"

namespace fpm::core {

/// Completes a fractional bracket into an integer allocation summing to n.
/// `small_sizes` are the intersections with the steep line (sum <= n); they
/// seed the floor allocation. O((p + deficit)·log p).
Distribution fine_tune(const SpeedList& speeds, std::int64_t n,
                       std::span<const double> small_sizes);

/// Compiled-model overload: the award heap is seeded from ONE batched
/// speeds_at() sweep (the p-wide hot loop of the epilogue, vectorized for
/// the power/exp lanes) instead of p virtual calls; the award/shed
/// iterations stay per-entry, exactly as the virtual path orders them.
/// With SIMD off this is bit-identical — same values, same heap push
/// sequence — to fine_tune over CompiledEntryView adaptors. Evaluations
/// land in `counters` at the same boundary the counting views use
/// (pass nullptr to skip).
Distribution fine_tune(const CompiledSpeedList& speeds, std::int64_t n,
                       std::span<const double> small_sizes,
                       EvalCounters* counters);

/// Greedy makespan-optimal allocation built from scratch (all-zero seed).
/// O(n·log p) — exact but slow; exposed for tests and tiny problems.
Distribution greedy_from_zero(const SpeedList& speeds, std::int64_t n);

/// Globally optimal integer allocation by binary search on the makespan T:
/// cap_i(T) = max x with x/s_i(x) <= T is monotone in T, so the smallest
/// feasible T is found by bisection; the overshoot sum(cap_i(T*)) - n is then
/// trimmed from the processors with the largest completion times.
/// O(p·log(n)·log(1/tol)). Used as the optimality oracle in tests and as a
/// standalone exact solver.
Distribution exact_optimum(const SpeedList& speeds, std::int64_t n);

}  // namespace fpm::core
