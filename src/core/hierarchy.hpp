// Hierarchical (two-level) partitioning — for the "global networks" and
// grid settings the paper's introduction motivates: processors come in
// groups (sites, clusters), work is first split across groups and then
// within each group.
//
// The key construction is the *aggregate speed function* of a group: the
// speed the group exhibits as a single virtual processor when its members
// are loaded optimally. In the continuous relaxation this is exact and
// closed under the model:
//
//   For a group with members s_1..s_k, the optimal line of slope c loads
//   x_i(c) with common completion time t = 1/c, handling
//   N(c) = Σ x_i(c) elements. So the aggregate time for x elements is
//   t_G(x) = 1/c(x) with c(x) the unique slope where N(c) = x, and the
//   aggregate speed s_G(x) = x·c(x). Since N is strictly decreasing in c,
//   t_G is strictly increasing, i.e. s_G(x)/x = c(x) is strictly
//   decreasing — the aggregate satisfies the shape requirement, so groups
//   compose and the hierarchy can be arbitrarily deep.
//
// Consequence (tested): partitioning across exact aggregates and then
// within groups reproduces the flat optimal distribution up to integer
// rounding, while the search cost drops from one size-p problem to one
// size-#groups problem plus independent small ones.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "core/policy.hpp"

namespace fpm::core {

/// The aggregate speed function of a processor group (see file comment).
/// Holds a non-owning copy of the member list; members must outlive it.
/// Each speed()/intersect() evaluation solves the group's optimal line by
/// bisection — O(k·log) per call with k members.
class AggregateSpeed final : public SpeedFunction {
 public:
  explicit AggregateSpeed(SpeedList members);

  /// s_G(x) = x · c(x): the group's throughput when handling x elements
  /// optimally.
  double speed(double x) const override;
  double max_size() const override;

  /// For the aggregate the intersection has a direct form: the line of
  /// slope c loads the group with N(c) elements, so intersect(c) = N(c).
  double intersect(double slope) const override;

  std::size_t members() const noexcept { return members_.size(); }

 private:
  /// The slope of the group's optimal line when handling x elements.
  double slope_for(double x) const;

  SpeedList members_;
};

/// A two-level distribution: counts per group and per member within each
/// group.
struct HierarchicalResult {
  std::vector<std::int64_t> group_counts;            ///< per group, sums to n
  std::vector<Distribution> within;                  ///< per group
  PartitionStats stats;                              ///< top-level search

  /// Flattened member counts in group-major order.
  std::vector<std::int64_t> flatten() const;
};

/// Partitions n elements over groups of processors: top level across the
/// aggregates, second level within each group, both with the algorithm the
/// policy selects (default: combined). `groups[g]` lists the members of
/// group g (non-owning; must be non-empty). Requires at least one group.
/// Policies with per-processor state (the bounded algorithm's bounds) are
/// not meaningful across the two levels and are rejected.
HierarchicalResult partition_hierarchical(
    const std::vector<SpeedList>& groups, std::int64_t n,
    const PartitionPolicy& policy = {});

}  // namespace fpm::core
