#include "core/rect2d.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "core/combined.hpp"

namespace fpm::core {
namespace {

/// Splits `total` units over groups in proportion to non-negative weights,
/// summing exactly; a group with zero weight gets zero. Largest-remainder
/// rounding, deterministic tie-break by index.
std::vector<std::int64_t> proportional_split(
    std::int64_t total, const std::vector<double>& weights) {
  const double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::int64_t> out(weights.size(), 0);
  if (weight_sum <= 0.0 || total <= 0) return out;
  std::vector<std::pair<double, std::size_t>> remainders;
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact =
        static_cast<double>(total) * weights[i] / weight_sum;
    out[i] = static_cast<std::int64_t>(exact);
    assigned += out[i];
    remainders.emplace_back(exact - static_cast<double>(out[i]), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t left = total - assigned;
  for (std::size_t k = 0; left > 0 && k < remainders.size(); ++k) {
    const std::size_t i = remainders[k].second;
    if (weights[i] <= 0.0) continue;  // zero-weight groups stay empty
    ++out[i];
    --left;
  }
  // The floor error is below the number of positive groups, so the loop
  // above always settles; the fallback guards degenerate float inputs.
  while (left > 0) {
    const std::size_t i = static_cast<std::size_t>(
        std::max_element(weights.begin(), weights.end()) - weights.begin());
    ++out[i];
    --left;
  }
  return out;
}

/// A candidate layout for a fixed column count.
struct Layout {
  std::vector<std::vector<std::size_t>> column_members;
  std::vector<double> column_areas;
};

/// Greedy longest-processing-time assignment of processors to columns:
/// biggest areas first, each into the currently lightest column. Produces
/// balanced column areas, which keeps column widths even.
Layout assign_columns(const std::vector<std::int64_t>& areas,
                      std::size_t columns) {
  Layout layout;
  layout.column_members.resize(columns);
  layout.column_areas.assign(columns, 0.0);
  std::vector<std::size_t> order(areas.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return areas[a] > areas[b];
  });
  for (const std::size_t i : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(layout.column_areas.begin(),
                         layout.column_areas.end()) -
        layout.column_areas.begin());
    layout.column_members[lightest].push_back(i);
    layout.column_areas[lightest] += static_cast<double>(areas[i]);
  }
  return layout;
}

/// Realizes a layout as integer rectangles tiling the grid exactly.
std::vector<Rect> realize(const Layout& layout,
                          const std::vector<std::int64_t>& areas,
                          std::int64_t rows, std::int64_t cols) {
  std::vector<Rect> rects(areas.size());
  std::vector<std::int64_t> widths =
      proportional_split(cols, layout.column_areas);
  // Every column holding positive area needs at least one unit of width;
  // steal from the widest columns when rounding starved one.
  for (std::size_t j = 0; j < widths.size(); ++j) {
    if (layout.column_areas[j] > 0.0 && widths[j] == 0) {
      const std::size_t widest = static_cast<std::size_t>(
          std::max_element(widths.begin(), widths.end()) - widths.begin());
      if (widths[widest] > 1) {
        --widths[widest];
        ++widths[j];
      }
    }
  }
  std::int64_t col0 = 0;
  for (std::size_t j = 0; j < layout.column_members.size(); ++j) {
    const auto& members = layout.column_members[j];
    std::vector<double> member_areas;
    member_areas.reserve(members.size());
    for (const std::size_t i : members)
      member_areas.push_back(static_cast<double>(areas[i]));
    const std::vector<std::int64_t> heights =
        widths[j] > 0 ? proportional_split(rows, member_areas)
                      : std::vector<std::int64_t>(members.size(), 0);
    std::int64_t row0 = 0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      Rect& r = rects[members[k]];
      r.row = row0;
      r.col = col0;
      r.rows = heights[k];
      r.cols = widths[j];
      if (r.rows == 0 || r.cols == 0) r = Rect{0, 0, 0, 0};
      row0 += heights[k];
    }
    col0 += widths[j];
  }
  return rects;
}

std::int64_t layout_half_perimeter(const std::vector<Rect>& rects) {
  std::int64_t total = 0;
  for (const Rect& r : rects)
    if (r.area() > 0) total += r.half_perimeter();
  return total;
}

}  // namespace

std::int64_t RectPartition::total_half_perimeter() const {
  return layout_half_perimeter(rects);
}

RectPartition partition_rectangles(const SpeedList& speeds, std::int64_t rows,
                                   std::int64_t cols,
                                   const Rect2dOptions& opts) {
  if (speeds.empty())
    throw std::invalid_argument("partition_rectangles: no speeds");
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("partition_rectangles: grid must be >= 1x1");
  const std::size_t p = speeds.size();
  if (opts.force_columns > p)
    throw std::invalid_argument("partition_rectangles: more columns than "
                                "processors");

  // Optimal per-processor areas under the functional model.
  PartitionResult area_result = partition_combined(speeds, rows * cols);
  const std::vector<std::int64_t>& areas = area_result.distribution.counts;

  RectPartition best;
  best.grid_rows = rows;
  best.grid_cols = cols;
  best.stats = area_result.stats;
  std::int64_t best_score = std::numeric_limits<std::int64_t>::max();

  const std::size_t c_lo = opts.force_columns ? opts.force_columns : 1;
  const std::size_t c_hi = opts.force_columns ? opts.force_columns : p;
  for (std::size_t c = c_lo; c <= c_hi; ++c) {
    const Layout layout = assign_columns(areas, c);
    std::vector<Rect> rects = realize(layout, areas, rows, cols);
    const std::int64_t score = layout_half_perimeter(rects);
    if (score < best_score) {
      best_score = score;
      best.rects = std::move(rects);
      best.columns = c;
    }
  }
  return best;
}

bool is_exact_tiling(const RectPartition& partition) {
  std::int64_t covered = 0;
  for (const Rect& r : partition.rects) {
    if (r.rows < 0 || r.cols < 0) return false;
    if (r.area() == 0) continue;
    if (r.row < 0 || r.col < 0 || r.row + r.rows > partition.grid_rows ||
        r.col + r.cols > partition.grid_cols)
      return false;
    covered += r.area();
  }
  if (covered != partition.grid_rows * partition.grid_cols) return false;
  // Pairwise overlap check.
  for (std::size_t i = 0; i < partition.rects.size(); ++i) {
    const Rect& a = partition.rects[i];
    if (a.area() == 0) continue;
    for (std::size_t j = i + 1; j < partition.rects.size(); ++j) {
      const Rect& b = partition.rects[j];
      if (b.area() == 0) continue;
      const bool row_overlap =
          a.row < b.row + b.rows && b.row < a.row + a.rows;
      const bool col_overlap =
          a.col < b.col + b.cols && b.col < a.col + a.cols;
      if (row_overlap && col_overlap) return false;
    }
  }
  return true;
}

}  // namespace fpm::core
