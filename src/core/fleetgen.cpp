#include "core/fleetgen.hpp"

#include <cmath>
#include <utility>

#include "core/piecewise.hpp"

namespace fpm::core {
namespace {

/// SplitMix64 (Steele/Lea/Flood): tiny, full-period, and identical on every
/// platform — unlike std:: distributions, whose outputs may differ across
/// standard libraries, which would make "fleet(p, seed)" unreproducible.
struct SplitMix64 {
  std::uint64_t state;

  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1p-53;
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Log-uniform in [lo, hi): equal mass per decade.
  double log_uniform(double lo, double hi) noexcept {
    return lo * std::exp(uniform() * std::log(hi / lo));
  }
  /// Uniform integer in [lo, hi].
  std::size_t uniform_index(std::size_t lo, std::size_t hi) noexcept {
    return lo + static_cast<std::size_t>(next() % (hi - lo + 1));
  }
};

}  // namespace

SyntheticFleet make_synthetic_fleet(std::size_t p, std::uint64_t seed,
                                    const FleetMix& mix) {
  SyntheticFleet fleet;
  fleet.owned.reserve(p);
  // Mix seed bits so nearby seeds produce unrelated streams.
  SplitMix64 rng{seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL};

  const double weights[6] = {mix.constant,  mix.linear_decay, mix.power_decay,
                             mix.exp_decay, mix.piecewise,    mix.stepped};
  double total = 0.0;
  for (const double w : weights) total += w > 0.0 ? w : 0.0;

  for (std::size_t i = 0; i < p; ++i) {
    const double s0 = rng.log_uniform(50.0, 5000.0);
    const double cap = rng.log_uniform(1e6, 1e9);
    int family = 0;  // all-zero mix degrades to constant
    if (total > 0.0) {
      double draw = rng.uniform() * total;
      for (int f = 0; f < 6; ++f) {
        const double w = weights[f] > 0.0 ? weights[f] : 0.0;
        if (draw < w) {
          family = f;
          break;
        }
        draw -= w;
      }
    }
    switch (family) {
      case 0:
        fleet.owned.push_back(std::make_shared<ConstantSpeed>(s0, cap));
        break;
      case 1:
        fleet.owned.push_back(std::make_shared<LinearDecaySpeed>(
            s0, cap, rng.log_uniform(1e-4, 1e-2)));
        break;
      case 2:
        fleet.owned.push_back(std::make_shared<PowerDecaySpeed>(
            s0, cap * rng.uniform(0.01, 0.5), rng.uniform(0.6, 3.0), cap));
        break;
      case 3:
        fleet.owned.push_back(std::make_shared<ExpDecaySpeed>(
            s0, cap * rng.uniform(0.05, 0.5), cap));
        break;
      case 4: {
        // Strictly decreasing speeds over a geometric size grid: decreasing
        // s with increasing x keeps speed(x)/x strictly decreasing, so the
        // points always satisfy the piecewise shape requirement.
        const std::size_t npts = rng.uniform_index(8, 32);
        std::vector<SpeedPoint> pts;
        pts.reserve(npts);
        const double x_first = cap * 1e-4;
        const double step =
            std::pow(cap / x_first,
                     1.0 / static_cast<double>(npts - 1));
        double x = x_first;
        double s = s0;
        for (std::size_t j = 0; j < npts; ++j) {
          pts.push_back({x, s});
          x *= step;
          s *= rng.uniform(0.80, 0.98);
        }
        fleet.owned.push_back(
            std::make_shared<PiecewiseLinearSpeed>(std::move(pts)));
        break;
      }
      default: {
        // Two to three memory-hierarchy cliffs with decreasing plateaus.
        const std::size_t nsteps = rng.uniform_index(2, 3);
        std::vector<SteppedSpeed::Step> steps;
        steps.reserve(nsteps);
        double at = cap * rng.uniform(1e-4, 1e-3);
        double level = s0;
        for (std::size_t j = 0; j < nsteps; ++j) {
          level *= rng.uniform(0.1, 0.5);
          steps.push_back({at, level, at * rng.uniform(0.05, 0.3)});
          at *= rng.uniform(20.0, 200.0);
        }
        fleet.owned.push_back(
            std::make_shared<SteppedSpeed>(s0, std::move(steps), cap));
        break;
      }
    }
  }
  return fleet;
}

}  // namespace fpm::core
