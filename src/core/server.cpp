#include "core/server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "core/compiled.hpp"

namespace fpm::core {
namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xf]);
}

/// Per-shard cap on remembered slopes; overflow drops an arbitrary entry
/// (hints are an optimization, not state — losing one costs a cold solve).
constexpr std::size_t kHintShardCapacity = 256;

}  // namespace

// ---------------------------------------------------------------------------
// PartitionCache
// ---------------------------------------------------------------------------

PartitionCache::PartitionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity), shards_(std::max<std::size_t>(1, shards)) {
  // Ceiling division so the shard sum never undercuts the requested total;
  // a zero capacity keeps every shard empty (lookups all miss).
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shards_.size() - 1) / shards_.size();
}

std::string PartitionCache::make_key(const SpeedList& speeds, std::int64_t n,
                                     const PartitionPolicy& policy) {
  return make_key(CompiledSpeedList::fingerprint_of(speeds), n, policy);
}

std::string PartitionCache::make_key(std::uint64_t fingerprint, std::int64_t n,
                                     const PartitionPolicy& policy) {
  std::string key;
  key.reserve(64);
  append_hex64(key, fingerprint);
  key.push_back('|');
  key += std::to_string(n);
  key.push_back('|');
  key += format_policy(policy);
  // format_policy covers the algorithm id and options but not the capacity
  // bounds, which change the bounded algorithm's answer — append them.
  for (const std::int64_t b : policy.bounds) {
    key.push_back('|');
    key += std::to_string(b);
  }
  return key;
}

PartitionCache::Shard& PartitionCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool PartitionCache::lookup(const std::string& key, PartitionResult& out) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it == sh.index.end()) {
    ++sh.misses;
    return false;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // move to front (MRU)
  ++sh.hits;
  out = it->second->second;
  return true;
}

bool PartitionCache::insert(const std::string& key,
                            const PartitionResult& value) {
  if (per_shard_capacity_ == 0) return false;
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it != sh.index.end()) {
    // A concurrent miss on the same key already computed and stored the
    // (identical) result; refresh recency and keep the incumbent.
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return false;
  }
  sh.lru.emplace_front(key, value);
  sh.index.emplace(key, sh.lru.begin());
  if (sh.lru.size() > per_shard_capacity_) {
    sh.index.erase(sh.lru.back().first);
    sh.lru.pop_back();
    ++sh.evictions;
    return true;
  }
  return false;
}

void PartitionCache::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.lru.clear();
    sh.index.clear();
  }
}

CacheStats PartitionCache::stats() const {
  CacheStats s;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    s.hits += sh.hits;
    s.misses += sh.misses;
    s.evictions += sh.evictions;
    s.entries += sh.lru.size();
  }
  return s;
}

// ---------------------------------------------------------------------------
// PartitionServer
// ---------------------------------------------------------------------------

PartitionServer::PartitionServer(ServerOptions options)
    : threads_(options.threads != 0
                   ? options.threads
                   : std::max(1u, std::thread::hardware_concurrency())),
      cache_(options.cache_capacity, options.cache_shards),
      metrics_{
          obs::metrics().histogram(obs::names::kServerServeLatency),
          obs::metrics().gauge(obs::names::kServerQueueDepth),
          obs::metrics().counter(obs::names::kServerCacheHits),
          obs::metrics().counter(obs::names::kServerCacheMisses),
          obs::metrics().counter(obs::names::kServerCacheEvictions),
          obs::metrics().counter(obs::names::kServerCacheUncacheable)},
      warm_start_(options.warm_start) {
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PartitionServer::~PartitionServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PartitionServer::worker_loop() {
  for (;;) {
    std::packaged_task<PartitionResult()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    metrics_.queue_depth.add(-1);
    task();
  }
}

std::optional<PartitionHint> PartitionServer::lookup_hint(
    std::uint64_t fingerprint) {
  HintShard& sh = hint_shards_[fingerprint % hint_shards_.size()];
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(fingerprint);
  if (it == sh.map.end()) return std::nullopt;
  PartitionHint hint;
  hint.slope = it->second.slope;
  hint.n = it->second.n;
  hint.fingerprint = fingerprint;
  hint.baseline_iterations = it->second.baseline_iterations;
  return hint;
}

void PartitionServer::update_hint(std::uint64_t fingerprint, std::int64_t n,
                                  const PartitionResult& result) {
  if (n <= 0) return;
  if (!std::isfinite(result.stats.final_slope) ||
      result.stats.final_slope <= 0.0)
    return;
  // The bounded algorithm reports the slope of its last residual round — a
  // sub-problem over the unclamped processors, not the full list — so it
  // would seed future brackets in the wrong place.
  if (result.stats.algorithm == kAlgorithmBounded) return;
  HintShard& sh = hint_shards_[fingerprint % hint_shards_.size()];
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(fingerprint);
  if (it == sh.map.end()) {
    if (sh.map.size() >= kHintShardCapacity) sh.map.erase(sh.map.begin());
    sh.map.emplace(fingerprint, SlopeHint{result.stats.final_slope, n,
                                          result.stats.iterations});
    return;
  }
  it->second.slope = result.stats.final_slope;
  it->second.n = n;
  // A warm run's low iteration count is not a cold baseline; keep the last
  // cold figure so iterations_saved keeps measuring warm versus cold.
  if (result.stats.warmstart != WarmStart::Hit)
    it->second.baseline_iterations = result.stats.iterations;
}

PartitionResult PartitionServer::partition_with_hint(
    const SpeedList& speeds, std::int64_t n, const PartitionPolicy& policy,
    std::uint64_t fingerprint) {
  if (!warm_start_) return partition(speeds, n, policy);
  PartitionResult result;
  if (policy.hint) {
    // The caller brought their own hint; honour it untouched.
    result = partition(speeds, n, policy);
  } else {
    PartitionPolicy hinted = policy;
    hinted.hint = lookup_hint(fingerprint);
    result = partition(speeds, n, hinted);
  }
  update_hint(fingerprint, n, result);
  return result;
}

PartitionResult PartitionServer::serve(const SpeedList& speeds, std::int64_t n,
                                       const PartitionPolicy& policy) {
  obs::TimerSpan span(metrics_.serve_latency);
  if (policy.observer) {
    // The observer is a side effect the caller expects on every call; a
    // cached answer would silently swallow the step trace, and a hint would
    // change the trace's bracket shape — run cold, leave hints alone.
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    metrics_.uncacheable.add(1);
    return partition(speeds, n, policy);
  }
  if (cache_.capacity() == 0) {
    // Caching disabled: still count the request (as uncacheable) so the
    // hit-rate denominator hits + misses + uncacheable matches the request
    // count, and still compile once so the engine skips its own pass. The
    // slope hints are independent of result caching and stay live.
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    metrics_.uncacheable.add(1);
    const CompiledSpeedList compiled = CompiledSpeedList::compile(speeds);
    PrecompiledGuard guard(speeds, compiled);
    return partition_with_hint(speeds, n, policy, compiled.fingerprint());
  }
  // Key via the allocation-free fingerprint: a hit must not pay for a
  // compilation it will never use.
  const std::uint64_t fingerprint = CompiledSpeedList::fingerprint_of(speeds);
  const std::string key = PartitionCache::make_key(fingerprint, n, policy);
  PartitionResult result;
  if (cache_.lookup(key, result)) {
    metrics_.hits.add(1);
    return result;
  }
  metrics_.misses.add(1);
  // Miss: compile once here and hand the model to the engine through the
  // thread-local guard, so SearchState does not compile a second time. A
  // near-miss (fingerprint seen before under a different n) warm-starts
  // from the remembered slope.
  const CompiledSpeedList compiled = CompiledSpeedList::compile(speeds);
  {
    PrecompiledGuard guard(speeds, compiled);
    result = partition_with_hint(speeds, n, policy, fingerprint);
  }
  if (cache_.insert(key, result)) metrics_.evictions.add(1);
  return result;
}

std::future<PartitionResult> PartitionServer::submit(BatchRequest request) {
  std::packaged_task<PartitionResult()> task([this, req = std::move(request)] {
    return serve(req.speeds, req.n, req.policy);
  });
  std::future<PartitionResult> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  metrics_.queue_depth.add(1);
  queue_cv_.notify_one();
  return future;
}

std::vector<PartitionResult> PartitionServer::run_batch(
    std::vector<BatchRequest> requests) {
  std::vector<std::future<PartitionResult>> futures;
  futures.reserve(requests.size());
  for (BatchRequest& req : requests) futures.push_back(submit(std::move(req)));
  std::vector<PartitionResult> results;
  results.reserve(futures.size());
  // Drain every future before letting any exception unwind: the requests
  // borrow their SpeedFunction objects, and rethrowing while later tasks
  // are still running would free models a worker is reading. Waiting on
  // every future first guarantees the pool is done with the whole batch.
  std::exception_ptr first_error;
  for (std::future<PartitionResult>& f : futures) {
    try {
      results.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

CacheStats PartitionServer::cache_stats() const {
  CacheStats s = cache_.stats();
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  return s;
}

std::vector<PartitionResult> partition_batch(std::vector<BatchRequest> requests,
                                             const ServerOptions& options) {
  PartitionServer server(options);
  return server.run_batch(std::move(requests));
}

}  // namespace fpm::core
