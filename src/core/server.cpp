#include "core/server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "core/compiled.hpp"

namespace fpm::core {
namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xf]);
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// PartitionCache
// ---------------------------------------------------------------------------

PartitionCache::PartitionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity), shards_(std::max<std::size_t>(1, shards)) {
  // Ceiling division so the shard sum never undercuts the requested total;
  // a zero capacity keeps every shard empty (lookups all miss).
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shards_.size() - 1) / shards_.size();
}

std::string PartitionCache::make_key(const SpeedList& speeds, std::int64_t n,
                                     const PartitionPolicy& policy) {
  return make_key(CompiledSpeedList::fingerprint_of(speeds), n, policy);
}

std::string PartitionCache::make_key(std::uint64_t fingerprint, std::int64_t n,
                                     const PartitionPolicy& policy) {
  std::string key;
  key.reserve(64);
  append_hex64(key, fingerprint);
  key.push_back('|');
  key += std::to_string(n);
  key.push_back('|');
  key += format_policy(policy);
  // format_policy covers the algorithm id and options but not the capacity
  // bounds, which change the bounded algorithm's answer — append them.
  for (const std::int64_t b : policy.bounds) {
    key.push_back('|');
    key += std::to_string(b);
  }
  return key;
}

PartitionCache::Shard& PartitionCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool PartitionCache::find(const std::string& key, PartitionResult& out,
                          bool count_miss) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it == sh.index.end()) {
    if (count_miss) ++sh.misses;
    return false;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // move to front (MRU)
  ++sh.hits;
  out = it->second->second;
  return true;
}

bool PartitionCache::lookup(const std::string& key, PartitionResult& out) {
  return find(key, out, /*count_miss=*/true);
}

bool PartitionCache::peek(const std::string& key, PartitionResult& out) {
  return find(key, out, /*count_miss=*/false);
}

bool PartitionCache::insert(const std::string& key,
                            const PartitionResult& value) {
  if (per_shard_capacity_ == 0) return false;
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it != sh.index.end()) {
    // A concurrent miss on the same key already computed and stored the
    // (identical) result; refresh recency and keep the incumbent.
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return false;
  }
  sh.lru.emplace_front(key, value);
  sh.index.emplace(key, sh.lru.begin());
  if (sh.lru.size() > per_shard_capacity_) {
    sh.index.erase(sh.lru.back().first);
    sh.lru.pop_back();
    ++sh.evictions;
    return true;
  }
  return false;
}

void PartitionCache::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.lru.clear();
    sh.index.clear();
  }
}

CacheStats PartitionCache::stats() const {
  CacheStats s;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    s.hits += sh.hits;
    s.misses += sh.misses;
    s.evictions += sh.evictions;
    s.entries += sh.lru.size();
  }
  return s;
}

// ---------------------------------------------------------------------------
// PartitionServer: construction / teardown
// ---------------------------------------------------------------------------

PartitionServer::PartitionServer(ServerOptions options)
    : threads_(options.threads != 0
                   ? options.threads
                   : std::max(1u, std::thread::hardware_concurrency())),
      cache_(options.cache_capacity, options.cache_shards),
      metrics_{
          obs::metrics().histogram(obs::names::kServerServeLatency),
          obs::metrics().gauge(obs::names::kServerQueueDepth),
          obs::metrics().counter(obs::names::kServerCacheHits),
          obs::metrics().counter(obs::names::kServerCacheMisses),
          obs::metrics().counter(obs::names::kServerCacheEvictions),
          obs::metrics().counter(obs::names::kServerCacheUncacheable),
          obs::metrics().counter(obs::names::kServerHintsEvicted),
          obs::metrics().counter(obs::names::kServerSloOffered),
          obs::metrics().counter(obs::names::kServerSloAdmitted),
          obs::metrics().counter(obs::names::kServerSloDegraded),
          obs::metrics().counter(obs::names::kServerSloShedAdmission),
          obs::metrics().counter(obs::names::kServerSloShedQueueFull),
          obs::metrics().counter(obs::names::kServerSloShedExpired),
          obs::metrics().counter(obs::names::kServerSloShedShutdown),
          obs::metrics().counter(obs::names::kServerSloDeadlineMisses),
          obs::metrics().gauge(obs::names::kServerSloQueueDelayMicros)},
      warm_start_(options.warm_start),
      hint_shard_capacity_(std::max<std::size_t>(
          1, (std::max<std::size_t>(1, options.hint_capacity) +
              hint_shards_.size() - 1) /
                 hint_shards_.size())),
      max_queue_depth_(options.max_queue_depth),
      admission_slack_(options.admission_slack > 0.0 ? options.admission_slack
                                                     : 1.0),
      estimator_(options.ewma_alpha) {
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PartitionServer::~PartitionServer() {
  std::vector<QueuedJob> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    orphans = steal_queue_locked();
  }
  queue_cv_.notify_all();
  // Fulfil every stolen promise before joining: a destructor must never
  // leave a broken promise behind. No degradation here — teardown should
  // not spend solves; callers who want best-effort answers call drain().
  for (QueuedJob& job : orphans) {
    ServeResult outcome;
    outcome.status = ServeStatus::Shed;
    outcome.shed_reason = ShedReason::Shutdown;
    account(outcome, job.submitted, job.deadline, job.request.slo.priority);
    job.promise.set_value(std::move(outcome));
  }
  for (std::thread& t : workers_) t.join();
}

std::vector<PartitionServer::QueuedJob> PartitionServer::steal_queue_locked() {
  std::vector<QueuedJob> stolen;
  stolen.reserve(queue_.size());
  for (auto& [key, job] : queue_) stolen.push_back(std::move(job));
  if (!stolen.empty())
    metrics_.queue_depth.add(-static_cast<std::int64_t>(stolen.size()));
  queue_.clear();
  queued_per_class_.fill(0);
  return stolen;
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

void PartitionServer::worker_loop() {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      const auto it = queue_.begin();
      job = std::move(it->second);
      const auto cls = static_cast<std::size_t>(job.request.slo.priority);
      queue_.erase(it);
      --queued_per_class_[cls];
      ++inflight_;
    }
    metrics_.queue_depth.add(-1);
    execute(std::move(job));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --inflight_;
      if (inflight_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void PartitionServer::execute(QueuedJob job) {
  const Priority priority = job.request.slo.priority;
  const Clock::time_point start = Clock::now();
  if (start >= job.deadline) {
    // The deadline passed while the request waited in the queue; do not
    // spend a solve that is already late.
    degrade_or_shed(std::move(job), ShedReason::Expired);
    return;
  }
  ServeResult outcome;
  try {
    outcome.result = serve(job.request.speeds, job.request.n,
                           job.request.policy);
  } catch (...) {
    // Engine rejections (unknown algorithm id, invalid policy) are caller
    // errors, not load: the request was admitted and the error surfaces
    // through the future exactly as the synchronous API would throw it.
    slo_admitted_.fetch_add(1, std::memory_order_relaxed);
    metrics_.slo_admitted.add(1);
    job.promise.set_exception(std::current_exception());
    return;
  }
  estimator_.record(priority, seconds_between(start, Clock::now()));
  outcome.status = ServeStatus::Ok;
  account(outcome, job.submitted, job.deadline, priority);
  job.promise.set_value(std::move(outcome));
}

// ---------------------------------------------------------------------------
// Degradation and shedding
// ---------------------------------------------------------------------------

std::optional<ServeResult> PartitionServer::try_degrade(
    const BatchRequest& request) {
  if (request.speeds.empty() || request.n < 1) return std::nullopt;
  // Observers expect a real search (their callbacks must fire per step);
  // bounded policies carry capacity constraints a rescaled distribution
  // would silently violate. Both fall through to a plain shed.
  if (request.policy.observer) return std::nullopt;
  if (request.policy.algorithm == kAlgorithmBounded) return std::nullopt;
  const std::uint64_t fingerprint =
      CompiledSpeedList::fingerprint_of(request.speeds);
  const std::optional<SlopeHint> prev =
      lookup_degradation(fingerprint, request.speeds.size());
  if (!prev) return std::nullopt;
  std::optional<DegradedAnswer> answer =
      degraded_answer(request.speeds, request.n, prev->counts, prev->n);
  if (!answer) return std::nullopt;
  ServeResult outcome;
  outcome.status = ServeStatus::Degraded;
  outcome.result.distribution = std::move(answer->distribution);
  outcome.result.stats.algorithm = kAlgorithmDegraded;
  outcome.error_bound = answer->error_bound;
  return outcome;
}

ServeResult PartitionServer::resolve_shed(const BatchRequest& request,
                                          ShedReason reason) {
  if (request.slo.allow_degraded) {
    if (std::optional<ServeResult> degraded = try_degrade(request)) {
      degraded->shed_reason = reason;  // what the approximation averted
      return *std::move(degraded);
    }
  }
  ServeResult outcome;
  outcome.status = ServeStatus::Shed;
  outcome.shed_reason = reason;
  return outcome;
}

void PartitionServer::degrade_or_shed(QueuedJob&& job, ShedReason reason) {
  ServeResult outcome = resolve_shed(job.request, reason);
  account(outcome, job.submitted, job.deadline, job.request.slo.priority);
  job.promise.set_value(std::move(outcome));
}

void PartitionServer::account(ServeResult& outcome,
                              Clock::time_point submitted,
                              Clock::time_point deadline, Priority priority) {
  (void)priority;
  const Clock::time_point now = Clock::now();
  outcome.latency_s = seconds_between(submitted, now);
  const bool had_deadline = deadline != Clock::time_point::max();
  outcome.deadline_met = !had_deadline || now <= deadline;
  switch (outcome.status) {
    case ServeStatus::Ok:
      slo_admitted_.fetch_add(1, std::memory_order_relaxed);
      metrics_.slo_admitted.add(1);
      break;
    case ServeStatus::Degraded:
      slo_degraded_.fetch_add(1, std::memory_order_relaxed);
      metrics_.slo_degraded.add(1);
      break;
    case ServeStatus::Shed:
      switch (outcome.shed_reason) {
        case ShedReason::Admission:
          slo_shed_admission_.fetch_add(1, std::memory_order_relaxed);
          metrics_.slo_shed_admission.add(1);
          break;
        case ShedReason::QueueFull:
          slo_shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
          metrics_.slo_shed_queue_full.add(1);
          break;
        case ShedReason::Expired:
          slo_shed_expired_.fetch_add(1, std::memory_order_relaxed);
          metrics_.slo_shed_expired.add(1);
          break;
        case ShedReason::Shutdown:
        case ShedReason::None:  // unreachable; bucket with shutdown
          slo_shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
          metrics_.slo_shed_shutdown.add(1);
          break;
      }
      break;
  }
  if (outcome.answered() && !outcome.deadline_met) {
    slo_deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    metrics_.slo_deadline_misses.add(1);
  }
}

// ---------------------------------------------------------------------------
// Hint store (warm starts + degradation source)
// ---------------------------------------------------------------------------

std::optional<PartitionHint> PartitionServer::lookup_hint(
    std::uint64_t fingerprint) {
  HintShard& sh = hint_shards_[fingerprint % hint_shards_.size()];
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(fingerprint);
  if (it == sh.index.end()) return std::nullopt;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  PartitionHint hint;
  hint.slope = it->second->second.slope;
  hint.n = it->second->second.n;
  hint.fingerprint = fingerprint;
  hint.baseline_iterations = it->second->second.baseline_iterations;
  return hint;
}

std::optional<PartitionServer::SlopeHint> PartitionServer::lookup_degradation(
    std::uint64_t fingerprint, std::size_t p) {
  HintShard& sh = hint_shards_[fingerprint % hint_shards_.size()];
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(fingerprint);
  if (it == sh.index.end()) return std::nullopt;
  const SlopeHint& hint = it->second->second;
  if (hint.counts.size() != p) return std::nullopt;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  return hint;
}

void PartitionServer::update_hint(std::uint64_t fingerprint, std::int64_t n,
                                  const PartitionResult& result) {
  if (n <= 0) return;
  if (!std::isfinite(result.stats.final_slope) ||
      result.stats.final_slope <= 0.0)
    return;
  // The bounded algorithm reports the slope of its last residual round — a
  // sub-problem over the unclamped processors, not the full list — and its
  // clamped distribution is the wrong degradation source for unbounded
  // requests of the same models.
  if (result.stats.algorithm == kAlgorithmBounded) return;
  HintShard& sh = hint_shards_[fingerprint % hint_shards_.size()];
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(fingerprint);
    if (it == sh.index.end()) {
      sh.lru.emplace_front(
          fingerprint,
          SlopeHint{result.stats.final_slope, n, result.stats.iterations,
                    result.distribution.counts});
      sh.index.emplace(fingerprint, sh.lru.begin());
      while (sh.lru.size() > hint_shard_capacity_) {
        sh.index.erase(sh.lru.back().first);
        sh.lru.pop_back();
        ++evicted;
      }
    } else {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      SlopeHint& hint = it->second->second;
      hint.slope = result.stats.final_slope;
      hint.n = n;
      hint.counts = result.distribution.counts;
      // A warm run's low iteration count is not a cold baseline; keep the
      // last cold figure so iterations_saved keeps measuring warm vs cold.
      if (result.stats.warmstart != WarmStart::Hit)
        hint.baseline_iterations = result.stats.iterations;
    }
  }
  if (evicted > 0) {
    hint_evictions_.fetch_add(static_cast<std::int64_t>(evicted),
                              std::memory_order_relaxed);
    metrics_.hint_evictions.add(static_cast<std::int64_t>(evicted));
  }
}

PartitionResult PartitionServer::partition_with_hint(
    const SpeedList& speeds, std::int64_t n, const PartitionPolicy& policy,
    std::uint64_t fingerprint) {
  if (!warm_start_) return partition(speeds, n, policy);
  PartitionResult result;
  if (policy.hint) {
    // The caller brought their own hint; honour it untouched.
    result = partition(speeds, n, policy);
  } else {
    PartitionPolicy hinted = policy;
    hinted.hint = lookup_hint(fingerprint);
    result = partition(speeds, n, hinted);
  }
  update_hint(fingerprint, n, result);
  return result;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

PartitionResult PartitionServer::serve(const SpeedList& speeds, std::int64_t n,
                                       const PartitionPolicy& policy) {
  obs::TimerSpan span(metrics_.serve_latency);
  if (policy.observer) {
    // The observer is a side effect the caller expects on every call; a
    // cached answer would silently swallow the step trace, and a hint would
    // change the trace's bracket shape — run cold, leave hints alone.
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    metrics_.uncacheable.add(1);
    return partition(speeds, n, policy);
  }
  if (cache_.capacity() == 0) {
    // Caching disabled: still count the request (as uncacheable) so the
    // hit-rate denominator hits + misses + uncacheable matches the request
    // count, and still compile once so the engine skips its own pass. The
    // slope hints are independent of result caching and stay live.
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    metrics_.uncacheable.add(1);
    const CompiledSpeedList compiled = CompiledSpeedList::compile(speeds);
    PrecompiledGuard guard(speeds, compiled);
    return partition_with_hint(speeds, n, policy, compiled.fingerprint());
  }
  // Key via the allocation-free fingerprint: a hit must not pay for a
  // compilation it will never use.
  const std::uint64_t fingerprint = CompiledSpeedList::fingerprint_of(speeds);
  const std::string key = PartitionCache::make_key(fingerprint, n, policy);
  PartitionResult result;
  if (cache_.lookup(key, result)) {
    metrics_.hits.add(1);
    return result;
  }
  metrics_.misses.add(1);
  // Miss: compile once here and hand the model to the engine through the
  // thread-local guard, so SearchState does not compile a second time. A
  // near-miss (fingerprint seen before under a different n) warm-starts
  // from the remembered slope.
  const CompiledSpeedList compiled = CompiledSpeedList::compile(speeds);
  {
    PrecompiledGuard guard(speeds, compiled);
    result = partition_with_hint(speeds, n, policy, fingerprint);
  }
  if (cache_.insert(key, result)) metrics_.evictions.add(1);
  return result;
}

ServeResult PartitionServer::serve_slo(const SpeedList& speeds,
                                       std::int64_t n,
                                       const PartitionPolicy& policy,
                                       Slo slo) {
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      slo.has_deadline()
          ? submitted + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(slo.deadline_s))
          : Clock::time_point::max();
  slo_offered_.fetch_add(1, std::memory_order_relaxed);
  metrics_.slo_offered.add(1);

  BatchRequest request{speeds, n, policy, slo};
  if (slo.has_deadline()) {
    // A cache hit beats any deadline — probe before consulting the
    // estimate (peek: the miss will be re-counted by serve() if admitted).
    if (cache_.capacity() != 0 && !policy.observer) {
      const std::string key = PartitionCache::make_key(speeds, n, policy);
      PartitionResult cached;
      if (cache_.peek(key, cached)) {
        metrics_.hits.add(1);
        ServeResult outcome;
        outcome.status = ServeStatus::Ok;
        outcome.result = std::move(cached);
        account(outcome, submitted, deadline, slo.priority);
        return outcome;
      }
    }
    const double predicted =
        estimator_.service_estimate(slo.priority) * admission_slack_;
    if (predicted > slo.deadline_s) {
      ServeResult outcome = resolve_shed(request, ShedReason::Admission);
      account(outcome, submitted, deadline, slo.priority);
      return outcome;
    }
  }
  const Clock::time_point start = Clock::now();
  ServeResult outcome;
  try {
    outcome.result = serve(speeds, n, policy);
  } catch (...) {
    // Count the admitted request before the engine error propagates, so
    // offered == admitted + degraded + shed survives caller errors.
    slo_admitted_.fetch_add(1, std::memory_order_relaxed);
    metrics_.slo_admitted.add(1);
    throw;
  }
  estimator_.record(slo.priority, seconds_between(start, Clock::now()));
  outcome.status = ServeStatus::Ok;
  account(outcome, submitted, deadline, slo.priority);
  return outcome;
}

std::future<ServeResult> PartitionServer::submit(BatchRequest request) {
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      request.slo.has_deadline()
          ? submitted +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(request.slo.deadline_s))
          : Clock::time_point::max();
  slo_offered_.fetch_add(1, std::memory_order_relaxed);
  metrics_.slo_offered.add(1);

  QueuedJob job;
  job.request = std::move(request);
  job.submitted = submitted;
  job.deadline = deadline;
  std::future<ServeResult> future = job.promise.get_future();
  const Priority priority = job.request.slo.priority;

  // Fast path: a cached answer is microseconds — serve it inline no matter
  // the queue state. peek() so the miss is not double-counted (the worker's
  // serve() will count it).
  if (cache_.capacity() != 0 && !job.request.policy.observer) {
    const std::string key = PartitionCache::make_key(
        job.request.speeds, job.request.n, job.request.policy);
    PartitionResult cached;
    if (cache_.peek(key, cached)) {
      metrics_.hits.add(1);
      ServeResult outcome;
      outcome.status = ServeStatus::Ok;
      outcome.result = std::move(cached);
      account(outcome, submitted, deadline, priority);
      job.promise.set_value(std::move(outcome));
      return future;
    }
  }

  ShedReason reject = ShedReason::None;  // None = enqueued
  std::optional<QueuedJob> victim;
  double wait_estimate = 0.0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      reject = ShedReason::Shutdown;
    } else {
      // Jobs this one must wait behind: everything at its class or above
      // (pessimistic within the class — it joins at the back of it).
      std::size_t ahead = 0;
      for (std::size_t cls = static_cast<std::size_t>(priority);
           cls < kPriorityClasses; ++cls)
        ahead += queued_per_class_[cls];
      wait_estimate = estimator_.queue_delay(priority, ahead, threads_);
      const double predicted =
          (wait_estimate + estimator_.service_estimate(priority)) *
          admission_slack_;
      if (job.request.slo.has_deadline() &&
          predicted > job.request.slo.deadline_s) {
        reject = ShedReason::Admission;
      } else {
        const JobKey key{-static_cast<int>(priority), deadline, next_seq_++};
        if (max_queue_depth_ != 0 && queue_.size() >= max_queue_depth_) {
          const auto worst = std::prev(queue_.end());
          if (key < worst->first) {
            // The incoming request outranks the queue's worst; displace it.
            auto node = queue_.extract(worst);
            victim = std::move(node.mapped());
            --queued_per_class_[static_cast<std::size_t>(
                victim->request.slo.priority)];
            queue_.emplace(key, std::move(job));
            ++queued_per_class_[static_cast<std::size_t>(priority)];
          } else {
            reject = ShedReason::QueueFull;  // incoming is the worst
          }
        } else {
          queue_.emplace(key, std::move(job));
          ++queued_per_class_[static_cast<std::size_t>(priority)];
        }
      }
    }
  }
  metrics_.slo_queue_delay_us.set(
      static_cast<std::int64_t>(wait_estimate * 1e6));

  if (reject != ShedReason::None) {
    degrade_or_shed(std::move(job), reject);
  } else if (victim) {
    // Net queue depth unchanged (one in, one out); the displaced job is
    // degraded or shed outside the lock.
    queue_cv_.notify_one();
    degrade_or_shed(std::move(*victim), ShedReason::QueueFull);
  } else {
    metrics_.queue_depth.add(1);
    queue_cv_.notify_one();
  }
  return future;
}

std::vector<ServeResult> PartitionServer::run_batch(
    std::vector<BatchRequest> requests) {
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(requests.size());
  for (BatchRequest& req : requests) futures.push_back(submit(std::move(req)));
  std::vector<ServeResult> results;
  results.reserve(futures.size());
  // Drain every future before letting any exception unwind: the requests
  // borrow their SpeedFunction objects, and rethrowing while later tasks
  // are still running would free models a worker is reading. Waiting on
  // every future first guarantees the pool is done with the whole batch.
  // Result i answers request i; shed/degraded entries are marked in place.
  std::exception_ptr first_error;
  for (std::future<ServeResult>& f : futures) {
    try {
      results.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      results.emplace_back();  // placeholder keeps the 1:1 index mapping
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

bool PartitionServer::drain(std::chrono::nanoseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (idle_cv_.wait_until(lock, deadline, [this] {
          return queue_.empty() && inflight_ == 0;
        }))
      return true;
  }
  // Timed out: shed (or degrade) what is still queued, then wait for the
  // in-flight solves — workers never abandon a running request.
  std::vector<QueuedJob> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftovers = steal_queue_locked();
  }
  for (QueuedJob& job : leftovers)
    degrade_or_shed(std::move(job), ShedReason::Shutdown);
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && inflight_ == 0; });
  }
  return leftovers.empty();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

CacheStats PartitionServer::cache_stats() const {
  CacheStats s = cache_.stats();
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  for (const HintShard& sh : hint_shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    s.hint_entries += sh.lru.size();
  }
  s.hint_evictions = hint_evictions_.load(std::memory_order_relaxed);
  return s;
}

SloStats PartitionServer::slo_stats() const {
  SloStats s;
  s.offered = slo_offered_.load(std::memory_order_relaxed);
  s.admitted = slo_admitted_.load(std::memory_order_relaxed);
  s.degraded = slo_degraded_.load(std::memory_order_relaxed);
  s.shed_admission = slo_shed_admission_.load(std::memory_order_relaxed);
  s.shed_queue_full = slo_shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_expired = slo_shed_expired_.load(std::memory_order_relaxed);
  s.shed_shutdown = slo_shed_shutdown_.load(std::memory_order_relaxed);
  s.shed = s.shed_admission + s.shed_queue_full + s.shed_expired +
           s.shed_shutdown;
  s.deadline_misses = slo_deadline_misses_.load(std::memory_order_relaxed);
  s.queue_delay_estimate_s = predicted_delay(Priority::Normal);
  return s;
}

double PartitionServer::predicted_delay(Priority priority) const {
  std::size_t ahead = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (std::size_t cls = static_cast<std::size_t>(priority);
         cls < kPriorityClasses; ++cls)
      ahead += queued_per_class_[cls];
  }
  return estimator_.queue_delay(priority, ahead, threads_) +
         estimator_.service_estimate(priority);
}

std::vector<ServeResult> partition_batch(std::vector<BatchRequest> requests,
                                         const ServerOptions& options) {
  PartitionServer server(options);
  return server.run_batch(std::move(requests));
}

}  // namespace fpm::core
