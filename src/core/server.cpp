#include "core/server.hpp"

#include <algorithm>
#include <utility>

#include "core/compiled.hpp"

namespace fpm::core {
namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xf]);
}

}  // namespace

// ---------------------------------------------------------------------------
// PartitionCache
// ---------------------------------------------------------------------------

PartitionCache::PartitionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity), shards_(std::max<std::size_t>(1, shards)) {
  // Ceiling division so the shard sum never undercuts the requested total;
  // a zero capacity keeps every shard empty (lookups all miss).
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shards_.size() - 1) / shards_.size();
}

std::string PartitionCache::make_key(const SpeedList& speeds, std::int64_t n,
                                     const PartitionPolicy& policy) {
  std::string key;
  key.reserve(64);
  append_hex64(key, CompiledSpeedList::compile(speeds).fingerprint());
  key.push_back('|');
  key += std::to_string(n);
  key.push_back('|');
  key += format_policy(policy);
  // format_policy covers the algorithm id and options but not the capacity
  // bounds, which change the bounded algorithm's answer — append them.
  for (const std::int64_t b : policy.bounds) {
    key.push_back('|');
    key += std::to_string(b);
  }
  return key;
}

PartitionCache::Shard& PartitionCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool PartitionCache::lookup(const std::string& key, PartitionResult& out) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it == sh.index.end()) {
    ++sh.misses;
    return false;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // move to front (MRU)
  ++sh.hits;
  out = it->second->second;
  return true;
}

void PartitionCache::insert(const std::string& key,
                            const PartitionResult& value) {
  if (per_shard_capacity_ == 0) return;
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it != sh.index.end()) {
    // A concurrent miss on the same key already computed and stored the
    // (identical) result; refresh recency and keep the incumbent.
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return;
  }
  sh.lru.emplace_front(key, value);
  sh.index.emplace(key, sh.lru.begin());
  if (sh.lru.size() > per_shard_capacity_) {
    sh.index.erase(sh.lru.back().first);
    sh.lru.pop_back();
    ++sh.evictions;
  }
}

void PartitionCache::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.lru.clear();
    sh.index.clear();
  }
}

CacheStats PartitionCache::stats() const {
  CacheStats s;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    s.hits += sh.hits;
    s.misses += sh.misses;
    s.evictions += sh.evictions;
    s.entries += sh.lru.size();
  }
  return s;
}

// ---------------------------------------------------------------------------
// PartitionServer
// ---------------------------------------------------------------------------

PartitionServer::PartitionServer(ServerOptions options)
    : threads_(options.threads != 0
                   ? options.threads
                   : std::max(1u, std::thread::hardware_concurrency())),
      cache_(options.cache_capacity, options.cache_shards) {
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PartitionServer::~PartitionServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PartitionServer::worker_loop() {
  for (;;) {
    std::packaged_task<PartitionResult()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

PartitionResult PartitionServer::serve(const SpeedList& speeds, std::int64_t n,
                                       const PartitionPolicy& policy) {
  if (policy.observer) {
    // The observer is a side effect the caller expects on every call; a
    // cached answer would silently swallow the step trace.
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    return partition(speeds, n, policy);
  }
  if (cache_.capacity() == 0) return partition(speeds, n, policy);
  const std::string key = PartitionCache::make_key(speeds, n, policy);
  PartitionResult result;
  if (cache_.lookup(key, result)) return result;
  result = partition(speeds, n, policy);
  cache_.insert(key, result);
  return result;
}

std::future<PartitionResult> PartitionServer::submit(BatchRequest request) {
  std::packaged_task<PartitionResult()> task([this, req = std::move(request)] {
    return serve(req.speeds, req.n, req.policy);
  });
  std::future<PartitionResult> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

std::vector<PartitionResult> PartitionServer::run_batch(
    std::vector<BatchRequest> requests) {
  std::vector<std::future<PartitionResult>> futures;
  futures.reserve(requests.size());
  for (BatchRequest& req : requests) futures.push_back(submit(std::move(req)));
  std::vector<PartitionResult> results;
  results.reserve(futures.size());
  for (std::future<PartitionResult>& f : futures) results.push_back(f.get());
  return results;
}

CacheStats PartitionServer::cache_stats() const {
  CacheStats s = cache_.stats();
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  return s;
}

std::vector<PartitionResult> partition_batch(std::vector<BatchRequest> requests,
                                             const ServerOptions& options) {
  PartitionServer server(options);
  return server.run_batch(std::move(requests));
}

}  // namespace fpm::core
