// The basic (simplest) partitioning algorithm (paper §2, Figures 7-8):
// maintain two lines through the origin bracketing the optimal one and
// bisect the angular region between them. Each step costs O(p) intersection
// solves; when the optimal slope decays polynomially in n the algorithm
// needs O(log n) steps (total O(p·log n)), but an exponentially decaying
// optimal slope degrades it to O(n) steps — the motivation for the modified
// algorithm.
#pragma once

#include <cstdint>
#include <optional>

#include "core/observer.hpp"
#include "core/partition.hpp"

namespace fpm::core {

struct BasicBisectionOptions {
  /// Bisect true angles (atan of the slopes) as in the paper's description,
  /// or the tangents directly (the paper's suggested practical shortcut).
  bool bisect_angles = true;
  /// Hard iteration cap; on hitting it the current bracket is fine-tuned
  /// as-is (the result is still a valid distribution, possibly sub-optimal).
  int max_iterations = 1 << 20;
  /// Optional per-step trace callback (see core/observer.hpp). Empty
  /// disables instrumentation.
  SearchObserver observer{};
  /// Optional warm-start hint from a previous solve of a nearby problem
  /// (see PartitionHint); never changes the distribution, only the cost.
  std::optional<PartitionHint> hint{};
};

/// Partitions n elements over speeds.size() processors with the basic
/// angle-bisection algorithm followed by fine-tuning.
/// Requires n >= 0 and a non-empty speed list.
PartitionResult partition_basic(const SpeedList& speeds, std::int64_t n,
                                const BasicBisectionOptions& opts = {});

/// True when no integer lies strictly inside any processor's size bracket —
/// the paper's stopping criterion. `small`/`large` are the per-processor
/// intersections with the steep and shallow bracket lines.
bool bracket_converged(std::span<const double> small,
                       std::span<const double> large);

}  // namespace fpm::core
