#include "core/piecewise.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/detail/speed_kernels.hpp"

namespace fpm::core {
namespace {

void validate_points(const std::vector<SpeedPoint>& pts) {
  if (pts.empty())
    throw std::invalid_argument("PiecewiseLinearSpeed: no points");
  double prev_x = -1.0;
  bool any_positive = false;
  for (const SpeedPoint& p : pts) {
    if (!(p.size > prev_x))
      throw std::invalid_argument(
          "PiecewiseLinearSpeed: sizes must be strictly increasing");
    if (!(p.speed >= 0.0) || !std::isfinite(p.speed))
      throw std::invalid_argument(
          "PiecewiseLinearSpeed: speeds must be finite and >= 0");
    any_positive |= p.speed > 0.0;
    prev_x = p.size;
  }
  if (!(pts.front().size > 0.0))
    throw std::invalid_argument(
        "PiecewiseLinearSpeed: first size must be > 0");
  if (!any_positive)
    throw std::invalid_argument(
        "PiecewiseLinearSpeed: at least one speed must be positive");
}

/// Checks the strictly-decreasing-ratio requirement at the breakpoints; for
/// a piece-wise-linear curve with a flat head this is sufficient: on a
/// linear segment s(x) = alpha + beta*x the ratio alpha/x + beta is monotone
/// between its endpoint values (decreasing iff alpha > 0, increasing iff
/// alpha < 0 which the breakpoint check excludes, constant iff alpha == 0).
bool ratio_strictly_decreasing(const std::vector<SpeedPoint>& pts) {
  double prev_ratio = std::numeric_limits<double>::infinity();
  for (const SpeedPoint& p : pts) {
    const double r = p.speed / p.size;
    if (!(r < prev_ratio)) return false;
    prev_ratio = r;
  }
  return true;
}

}  // namespace

PiecewiseLinearSpeed::PiecewiseLinearSpeed(std::vector<SpeedPoint> points)
    : points_(std::move(points)) {
  validate_points(points_);
  if (!ratio_strictly_decreasing(points_))
    throw std::invalid_argument(
        "PiecewiseLinearSpeed: speed(x)/x must be strictly decreasing; "
        "pre-condition noisy data with repair_shape_requirement()");
  // A tiny positive floor keeps speed() > 0 beyond the modelled range so
  // that intersections for very shallow lines stay well-defined.
  double max_speed = 0.0;
  for (const SpeedPoint& p : points_) max_speed = std::max(max_speed, p.speed);
  floor_speed_ = std::max(1e-9, max_speed * 1e-9);
  // Hoist the final-segment slope out of the per-call extrapolation: a
  // falling segment continues its trend, a flat/rising one (slope kept at
  // >= 0) extends as a constant — speed never grows beyond the modelled
  // range (and the ratio requirement would otherwise eventually fail).
  if (points_.size() >= 2) {
    const SpeedPoint& p0 = points_[points_.size() - 2];
    const SpeedPoint& p1 = points_.back();
    tail_slope_ = (p1.speed - p0.speed) / (p1.size - p0.size);
  }
}

double PiecewiseLinearSpeed::speed(double x) const {
  if (x <= points_.front().size) return points_.front().speed;
  if (x >= points_.back().size) {
    const SpeedPoint& p1 = points_.back();
    return detail::piecewise_tail_speed(p1.speed, tail_slope_, floor_speed_,
                                        x - p1.size);
  }
  // Binary search for the segment containing x.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double v, const SpeedPoint& p) { return v < p.size; });
  const SpeedPoint& hi = *it;
  const SpeedPoint& lo = *(it - 1);
  return detail::piecewise_segment_speed(lo.size, lo.speed, hi.size, hi.speed,
                                         x);
}

double PiecewiseLinearSpeed::intersect(double slope) const {
  assert(slope > 0.0);
  const SpeedPoint& last = points_.back();
  const double b = last.size;
  if (speed(b) >= slope * b) {
    // Crossing beyond the modelled range: speed() there continues the last
    // segment's cached trend clamped at the positive floor. Try the
    // extended segment first, then the floor plateau.
    return detail::piecewise_tail_intersect(b, last.speed, tail_slope_,
                                            floor_speed_, slope);
  }
  // Flat head: s = s0 for x <= x0, so if the line reaches s0 before x0 the
  // crossing is s0/slope.
  const SpeedPoint& first = points_.front();
  if (slope * first.size >= first.speed)
    return first.speed / slope;
  // Find the first breakpoint whose ratio drops below the slope; the
  // crossing lies on the segment ending there. Ratios are strictly
  // decreasing, enabling binary search.
  std::size_t lo = 0;                    // ratio(points_[lo]) > slope
  std::size_t hi = points_.size() - 1;   // ratio(points_[hi]) < slope (checked above)
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (points_[mid].speed > slope * points_[mid].size)
      lo = mid;
    else
      hi = mid;
  }
  const SpeedPoint& p0 = points_[lo];
  const SpeedPoint& p1 = points_[hi];
  // Solve c*x = s0 + m*(x - x0) on [x0, x1], clamped against round-off.
  const double m = (p1.speed - p0.speed) / (p1.size - p0.size);
  return detail::piecewise_segment_intersect(p0.size, p0.speed, m, slope,
                                             p0.size, p1.size);
}

std::vector<SpeedPoint> repair_shape_requirement(
    std::vector<SpeedPoint> points) {
  if (points.empty()) return points;
  double prev_ratio = std::numeric_limits<double>::infinity();
  for (SpeedPoint& p : points) {
    const double bound = prev_ratio * p.size;
    // Strictly below the predecessor's ratio; shave one part in 10^9 so the
    // strict inequality survives round-off.
    if (p.speed >= bound) p.speed = bound * (1.0 - 1e-9);
    if (p.speed < 0.0) p.speed = 0.0;
    prev_ratio = p.speed / p.size;
  }
  return points;
}

PerformanceBand::PerformanceBand(std::vector<SpeedPoint> lower,
                                 std::vector<SpeedPoint> upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  if (lower_.size() != upper_.size() || lower_.empty())
    throw std::invalid_argument("PerformanceBand: envelope size mismatch");
  for (std::size_t i = 0; i < lower_.size(); ++i) {
    if (lower_[i].size != upper_[i].size)
      throw std::invalid_argument("PerformanceBand: breakpoint x mismatch");
    if (lower_[i].speed > upper_[i].speed)
      throw std::invalid_argument("PerformanceBand: lower above upper");
  }
}

PiecewiseLinearSpeed PerformanceBand::center() const {
  std::vector<SpeedPoint> pts(lower_.size());
  for (std::size_t i = 0; i < lower_.size(); ++i)
    pts[i] = {lower_[i].size, 0.5 * (lower_[i].speed + upper_[i].speed)};
  return PiecewiseLinearSpeed(repair_shape_requirement(std::move(pts)));
}

PiecewiseLinearSpeed PerformanceBand::lower_curve() const {
  return PiecewiseLinearSpeed(
      repair_shape_requirement({lower_.begin(), lower_.end()}));
}

PiecewiseLinearSpeed PerformanceBand::upper_curve() const {
  return PiecewiseLinearSpeed(
      repair_shape_requirement({upper_.begin(), upper_.end()}));
}

double PerformanceBand::relative_width(double x) const {
  const PiecewiseLinearSpeed lo = lower_curve();
  const PiecewiseLinearSpeed hi = upper_curve();
  const double centre = 0.5 * (lo.speed(x) + hi.speed(x));
  return centre <= 0.0 ? 0.0 : (hi.speed(x) - lo.speed(x)) / centre;
}

}  // namespace fpm::core
