// The general partitioning problem of Lastovetsky & Reddy's classification
// paper ([20] in the reproduced paper, quoted in its §1): a set of n
// elements with weights w_i, p processors with speed functions s_i and upper
// bounds b_i on the number of elements each can store. The IPDPS'04 paper
// solves the unit-weight unbounded variant; these extensions cover the rest
// of the formulation.
#pragma once

#include <cstdint>
#include <span>

#include "core/combined.hpp"
#include "core/partition.hpp"

namespace fpm::core {

struct BoundedOptions {
  /// Options (including the trace observer) applied to the combined-search
  /// solve of every clamp-and-resolve round.
  CombinedOptions inner{};
};

/// Partitions n unit-weight elements subject to per-processor capacity
/// bounds: counts[i] <= bounds[i] and sum == n, minimizing the makespan.
///
/// Strategy: solve the unbounded problem (combined algorithm); clamp every
/// processor that exceeded its bound to the bound; re-solve the residual
/// problem over the remaining processors. Each round fixes at least one
/// processor, so at most p rounds run. Throws std::invalid_argument when
/// sum(bounds) < n (infeasible).
PartitionResult partition_bounded(const SpeedList& speeds, std::int64_t n,
                                  std::span<const std::int64_t> bounds,
                                  const BoundedOptions& opts = {});

/// Exact bounded integer optimum via makespan bisection with capped
/// capacities — the oracle used to test partition_bounded.
Distribution exact_optimum_bounded(const SpeedList& speeds, std::int64_t n,
                                   std::span<const std::int64_t> bounds);

/// Contiguous weighted partitioning: elements 0..w.size()-1 (in order, e.g.
/// matrix rows of unequal density) are split into p contiguous ranges, one
/// per processor in the given order. Processor i's execution time for a
/// range of c elements with weight sum W is W / s_i(c).
///
/// Requires strictly positive weights and speed functions whose range time
/// W(prefix)/s(count(prefix)) is non-decreasing in the prefix length (always
/// holds for non-increasing speed functions; holds for all shapes when
/// weights are uniform). Returns the boundary indices: processor i receives
/// elements [result[i], result[i+1]).
std::vector<std::size_t> partition_weighted_contiguous(
    const SpeedList& speeds, std::span<const double> weights);

/// Makespan of a contiguous weighted partition (same conventions).
double weighted_makespan(const SpeedList& speeds,
                         std::span<const double> weights,
                         std::span<const std::size_t> boundaries);

}  // namespace fpm::core
