// Latency-SLO vocabulary for the partition service (core/server.hpp):
// per-request deadlines and priorities, the outcome taxonomy of a request
// under load (answered in full, answered approximately, or shed), the
// queue-delay estimator that admission control consults, and the
// degraded-answer construction with its computed relative-error bound.
//
// The paper's partitioner is an offline, always-successful solve; a serving
// front-end has to stay correct and responsive when demand exceeds
// capacity. The degradation path follows the self-adaptable-FPM line of
// work (Lastovetsky/Reddy/Rychkov/Clarke, arXiv:1109.3074): when a full
// solve cannot meet its deadline, answer from the previous solution of the
// same model fingerprint — rescaled to the requested n — together with a
// bound on how far that answer can be from optimal, so the caller decides
// whether the approximation is acceptable.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/partition.hpp"

namespace fpm::core {

/// Request importance class. Under overload the server sheds Low before
/// Normal before High; within a class, the latest deadline goes first.
enum class Priority : std::uint8_t { Low = 0, Normal = 1, High = 2 };

/// Number of priority classes (array sizing for per-class state).
inline constexpr std::size_t kPriorityClasses = 3;

const char* to_string(Priority priority) noexcept;

/// Per-request service-level objective. The default (no deadline) request
/// is never deadline-shed and sorts after every deadline-carrying request
/// of its priority class.
struct Slo {
  /// Completion budget in seconds, measured from submission; <= 0 means no
  /// deadline (the request is always admitted and never expires).
  double deadline_s = 0.0;
  Priority priority = Priority::Normal;
  /// When the deadline cannot be met, prefer an approximate answer (with a
  /// computed error bound) over an outright shed. Set false to force a
  /// hard reject instead — e.g. callers that cannot act on an approximate
  /// distribution.
  bool allow_degraded = true;

  bool has_deadline() const noexcept { return deadline_s > 0.0; }
};

/// What became of one request.
enum class ServeStatus : std::uint8_t {
  Ok,        ///< full engine answer (exact, bit-identical to core::partition)
  Degraded,  ///< approximate answer from the hint store, error_bound valid
  Shed,      ///< no answer; shed_reason says why
};

/// Why a request was shed (or would have been, for Degraded answers that
/// replaced a shed).
enum class ShedReason : std::uint8_t {
  None,       ///< not shed
  Admission,  ///< predicted queue delay + service time exceeds the deadline
  QueueFull,  ///< displaced from a full queue (lowest priority, latest
              ///< deadline first)
  Expired,    ///< deadline passed while the request waited in the queue
  Shutdown,   ///< server drained or destroyed before the request ran
};

const char* to_string(ServeStatus status) noexcept;
const char* to_string(ShedReason reason) noexcept;

/// Outcome of one SLO-aware request. Exactly one of the three statuses
/// holds; `result` is meaningful for Ok and Degraded only.
struct ServeResult {
  ServeStatus status = ServeStatus::Ok;
  ShedReason shed_reason = ShedReason::None;
  /// Engine output (Ok) or the degraded distribution (Degraded; its stats
  /// carry algorithm = "degraded"). Empty when Shed.
  PartitionResult result{};
  /// Degraded only: a bound B >= 0 such that the answer's makespan is at
  /// most (1 + B) times the makespan of ANY feasible exact allocation —
  /// in particular it dominates the true relative error against a cold
  /// solve (see degraded_answer()).
  double error_bound = 0.0;
  /// Submission-to-completion wall time in seconds.
  double latency_s = 0.0;
  /// False when the request carried a deadline and the answer (or shed)
  /// came after it.
  bool deadline_met = true;

  bool answered() const noexcept { return status != ServeStatus::Shed; }
};

/// Degraded-answer construction: the previous allocation of the same model
/// list (prev_counts summing to prev_n) rescaled linearly to n, with the
/// largest-remainder rounding fix so the counts sum to exactly n.
struct DegradedAnswer {
  Distribution distribution;
  double makespan = 0.0;     ///< of the degraded distribution
  double error_bound = 0.0;  ///< relative bound vs the exact optimum
};

/// Builds the degraded answer for partitioning n elements over `speeds`
/// from a previous solution (`prev_counts` for `prev_n` over the same
/// models). Returns std::nullopt when the inputs cannot produce a usable
/// answer (size mismatch, non-positive totals, or a distribution whose
/// makespan is not finite — e.g. rescaling pushed a processor beyond any
/// modelled size).
///
/// The error bound is rigorous under the library's single-crossing
/// assumption (x·c - s(x) strictly increasing in x): any feasible integer
/// allocation of n elements has makespan at least 1/c for every slope c
/// with total_size_at(speeds, c) <= n. The construction finds such a
/// slope c_hi close to the optimal c* by geometric expansion from the
/// degraded answer's own implied slope plus a few log-space bisection
/// steps, and reports
///     error_bound = makespan(degraded) * c_hi - 1  >=  true relative error
/// at a cost of O(p) intersection solves — far below a cold search.
std::optional<DegradedAnswer> degraded_answer(
    const SpeedList& speeds, std::int64_t n,
    std::span<const std::int64_t> prev_counts, std::int64_t prev_n);

/// Queue-delay estimator: an exponentially weighted moving average of
/// observed per-request service times, kept per priority class, multiplied
/// by the number of queued requests a newcomer would wait behind. Admission
/// control asks it "if this request joins the queue now, when would it
/// finish?" and sheds requests whose deadline the answer already breaks.
///
/// Thread-safe and lock-free: cells are relaxed atomics. Concurrent
/// record() calls may lose an update — the estimate is a heuristic, not an
/// accounting value, and a lost sample only delays convergence.
class QueueDelayEstimator {
 public:
  /// `alpha` is the EWMA weight of the newest sample (0 < alpha <= 1).
  explicit QueueDelayEstimator(double alpha = 0.2) noexcept;

  /// Records one observed service time (seconds) for `priority`.
  void record(Priority priority, double service_s) noexcept;

  /// Current expected service time for one request of `priority`. Falls
  /// back to the all-class average while the class has no samples yet, and
  /// to 0 (optimistic: admit) while nothing has been observed at all.
  double service_estimate(Priority priority) const noexcept;

  /// Expected queue delay for a request of `priority` entering a queue
  /// with `jobs_ahead` requests it must wait behind, drained by `workers`
  /// threads.
  double queue_delay(Priority priority, std::size_t jobs_ahead,
                     unsigned workers) const noexcept;

  std::int64_t samples(Priority priority) const noexcept;

 private:
  struct Cell {
    std::atomic<double> ewma{0.0};
    std::atomic<std::int64_t> count{0};
  };
  void update(Cell& cell, double service_s) noexcept;
  static double read(const Cell& cell) noexcept;

  double alpha_;
  std::array<Cell, kPriorityClasses> per_class_;
  Cell all_;
};

}  // namespace fpm::core
