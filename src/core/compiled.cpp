#include "core/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "core/detail/speed_kernels.hpp"
#include "core/piecewise.hpp"

namespace fpm::core {
namespace {

// FNV-1a, 64-bit: the canonical byte-at-a-time fold. Parameters must be
// hashed through their bit patterns (not values) so that -0.0 vs 0.0 and
// NaN payloads cannot collide two different models onto one cache key.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xffu;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

inline std::uint64_t fnv_mix(std::uint64_t h, double v) {
  return fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

std::atomic<bool> g_compiled_enabled{true};

}  // namespace

bool compiled_partitioning_enabled() noexcept {
  return g_compiled_enabled.load(std::memory_order_relaxed);
}

void set_compiled_partitioning(bool enabled) noexcept {
  g_compiled_enabled.store(enabled, std::memory_order_relaxed);
}

bool CompiledSpeedList::compile_inner(const SpeedFunction& f, Entry& e) {
  if (const auto* c = dynamic_cast<const ConstantSpeed*>(&f)) {
    e.family = Family::Constant;
    e.a = c->s0();
    return true;
  }
  if (const auto* l = dynamic_cast<const LinearDecaySpeed*>(&f)) {
    e.family = Family::LinearDecay;
    e.a = l->s0();
    e.b = l->max_size();
    e.c = l->floor_speed();
    return true;
  }
  if (const auto* pd = dynamic_cast<const PowerDecaySpeed*>(&f)) {
    e.family = Family::PowerDecay;
    e.a = pd->s0();
    e.b = pd->x0();
    e.c = pd->exponent();
    e.d = pd->max_size();
    return true;
  }
  if (const auto* ed = dynamic_cast<const ExpDecaySpeed*>(&f)) {
    e.family = Family::ExpDecay;
    e.a = ed->s0();
    e.b = ed->lambda();
    e.d = ed->max_size();
    return true;
  }
  if (const auto* u = dynamic_cast<const UnimodalSpeed*>(&f)) {
    e.family = Family::Unimodal;
    e.a = u->s_low();
    e.b = u->s_peak();
    e.c = u->x_peak();
    e.offset = static_cast<std::uint32_t>(aux_.size());
    e.count = 2;
    aux_.push_back(u->decay_x0());
    aux_.push_back(u->decay_exponent());
    return true;
  }
  if (const auto* st = dynamic_cast<const SteppedSpeed*>(&f)) {
    e.family = Family::Stepped;
    e.a = st->s0();
    e.offset = static_cast<std::uint32_t>(steps_.size());
    e.count = static_cast<std::uint32_t>(st->steps().size());
    steps_.insert(steps_.end(), st->steps().begin(), st->steps().end());
    return true;
  }
  if (const auto* pw = dynamic_cast<const PiecewiseLinearSpeed*>(&f)) {
    e.family = Family::Piecewise;
    e.a = pw->floor_speed();
    e.b = pw->tail_slope();
    const auto pts = pw->points();
    e.offset = static_cast<std::uint32_t>(px_.size());
    e.count = static_cast<std::uint32_t>(pts.size());
    for (const SpeedPoint& p : pts) {
      px_.push_back(p.size);
      ps_.push_back(p.speed);
    }
    // Segment slopes computed with the exact expression of
    // PiecewiseLinearSpeed::intersect, so the compiled segment solve feeds
    // piecewise_segment_intersect the same m it would compute per call.
    // One padding slot per function keeps pm_ aligned with px_/ps_.
    for (std::size_t i = 1; i < pts.size(); ++i)
      pm_.push_back((pts[i].speed - pts[i - 1].speed) /
                    (pts[i].size - pts[i - 1].size));
    pm_.push_back(0.0);
    return true;
  }
  return false;
}

CompiledSpeedList CompiledSpeedList::compile(const SpeedList& speeds) {
  CompiledSpeedList list;
  list.entries_.reserve(speeds.size());
  for (const SpeedFunction* f : speeds) {
    if (f == nullptr)
      throw std::invalid_argument("CompiledSpeedList: null speed function");
    Entry e;
    e.base = f;
    const SpeedFunction* inner = f;
    if (const auto* sc = dynamic_cast<const ScaledSpeed*>(f)) {
      e.wrap = Wrap::Scaled;
      e.wrap_param = sc->factor();
      inner = &sc->base();
    } else if (const auto* g = dynamic_cast<const GranularSpeed*>(f)) {
      e.wrap = Wrap::Granular;
      e.wrap_param = g->elements_per_item();
      inner = &g->base();
    } else if (const auto* gv = dynamic_cast<const GranularSpeedView*>(f)) {
      e.wrap = Wrap::Granular;
      e.wrap_param = gv->elements_per_item();
      inner = &gv->base();
    }
    if (!list.compile_inner(*inner, e)) {
      // Unknown family (or a wrapper around one, or nested wrappers): keep
      // the whole object behind the virtual interface. compile_inner only
      // touches the pools on success, so a failed attempt leaves no debris.
      e = Entry{};
      e.base = f;
      ++list.generic_entries_;
    }
    e.max_size = f->max_size();
    list.entries_.push_back(e);
  }
  // Content fingerprint (Generic entries degrade to pointer identity).
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(list.entries_.size()));
  for (const Entry& e : list.entries_) {
    h = fnv_mix(h, (static_cast<std::uint64_t>(e.family) << 8) |
                       static_cast<std::uint64_t>(e.wrap));
    if (e.family == Family::Generic) {
      h = fnv_mix(h, static_cast<std::uint64_t>(
                         reinterpret_cast<std::uintptr_t>(e.base)));
      continue;
    }
    h = fnv_mix(h, e.wrap_param);
    h = fnv_mix(h, e.max_size);
    h = fnv_mix(h, e.a);
    h = fnv_mix(h, e.b);
    h = fnv_mix(h, e.c);
    h = fnv_mix(h, e.d);
    h = fnv_mix(h, static_cast<std::uint64_t>(e.count));
    switch (e.family) {
      case Family::Unimodal:
        for (std::uint32_t i = 0; i < e.count; ++i)
          h = fnv_mix(h, list.aux_[e.offset + i]);
        break;
      case Family::Stepped:
        for (std::uint32_t i = 0; i < e.count; ++i) {
          const SteppedSpeed::Step& st = list.steps_[e.offset + i];
          h = fnv_mix(h, st.at);
          h = fnv_mix(h, st.to);
          h = fnv_mix(h, st.width);
        }
        break;
      case Family::Piecewise:
        for (std::uint32_t i = 0; i < e.count; ++i) {
          h = fnv_mix(h, list.px_[e.offset + i]);
          h = fnv_mix(h, list.ps_[e.offset + i]);
        }
        break;
      default:
        break;
    }
  }
  list.fingerprint_ = h;
  return list;
}

double CompiledSpeedList::raw_speed(const Entry& e, double x) const {
  switch (e.family) {
    case Family::Constant:
      return e.a;
    case Family::LinearDecay:
      return detail::linear_decay_speed(e.a, e.b, e.c, x);
    case Family::PowerDecay:
      return detail::power_decay_speed(e.a, e.b, e.c, x);
    case Family::ExpDecay:
      return detail::exp_decay_speed(e.a, e.b, x);
    case Family::Unimodal:
      return detail::unimodal_speed(e.a, e.b, e.c, aux_[e.offset],
                                    aux_[e.offset + 1], x);
    case Family::Stepped: {
      double s = e.a;
      double level = e.a;
      for (std::uint32_t i = 0; i < e.count; ++i) {
        const SteppedSpeed::Step& st = steps_[e.offset + i];
        s *= detail::stepped_step_factor(st.at, st.to, st.width, level, x);
        level = st.to;
      }
      return s;
    }
    case Family::Piecewise: {
      const std::uint32_t off = e.offset;
      const std::uint32_t last = e.count - 1;
      if (x <= px_[off]) return ps_[off];
      if (x >= px_[off + last])
        return detail::piecewise_tail_speed(ps_[off + last], e.b, e.a,
                                            x - px_[off + last]);
      // Branchless segment lookup over the SoA breakpoints: narrow to the
      // last index with px <= x using conditional selects (no data-dependent
      // branches), exactly the segment std::upper_bound picks on the AoS
      // points — including the tie case x == px[j], which lands on the
      // segment starting at j either way.
      std::uint32_t base = 0;
      std::uint32_t len = last;  // candidates [0, count-2]
      while (len > 1) {
        const std::uint32_t half = len >> 1;
        const bool go_right = px_[off + base + half] <= x;
        base = go_right ? base + half : base;
        len = go_right ? len - half : half;
      }
      return detail::piecewise_segment_speed(px_[off + base], ps_[off + base],
                                             px_[off + base + 1],
                                             ps_[off + base + 1], x);
    }
    case Family::Generic:
      break;
  }
  return e.base->speed(x);
}

double CompiledSpeedList::entry_speed(const Entry& e, double x) const {
  switch (e.wrap) {
    case Wrap::Scaled:
      return e.wrap_param * raw_speed(e, x);
    case Wrap::Granular:
      return raw_speed(e, x * e.wrap_param) / e.wrap_param;
    case Wrap::None:
      break;
  }
  return raw_speed(e, x);
}

double CompiledSpeedList::entry_intersect(const Entry& e, double slope) const {
  assert(slope > 0.0);
  if (e.family == Family::Generic) return e.base->intersect(slope);
  if (e.wrap != Wrap::None) {
    // The wrappers do not override intersect() on the virtual side, so the
    // compiled side runs the same generic bisection over the same speed
    // values (virtual dispatch removed, arithmetic unchanged).
    return detail::generic_intersect(
        [this, &e](double x) { return entry_speed(e, x); }, e.max_size, slope);
  }
  switch (e.family) {
    case Family::Constant:
      return detail::constant_intersect(e.a, slope);
    case Family::LinearDecay:
      return detail::linear_decay_intersect(e.a, e.b, e.c, slope);
    case Family::PowerDecay:
      return detail::power_decay_intersect(e.a, e.b, e.c, e.d, slope);
    case Family::ExpDecay:
      return detail::exp_decay_intersect(e.a, e.b, e.d, slope);
    case Family::Piecewise: {
      // Mirrors PiecewiseLinearSpeed::intersect() step for step, reading the
      // SoA slabs and the precomputed segment slopes.
      const std::uint32_t off = e.offset;
      const std::uint32_t last = e.count - 1;
      const double b = px_[off + last];
      if (raw_speed(e, b) >= slope * b)
        return detail::piecewise_tail_intersect(b, ps_[off + last], e.b, e.a,
                                                slope);
      if (slope * px_[off] >= ps_[off]) return ps_[off] / slope;
      std::uint32_t lo = 0;
      std::uint32_t hi = last;
      while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (ps_[off + mid] > slope * px_[off + mid])
          lo = mid;
        else
          hi = mid;
      }
      return detail::piecewise_segment_intersect(px_[off + lo], ps_[off + lo],
                                                 pm_[off + lo], slope,
                                                 px_[off + lo], px_[off + hi]);
    }
    case Family::Unimodal:
    case Family::Stepped:
      // No closed form on the virtual side either: same generic bisection.
      return detail::generic_intersect(
          [this, &e](double x) { return raw_speed(e, x); }, e.max_size, slope);
    case Family::Generic:
      break;
  }
  return e.base->intersect(slope);
}

double CompiledSpeedList::speed(std::size_t i, double x) const {
  return entry_speed(entries_[i], x);
}

double CompiledSpeedList::intersect(std::size_t i, double slope) const {
  return entry_intersect(entries_[i], slope);
}

std::vector<double> sizes_at(const CompiledSpeedList& speeds, double slope,
                             EvalCounters* counters) {
  std::vector<double> xs(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i)
    xs[i] = speeds.intersect(i, slope);
  if (counters)
    counters->intersect_solves += static_cast<std::int64_t>(speeds.size());
  return xs;
}

double total_size_at(const CompiledSpeedList& speeds, double slope,
                     EvalCounters* counters) {
  double sum = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i)
    sum += speeds.intersect(i, slope);
  if (counters)
    counters->intersect_solves += static_cast<std::int64_t>(speeds.size());
  return sum;
}

SlopeBracket detect_bracket(const CompiledSpeedList& speeds, std::int64_t n,
                            EvalCounters* counters) {
  // Line-for-line the SpeedList overload in partition.cpp (including its
  // counting profile: one speed probe per processor, one solve batch per
  // expansion test) so that the two paths report identical stats.
  if (speeds.size() == 0)
    throw std::invalid_argument("detect_bracket: no speeds");
  if (n < 1) throw std::invalid_argument("detect_bracket: n must be >= 1");
  const double p = static_cast<double>(speeds.size());
  const double probe = static_cast<double>(n) / p;
  double s_min = std::numeric_limits<double>::infinity();
  double s_max = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double s = speeds.speed(i, std::min(probe, speeds.max_size(i)));
    s_min = std::min(s_min, s);
    s_max = std::max(s_max, s);
  }
  if (counters)
    counters->speed_evals += static_cast<std::int64_t>(speeds.size());
  SlopeBracket br;
  br.hi_slope = s_max / probe;
  br.lo_slope = s_min / probe;
  if (br.lo_slope <= 0.0) br.lo_slope = br.hi_slope * 1e-12;
  const double nd = static_cast<double>(n);
  for (int i = 0; i < 256 && total_size_at(speeds, br.hi_slope, counters) > nd;
       ++i)
    br.hi_slope *= 2.0;
  for (int i = 0; i < 256 && total_size_at(speeds, br.lo_slope, counters) < nd;
       ++i)
    br.lo_slope *= 0.5;
  if (br.lo_slope > br.hi_slope) std::swap(br.lo_slope, br.hi_slope);
  return br;
}

}  // namespace fpm::core
