#include "core/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/detail/parallel.hpp"
#include "core/detail/simd.hpp"
#include "core/detail/speed_kernels.hpp"
#include "core/piecewise.hpp"
#include "obs/metrics.hpp"

namespace fpm::core {
namespace {

// FNV-1a, 64-bit: the canonical byte-at-a-time fold. Parameters must be
// hashed through their bit patterns (not values) so that -0.0 vs 0.0 and
// NaN payloads cannot collide two different models onto one cache key.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xffu;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

inline std::uint64_t fnv_mix(std::uint64_t h, double v) {
  return fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

std::atomic<bool> g_compiled_enabled{true};
std::atomic<bool> g_batched_enabled{true};
std::atomic<bool> g_simd_enabled{true};
std::atomic<std::size_t> g_parallel_threshold{1024};

/// One-time application of the FPM_SIMD_BACKEND environment override. A
/// valid value behaves exactly like force_simd_backend(value); an invalid
/// one is ignored here (the library keeps auto dispatch) and surfaced as a
/// hard error by fpmtool, which validates the variable explicitly.
inline void apply_env_backend_once() noexcept {
  static const bool applied = [] {
    if (const char* env = std::getenv("FPM_SIMD_BACKEND")) {
      try {
        force_simd_backend(env);
      } catch (const std::exception&) {
      }
    }
    return true;
  }();
  (void)applied;
}

/// The vector kernel table intersect_all should use right now, or nullptr
/// for the bit-exact scalar batch path (toggle off or FPM_SIMD=OFF build).
inline const detail::simd::SimdKernels* active_kernels() noexcept {
  apply_env_backend_once();
  if (!g_simd_enabled.load(std::memory_order_relaxed)) return nullptr;
  return detail::simd::resolved_simd_kernels();
}

/// Thread-local precompiled hint installed by PrecompiledGuard.
thread_local const SpeedList* g_precompiled_speeds = nullptr;
thread_local const CompiledSpeedList* g_precompiled_list = nullptr;

/// The shared classification of one speed function: which family/wrap it
/// compiles to and the scalar parameters, with typed pointers for the
/// families whose data lives in pools. Both compile() and fingerprint_of()
/// run exactly this walk, so the fingerprint of a list never depends on
/// which of the two computed it.
struct Classified {
  CompiledSpeedList::Family family = CompiledSpeedList::Family::Generic;
  CompiledSpeedList::Wrap wrap = CompiledSpeedList::Wrap::None;
  double wrap_param = 1.0;
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;
  std::uint32_t count = 0;
  const UnimodalSpeed* unimodal = nullptr;
  const SteppedSpeed* stepped = nullptr;
  const PiecewiseLinearSpeed* piecewise = nullptr;
};

Classified classify(const SpeedFunction& f) {
  using Family = CompiledSpeedList::Family;
  using Wrap = CompiledSpeedList::Wrap;
  Classified out;
  const SpeedFunction* inner = &f;
  Wrap wrap = Wrap::None;
  double wrap_param = 1.0;
  if (const auto* sc = dynamic_cast<const ScaledSpeed*>(&f)) {
    wrap = Wrap::Scaled;
    wrap_param = sc->factor();
    inner = &sc->base();
  } else if (const auto* g = dynamic_cast<const GranularSpeed*>(&f)) {
    wrap = Wrap::Granular;
    wrap_param = g->elements_per_item();
    inner = &g->base();
  } else if (const auto* gv = dynamic_cast<const GranularSpeedView*>(&f)) {
    wrap = Wrap::Granular;
    wrap_param = gv->elements_per_item();
    inner = &gv->base();
  }
  if (const auto* c = dynamic_cast<const ConstantSpeed*>(inner)) {
    out.family = Family::Constant;
    out.a = c->s0();
  } else if (const auto* l = dynamic_cast<const LinearDecaySpeed*>(inner)) {
    out.family = Family::LinearDecay;
    out.a = l->s0();
    out.b = l->max_size();
    out.c = l->floor_speed();
  } else if (const auto* pd = dynamic_cast<const PowerDecaySpeed*>(inner)) {
    out.family = Family::PowerDecay;
    out.a = pd->s0();
    out.b = pd->x0();
    out.c = pd->exponent();
    out.d = pd->max_size();
  } else if (const auto* ed = dynamic_cast<const ExpDecaySpeed*>(inner)) {
    out.family = Family::ExpDecay;
    out.a = ed->s0();
    out.b = ed->lambda();
    out.d = ed->max_size();
  } else if (const auto* u = dynamic_cast<const UnimodalSpeed*>(inner)) {
    out.family = Family::Unimodal;
    out.a = u->s_low();
    out.b = u->s_peak();
    out.c = u->x_peak();
    out.count = 2;
    out.unimodal = u;
  } else if (const auto* st = dynamic_cast<const SteppedSpeed*>(inner)) {
    out.family = Family::Stepped;
    out.a = st->s0();
    out.count = static_cast<std::uint32_t>(st->steps().size());
    out.stepped = st;
  } else if (const auto* pw =
                 dynamic_cast<const PiecewiseLinearSpeed*>(inner)) {
    out.family = Family::Piecewise;
    out.a = pw->floor_speed();
    out.b = pw->tail_slope();
    out.count = static_cast<std::uint32_t>(pw->points().size());
    out.piecewise = pw;
  } else {
    // Unknown family (or a wrapper around one, or nested wrappers): keep
    // the whole object behind the virtual interface.
    return Classified{};
  }
  out.wrap = wrap;
  out.wrap_param = wrap_param;
  return out;
}

}  // namespace

PrecompiledGuard::PrecompiledGuard(const SpeedList& speeds,
                                   const CompiledSpeedList& compiled) noexcept
    : prev_speeds_(g_precompiled_speeds), prev_compiled_(g_precompiled_list) {
  g_precompiled_speeds = &speeds;
  g_precompiled_list = &compiled;
}

PrecompiledGuard::~PrecompiledGuard() {
  g_precompiled_speeds = prev_speeds_;
  g_precompiled_list = prev_compiled_;
}

const CompiledSpeedList* precompiled_match(const SpeedList& speeds) noexcept {
  if (g_precompiled_speeds == nullptr) return nullptr;
  if (g_precompiled_speeds != &speeds && *g_precompiled_speeds != speeds)
    return nullptr;
  return g_precompiled_list;
}

bool compiled_partitioning_enabled() noexcept {
  return g_compiled_enabled.load(std::memory_order_relaxed);
}

void set_compiled_partitioning(bool enabled) noexcept {
  g_compiled_enabled.store(enabled, std::memory_order_relaxed);
}

bool batched_kernels_enabled() noexcept {
  return g_batched_enabled.load(std::memory_order_relaxed);
}

void set_batched_kernels(bool enabled) noexcept {
  g_batched_enabled.store(enabled, std::memory_order_relaxed);
}

bool simd_kernels_enabled() noexcept {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

void set_simd_kernels(bool enabled) noexcept {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool simd_kernels_available() noexcept {
  return detail::simd::resolved_simd_kernels() != nullptr;
}

namespace {

SimdBackend backend_from_name(const char* name) noexcept {
  if (std::strcmp(name, "avx512") == 0) return SimdBackend::Avx512;
  if (std::strcmp(name, "avx2") == 0) return SimdBackend::Avx2;
  if (std::strcmp(name, "neon") == 0) return SimdBackend::Neon;
  return SimdBackend::Portable;
}

}  // namespace

SimdBackend active_simd_backend() noexcept {
  const detail::simd::SimdKernels* kern = active_kernels();
  if (kern == nullptr) return SimdBackend::Disabled;
  return backend_from_name(kern->name);
}

const char* to_string(SimdBackend backend) noexcept {
  switch (backend) {
    case SimdBackend::Portable:
      return "portable";
    case SimdBackend::Avx2:
      return "avx2";
    case SimdBackend::Avx512:
      return "avx512";
    case SimdBackend::Neon:
      return "neon";
    case SimdBackend::Disabled:
      break;
  }
  return "off";
}

void force_simd_backend(std::string_view name) {
  if (name == "auto") {
    detail::simd::set_forced_simd_variant(nullptr);
    set_simd_kernels(true);
    return;
  }
  if (name == "off") {
    detail::simd::set_forced_simd_variant(nullptr);
    set_simd_kernels(false);
    return;
  }
  const detail::simd::SimdKernels* k = detail::simd::find_simd_variant(name);
  if (k == nullptr) {
    std::string msg = "simd backend '";
    msg += name;
    msg += "' is not compiled into this build (available:";
    for (const detail::simd::SimdKernels* v :
         detail::simd::compiled_simd_variants()) {
      msg += ' ';
      msg += v->name;
    }
    msg += " auto off)";
    throw std::invalid_argument(msg);
  }
  if (!detail::simd::simd_variant_supported(*k)) {
    std::string msg = "simd backend '";
    msg += name;
    msg += "' is compiled in but not supported by this CPU";
    throw std::invalid_argument(msg);
  }
  detail::simd::set_forced_simd_variant(k);
  set_simd_kernels(true);
}

std::size_t parallel_intersect_threshold() noexcept {
  return g_parallel_threshold.load(std::memory_order_relaxed);
}

void set_parallel_intersect_threshold(std::size_t entries) noexcept {
  g_parallel_threshold.store(entries, std::memory_order_relaxed);
}

CompiledSpeedList CompiledSpeedList::compile(const SpeedList& speeds) {
  CompiledSpeedList list;
  list.entries_.reserve(speeds.size());
  for (const SpeedFunction* f : speeds) {
    if (f == nullptr)
      throw std::invalid_argument("CompiledSpeedList: null speed function");
    const Classified cl = classify(*f);
    Entry e;
    e.base = f;
    e.family = cl.family;
    e.wrap = cl.wrap;
    e.wrap_param = cl.wrap_param;
    e.a = cl.a;
    e.b = cl.b;
    e.c = cl.c;
    e.d = cl.d;
    e.count = cl.count;
    switch (cl.family) {
      case Family::Unimodal:
        e.offset = static_cast<std::uint32_t>(list.aux_.size());
        list.aux_.push_back(cl.unimodal->decay_x0());
        list.aux_.push_back(cl.unimodal->decay_exponent());
        break;
      case Family::Stepped:
        e.offset = static_cast<std::uint32_t>(list.steps_.size());
        list.steps_.insert(list.steps_.end(), cl.stepped->steps().begin(),
                           cl.stepped->steps().end());
        break;
      case Family::Piecewise: {
        const auto pts = cl.piecewise->points();
        e.offset = static_cast<std::uint32_t>(list.px_.size());
        for (const SpeedPoint& p : pts) {
          list.px_.push_back(p.size);
          list.ps_.push_back(p.speed);
        }
        // Segment slopes computed with the exact expression of
        // PiecewiseLinearSpeed::intersect, so the compiled segment solve
        // feeds piecewise_segment_intersect the same m it would compute per
        // call. One padding slot per function keeps pm_ aligned with
        // px_/ps_.
        for (std::size_t i = 1; i < pts.size(); ++i)
          list.pm_.push_back((pts[i].speed - pts[i - 1].speed) /
                             (pts[i].size - pts[i - 1].size));
        list.pm_.push_back(0.0);
        break;
      }
      case Family::Generic:
        ++list.generic_entries_;
        break;
      default:
        break;
    }
    e.max_size = f->max_size();
    list.entries_.push_back(e);
  }
  // Batch plan for intersect_all(): group the unwrapped closed-form
  // families into SoA parameter lanes, vetted unwrapped Unimodal/Stepped
  // entries into the bisection lanes; everything else (wrapped entries,
  // irregular pool-backed entries, Piecewise, Generic) keeps the per-entry
  // dispatch. Vetting admits only parameters squarely inside the vector
  // kernels' vexp/vlog domains — anything exotic (non-normal scales,
  // negative exponents, too many steps) is a compile-time punt to
  // batch_other_, so the only runtime punt those lanes need is the
  // beyond-max_size bracket expansion.
  const auto pos_normal = [](double v) { return std::isnormal(v) && v > 0.0; };
  for (std::size_t i = 0; i < list.entries_.size(); ++i) {
    const Entry& e = list.entries_[i];
    const auto dst = static_cast<std::uint32_t>(i);
    if (e.wrap != Wrap::None) {
      list.batch_other_.push_back(dst);
      continue;
    }
    switch (e.family) {
      case Family::Constant:
        list.lane_constant_.idx.push_back(dst);
        list.lane_constant_.a.push_back(e.a);
        break;
      case Family::LinearDecay:
        list.lane_linear_.idx.push_back(dst);
        list.lane_linear_.a.push_back(e.a);
        list.lane_linear_.b.push_back(e.b);
        list.lane_linear_.c.push_back(e.c);
        break;
      case Family::PowerDecay:
        list.lane_power_.idx.push_back(dst);
        list.lane_power_.a.push_back(e.a);
        list.lane_power_.b.push_back(e.b);
        list.lane_power_.c.push_back(e.c);
        list.lane_power_.d.push_back(e.d);
        break;
      case Family::ExpDecay:
        list.lane_exp_.idx.push_back(dst);
        list.lane_exp_.a.push_back(e.a);
        list.lane_exp_.b.push_back(e.b);
        list.lane_exp_.d.push_back(e.d);
        break;
      case Family::Unimodal: {
        const double x0 = list.aux_[e.offset];
        const double k = list.aux_[e.offset + 1];
        const bool safe = pos_normal(e.c) && pos_normal(x0) &&
                          pos_normal(e.max_size) && std::isfinite(k) &&
                          k >= 0.0 && std::isfinite(e.a) && e.a >= 0.0 &&
                          std::isfinite(e.b) && e.b > 0.0;
        if (!safe) {
          list.batch_other_.push_back(dst);
          break;
        }
        list.lane_unimodal_.idx.push_back(dst);
        list.lane_unimodal_.a.push_back(e.a);
        list.lane_unimodal_.b.push_back(e.b);
        list.lane_unimodal_.c.push_back(e.c);
        list.lane_unimodal_.d.push_back(x0);
        list.lane_unimodal_.e.push_back(k);
        list.lane_unimodal_.f.push_back(e.max_size);
        break;
      }
      case Family::Stepped: {
        bool safe = pos_normal(e.a) && pos_normal(e.max_size) &&
                    e.count <= kMaxVecSteps;
        for (std::uint32_t s = 0; safe && s < e.count; ++s) {
          const SteppedSpeed::Step& st = list.steps_[e.offset + s];
          safe = std::isfinite(st.at) && pos_normal(st.to) &&
                 pos_normal(st.width);
        }
        if (!safe) {
          list.batch_other_.push_back(dst);
          break;
        }
        list.lane_stepped_.idx.push_back(dst);
        list.lane_stepped_.a.push_back(e.a);
        list.lane_stepped_.f.push_back(e.max_size);
        break;
      }
      default:
        list.batch_other_.push_back(dst);
        break;
    }
  }
  // Pad every lane column to kMaxLanes (the widest compiled vector width)
  // by duplicating the last real element: whichever backend the runtime
  // dispatch picks then streams whole registers with the pad slots
  // computing harmless in-domain values that are never scattered (idx
  // keeps the real count, and the scalar batch kernels loop over it).
  const auto pad_lane = [](BatchLane& lane) {
    if (lane.empty()) return;
    const std::size_t padded = detail::simd::padded_size(lane.idx.size());
    const auto grow = [padded](BatchLane::Column& col) {
      if (!col.empty()) col.resize(padded, col.back());
    };
    grow(lane.a);
    grow(lane.b);
    grow(lane.c);
    grow(lane.d);
    grow(lane.e);
    grow(lane.f);
  };
  pad_lane(list.lane_constant_);
  pad_lane(list.lane_linear_);
  pad_lane(list.lane_power_);
  pad_lane(list.lane_exp_);
  pad_lane(list.lane_unimodal_);
  // Second pass for the stepped lane: the slot-major slabs need the final
  // entry count (stride) before any step can be placed.
  if (!list.lane_stepped_.empty()) {
    SteppedLane& sl = list.lane_stepped_;
    const std::size_t count = sl.idx.size();
    sl.stride = detail::simd::padded_size(count);
    sl.a.resize(sl.stride, sl.a.back());
    sl.f.resize(sl.stride, sl.f.back());
    for (std::size_t j = 0; j < count; ++j)
      sl.nslots = std::max<std::size_t>(
          sl.nslots, list.entries_[sl.idx[j]].count);
    const double inf = std::numeric_limits<double>::infinity();
    sl.at.assign(sl.nslots * sl.stride, inf);       // identity step:
    sl.ratio.assign(sl.nslots * sl.stride, 1.0);    //   factor == 1 exactly
    sl.width.assign(sl.nslots * sl.stride, 1.0);
    for (std::size_t j = 0; j < count; ++j) {
      const Entry& e = list.entries_[sl.idx[j]];
      double level = e.a;
      for (std::uint32_t s = 0; s < e.count; ++s) {
        const SteppedSpeed::Step& st = list.steps_[e.offset + s];
        const std::size_t off = s * sl.stride + j;
        sl.at[off] = st.at;
        sl.ratio[off] = st.to / level;
        sl.width[off] = st.width;
        level = st.to;
      }
    }
  }
  list.fingerprint_ = fingerprint_of(speeds);
  return list;
}

std::uint64_t CompiledSpeedList::fingerprint_of(const SpeedList& speeds) {
  // Content fingerprint (Generic entries degrade to pointer identity).
  // Classification only reads the objects — no pools, no allocations — so
  // the server's cache-hit path keys requests without compiling them.
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(speeds.size()));
  for (const SpeedFunction* f : speeds) {
    if (f == nullptr)
      throw std::invalid_argument("CompiledSpeedList: null speed function");
    const Classified cl = classify(*f);
    h = fnv_mix(h, (static_cast<std::uint64_t>(cl.family) << 8) |
                       static_cast<std::uint64_t>(cl.wrap));
    if (cl.family == Family::Generic) {
      h = fnv_mix(
          h, static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(f)));
      continue;
    }
    h = fnv_mix(h, cl.wrap_param);
    h = fnv_mix(h, f->max_size());
    h = fnv_mix(h, cl.a);
    h = fnv_mix(h, cl.b);
    h = fnv_mix(h, cl.c);
    h = fnv_mix(h, cl.d);
    h = fnv_mix(h, static_cast<std::uint64_t>(cl.count));
    switch (cl.family) {
      case Family::Unimodal:
        h = fnv_mix(h, cl.unimodal->decay_x0());
        h = fnv_mix(h, cl.unimodal->decay_exponent());
        break;
      case Family::Stepped:
        for (const SteppedSpeed::Step& st : cl.stepped->steps()) {
          h = fnv_mix(h, st.at);
          h = fnv_mix(h, st.to);
          h = fnv_mix(h, st.width);
        }
        break;
      case Family::Piecewise:
        for (const SpeedPoint& p : cl.piecewise->points()) {
          h = fnv_mix(h, p.size);
          h = fnv_mix(h, p.speed);
        }
        break;
      default:
        break;
    }
  }
  return h;
}

double CompiledSpeedList::raw_speed(const Entry& e, double x) const {
  switch (e.family) {
    case Family::Constant:
      return e.a;
    case Family::LinearDecay:
      return detail::linear_decay_speed(e.a, e.b, e.c, x);
    case Family::PowerDecay:
      return detail::power_decay_speed(e.a, e.b, e.c, x);
    case Family::ExpDecay:
      return detail::exp_decay_speed(e.a, e.b, x);
    case Family::Unimodal:
      return detail::unimodal_speed(e.a, e.b, e.c, aux_[e.offset],
                                    aux_[e.offset + 1], x);
    case Family::Stepped: {
      double s = e.a;
      double level = e.a;
      for (std::uint32_t i = 0; i < e.count; ++i) {
        const SteppedSpeed::Step& st = steps_[e.offset + i];
        s *= detail::stepped_step_factor(st.at, st.to, st.width, level, x);
        level = st.to;
      }
      return s;
    }
    case Family::Piecewise: {
      const std::uint32_t off = e.offset;
      const std::uint32_t last = e.count - 1;
      if (x <= px_[off]) return ps_[off];
      if (x >= px_[off + last])
        return detail::piecewise_tail_speed(ps_[off + last], e.b, e.a,
                                            x - px_[off + last]);
      // Branchless segment lookup over the SoA breakpoints: narrow to the
      // last index with px <= x using conditional selects (no data-dependent
      // branches), exactly the segment std::upper_bound picks on the AoS
      // points — including the tie case x == px[j], which lands on the
      // segment starting at j either way.
      std::uint32_t base = 0;
      std::uint32_t len = last;  // candidates [0, count-2]
      while (len > 1) {
        const std::uint32_t half = len >> 1;
        const bool go_right = px_[off + base + half] <= x;
        base = go_right ? base + half : base;
        len = go_right ? len - half : half;
      }
      return detail::piecewise_segment_speed(px_[off + base], ps_[off + base],
                                             px_[off + base + 1],
                                             ps_[off + base + 1], x);
    }
    case Family::Generic:
      break;
  }
  return e.base->speed(x);
}

double CompiledSpeedList::entry_speed(const Entry& e, double x) const {
  switch (e.wrap) {
    case Wrap::Scaled:
      return e.wrap_param * raw_speed(e, x);
    case Wrap::Granular:
      return raw_speed(e, x * e.wrap_param) / e.wrap_param;
    case Wrap::None:
      break;
  }
  return raw_speed(e, x);
}

double CompiledSpeedList::entry_intersect(const Entry& e, double slope) const {
  assert(slope > 0.0);
  if (e.family == Family::Generic) return e.base->intersect(slope);
  if (e.wrap != Wrap::None) {
    // The wrappers do not override intersect() on the virtual side, so the
    // compiled side runs the same generic bisection over the same speed
    // values (virtual dispatch removed, arithmetic unchanged).
    return detail::generic_intersect(
        [this, &e](double x) { return entry_speed(e, x); }, e.max_size, slope);
  }
  switch (e.family) {
    case Family::Constant:
      return detail::constant_intersect(e.a, slope);
    case Family::LinearDecay:
      return detail::linear_decay_intersect(e.a, e.b, e.c, slope);
    case Family::PowerDecay:
      return detail::power_decay_intersect(e.a, e.b, e.c, e.d, slope);
    case Family::ExpDecay:
      return detail::exp_decay_intersect(e.a, e.b, e.d, slope);
    case Family::Piecewise: {
      // Mirrors PiecewiseLinearSpeed::intersect() step for step, reading the
      // SoA slabs and the precomputed segment slopes.
      const std::uint32_t off = e.offset;
      const std::uint32_t last = e.count - 1;
      const double b = px_[off + last];
      if (raw_speed(e, b) >= slope * b)
        return detail::piecewise_tail_intersect(b, ps_[off + last], e.b, e.a,
                                                slope);
      if (slope * px_[off] >= ps_[off]) return ps_[off] / slope;
      std::uint32_t lo = 0;
      std::uint32_t hi = last;
      const detail::simd::SimdKernels* kern = active_kernels();
      if (kern != nullptr && e.count >= 16) {
        // Vectorized bracketing scan over the SoA slab: count the segment
        // starts still above the line. The predicate ps > slope·px is the
        // exact comparison of the binary search below, and the model's
        // decreasing speed(x)/x invariant makes it a true-prefix, so
        // (count_above - 1) is the same bracketing segment the binary
        // search lands on — bit-identically, since the arithmetic on the
        // selected segment is unchanged. The clamp only matters for
        // invalid (non-monotone) data, where either path is best-effort.
        const std::size_t above = kern->piecewise_count_above(
            px_.data() + off, ps_.data() + off, e.count, slope);
        lo = static_cast<std::uint32_t>(
            std::clamp<std::size_t>(above, 1, last) - 1);
        hi = lo + 1;
      } else {
        while (hi - lo > 1) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (ps_[off + mid] > slope * px_[off + mid])
            lo = mid;
          else
            hi = mid;
        }
      }
      return detail::piecewise_segment_intersect(px_[off + lo], ps_[off + lo],
                                                 pm_[off + lo], slope,
                                                 px_[off + lo], px_[off + hi]);
    }
    case Family::Unimodal:
    case Family::Stepped:
      // No closed form on the virtual side either: same generic bisection.
      return detail::generic_intersect(
          [this, &e](double x) { return raw_speed(e, x); }, e.max_size, slope);
    case Family::Generic:
      break;
  }
  return e.base->intersect(slope);
}

double CompiledSpeedList::speed(std::size_t i, double x) const {
  return entry_speed(entries_[i], x);
}

double CompiledSpeedList::intersect(std::size_t i, double slope) const {
  return entry_intersect(entries_[i], slope);
}

/// One batch task of intersect_all: a closed-form lane (lane 0..3, with its
/// BatchLane), a bisection lane (4=unimodal with its BatchLane, 5=stepped
/// with the SteppedLane) or the per-entry fallback list (lane 6). `count`
/// is the real (unpadded) element count; chunks address element ranges.
struct CompiledSpeedList::LaneSweep {
  int lane = 0;  ///< 0=constant 1=linear 2=power 3=exp 4=unimodal 5=stepped
                 ///< 6=other
  const BatchLane* bl = nullptr;
  const SteppedLane* sl = nullptr;
  const std::vector<std::uint32_t>* other = nullptr;
  const detail::simd::SimdKernels* kern = nullptr;  ///< null => scalar batch
  std::size_t count = 0;
};

namespace {
/// Elements per parallel chunk — coarse enough that chunk handoff cost is
/// noise against ~512 intersect solves, small enough that p=4096 still
/// splits 8+ ways. Multiple of simd::kMaxLanes (chunk interiors then start
/// on vector boundaries at either width) and the size of the on-stack
/// result block below.
constexpr std::size_t kLaneChunk = 512;
static_assert(kLaneChunk % detail::simd::kMaxLanes == 0);

/// Per-backend slice of kPartitionBatchSimdEntries. The set of names is
/// fixed at compile time, so each resolves its registry slot once.
obs::Counter& backend_simd_entries_counter(const char* name) {
  static obs::Counter& portable = obs::metrics().counter(
      obs::names::kPartitionBatchSimdEntriesPortable);
  static obs::Counter& avx2 =
      obs::metrics().counter(obs::names::kPartitionBatchSimdEntriesAvx2);
  static obs::Counter& avx512 =
      obs::metrics().counter(obs::names::kPartitionBatchSimdEntriesAvx512);
  static obs::Counter& neon =
      obs::metrics().counter(obs::names::kPartitionBatchSimdEntriesNeon);
  if (std::strcmp(name, "avx512") == 0) return avx512;
  if (std::strcmp(name, "avx2") == 0) return avx2;
  if (std::strcmp(name, "neon") == 0) return neon;
  return portable;
}
}  // namespace

void CompiledSpeedList::lane_chunk_intersect(const LaneSweep& sweep,
                                             std::size_t begin,
                                             std::size_t end, double slope,
                                             std::span<double> out,
                                             std::int64_t& scalar_fixups) const {
  if (sweep.lane == 6) {
    for (std::size_t j = begin; j < end; ++j) {
      const std::uint32_t i = (*sweep.other)[j];
      out[i] = entry_intersect(entries_[i], slope);
    }
    return;
  }
  const std::size_t m = end - begin;
  if (sweep.lane >= 4) {
    // Bisection lanes. These families have no scalar *batch* kernel, so
    // scalar mode is the per-entry generic bisection — bit-identical to
    // the pre-lane behaviour, where these entries sat in batch_other_.
    const std::vector<std::uint32_t>& idx =
        sweep.lane == 4 ? sweep.bl->idx : sweep.sl->idx;
    if (sweep.kern == nullptr) {
      for (std::size_t j = begin; j < end; ++j)
        out[idx[j]] = entry_intersect(entries_[idx[j]], slope);
      return;
    }
    assert(begin % sweep.kern->width == 0 && m <= kLaneChunk);
    alignas(64) double block[kLaneChunk];
    const std::size_t mpad = detail::simd::padded_size(m, sweep.kern->width);
    if (sweep.lane == 4) {
      const BatchLane& bl = *sweep.bl;
      sweep.kern->unimodal_batch(bl.a.data() + begin, bl.b.data() + begin,
                                 bl.c.data() + begin, bl.d.data() + begin,
                                 bl.e.data() + begin, bl.f.data() + begin,
                                 mpad, slope, block);
    } else {
      // The slot-major slabs share the entry indexing of a/f, so offsetting
      // every slab pointer by `begin` (keeping the full-lane stride) lands
      // slot s of chunk element j at [s·stride + begin + j] as laid out.
      const SteppedLane& sl = *sweep.sl;
      sweep.kern->stepped_batch(sl.a.data() + begin, sl.f.data() + begin,
                                sl.at.data() + begin, sl.ratio.data() + begin,
                                sl.width.data() + begin, mpad, sl.stride,
                                sl.nslots, slope, block);
    }
    for (std::size_t j = 0; j < m; ++j) {
      double x = block[j];
      if (std::isnan(x)) {
        // Crossing at/beyond max_size: rerun the scalar bisection so the
        // bracket expansion and its saturation tally happen exactly as on
        // the per-entry path.
        x = entry_intersect(entries_[idx[begin + j]], slope);
        ++scalar_fixups;
      }
      out[idx[begin + j]] = x;
    }
    return;
  }
  const BatchLane& bl = *sweep.bl;
  if (sweep.kern == nullptr) {
    // Bit-exact scalar batch kernels over the chunk's sub-columns (the
    // kernels loop over idx.size(), so padding never enters).
    const std::span<const std::uint32_t> idx(bl.idx.data() + begin, m);
    switch (sweep.lane) {
      case 0:
        detail::constant_intersect_batch(idx, {bl.a.data() + begin, m}, slope,
                                         out);
        break;
      case 1:
        detail::linear_decay_intersect_batch(idx, {bl.a.data() + begin, m},
                                             {bl.b.data() + begin, m},
                                             {bl.c.data() + begin, m}, slope,
                                             out);
        break;
      case 2:
        detail::power_decay_intersect_batch(
            idx, {bl.a.data() + begin, m}, {bl.b.data() + begin, m},
            {bl.c.data() + begin, m}, {bl.d.data() + begin, m}, slope, out);
        break;
      default:
        detail::exp_decay_intersect_batch(idx, {bl.a.data() + begin, m},
                                          {bl.b.data() + begin, m},
                                          {bl.d.data() + begin, m}, slope,
                                          out);
        break;
    }
    return;
  }
  // Vector path: the kernel fills a dense on-stack block (begin is always a
  // multiple of the backend width — chunks step by kLaneChunk — and reading
  // up to the width-padded length stays inside the column because storage
  // is padded to kMaxLanes and only the final chunk has a ragged end). NaN
  // slots are the kernels' punt sentinel: recompute those with the exact
  // scalar kernel, then scatter through idx.
  assert(begin % sweep.kern->width == 0 && m <= kLaneChunk);
  alignas(64) double block[kLaneChunk];
  const std::size_t mpad = detail::simd::padded_size(m, sweep.kern->width);
  switch (sweep.lane) {
    case 0:
      sweep.kern->constant_batch(bl.a.data() + begin, mpad, slope, block);
      break;
    case 1:
      sweep.kern->linear_batch(bl.a.data() + begin, bl.b.data() + begin,
                               bl.c.data() + begin, mpad, slope, block);
      break;
    case 2:
      sweep.kern->power_batch(bl.a.data() + begin, bl.b.data() + begin,
                              bl.c.data() + begin, bl.d.data() + begin, mpad,
                              slope, block);
      break;
    default:
      sweep.kern->exp_batch(bl.a.data() + begin, bl.b.data() + begin, mpad,
                            slope, block);
      break;
  }
  if (sweep.lane <= 1) {
    // Constant/linear kernels never punt (pure IEEE arithmetic, no NaN
    // sentinels), so scatter without the fixup scan — the scan otherwise
    // costs as much as the division-bound kernels themselves.
    for (std::size_t j = 0; j < m; ++j) out[bl.idx[begin + j]] = block[j];
    return;
  }
  for (std::size_t j = 0; j < m; ++j) {
    double x = block[j];
    if (std::isnan(x)) {
      const std::size_t s = begin + j;
      if (sweep.lane == 2) {
        x = detail::power_decay_intersect(bl.a[s], bl.b[s], bl.c[s], bl.d[s],
                                          slope);
      } else {
        x = detail::exp_decay_intersect(bl.a[s], bl.b[s], bl.d[s], slope);
      }
      ++scalar_fixups;
    }
    out[bl.idx[begin + j]] = x;
  }
}

void CompiledSpeedList::intersect_all(double slope,
                                      std::span<double> out) const {
  assert(out.size() == entries_.size());
  const detail::simd::SimdKernels* kern = active_kernels();

  LaneSweep sweeps[7];
  std::size_t nsweeps = 0;
  const auto add_lane = [&](int lane, const BatchLane& bl) {
    if (!bl.empty())
      sweeps[nsweeps++] =
          LaneSweep{lane, &bl, nullptr, nullptr, kern, bl.idx.size()};
  };
  add_lane(0, lane_constant_);
  add_lane(1, lane_linear_);
  add_lane(2, lane_power_);
  add_lane(3, lane_exp_);
  add_lane(4, lane_unimodal_);
  if (!lane_stepped_.empty())
    sweeps[nsweeps++] = LaneSweep{5,    nullptr, &lane_stepped_,
                                  nullptr, kern, lane_stepped_.idx.size()};
  if (!batch_other_.empty())
    sweeps[nsweeps++] = LaneSweep{6,    nullptr, nullptr,
                                  &batch_other_, kern, batch_other_.size()};

  std::int64_t fixups = 0;
  bool split = false;
  if (entries_.size() >= parallel_intersect_threshold() &&
      detail::lane_pool_threads() > 0) {
    struct Task {
      const LaneSweep* sweep;
      std::size_t begin, end;
    };
    std::vector<Task> tasks;
    tasks.reserve(entries_.size() / kLaneChunk + nsweeps);
    for (std::size_t i = 0; i < nsweeps; ++i)
      for (std::size_t b = 0; b < sweeps[i].count; b += kLaneChunk)
        tasks.push_back(
            {&sweeps[i], b, std::min(b + kLaneChunk, sweeps[i].count)});
    split = tasks.size() > 1;
    std::atomic<std::int64_t> fix_total{0};
    std::atomic<std::int64_t> sat_total{0};
    detail::parallel_for_chunks(tasks.size(), [&](std::size_t t) {
      // Bracket saturations inside a chunk land on the executing pool
      // thread's tally; migrate each chunk's delta to the solving thread so
      // SearchState's snapshot sees them no matter where the chunk ran.
      std::int64_t local_fix = 0;
      std::int64_t& tally = detail::bracket_saturation_tally();
      const std::int64_t tally_before = tally;
      const Task& task = tasks[t];
      lane_chunk_intersect(*task.sweep, task.begin, task.end, slope, out,
                           local_fix);
      sat_total.fetch_add(tally - tally_before, std::memory_order_relaxed);
      tally = tally_before;
      if (local_fix != 0)
        fix_total.fetch_add(local_fix, std::memory_order_relaxed);
    });
    detail::bracket_saturation_tally() +=
        sat_total.load(std::memory_order_relaxed);
    fixups = fix_total.load(std::memory_order_relaxed);
  } else {
    for (std::size_t i = 0; i < nsweeps; ++i) {
      for (std::size_t b = 0; b < sweeps[i].count; b += kLaneChunk)
        lane_chunk_intersect(sweeps[i], b,
                             std::min(b + kLaneChunk, sweeps[i].count), slope,
                             out, fixups);
    }
  }

  // Lane occupancy / vector-path hit rate. Counter refs resolve once; the
  // per-backend split and the backend info gauge let dashboards tell which
  // variant the dispatch picked without scraping logs.
  static obs::Counter& c_simd =
      obs::metrics().counter(obs::names::kPartitionBatchSimdEntries);
  static obs::Counter& c_scalar =
      obs::metrics().counter(obs::names::kPartitionBatchScalarEntries);
  static obs::Counter& c_splits =
      obs::metrics().counter(obs::names::kPartitionBatchParallelSweeps);
  static obs::Gauge& g_backend =
      obs::metrics().gauge(obs::names::kPartitionBatchBackend);
  const auto batched =
      static_cast<std::int64_t>(entries_.size() - batch_other_.size());
  const auto other = static_cast<std::int64_t>(batch_other_.size());
  g_backend.set(static_cast<double>(
      static_cast<std::uint8_t>(active_simd_backend())));
  if (kern != nullptr) {
    c_simd.add(batched - fixups);
    backend_simd_entries_counter(kern->name).add(batched - fixups);
    if (other + fixups != 0) c_scalar.add(other + fixups);
  } else if (batched + other != 0) {
    c_scalar.add(batched + other);
  }
  if (split) c_splits.add(1);
}

void CompiledSpeedList::speed_all(std::span<const double> xs,
                                  std::span<double> out) const {
  assert(xs.size() == entries_.size() && out.size() == entries_.size());
  const detail::simd::SimdKernels* kern = active_kernels();
  const auto scalar_lane = [&](const std::vector<std::uint32_t>& idx) {
    for (const std::uint32_t i : idx) out[i] = entry_speed(entries_[i], xs[i]);
  };
  // Constant/linear/bisection-lane entries are cheap per-entry scalar
  // evaluations (a select, a division, a couple of multiplies); the libm
  // pow/exp of the power/exp lanes is where the sweep's time goes, so those
  // two lanes take the vector speed kernels when a backend is active.
  scalar_lane(lane_constant_.idx);
  scalar_lane(lane_linear_.idx);
  scalar_lane(lane_unimodal_.idx);
  scalar_lane(lane_stepped_.idx);
  scalar_lane(batch_other_);
  if (kern == nullptr) {
    scalar_lane(lane_power_.idx);
    scalar_lane(lane_exp_.idx);
    return;
  }
  // Gather xs through idx into a padded column (pad slots duplicate the
  // last real size: in-domain, never scattered back), run the kernel over
  // the whole lane, fix up NaN punts with the exact scalar evaluation.
  static thread_local detail::simd::LaneVector xbuf;
  static thread_local detail::simd::LaneVector rbuf;
  const auto vector_lane = [&](const BatchLane& bl, bool is_power) {
    const std::size_t count = bl.idx.size();
    if (count == 0) return;
    const std::size_t storage = detail::simd::padded_size(count);
    const std::size_t mpad = detail::simd::padded_size(count, kern->width);
    xbuf.resize(storage);
    rbuf.resize(storage);
    for (std::size_t j = 0; j < count; ++j) xbuf[j] = xs[bl.idx[j]];
    for (std::size_t j = count; j < storage; ++j) xbuf[j] = xbuf[count - 1];
    if (is_power) {
      kern->power_speed_batch(bl.a.data(), bl.b.data(), bl.c.data(),
                              xbuf.data(), mpad, rbuf.data());
    } else {
      kern->exp_speed_batch(bl.a.data(), bl.b.data(), xbuf.data(), mpad,
                            rbuf.data());
    }
    for (std::size_t j = 0; j < count; ++j) {
      double s = rbuf[j];
      if (std::isnan(s)) s = entry_speed(entries_[bl.idx[j]], xs[bl.idx[j]]);
      out[bl.idx[j]] = s;
    }
  };
  vector_lane(lane_power_, /*is_power=*/true);
  vector_lane(lane_exp_, /*is_power=*/false);
}

std::vector<double> speeds_at(const CompiledSpeedList& speeds,
                              std::span<const double> xs,
                              EvalCounters* counters) {
  std::vector<double> out(speeds.size());
  if (batched_kernels_enabled()) {
    speeds.speed_all(xs, out);
  } else {
    for (std::size_t i = 0; i < speeds.size(); ++i)
      out[i] = speeds.speed(i, xs[i]);
  }
  if (counters)
    counters->speed_evals += static_cast<std::int64_t>(speeds.size());
  return out;
}

std::vector<double> sizes_at(const CompiledSpeedList& speeds, double slope,
                             EvalCounters* counters) {
  std::vector<double> xs(speeds.size());
  if (batched_kernels_enabled()) {
    speeds.intersect_all(slope, xs);
  } else {
    for (std::size_t i = 0; i < speeds.size(); ++i)
      xs[i] = speeds.intersect(i, slope);
  }
  if (counters)
    counters->intersect_solves += static_cast<std::int64_t>(speeds.size());
  return xs;
}

double total_size_at(const CompiledSpeedList& speeds, double slope,
                     EvalCounters* counters) {
  double sum = 0.0;
  if (batched_kernels_enabled()) {
    // The batch fills a scratch row first so the final reduction still runs
    // in entry order: lane-local partial sums would reorder the floating-
    // point additions and break bit-identity with the per-entry path.
    static thread_local std::vector<double> scratch;
    scratch.resize(speeds.size());
    speeds.intersect_all(slope, scratch);
    for (const double x : scratch) sum += x;
  } else {
    for (std::size_t i = 0; i < speeds.size(); ++i)
      sum += speeds.intersect(i, slope);
  }
  if (counters)
    counters->intersect_solves += static_cast<std::int64_t>(speeds.size());
  return sum;
}

SlopeBracket detect_bracket(const CompiledSpeedList& speeds, std::int64_t n,
                            EvalCounters* counters) {
  // Line-for-line the SpeedList overload in partition.cpp (including its
  // counting profile: one speed probe per processor, one solve batch per
  // expansion test) so that the two paths report identical stats.
  if (speeds.size() == 0)
    throw std::invalid_argument("detect_bracket: no speeds");
  if (n < 1) throw std::invalid_argument("detect_bracket: n must be >= 1");
  const double p = static_cast<double>(speeds.size());
  const double probe = static_cast<double>(n) / p;
  double s_min = std::numeric_limits<double>::infinity();
  double s_max = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double s = speeds.speed(i, std::min(probe, speeds.max_size(i)));
    s_min = std::min(s_min, s);
    s_max = std::max(s_max, s);
  }
  if (counters)
    counters->speed_evals += static_cast<std::int64_t>(speeds.size());
  SlopeBracket br;
  br.hi_slope = s_max / probe;
  br.lo_slope = s_min / probe;
  if (br.lo_slope <= 0.0) br.lo_slope = br.hi_slope * 1e-12;
  const double nd = static_cast<double>(n);
  for (int i = 0; i < 256 && total_size_at(speeds, br.hi_slope, counters) > nd;
       ++i)
    br.hi_slope *= 2.0;
  for (int i = 0; i < 256 && total_size_at(speeds, br.lo_slope, counters) < nd;
       ++i)
    br.lo_slope *= 0.5;
  if (br.lo_slope > br.hi_slope) std::swap(br.lo_slope, br.hi_slope);
  return br;
}

}  // namespace fpm::core
