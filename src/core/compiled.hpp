// Compiled speed models: a SpeedList flattened into contiguous,
// tag-dispatched arrays so the partitioners' hot loops run without virtual
// calls and with closed-form intersections wherever a family has one.
//
// CompiledSpeedList::compile() recognizes every analytic family shipped in
// core/speed_function.hpp plus PiecewiseLinearSpeed (whose breakpoints are
// re-laid out as structure-of-arrays slabs with a branchless segment
// lookup), and one level of ScaledSpeed / GranularSpeed / GranularSpeedView
// wrapping around them. Anything else falls back to a Generic entry that
// forwards to the original virtual object, so compilation is total: every
// SpeedList compiles, and the result is bit-identical to the virtual path
// because both sides evaluate the shared kernels of
// detail/speed_kernels.hpp (asserted in tests).
//
// detail::SearchState compiles its input once per search (toggled by
// set_compiled_partitioning()), which makes all five registry algorithms
// benefit transparently; the batch/server layer (core/server.hpp) reuses
// the fingerprint() content hash as its cache key.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/speed_function.hpp"
#include "util/aligned.hpp"

namespace fpm::core {

/// Counters incremented at the SpeedFunction boundary: one per speed(x)
/// evaluation and one per c·x = s(x) solve, exactly the accounting of
/// PartitionStats::speed_evals / intersect_solves. Evaluations *inside* a
/// solve (e.g. the probes of a generic bisection) are not counted, matching
/// the virtual CountingSpeedView semantics.
struct EvalCounters {
  std::int64_t speed_evals = 0;
  std::int64_t intersect_solves = 0;
};

class CompiledSpeedList {
 public:
  /// Which evaluation kernel an entry dispatches to.
  enum class Family : std::uint8_t {
    Generic,      ///< unknown subclass: forwards to the virtual object
    Constant,
    LinearDecay,
    PowerDecay,
    ExpDecay,
    Unimodal,
    Stepped,
    Piecewise,
  };

  /// How the entry's kernel is wrapped (one level deep).
  enum class Wrap : std::uint8_t {
    None,
    Scaled,    ///< speed = factor · inner(x)
    Granular,  ///< speed = inner(x·k) / k, max_size = inner's / k
  };

  /// Flattens `speeds` into compiled entries. The input objects must
  /// outlive the compiled list (Generic entries keep pointers; all entries
  /// keep one for introspection).
  static CompiledSpeedList compile(const SpeedList& speeds);

  std::size_t size() const noexcept { return entries_.size(); }
  Family family(std::size_t i) const noexcept { return entries_[i].family; }
  Wrap wrap(std::size_t i) const noexcept { return entries_[i].wrap; }
  double max_size(std::size_t i) const noexcept {
    return entries_[i].max_size;
  }
  /// The original object behind entry i.
  const SpeedFunction* base(std::size_t i) const noexcept {
    return entries_[i].base;
  }
  /// True when no entry needed the Generic virtual fallback.
  bool fully_compiled() const noexcept { return generic_entries_ == 0; }
  std::size_t generic_entries() const noexcept { return generic_entries_; }

  /// Absolute speed of processor i at size x — switch-dispatched, no
  /// virtual call except for Generic entries.
  double speed(std::size_t i, double x) const;

  /// Solves slope·x = s_i(x), using the family's closed form where one
  /// exists and the shared generic bisection otherwise.
  double intersect(std::size_t i, double slope) const;

  /// Solves slope·x = s_i(x) for every entry in one structure-of-arrays
  /// pass: the closed-form families (Constant, LinearDecay, PowerDecay,
  /// ExpDecay, unwrapped) plus parameter-vetted unwrapped Unimodal/Stepped
  /// entries run out of contiguous parameter lanes built at compile time —
  /// through the vector kernels (detail/simd.hpp) when SIMD is enabled,
  /// the scalar batch kernels / per-entry bisection otherwise — and the
  /// remaining entries fall back to the per-entry dispatch. out.size()
  /// must equal size(). With set_simd_kernels(false) (or FPM_SIMD=OFF)
  /// this is bit-identical to calling intersect(i, slope) per entry;
  /// with SIMD on, Constant/LinearDecay lanes and the piecewise scan stay
  /// bit-identical while PowerDecay/ExpDecay roots and the Unimodal/
  /// Stepped bisections may differ by a few ULP (decision boundaries are
  /// punted to the exact scalar kernels — see SimdBackend below and
  /// docs/performance.md).
  void intersect_all(double slope, std::span<double> out) const;

  /// Evaluates speed(i, xs[i]) for every entry in one pass — the fine-tune
  /// epilogue's hot loop (core/finetune.cpp seeds its award heap from one
  /// such sweep instead of p virtual calls). The PowerDecay/ExpDecay lanes
  /// gather their sizes and run the vector speed kernels (NaN punts fixed
  /// up scalar, same contract as intersect_all); every other entry takes
  /// the per-entry dispatch, which is bit-identical to speed(i, xs[i]).
  /// With SIMD off (or set_batched_kernels(false)) the whole sweep is the
  /// per-entry loop, bit-identical to calling speed() yourself.
  void speed_all(std::span<const double> xs, std::span<double> out) const;

  /// How many entries run through a batch lane (the rest take the
  /// per-entry fallback inside intersect_all).
  std::size_t batched_entries() const noexcept {
    return entries_.size() - batch_other_.size();
  }

  /// Content hash over (family, wrap, parameters, breakpoints) of every
  /// entry, in order — equal model lists hash equal regardless of object
  /// identity. Generic entries hash their object address instead (identity
  /// semantics), which is safe for caching within one process but means
  /// two structurally equal unknown subclasses never share a cache line.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// The fingerprint `compile(speeds)` would produce, computed without
  /// materializing the compiled entries or SoA pools (no allocations).
  /// This is the cache-key fast path of core/server.hpp: a cache hit needs
  /// only the key, so it must not pay for a full compilation. compile()
  /// itself delegates here, keeping one hashing routine.
  static std::uint64_t fingerprint_of(const SpeedList& speeds);

 private:
  struct Entry {
    Family family = Family::Generic;
    Wrap wrap = Wrap::None;
    double wrap_param = 1.0;  ///< Scaled: factor; Granular: elements/item
    double max_size = 0.0;    ///< after wrapping
    // Analytic parameters (meaning depends on family):
    //   Constant     a = s0
    //   LinearDecay  a = s0, b = B (inner max_size), c = floor
    //   PowerDecay   a = s0, b = x0, c = k, d = inner max_size
    //   ExpDecay     a = s0, b = lambda, d = inner max_size
    //   Unimodal     a = s_low, b = s_peak, c = x_peak (+ pool: x0, k)
    //   Stepped      a = s0; steps in the step pool
    //   Piecewise    breakpoints in the SoA pools; a = floor, b = tail slope
    double a = 0.0, b = 0.0, c = 0.0, d = 0.0;
    std::uint32_t offset = 0;  ///< first pool index (piecewise/stepped/aux)
    std::uint32_t count = 0;   ///< pool element count
    const SpeedFunction* base = nullptr;
  };

  double raw_speed(const Entry& e, double x) const;
  double entry_speed(const Entry& e, double x) const;
  double entry_intersect(const Entry& e, double slope) const;

  /// One SoA lane of the batch plan: the destination entry indices plus the
  /// parameter columns the family's batch kernel consumes. Columns are
  /// 64-byte aligned and padded to detail::simd::kMaxLanes — the *widest*
  /// compiled vector width, so the runtime-dispatched backend can stream
  /// whole registers at either width without reading past the pool (pad
  /// slots duplicate the last real element); idx keeps the real entry
  /// count. The scalar batch kernels simply ignore the padding (they loop
  /// over idx.size()). e/f are only populated for the unimodal lane
  /// (d=decay_x0, e=decay_exponent, f=max_size).
  struct BatchLane {
    using Column = std::vector<double, util::AlignedAllocator<double, 64>>;
    std::vector<std::uint32_t> idx;
    Column a, b, c, d, e, f;
    bool empty() const noexcept { return idx.empty(); }
  };

  /// SoA lane for vetted Stepped entries: per-entry s0/max_size columns
  /// plus slot-major step slabs (`nslots` columns of `stride` doubles; the
  /// s-th step of entry j lives at [s·stride + j]). Entries with more than
  /// kMaxVecSteps steps, or with parameters outside the vector kernels'
  /// domain, stay in batch_other_ ("irregular" punt at compile time).
  /// Unused slots hold the identity step (at=+inf, ratio=1, width=1);
  /// `ratio` is the step's to/level factor precomputed at compile time —
  /// the same division the scalar kernel performs per evaluation.
  struct SteppedLane {
    using Column = std::vector<double, util::AlignedAllocator<double, 64>>;
    std::vector<std::uint32_t> idx;
    Column a, f;                ///< s0, max_size (padded like BatchLane)
    Column at, ratio, width;    ///< nslots × stride slot-major slabs
    std::size_t nslots = 0;
    std::size_t stride = 0;     ///< padded idx count (kMaxLanes multiple)
    bool empty() const noexcept { return idx.empty(); }
  };

  /// Most steps a SteppedSpeed may have and still ride the vector lane.
  static constexpr std::size_t kMaxVecSteps = 8;

  struct LaneSweep;  // one chunk-parallel batch task (compiled.cpp)
  void lane_chunk_intersect(const LaneSweep& sweep, std::size_t begin,
                            std::size_t end, double slope,
                            std::span<double> out,
                            std::int64_t& scalar_fixups) const;

  std::vector<Entry> entries_;
  // Batch plan for intersect_all(), grouped at compile time: one lane per
  // closed-form family (unwrapped entries only), bisection lanes for the
  // vetted unimodal/stepped entries, and an index list for everything else.
  BatchLane lane_constant_;
  BatchLane lane_linear_;
  BatchLane lane_power_;
  BatchLane lane_exp_;
  BatchLane lane_unimodal_;
  SteppedLane lane_stepped_;
  std::vector<std::uint32_t> batch_other_;
  // Piecewise SoA slabs (all functions concatenated; entry.offset/count
  // delimit a function's breakpoints, segment i spans [i, i+1]):
  std::vector<double> px_;  ///< breakpoint sizes
  std::vector<double> ps_;  ///< breakpoint speeds
  std::vector<double> pm_;  ///< per-segment slopes (count-1 per function)
  // Stepped pool:
  std::vector<SteppedSpeed::Step> steps_;
  // Auxiliary analytic parameters that overflow Entry::a..d (Unimodal):
  std::vector<double> aux_;
  std::size_t generic_entries_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// Non-owning SpeedFunction adaptor over one compiled entry, so compiled
/// models can flow through any API expecting a SpeedList (fine-tuning, the
/// makespan helpers, tests). When `counters` is non-null every call is
/// counted at the same boundary as detail::CountingSpeedView.
class CompiledEntryView final : public SpeedFunction {
 public:
  CompiledEntryView(const CompiledSpeedList& list, std::size_t index,
                    EvalCounters* counters = nullptr)
      : list_(&list), index_(index), counters_(counters) {}

  double speed(double x) const override {
    if (counters_) ++counters_->speed_evals;
    return list_->speed(index_, x);
  }
  double max_size() const override { return list_->max_size(index_); }
  double intersect(double slope) const override {
    if (counters_) ++counters_->intersect_solves;
    return list_->intersect(index_, slope);
  }

 private:
  const CompiledSpeedList* list_;
  std::size_t index_;
  EvalCounters* counters_;
};

/// Compiled counterparts of the SpeedList helpers in core/partition.hpp —
/// same loops, same numbers, optional counting (pass nullptr to skip it).
/// `counters` is deliberately not defaulted: two-argument calls must keep
/// resolving to the SpeedList overloads (e.g. detect_bracket({}, n)).
std::vector<double> sizes_at(const CompiledSpeedList& speeds, double slope,
                             EvalCounters* counters);
double total_size_at(const CompiledSpeedList& speeds, double slope,
                     EvalCounters* counters);
SlopeBracket detect_bracket(const CompiledSpeedList& speeds, std::int64_t n,
                            EvalCounters* counters);

/// Batched counterpart of `speeds.speed(i, xs[i])` per entry (one
/// CompiledSpeedList::speed_all sweep, counted like p boundary
/// evaluations). The fine-tune epilogue's seeding pass.
std::vector<double> speeds_at(const CompiledSpeedList& speeds,
                              std::span<const double> xs,
                              EvalCounters* counters);

/// Process-wide switch (default on) selecting whether detail::SearchState
/// runs on compiled models or on the original virtual objects. The two
/// paths are bit-identical; the switch exists for benchmarks (measuring the
/// virtual-dispatch baseline) and for the equivalence tests.
bool compiled_partitioning_enabled() noexcept;
void set_compiled_partitioning(bool enabled) noexcept;

/// Process-wide switch (default on) selecting whether the compiled
/// sizes_at/total_size_at helpers evaluate a candidate line through
/// CompiledSpeedList::intersect_all (the SoA batch plan) or entry by entry.
/// Bit-identical either way; off measures the per-entry dispatch baseline.
bool batched_kernels_enabled() noexcept;
void set_batched_kernels(bool enabled) noexcept;

/// Which vector implementation intersect_all's batch lanes are running on.
enum class SimdBackend : std::uint8_t {
  Disabled,  ///< FPM_SIMD=OFF build, or set_simd_kernels(false)
  Portable,  ///< GCC vector-extension codegen under the baseline flags
  Avx2,      ///< AVX2+FMA 4-wide variant (runtime-dispatched or -march)
  Avx512,    ///< AVX-512F/DQ 8-wide variant (runtime-dispatched or -march)
  Neon,      ///< AArch64 baseline codegen (the portable variant's name there)
};

/// Lower-case name for CLI/JSON/metrics surfaces: "off", "portable",
/// "avx2", "avx512", "neon".
const char* to_string(SimdBackend backend) noexcept;

/// Forces intersect_all's vector dispatch onto one backend at runtime.
/// Accepts "auto" (clear any override, re-enable SIMD), "off"
/// (set_simd_kernels(false)), or a backend name ("portable", "avx2",
/// "avx512", "neon"). Throws std::invalid_argument when the name is not a
/// variant compiled into this build or the CPU lacks the instruction set —
/// the mechanism behind `fpmtool partition --simd=...` and the
/// FPM_SIMD_BACKEND environment override (read once, at the first batch
/// dispatch; invalid environment values are ignored by the library and
/// rejected loudly by fpmtool).
void force_simd_backend(std::string_view name);

/// Process-wide switch (default on) selecting whether the batch lanes of
/// intersect_all run the vector kernels of detail/simd.hpp or the scalar
/// batch kernels. Unlike the two toggles above this one is NOT bit-neutral:
/// the vector power/exp kernels replace libm with polynomial exp/log and
/// may differ from the scalar path in the last ULPs (the constant/linear
/// lanes and the piecewise scan stay bit-identical). set_simd_kernels(false)
/// is the bit-exact scalar mode; the SIMD mode is gated by toleranced
/// equivalence plus exact optimality invariants in tests/test_simd.cpp.
/// Per-entry intersect(i, slope) is always scalar and bit-identical to the
/// virtual path regardless of this switch.
bool simd_kernels_enabled() noexcept;
void set_simd_kernels(bool enabled) noexcept;

/// True when the build carries the vector kernels at all (FPM_SIMD=ON),
/// independent of the runtime toggle.
bool simd_kernels_available() noexcept;

/// The backend intersect_all would use right now.
SimdBackend active_simd_backend() noexcept;

/// Entry-count threshold (default 1024) above which intersect_all splits
/// its batch lanes into chunks across the detail lane pool (the calling
/// thread participates; with no helper threads the sweep stays serial).
/// Results are bit-identical either way: chunks write disjoint ranges and
/// reductions stay in entry order.
std::size_t parallel_intersect_threshold() noexcept;
void set_parallel_intersect_threshold(std::size_t entries) noexcept;

/// RAII thread-local hint installing an already-compiled model for a
/// specific SpeedList: while in scope, detail::SearchState construction
/// over an *identical* list (same pointers, same order) reuses `compiled`
/// instead of compiling again. The batch server compiles each request once
/// and wraps the engine call in a guard, halving the per-miss compile work;
/// nested guards save and restore the outer hint. `speeds` and `compiled`
/// must outlive the guard.
class PrecompiledGuard {
 public:
  PrecompiledGuard(const SpeedList& speeds,
                   const CompiledSpeedList& compiled) noexcept;
  ~PrecompiledGuard();
  PrecompiledGuard(const PrecompiledGuard&) = delete;
  PrecompiledGuard& operator=(const PrecompiledGuard&) = delete;

 private:
  const SpeedList* prev_speeds_;
  const CompiledSpeedList* prev_compiled_;
};

/// The currently installed hint when it was built from `speeds` (element-
/// wise pointer equality); nullptr otherwise.
const CompiledSpeedList* precompiled_match(const SpeedList& speeds) noexcept;

}  // namespace fpm::core
