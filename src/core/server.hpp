// Concurrent partitioning service: a fixed worker pool and a sharded LRU
// result cache in front of the core::partition() engine, with per-request
// latency SLOs — deadlines, priorities, admission control, load shedding,
// and degraded answers under overload.
//
// Production deployments of the partitioner (schedulers, rebalancing loops,
// what-if explorers) issue many partition calls against a small set of
// recurring (model, n, policy) triples. PartitionServer answers repeats
// from a thread-safe cache keyed by the CompiledSpeedList content
// fingerprint and fans cache misses out over a fixed pool of worker
// threads. Full answers are bit-identical to calling core::partition()
// directly: the cache stores exactly what the engine returned.
//
// When offered load exceeds capacity the server degrades deliberately
// instead of letting the queue grow without bound:
//   - a QueueDelayEstimator (EWMA of observed service times per priority
//     class, times the queue depth ahead of the newcomer) predicts each
//     request's completion time at submission;
//   - the admission controller sheds requests that cannot meet their
//     deadline — and a bounded queue displaces the lowest-priority,
//     latest-deadline request first;
//   - instead of rejecting outright, a sheddable request whose model
//     fingerprint has been solved before is answered from the hint store:
//     the previous distribution linearly rescaled to the requested n,
//     tagged with a computed relative-error bound (core/slo.hpp) so the
//     caller can decide whether to accept the approximation.
// Every request submitted with an SLO ends in exactly one of three
// buckets — admitted (full answer), degraded, or shed — so
//     offered == admitted + degraded + shed
// holds at all times (slo_stats(), mirrored in obs::metrics()).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/policy.hpp"
#include "core/slo.hpp"
#include "obs/metrics.hpp"

namespace fpm::core {

/// One partitioning problem of a batch. The speed-function objects are
/// borrowed: they must stay alive until the request's result is available
/// (run_batch() and drain() both guarantee the pool is done with them
/// before returning; the destructor sheds still-queued requests without
/// touching their models).
struct BatchRequest {
  SpeedList speeds;
  std::int64_t n = 0;
  PartitionPolicy policy{};
  /// Deadline / priority / degradation consent. Default: no deadline —
  /// always admitted (subject to queue capacity), never expires.
  Slo slo{};
};

struct ServerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
  /// Total cached results across all shards; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Lock shards; more shards = less contention, slightly coarser LRU.
  std::size_t cache_shards = 16;
  /// Keep a per-fingerprint slope hint beside the result cache and install
  /// it as a PartitionHint on cache misses, so near-miss traffic (same
  /// models, nearby n or different tuning) warm-starts instead of solving
  /// cold. Results stay bit-identical; only the search cost changes.
  /// Observer-carrying policies always run cold and never update hints.
  /// The hint store also feeds the degraded-answer path.
  bool warm_start = true;
  /// Total remembered per-fingerprint hints across all hint shards; the
  /// store evicts least-recently-used entries beyond this (like the result
  /// cache), so fingerprint churn cannot grow it without bound. Minimum 1
  /// per shard.
  std::size_t hint_capacity = 4096;
  /// Upper bound on queued (not yet running) requests; 0 = unbounded.
  /// When the queue is full, a submission displaces the lowest-priority,
  /// latest-deadline request — which is degraded or shed.
  std::size_t max_queue_depth = 0;
  /// EWMA weight of the newest service-time sample in the queue-delay
  /// estimator (0 < alpha <= 1).
  double ewma_alpha = 0.2;
  /// Safety factor on the predicted completion time during admission; a
  /// request is shed when predicted * admission_slack exceeds its budget.
  /// > 1 sheds earlier (protects the deadline against estimate error),
  /// < 1 gambles on the estimate being pessimistic.
  double admission_slack = 1.0;
};

/// Aggregate cache counters (monotonic except `entries`/`hint_entries`).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  /// Requests that bypassed the cache: observer-carrying policies (their
  /// step-trace side effects must fire on every call) and every request
  /// served with caching disabled (cache_capacity = 0). Counted so that
  /// hits + misses + uncacheable always equals the serve() call count.
  std::int64_t uncacheable = 0;
  std::size_t entries = 0;  ///< currently cached results
  /// Warm-start hint store occupancy and LRU evictions (bounded by
  /// ServerOptions::hint_capacity).
  std::size_t hint_entries = 0;
  std::int64_t hint_evictions = 0;
};

/// SLO accounting for requests submitted through the deadline-aware entry
/// points (submit/run_batch/serve_slo; the plain serve() overload has no
/// SLO semantics and is not counted here). All monotonic.
/// Invariant: offered == admitted + degraded + shed.
struct SloStats {
  std::int64_t offered = 0;   ///< SLO requests received
  std::int64_t admitted = 0;  ///< answered in full by the engine (or cache)
  std::int64_t degraded = 0;  ///< answered approximately from the hint store
  std::int64_t shed = 0;      ///< not answered; the per-reason split below
  std::int64_t shed_admission = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_expired = 0;
  std::int64_t shed_shutdown = 0;
  /// Answers (full or degraded) delivered after their deadline.
  std::int64_t deadline_misses = 0;
  /// Most recent queue-delay estimate (seconds, Normal priority).
  double queue_delay_estimate_s = 0.0;
};

/// Sharded, thread-safe LRU map from partition-request keys to results.
/// Each shard is an independently locked list+index pair, so concurrent
/// lookups of different keys rarely contend; eviction is LRU per shard.
class PartitionCache {
 public:
  PartitionCache(std::size_t capacity, std::size_t shards);

  /// True plus a copy of the cached result on a hit (the entry becomes the
  /// shard's most recently used); false on a miss. Counts either way.
  bool lookup(const std::string& key, PartitionResult& out);

  /// Like lookup(), but a miss is not counted — for opportunistic probes
  /// (the admission fast path) whose miss will be followed by a counted
  /// lookup or an explicit miss on the serving path.
  bool peek(const std::string& key, PartitionResult& out);

  /// Inserts or refreshes `key`, evicting the shard's least recently used
  /// entry beyond capacity. Concurrent same-key inserts keep one winner.
  /// Returns true when the insert displaced an existing entry.
  bool insert(const std::string& key, const PartitionResult& value);

  void clear();
  CacheStats stats() const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// The canonical cache key: compiled-model fingerprint | n | formatted
  /// policy | capacity bounds. Policies with equal fingerprints, n, and
  /// observable options map to the same entry.
  static std::string make_key(std::uint64_t fingerprint, std::int64_t n,
                              const PartitionPolicy& policy);
  /// Convenience overload fingerprinting `speeds` first (no compilation —
  /// CompiledSpeedList::fingerprint_of is allocation-free).
  static std::string make_key(const SpeedList& speeds, std::int64_t n,
                              const PartitionPolicy& policy);

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used; pairs of (key, result).
    std::list<std::pair<std::string, PartitionResult>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, PartitionResult>>::iterator>
        index;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };

  bool find(const std::string& key, PartitionResult& out, bool count_miss);
  Shard& shard_for(const std::string& key);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

/// A long-lived partitioning service: serve() for synchronous calls on the
/// caller's thread, serve_slo() for synchronous deadline-aware calls,
/// submit()/run_batch() to fan work out over the pool with admission
/// control. All entry points share the cache and may be called
/// concurrently.
class PartitionServer {
 public:
  explicit PartitionServer(ServerOptions options = {});

  /// Sheds every still-queued request (ShedReason::Shutdown — their
  /// promises are fulfilled, never broken), lets in-flight requests
  /// finish, and joins the pool.
  ~PartitionServer();

  PartitionServer(const PartitionServer&) = delete;
  PartitionServer& operator=(const PartitionServer&) = delete;

  /// Partitions on the calling thread, consulting the cache first. A
  /// cache hit returns the stored result verbatim (the key is computed via
  /// the allocation-free fingerprint, no compilation); a miss compiles the
  /// model once, computes via core::partition() under a PrecompiledGuard
  /// (so the engine reuses the compilation), and stores. With warm_start on
  /// (the default), misses whose fingerprint was solved before — near-miss
  /// traffic: same models, nearby n — carry the remembered slope into the
  /// engine as a PartitionHint, which narrows the search without changing
  /// the distribution. Policies carrying an observer always compute cold
  /// (their callbacks must fire) and are never cached; with caching
  /// disabled every request counts as uncacheable but still warm-starts.
  /// Every call records its latency in the serve-latency histogram.
  /// No SLO semantics: never shed, never degraded, not in slo_stats().
  PartitionResult serve(const SpeedList& speeds, std::int64_t n,
                        const PartitionPolicy& policy = {});

  /// Synchronous deadline-aware serve on the calling thread. Admission
  /// consults the service-time estimate only (no queue is involved): a
  /// request whose deadline is shorter than the predicted solve is
  /// degraded (hint store permitting) or shed without spending the solve.
  /// Admitted requests run exactly like serve() and additionally report
  /// latency and deadline_met.
  ServeResult serve_slo(const SpeedList& speeds, std::int64_t n,
                        const PartitionPolicy& policy = {}, Slo slo = {});

  /// Enqueues one request for the worker pool. The borrowed speed objects
  /// must outlive the future's completion. Engine exceptions (e.g. unknown
  /// algorithm id) surface through future::get(); such requests count as
  /// admitted.
  ///
  /// Requests carrying a deadline are admission-controlled at submission
  /// (predicted completion past the deadline => degraded or shed without
  /// queueing) and re-checked at dispatch (deadline already passed =>
  /// degraded or shed without solving). The queue serves highest priority
  /// first, earliest deadline within a class; when max_queue_depth is
  /// reached, the lowest-priority latest-deadline request (possibly the
  /// incoming one) is displaced. Every outcome fulfils the future — a
  /// shed request yields ServeStatus::Shed, never a broken promise.
  std::future<ServeResult> submit(BatchRequest request);

  /// Runs the whole batch over the pool; result i answers request i —
  /// shed and degraded entries are explicitly marked in place, never
  /// reordered or dropped. Every future is drained before the first engine
  /// exception (if any) is rethrown, so the borrowed speed objects of the
  /// batch are guaranteed unreferenced by the pool once this returns —
  /// normally or by exception.
  std::vector<ServeResult> run_batch(std::vector<BatchRequest> requests);

  /// Blocks until every queued and in-flight request has completed, or
  /// until `timeout` elapses — at which point every still-queued request
  /// is degraded or shed (ShedReason::Shutdown) and the in-flight ones are
  /// awaited. Returns true when the queue fully drained by work, false
  /// when the timeout shed anything. The server stays usable afterwards.
  bool drain(std::chrono::nanoseconds timeout);

  unsigned threads() const noexcept { return threads_; }
  /// Cache counters including the server-side uncacheable tally and the
  /// hint-store occupancy/evictions.
  CacheStats cache_stats() const;
  /// SLO accounting (offered == admitted + degraded + shed).
  SloStats slo_stats() const;
  /// The admission controller's current completion-time prediction for a
  /// request of `priority` joining the queue now (seconds).
  double predicted_delay(Priority priority) const;
  void clear_cache() { cache_.clear(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// Queue order: higher priority first (negated enum), then earliest
  /// deadline, then submission order. rbegin() is therefore the shedding
  /// victim: lowest priority, latest deadline, newest.
  using JobKey = std::tuple<int, Clock::time_point, std::uint64_t>;

  struct QueuedJob {
    BatchRequest request;
    std::promise<ServeResult> promise;
    Clock::time_point submitted{};
    Clock::time_point deadline{};  ///< time_point::max() when none
  };

  void worker_loop();
  void execute(QueuedJob job);
  /// Degraded (hint store permitting and slo.allow_degraded) or Shed
  /// outcome for a request that will not get a full solve; unaccounted.
  ServeResult resolve_shed(const BatchRequest& request, ShedReason reason);
  /// Builds a degraded answer for the request from the hint store; nullopt
  /// when no usable previous solution exists.
  std::optional<ServeResult> try_degrade(const BatchRequest& request);
  /// resolve_shed + account + fulfil, for a job leaving the queue.
  void degrade_or_shed(QueuedJob&& job, ShedReason reason);
  /// Removes and returns every queued job (caller fulfils the promises).
  /// Adjusts the per-class counts and the queue-depth gauge.
  std::vector<QueuedJob> steal_queue_locked();

  /// Cached references into the process registry (stable for its
  /// lifetime), so the hot path never takes the registry lock.
  struct Metrics {
    obs::Histogram& serve_latency;
    obs::Gauge& queue_depth;
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& evictions;
    obs::Counter& uncacheable;
    obs::Counter& hint_evictions;
    obs::Counter& slo_offered;
    obs::Counter& slo_admitted;
    obs::Counter& slo_degraded;
    obs::Counter& slo_shed_admission;
    obs::Counter& slo_shed_queue_full;
    obs::Counter& slo_shed_expired;
    obs::Counter& slo_shed_shutdown;
    obs::Counter& slo_deadline_misses;
    obs::Gauge& slo_queue_delay_us;
  };

  /// The remembered previous solution for one model fingerprint: the slope
  /// that warm-starts the search, plus the distribution the degraded-
  /// answer path rescales. `baseline_iterations` tracks the last *cold*
  /// solve so iterations_saved compares warm runs against what they
  /// replaced, not against each other.
  struct SlopeHint {
    double slope = 0.0;
    std::int64_t n = 0;
    int baseline_iterations = 0;
    std::vector<std::int64_t> counts;
  };
  /// LRU-bounded hint shard (mirrors the result cache's structure):
  /// fingerprint churn evicts the least recently touched hint and bumps
  /// the server.hints.evicted counter.
  struct HintShard {
    mutable std::mutex mu;
    std::list<std::pair<std::uint64_t, SlopeHint>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, SlopeHint>>::iterator>
        index;
  };

  /// The stored hint for `fingerprint`, packaged for PartitionPolicy.
  std::optional<PartitionHint> lookup_hint(std::uint64_t fingerprint);
  /// The stored previous distribution for `fingerprint` (degradation
  /// source), when one exists for exactly `p` processors.
  std::optional<SlopeHint> lookup_degradation(std::uint64_t fingerprint,
                                              std::size_t p);
  /// Refreshes the stored hint from a just-computed result (no-op for
  /// results whose final_slope does not describe the full problem).
  void update_hint(std::uint64_t fingerprint, std::int64_t n,
                   const PartitionResult& result);
  /// Runs the engine under `guard` semantics with the per-fingerprint hint
  /// installed (when warm-starting is on) and refreshes the hint after.
  PartitionResult partition_with_hint(const SpeedList& speeds, std::int64_t n,
                                      const PartitionPolicy& policy,
                                      std::uint64_t fingerprint);

  /// Shared bookkeeping for an SLO answer: latency, deadline verdict, the
  /// outcome counters, and the estimator sample (full solves only).
  void account(ServeResult& outcome, Clock::time_point submitted,
               Clock::time_point deadline, Priority priority);

  unsigned threads_;
  PartitionCache cache_;
  Metrics metrics_;
  bool warm_start_;
  std::size_t hint_shard_capacity_;
  std::size_t max_queue_depth_;
  double admission_slack_;
  QueueDelayEstimator estimator_;
  std::array<HintShard, 16> hint_shards_;
  std::atomic<std::int64_t> uncacheable_{0};
  std::atomic<std::int64_t> hint_evictions_{0};

  // SLO accounting (per server; the obs registry aggregates all servers).
  std::atomic<std::int64_t> slo_offered_{0};
  std::atomic<std::int64_t> slo_admitted_{0};
  std::atomic<std::int64_t> slo_degraded_{0};
  std::atomic<std::int64_t> slo_shed_admission_{0};
  std::atomic<std::int64_t> slo_shed_queue_full_{0};
  std::atomic<std::int64_t> slo_shed_expired_{0};
  std::atomic<std::int64_t> slo_shed_shutdown_{0};
  std::atomic<std::int64_t> slo_deadline_misses_{0};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  ///< work available / stopping
  std::condition_variable idle_cv_;   ///< queue empty and nothing in flight
  std::map<JobKey, QueuedJob> queue_;
  std::array<std::size_t, kPriorityClasses> queued_per_class_{};
  std::size_t inflight_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// One-shot convenience: spins up a PartitionServer with `options`, runs
/// the batch, and tears the pool down. For recurring traffic keep a
/// PartitionServer alive instead, so the cache persists across batches.
std::vector<ServeResult> partition_batch(std::vector<BatchRequest> requests,
                                         const ServerOptions& options = {});

}  // namespace fpm::core
