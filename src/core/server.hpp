// Concurrent batch partitioning: a fixed worker pool plus a sharded LRU
// result cache in front of the core::partition() engine.
//
// Production deployments of the partitioner (schedulers, rebalancing loops,
// what-if explorers) issue many partition calls against a small set of
// recurring (model, n, policy) triples. PartitionServer answers repeats from
// a thread-safe cache keyed by the CompiledSpeedList content fingerprint —
// two structurally equal model lists share entries regardless of object
// identity — and fans cache misses out over a fixed pool of worker threads.
// Results are bit-identical to calling core::partition() directly: the
// cache stores exactly what the engine returned, stats included.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/policy.hpp"
#include "obs/metrics.hpp"

namespace fpm::core {

/// One partitioning problem of a batch. The speed-function objects are
/// borrowed: they must stay alive until the request's result is available.
struct BatchRequest {
  SpeedList speeds;
  std::int64_t n = 0;
  PartitionPolicy policy{};
};

struct ServerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
  /// Total cached results across all shards; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Lock shards; more shards = less contention, slightly coarser LRU.
  std::size_t cache_shards = 16;
  /// Keep a per-fingerprint slope hint beside the result cache and install
  /// it as a PartitionHint on cache misses, so near-miss traffic (same
  /// models, nearby n or different tuning) warm-starts instead of solving
  /// cold. Results stay bit-identical; only the search cost changes.
  /// Observer-carrying policies always run cold and never update hints.
  bool warm_start = true;
};

/// Aggregate cache counters (monotonic except `entries`).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  /// Requests that bypassed the cache: observer-carrying policies (their
  /// step-trace side effects must fire on every call) and every request
  /// served with caching disabled (cache_capacity = 0). Counted so that
  /// hits + misses + uncacheable always equals the serve() call count.
  std::int64_t uncacheable = 0;
  std::size_t entries = 0;  ///< currently cached results
};

/// Sharded, thread-safe LRU map from partition-request keys to results.
/// Each shard is an independently locked list+index pair, so concurrent
/// lookups of different keys rarely contend; eviction is LRU per shard.
class PartitionCache {
 public:
  PartitionCache(std::size_t capacity, std::size_t shards);

  /// True plus a copy of the cached result on a hit (the entry becomes the
  /// shard's most recently used); false on a miss. Counts either way.
  bool lookup(const std::string& key, PartitionResult& out);

  /// Inserts or refreshes `key`, evicting the shard's least recently used
  /// entry beyond capacity. Concurrent same-key inserts keep one winner.
  /// Returns true when the insert displaced an existing entry.
  bool insert(const std::string& key, const PartitionResult& value);

  void clear();
  CacheStats stats() const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// The canonical cache key: compiled-model fingerprint | n | formatted
  /// policy | capacity bounds. Policies with equal fingerprints, n, and
  /// observable options map to the same entry.
  static std::string make_key(std::uint64_t fingerprint, std::int64_t n,
                              const PartitionPolicy& policy);
  /// Convenience overload fingerprinting `speeds` first (no compilation —
  /// CompiledSpeedList::fingerprint_of is allocation-free).
  static std::string make_key(const SpeedList& speeds, std::int64_t n,
                              const PartitionPolicy& policy);

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used; pairs of (key, result).
    std::list<std::pair<std::string, PartitionResult>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, PartitionResult>>::iterator>
        index;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

/// A long-lived partitioning service: serve() for synchronous calls on the
/// caller's thread, submit()/run_batch() to fan work out over the pool.
/// All entry points share the cache and may be called concurrently.
class PartitionServer {
 public:
  explicit PartitionServer(ServerOptions options = {});
  ~PartitionServer();

  PartitionServer(const PartitionServer&) = delete;
  PartitionServer& operator=(const PartitionServer&) = delete;

  /// Partitions on the calling thread, consulting the cache first. A
  /// cache hit returns the stored result verbatim (the key is computed via
  /// the allocation-free fingerprint, no compilation); a miss compiles the
  /// model once, computes via core::partition() under a PrecompiledGuard
  /// (so the engine reuses the compilation), and stores. With warm_start on
  /// (the default), misses whose fingerprint was solved before — near-miss
  /// traffic: same models, nearby n — carry the remembered slope into the
  /// engine as a PartitionHint, which narrows the search without changing
  /// the distribution. Policies carrying an observer always compute cold
  /// (their callbacks must fire) and are never cached; with caching
  /// disabled every request counts as uncacheable but still warm-starts.
  /// Every call records its latency in the serve-latency histogram.
  PartitionResult serve(const SpeedList& speeds, std::int64_t n,
                        const PartitionPolicy& policy = {});

  /// Enqueues one request for the worker pool. The borrowed speed objects
  /// must outlive the future's completion. Exceptions thrown by the engine
  /// (e.g. unknown algorithm id) surface through future::get().
  std::future<PartitionResult> submit(BatchRequest request);

  /// Runs the whole batch over the pool and returns results in request
  /// order, rethrowing the first engine exception encountered (in request
  /// order). Every future is drained before any rethrow, so the borrowed
  /// speed objects of the batch are guaranteed unreferenced by the pool
  /// once this returns — normally or by exception.
  std::vector<PartitionResult> run_batch(std::vector<BatchRequest> requests);

  unsigned threads() const noexcept { return threads_; }
  /// Cache counters including the server-side uncacheable tally.
  CacheStats cache_stats() const;
  void clear_cache() { cache_.clear(); }

 private:
  void worker_loop();

  /// Cached references into the process registry (stable for its
  /// lifetime), so the hot path never takes the registry lock.
  struct Metrics {
    obs::Histogram& serve_latency;
    obs::Gauge& queue_depth;
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& evictions;
    obs::Counter& uncacheable;
  };

  /// The remembered slope for one model fingerprint. `baseline_iterations`
  /// tracks the last *cold* solve so iterations_saved compares warm runs
  /// against what they replaced, not against each other.
  struct SlopeHint {
    double slope = 0.0;
    std::int64_t n = 0;
    int baseline_iterations = 0;
  };
  struct HintShard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, SlopeHint> map;
  };

  /// The stored hint for `fingerprint`, packaged for PartitionPolicy.
  std::optional<PartitionHint> lookup_hint(std::uint64_t fingerprint);
  /// Refreshes the stored hint from a just-computed result (no-op for
  /// results whose final_slope does not describe the full problem).
  void update_hint(std::uint64_t fingerprint, std::int64_t n,
                   const PartitionResult& result);
  /// Runs the engine under `guard` semantics with the per-fingerprint hint
  /// installed (when warm-starting is on) and refreshes the hint after.
  PartitionResult partition_with_hint(const SpeedList& speeds, std::int64_t n,
                                      const PartitionPolicy& policy,
                                      std::uint64_t fingerprint);

  unsigned threads_;
  PartitionCache cache_;
  Metrics metrics_;
  bool warm_start_;
  std::array<HintShard, 16> hint_shards_;
  std::atomic<std::int64_t> uncacheable_{0};
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::packaged_task<PartitionResult()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// One-shot convenience: spins up a PartitionServer with `options`, runs
/// the batch, and tears the pool down. For recurring traffic keep a
/// PartitionServer alive instead, so the cache persists across batches.
std::vector<PartitionResult> partition_batch(std::vector<BatchRequest> requests,
                                             const ServerOptions& options = {});

}  // namespace fpm::core
