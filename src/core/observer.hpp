// Shared search instrumentation for the partitioner family: an optional
// per-step callback (SearchObserver) invoked by the bracketing line search
// for every bracket/slope decision it takes, plus StepTrace, a bounded
// in-memory log built on the callback. All members of the family (basic,
// modified, combined, interpolation, and the residual solves of bounded)
// report through the same channel, so a trace reads identically whichever
// algorithm produced it.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace fpm::core {

/// Sentinel for SearchStep::processor when the step is not tied to one
/// specific speed graph.
inline constexpr std::size_t kNoProcessor =
    std::numeric_limits<std::size_t>::max();

/// What kind of decision a recorded search step was.
enum class SearchStepKind {
  Bracket,     ///< the initial Figure-18 bracket (iteration 0, no split)
  Basic,       ///< angle/tangent bisection of the slope interval
  Modified,    ///< space-of-solutions step through a graph's size midpoint
  Custom,      ///< caller-chosen slope (the interpolation search)
  Degenerate,  ///< interval at round-off width; no usable split existed
};

/// Short lower-case name of a step kind (stable, for traces and CLIs).
constexpr const char* to_string(SearchStepKind kind) {
  switch (kind) {
    case SearchStepKind::Bracket:
      return "bracket";
    case SearchStepKind::Basic:
      return "basic";
    case SearchStepKind::Modified:
      return "modified";
    case SearchStepKind::Custom:
      return "custom";
    case SearchStepKind::Degenerate:
      return "degenerate";
  }
  return "?";
}

/// One bracket/slope decision of the line search. The initial bracket is
/// reported once with kind Bracket and iteration 0; every subsequent record
/// carries the iteration count *after* the step, so the last record's
/// iteration equals PartitionStats::iterations for single-search
/// algorithms (bounded runs one search per residual round; the per-round
/// iterations then sum to the stats).
struct SearchStep {
  int iteration = 0;
  SearchStepKind kind = SearchStepKind::Bracket;
  double slope = 0.0;     ///< slope evaluated (Bracket: the steep endpoint)
  double lo_slope = 0.0;  ///< slope bracket after the step
  double hi_slope = 0.0;
  std::int64_t interior = 0;  ///< candidate solutions still in the region
  bool kept_low = false;      ///< optimum retained in the shallower half
  std::size_t processor = kNoProcessor;  ///< Modified: which graph was split
};

/// Optional per-step callback. An empty function disables instrumentation
/// (the search then skips the O(p) interior count a record would need).
using SearchObserver = std::function<void(const SearchStep&)>;

/// A bounded step log: records up to `max_steps` steps and keeps counting
/// past the cap, so the totals stay exact even when the log is truncated.
class StepTrace {
 public:
  explicit StepTrace(std::size_t max_steps = 4096) : max_steps_(max_steps) {}

  /// The callback to install in a policy or options struct. The trace must
  /// outlive the partitioning call.
  SearchObserver observer() {
    return [this](const SearchStep& step) { record(step); };
  }

  void record(const SearchStep& step) {
    if (step.kind == SearchStepKind::Bracket)
      ++brackets_;
    else
      ++search_steps_;
    if (steps_.size() < max_steps_)
      steps_.push_back(step);
    else
      truncated_ = true;
  }

  const std::vector<SearchStep>& steps() const noexcept { return steps_; }
  /// Non-bracket steps seen (monotone; equals PartitionStats::iterations).
  std::int64_t search_steps() const noexcept { return search_steps_; }
  /// Bracket records seen (one per line search started).
  std::int64_t brackets() const noexcept { return brackets_; }
  bool truncated() const noexcept { return truncated_; }

  void clear() {
    steps_.clear();
    search_steps_ = 0;
    brackets_ = 0;
    truncated_ = false;
  }

 private:
  std::size_t max_steps_;
  std::int64_t search_steps_ = 0;
  std::int64_t brackets_ = 0;
  bool truncated_ = false;
  std::vector<SearchStep> steps_;
};

}  // namespace fpm::core
