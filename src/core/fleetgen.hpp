// Synthetic heterogeneous fleet generator: builds a p-machine SpeedList
// from a seed and a family mix, with no hand-written spec files. This is
// how the thousand-rank scaling studies (bench/ablation_simd, the p=4096
// tests, `fpmtool gen-fleet`) get realistic-shaped model populations: every
// machine draws a family, a baseline speed, and a capacity from a
// deterministic SplitMix64 stream, so (p, seed, mix) fully reproduces the
// fleet on any platform — results can be compared across runs and CI legs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/speed_function.hpp"

namespace fpm::core {

/// Relative draw weights for each model family (normalized internally; an
/// all-zero mix degrades to constant-only). The default is closed-form
/// heavy — 90% of entries land in the four batched SoA lanes — matching
/// the fleets the SIMD bench gate measures.
struct FleetMix {
  double constant = 0.10;
  double linear_decay = 0.25;
  double power_decay = 0.30;
  double exp_decay = 0.25;
  double piecewise = 0.07;
  double stepped = 0.03;
};

/// An owning generated fleet. `owned` keeps the models alive; list() is the
/// non-owning view every partitioning API consumes.
struct SyntheticFleet {
  std::vector<std::shared_ptr<const SpeedFunction>> owned;
  SpeedList list() const {
    SpeedList l;
    l.reserve(owned.size());
    for (const auto& f : owned) l.push_back(f.get());
    return l;
  }
};

/// Generates p heterogeneous models. Baseline speeds are log-uniform over
/// [50, 5000] (two decades of heterogeneity), capacities log-uniform over
/// [1e6, 1e9], per-family shape parameters drawn to keep every model valid
/// (strictly decreasing speed(x)/x). Deterministic in (p, seed, mix).
SyntheticFleet make_synthetic_fleet(std::size_t p, std::uint64_t seed,
                                    const FleetMix& mix = {});

}  // namespace fpm::core
