#include "core/surface.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpm::core {

ShapeInvariantSurface::ShapeInvariantSurface(
    std::shared_ptr<const SpeedFunction> by_elements,
    double aspect_sensitivity)
    : by_elements_(std::move(by_elements)),
      aspect_sensitivity_(aspect_sensitivity) {
  if (!by_elements_ || aspect_sensitivity < 0.0)
    throw std::invalid_argument("ShapeInvariantSurface: invalid parameters");
}

double ShapeInvariantSurface::speed(double n1, double n2) const {
  const double elements = n1 * n2;
  double s = by_elements_->speed(elements);
  if (aspect_sensitivity_ > 0.0 && n1 > 0.0 && n2 > 0.0) {
    const double aspect = std::abs(std::log(n1 / n2));
    s /= 1.0 + aspect_sensitivity_ * aspect;
  }
  return s;
}

double ShapeInvariantSurface::max_n1(double n2) const {
  if (!(n2 > 0.0))
    throw std::invalid_argument("ShapeInvariantSurface: n2 must be > 0");
  return by_elements_->max_size() / n2;
}

FixedParamSpeed::FixedParamSpeed(std::shared_ptr<const SpeedSurface> surface,
                                 double n2)
    : surface_(std::move(surface)), n2_(n2) {
  if (!surface_ || !(n2 > 0.0))
    throw std::invalid_argument("FixedParamSpeed: invalid parameters");
}

double FixedParamSpeed::speed(double x) const {
  const double n1 = std::max(x, 0.0) / n2_;
  return surface_->speed(n1, n2_);
}

double FixedParamSpeed::max_size() const {
  return surface_->max_n1(n2_) * n2_;
}

}  // namespace fpm::core
