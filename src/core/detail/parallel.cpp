#include "core/detail/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace fpm::core::detail {

namespace {

// -1 = unset (resolve from hardware_concurrency at pool start).
std::atomic<int> g_requested_threads{-1};

unsigned default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

class LanePool {
 public:
  ~LanePool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Starts helpers on first call (count fixed then); returns helper count.
  unsigned ensure_started() {
    std::call_once(start_once_, [this] {
      const int requested = g_requested_threads.load(std::memory_order_relaxed);
      started_threads_ =
          requested >= 0 ? static_cast<unsigned>(requested) : default_threads();
      threads_.reserve(started_threads_);
      for (unsigned i = 0; i < started_threads_; ++i)
        threads_.emplace_back([this] { worker(); });
    });
    return started_threads_;
  }

  void run(std::size_t chunk_count,
           const std::function<void(std::size_t)>& fn) {
    // One sweep at a time; a second solving thread queues behind the first
    // rather than interleaving chunks of two jobs.
    std::lock_guard<std::mutex> run_lk(run_mu_);
    std::unique_lock<std::mutex> lk(mu_);
    job_ = &fn;
    total_ = chunk_count;
    next_ = 0;
    completed_ = 0;
    cv_work_.notify_all();
    // The caller participates: claim chunks until none remain, then wait
    // for helpers to finish theirs.
    while (next_ < total_) {
      const std::size_t chunk = next_++;
      lk.unlock();
      fn(chunk);
      lk.lock();
      ++completed_;
    }
    cv_done_.wait(lk, [this] { return completed_ == total_; });
    job_ = nullptr;
  }

 private:
  void worker() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_work_.wait(lk, [this] {
        return stop_ || (job_ != nullptr && next_ < total_);
      });
      if (stop_) return;
      const std::size_t chunk = next_++;
      const auto* fn = job_;
      lk.unlock();
      (*fn)(chunk);
      lk.lock();
      if (++completed_ == total_) cv_done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes whole sweeps
  std::mutex mu_;      // protects the fields below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t total_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;
  std::once_flag start_once_;
  unsigned started_threads_ = 0;
  std::vector<std::thread> threads_;
};

LanePool& pool() {
  static LanePool instance;
  return instance;
}

}  // namespace

void set_lane_pool_threads(unsigned n) noexcept {
  g_requested_threads.store(static_cast<int>(n), std::memory_order_relaxed);
}

unsigned lane_pool_threads() noexcept {
  const int requested = g_requested_threads.load(std::memory_order_relaxed);
  return requested >= 0 ? static_cast<unsigned>(requested)
                        : default_threads();
}

void parallel_for_chunks(std::size_t chunk_count,
                         const std::function<void(std::size_t)>& fn) {
  if (chunk_count < 2 || lane_pool_threads() == 0) {
    for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) fn(chunk);
    return;
  }
  auto& p = pool();
  if (p.ensure_started() == 0) {
    for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) fn(chunk);
    return;
  }
  p.run(chunk_count, fn);
}

}  // namespace fpm::core::detail
