#include "core/detail/search_state.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/detail/speed_kernels.hpp"

namespace fpm::core::detail {

namespace {

// Warm-bracket tuning. The first probes straddle the hinted slope at
// 1 ± ~2^-12 (≈0.02%) — tight enough that a near-exact hint leaves only a
// handful of integers inside the bracket and the bisection finishes in a
// few steps. Each side that fails to straddle n widens quartically in log
// space (2^-12 → 2^-10 → 2^-8 → ...), so percent-level drift costs two or
// three extra line solves and the abandon threshold (spread 16x) is
// reached after seven widenings. The budget caps the line solves a garbage
// hint can burn before the search falls back to the cold bracket.
constexpr double kWarmInitialSpread = 1.0 + 0x1p-12;
constexpr double kWarmMaxSpread = 16.0;
constexpr int kWarmProbeBudget = 12;

}  // namespace

SearchState::SearchState(const SpeedList& speeds, std::int64_t n,
                         const SearchObserver* observer,
                         const PartitionHint* hint)
    : n_(static_cast<double>(n)),
      saturation_base_(bracket_saturation_tally()),
      observer_(observer) {
  speeds_.reserve(speeds.size());
  if (compiled_partitioning_enabled()) {
    // Compiled mode: flatten once, then run the bracket detection and both
    // initial line solves on the devirtualized kernels. The entry views only
    // exist so counted_speeds() keeps its SpeedList shape for fine-tuning.
    // A PrecompiledGuard hint for this exact list (the batch server compiles
    // each request once up front) short-circuits the compilation entirely.
    if (const CompiledSpeedList* pre = precompiled_match(speeds)) {
      compiled_ = pre;
    } else {
      compiled_storage_.emplace(CompiledSpeedList::compile(speeds));
      compiled_ = &*compiled_storage_;
    }
    entry_views_.reserve(speeds.size());
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      entry_views_.emplace_back(*compiled_, i, &counters_);
      speeds_.push_back(&entry_views_.back());
    }
  } else {
    views_.reserve(speeds.size());
    for (const SpeedFunction* f : speeds) {
      views_.emplace_back(*f, &counters_.speed_evals,
                          &counters_.intersect_solves);
      speeds_.push_back(&views_.back());
    }
  }
  if (hint != nullptr && hint->usable())
    warmstart_ =
        try_warm_bracket(*hint, n, speeds) ? WarmStart::Hit : WarmStart::Stale;
  if (warmstart_ != WarmStart::Hit) {
    if (compiled_ != nullptr) {
      bracket_ = detect_bracket(*compiled_, n, &counters_);
      small_ = sizes_at(*compiled_, bracket_.hi_slope, &counters_);
      large_ = sizes_at(*compiled_, bracket_.lo_slope, &counters_);
    } else {
      bracket_ = detect_bracket(speeds_, n);
      small_ = sizes_at(speeds_, bracket_.hi_slope);
      large_ = sizes_at(speeds_, bracket_.lo_slope);
    }
  }
  intersections_ += static_cast<int>(2 * speeds_.size());
  if (observing())
    emit(SearchStepKind::Bracket, bracket_.hi_slope, false, kNoProcessor);
}

std::int64_t SearchState::bracket_saturations() const noexcept {
  return bracket_saturation_tally() - saturation_base_;
}

bool SearchState::try_warm_bracket(const PartitionHint& hint, std::int64_t n,
                                   const SpeedList& original) {
  // A hint computed against different models is stale by definition; the
  // fingerprint check catches silent model swaps behind an unchanged call
  // site. fingerprint == 0 opts out (callers whose curves legitimately
  // change every round rely on the bracket verification below instead).
  if (hint.fingerprint != 0) {
    const std::uint64_t fp = compiled_ != nullptr
                                 ? compiled_->fingerprint()
                                 : CompiledSpeedList::fingerprint_of(original);
    if (fp != hint.fingerprint) return false;
  }
  // When n drifted, rescale: sizes at a slope scale roughly like 1/slope,
  // so the new optimum sits near slope·(old n / new n).
  double center = hint.slope;
  if (hint.n > 0 && hint.n != n)
    center *= static_cast<double>(hint.n) / static_cast<double>(n);
  if (!std::isfinite(center) || center <= 0.0) return false;

  const double nd = static_cast<double>(n);
  int budget = kWarmProbeBudget;
  const auto solve = [&](double slope, std::vector<double>& sizes) {
    sizes = compiled_ != nullptr ? sizes_at(*compiled_, slope, &counters_)
                                 : sizes_at(speeds_, slope);
    --budget;
    double total = 0.0;
    for (const double x : sizes) total += x;
    return total;
  };

  // Steep side: need total <= n at hi. A good hint verifies on the first
  // probe; otherwise widen until it does or the spread says the optimum
  // moved too far for the hint to be worth anything.
  double f_hi = kWarmInitialSpread;
  double hi = center * f_hi;
  std::vector<double> hi_sizes;
  double hi_total = solve(hi, hi_sizes);
  while (hi_total > nd && budget > 0) {
    f_hi *= f_hi;
    f_hi *= f_hi;
    if (f_hi > kWarmMaxSpread) return false;
    hi = center * f_hi;
    if (!std::isfinite(hi)) return false;
    hi_total = solve(hi, hi_sizes);
  }
  if (hi_total > nd) return false;

  // Shallow side: need total >= n at lo.
  double f_lo = kWarmInitialSpread;
  double lo = center / f_lo;
  std::vector<double> lo_sizes;
  double lo_total = solve(lo, lo_sizes);
  while (lo_total < nd && budget > 0) {
    f_lo *= f_lo;
    f_lo *= f_lo;
    if (f_lo > kWarmMaxSpread) return false;
    lo = center / f_lo;
    if (!(lo > 0.0)) return false;
    lo_total = solve(lo, lo_sizes);
  }
  if (lo_total < nd) return false;

  bracket_.lo_slope = lo;
  bracket_.hi_slope = hi;
  small_ = std::move(hi_sizes);
  large_ = std::move(lo_sizes);
  return true;
}

std::int64_t SearchState::interior_count(std::size_t i) const {
  // Integers k with small[i] < k <= large[i].
  const double lo = small_[i];
  const double hi = large_[i];
  if (hi <= lo) return 0;
  return static_cast<std::int64_t>(std::floor(hi)) -
         static_cast<std::int64_t>(std::floor(lo));
}

std::int64_t SearchState::total_interior() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < speeds_.size(); ++i) total += interior_count(i);
  return total;
}

bool SearchState::converged() const {
  // No integer strictly inside (small[i], large[i]) for any processor. A
  // candidate equal to a bracket endpoint is already represented by that
  // line, so strict interiority is the right test.
  for (std::size_t i = 0; i < speeds_.size(); ++i) {
    double k = std::floor(large_[i]);
    if (k == large_[i]) k -= 1.0;  // want strictly below the shallow line
    if (k > small_[i]) return false;
  }
  return true;
}

void SearchState::emit(SearchStepKind kind, double slope, bool kept_low,
                       std::size_t processor) const {
  SearchStep step;
  step.iteration = iterations_;
  step.kind = kind;
  step.slope = slope;
  step.lo_slope = bracket_.lo_slope;
  step.hi_slope = bracket_.hi_slope;
  step.interior = total_interior();
  step.kept_low = kept_low;
  step.processor = processor;
  (*observer_)(step);
}

void SearchState::split_at(double slope, SearchStepKind kind,
                           std::size_t processor) {
  ++iterations_;
  std::vector<double> sizes = compiled_
                                  ? sizes_at(*compiled_, slope, &counters_)
                                  : sizes_at(speeds_, slope);
  intersections_ += static_cast<int>(speeds_.size());
  double sum = 0.0;
  for (const double x : sizes) sum += x;
  bool kept_low;
  if (sum < n_) {
    // Line too steep: the optimum lies in the shallower (lower) region.
    bracket_.hi_slope = slope;
    small_ = std::move(sizes);
    kept_low = true;
  } else {
    bracket_.lo_slope = slope;
    large_ = std::move(sizes);
    kept_low = false;
  }
  if (observing()) emit(kind, slope, kept_low, processor);
}

void SearchState::degenerate_step(double slope) {
  ++iterations_;
  if (observing())
    emit(SearchStepKind::Degenerate, slope, false, kNoProcessor);
}

void SearchState::step_basic(bool bisect_angles) {
  double mid;
  if (bisect_angles) {
    const double theta =
        0.5 * (std::atan(bracket_.lo_slope) + std::atan(bracket_.hi_slope));
    mid = std::tan(theta);
  } else {
    mid = 0.5 * (bracket_.lo_slope + bracket_.hi_slope);
  }
  // Guard against a degenerate midpoint (possible once the interval reaches
  // round-off width): nudge to the geometric mean, then give up gracefully
  // by reusing an endpoint, which converged() will catch via the x-brackets.
  if (!(mid > bracket_.lo_slope) || !(mid < bracket_.hi_slope))
    mid = std::sqrt(bracket_.lo_slope * bracket_.hi_slope);
  if (!(mid > bracket_.lo_slope) || !(mid < bracket_.hi_slope)) {
    degenerate_step(mid);
    return;
  }
  split_at(mid, SearchStepKind::Basic);
}

void SearchState::step_custom(double slope) {
  if (!(slope > bracket_.lo_slope) || !(slope < bracket_.hi_slope))
    slope = 0.5 * (bracket_.lo_slope + bracket_.hi_slope);
  if (!(slope > bracket_.lo_slope) || !(slope < bracket_.hi_slope)) {
    degenerate_step(slope);
    return;
  }
  split_at(slope, SearchStepKind::Custom);
}

void SearchState::step_modified() {
  // Processor whose graph carries the most candidate solutions.
  std::size_t best = 0;
  std::int64_t best_count = -1;
  for (std::size_t i = 0; i < speeds_.size(); ++i) {
    const std::int64_t c = interior_count(i);
    if (c > best_count) {
      best_count = c;
      best = i;
    }
  }
  const double m = 0.5 * (small_[best] + large_[best]);
  double slope = m > 0.0 ? speeds_[best]->speed(m) / m : 0.0;
  // m lies strictly between the two intersections of graph `best`, so by the
  // decreasing-ratio property the new slope lies strictly inside the slope
  // interval; re-bisect on tangents if round-off breaks that.
  if (slope > bracket_.lo_slope && slope < bracket_.hi_slope) {
    split_at(slope, SearchStepKind::Modified, best);
    return;
  }
  slope = 0.5 * (bracket_.lo_slope + bracket_.hi_slope);
  if (!(slope > bracket_.lo_slope) || !(slope < bracket_.hi_slope)) {
    degenerate_step(slope);
    return;
  }
  split_at(slope, SearchStepKind::Basic);
}

}  // namespace fpm::core::detail
