// Compiles the vector kernels of simd_kernels.inc once per code-generation
// variant and resolves the best one for this process at first use.
//
//  - `portable`: built with the translation unit's baseline flags. On a
//    default x86-64 build that means SSE2 codegen from the same source; on
//    an explicit -march=x86-64-v3 (or NEON) build the "portable" variant
//    already carries the wide instructions, so no second variant is needed
//    and its table is named accordingly.
//  - `avx2`: on x86-64 GCC builds *without* AVX2 in the baseline, the same
//    source is recompiled under `#pragma GCC target("avx2,fma")` and picked
//    at runtime via __builtin_cpu_supports, so stock builds still run AVX2
//    on the machines that have it.
//
// FPM_SIMD=OFF defines FPM_SIMD_DISABLED and strips every variant: the
// resolver returns nullptr and core/compiled.* stays on the scalar batch
// kernels of speed_kernels.hpp.

#include "core/detail/simd.hpp"

#ifndef FPM_SIMD_DISABLED

#include <cmath>
#include <cstdint>

namespace fpm::core::detail::simd {

// The 256-bit vector types are passed between `static` helpers inside this
// translation unit only, so GCC's "AVX vector return without AVX enabled
// changes the ABI" warning (-Wpsabi) does not apply: nothing with a vector
// signature is visible across TU boundaries (the kKernels entry points take
// and return scalars/pointers).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace portable {
#ifdef __AVX2__
#define FPM_SIMD_VARIANT_NAME "avx2"  // baseline flags already target AVX2
#else
#define FPM_SIMD_VARIANT_NAME "portable"
#endif
#include "core/detail/simd_kernels.inc"
#undef FPM_SIMD_VARIANT_NAME
}  // namespace portable

#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    !defined(__AVX2__)
#define FPM_SIMD_HAVE_AVX2_VARIANT 1
#pragma GCC push_options
#pragma GCC target("avx2,fma")
namespace avx2 {
#define FPM_SIMD_VARIANT_NAME "avx2"
#include "core/detail/simd_kernels.inc"
#undef FPM_SIMD_VARIANT_NAME
}  // namespace avx2
#pragma GCC pop_options
#endif

#pragma GCC diagnostic pop

const SimdKernels* resolved_simd_kernels() noexcept {
  static const SimdKernels* const chosen = [] {
#ifdef FPM_SIMD_HAVE_AVX2_VARIANT
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return &avx2::kKernels;
#endif
    return &portable::kKernels;
  }();
  return chosen;
}

}  // namespace fpm::core::detail::simd

#else  // FPM_SIMD_DISABLED

namespace fpm::core::detail::simd {

const SimdKernels* resolved_simd_kernels() noexcept { return nullptr; }

}  // namespace fpm::core::detail::simd

#endif  // FPM_SIMD_DISABLED
