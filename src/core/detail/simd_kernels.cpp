// Compiles the vector kernels of simd_kernels.inc once per code-generation
// variant (each at its own FPM_SIMD_WIDTH) and resolves the active one for
// this process at first use, with a test/CLI-visible registry and a forcing
// hook on top.
//
//  - `portable`: built with the translation unit's baseline flags at 4
//    doubles per vector. On a default x86-64 build that means SSE2 codegen
//    from the same source; on an AArch64 build the baseline codegen IS the
//    NEON instruction set, so the table is named "neon"; on an explicit
//    -march=x86-64-v3 build the "portable" variant already carries AVX2 and
//    is named accordingly.
//  - `avx2`: on x86-64 GCC builds *without* AVX2 in the baseline, the same
//    source is recompiled at width 4 under `#pragma GCC target("avx2,fma")`
//    and picked at runtime via __builtin_cpu_supports.
//  - `avx512`: on x86-64 GCC builds the source is compiled a third time at
//    width 8 under `#pragma GCC target("avx512f,avx512dq")` (avx512dq
//    supplies the packed int64<->double conversions vexp/vlog lean on); when
//    the baseline already carries both features (-march=x86-64-v4) the
//    pragma is skipped and the 8-wide variant compiles under the baseline.
//
// Runtime dispatch prefers avx512 > avx2 > portable among the variants the
// CPU supports; set_forced_simd_variant (driven by core::force_simd_backend
// and the FPM_SIMD_BACKEND environment override) pins one explicitly.
//
// FPM_SIMD=OFF defines FPM_SIMD_DISABLED and strips every variant: the
// resolver returns nullptr, the registry is empty, and core/compiled.*
// stays on the scalar batch kernels of speed_kernels.hpp.

#include "core/detail/simd.hpp"

#include <atomic>
#include <cstring>

#ifndef FPM_SIMD_DISABLED

#include <cmath>
#include <cstdint>

namespace fpm::core::detail::simd {

// The wide vector types are passed between `static` helpers inside this
// translation unit only, so GCC's "vector return without AVX/AVX-512
// enabled changes the ABI" warning (-Wpsabi) does not apply: nothing with a
// vector signature is visible across TU boundaries (the kKernels entry
// points take and return scalars/pointers).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace portable {
#define FPM_SIMD_WIDTH 4
#if defined(__aarch64__)
#define FPM_SIMD_VARIANT_NAME "neon"  // baseline AArch64 codegen is NEON
#elif defined(__AVX2__)
#define FPM_SIMD_VARIANT_NAME "avx2"  // baseline flags already target AVX2
#else
#define FPM_SIMD_VARIANT_NAME "portable"
#endif
#include "core/detail/simd_kernels.inc"
#undef FPM_SIMD_VARIANT_NAME
#undef FPM_SIMD_WIDTH
}  // namespace portable

#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    !defined(__AVX2__)
#define FPM_SIMD_HAVE_AVX2_VARIANT 1
#pragma GCC push_options
#pragma GCC target("avx2,fma")
namespace avx2 {
#define FPM_SIMD_WIDTH 4
#define FPM_SIMD_VARIANT_NAME "avx2"
#include "core/detail/simd_kernels.inc"
#undef FPM_SIMD_VARIANT_NAME
#undef FPM_SIMD_WIDTH
}  // namespace avx2
#pragma GCC pop_options
#endif

#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__)
#define FPM_SIMD_HAVE_AVX512_VARIANT 1
#if !(defined(__AVX512F__) && defined(__AVX512DQ__))
#define FPM_SIMD_AVX512_PUSHED 1
#pragma GCC push_options
#pragma GCC target("avx512f,avx512dq")
#endif
namespace avx512 {
#define FPM_SIMD_WIDTH 8
#define FPM_SIMD_VARIANT_NAME "avx512"
#include "core/detail/simd_kernels.inc"
#undef FPM_SIMD_VARIANT_NAME
#undef FPM_SIMD_WIDTH
}  // namespace avx512
#ifdef FPM_SIMD_AVX512_PUSHED
#pragma GCC pop_options
#undef FPM_SIMD_AVX512_PUSHED
#endif
#endif

#pragma GCC diagnostic pop

namespace {

// Best-first: the runtime dispatch walks this in order and takes the first
// CPU-supported variant.
const SimdKernels* const kVariants[] = {
#ifdef FPM_SIMD_HAVE_AVX512_VARIANT
    &avx512::kKernels,
#endif
#ifdef FPM_SIMD_HAVE_AVX2_VARIANT
    &avx2::kKernels,
#endif
    &portable::kKernels,
};

std::atomic<const SimdKernels*> g_forced{nullptr};

}  // namespace

std::span<const SimdKernels* const> compiled_simd_variants() noexcept {
  return kVariants;
}

bool simd_variant_supported(const SimdKernels& k) noexcept {
#if defined(__GNUC__) && defined(__x86_64__)
  if (std::strcmp(k.name, "avx512") == 0)
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
  if (std::strcmp(k.name, "avx2") == 0)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif
  // portable/neon run on the baseline ISA the whole binary already
  // requires; off-x86 builds carry no runtime-dispatched variants.
  (void)k;
  return true;
}

const SimdKernels* find_simd_variant(std::string_view name) noexcept {
  for (const SimdKernels* k : kVariants)
    if (name == k->name) return k;
  return nullptr;
}

void set_forced_simd_variant(const SimdKernels* k) noexcept {
  g_forced.store(k, std::memory_order_relaxed);
}

const SimdKernels* resolved_simd_kernels() noexcept {
  if (const SimdKernels* f = g_forced.load(std::memory_order_relaxed))
    return f;
  static const SimdKernels* const chosen = [] {
    for (const SimdKernels* k : kVariants)
      if (simd_variant_supported(*k)) return k;
    return &portable::kKernels;  // unreachable: portable is always supported
  }();
  return chosen;
}

}  // namespace fpm::core::detail::simd

#else  // FPM_SIMD_DISABLED

namespace fpm::core::detail::simd {

const SimdKernels* resolved_simd_kernels() noexcept { return nullptr; }

std::span<const SimdKernels* const> compiled_simd_variants() noexcept {
  return {};
}

bool simd_variant_supported(const SimdKernels&) noexcept { return false; }

const SimdKernels* find_simd_variant(std::string_view) noexcept {
  return nullptr;
}

void set_forced_simd_variant(const SimdKernels*) noexcept {}

}  // namespace fpm::core::detail::simd

#endif  // FPM_SIMD_DISABLED
