// A tiny process-wide helper pool for splitting one intersect_all sweep
// across cores at large p. This is deliberately NOT the PartitionServer's
// worker pool: that pool parallelizes across *requests* and its threads are
// the very callers of the solve path, so borrowing it for intra-solve
// parallelism would deadlock a fully-loaded server (every worker waiting
// for a worker). The lane pool is lazily created, sized
// hardware_concurrency() - 1, and the *calling* thread always participates
// in the chunk loop — with zero helpers (single-core hosts, or before any
// pool exists) parallel_for_chunks degrades to a plain serial loop with no
// thread machinery touched.
#pragma once

#include <cstddef>
#include <functional>

namespace fpm::core::detail {

/// Helper-thread count the lane pool uses (excludes the calling thread).
/// Defaults to hardware_concurrency() - 1, resolved lazily. Calling
/// set_lane_pool_threads before the pool's first parallel run overrides the
/// default (tests and benches pin this for determinism of *scheduling*;
/// results never depend on it). Once the pool has started, later calls are
/// recorded but have no effect on the running pool.
void set_lane_pool_threads(unsigned n) noexcept;
unsigned lane_pool_threads() noexcept;

/// Invokes fn(chunk) for every chunk in [0, chunk_count), spread across the
/// calling thread plus the lane-pool helpers; returns only after every
/// chunk completed. fn must be safe to call concurrently for distinct
/// chunks. Serial (and pool-free) when chunk_count < 2 or no helpers are
/// configured. Concurrent calls from different threads serialize against
/// each other — the unit of parallelism is one solve's sweep.
void parallel_for_chunks(std::size_t chunk_count,
                         const std::function<void(std::size_t)>& fn);

}  // namespace fpm::core::detail
