// Portable SIMD shim under the batched intersect lanes of core/compiled.*.
//
// The scalar batch kernels in speed_kernels.hpp walk one lane entry at a
// time; at p in the thousands the per-line candidate evaluation is the whole
// solve, so the four closed-form lanes and the piecewise segment scan get a
// vector path here. The implementation uses GCC/Clang vector extensions
// (double __attribute__((vector_size(32))), four lanes) rather than raw
// intrinsics or std::experimental::simd: the extension types compile to real
// vector code on every target the repo builds for (SSE2 and NEON from the
// portable variant, AVX2+FMA from a second compilation of the same source
// under `#pragma GCC target`), and the scalar fallback is the pre-existing
// batch kernels, untouched.
//
// Numerics contract: the constant and linear-decay kernels are pure
// rational arithmetic evaluated in the same order as the scalar kernels and
// are bit-identical to them. The power- and exp-decay kernels replace the
// libm exp/log inside the Newton iterations with 4-wide polynomial
// implementations (vexp_/vlog_ in the .inc) that agree with libm to a few
// ULPs but not bitwise; they are gated by the toleranced-equivalence tests
// in tests/test_simd.cpp, and any lane whose result could be
// *decision*-sensitive to those ULPs — near exp-decay's underflow floor,
// near power-decay's 2^256 delegation threshold, or outside the vexp clamp
// range — is punted back to the scalar kernel by writing a NaN sentinel
// that the caller resolves (see scalar-fixup handling in compiled.cpp).
// set_simd_kernels(false) (declared in core/compiled.hpp) restores the
// bit-exact scalar batch path process-wide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"

namespace fpm::core::detail::simd {

/// Vector width in doubles. Columns handed to the kernels must be padded to
/// a multiple of kLanes (pad slots duplicate the last real element so the
/// vector tail computes harmless, in-domain garbage).
inline constexpr std::size_t kLanes = 4;

/// Pads `n` up to the next multiple of kLanes.
constexpr std::size_t padded_size(std::size_t n) noexcept {
  return (n + kLanes - 1) / kLanes * kLanes;
}

/// 64-byte-aligned column storage for BatchLane / piecewise slabs: every
/// vector load in the kernels is then naturally aligned.
using LaneVector = std::vector<double, util::AlignedAllocator<double, 64>>;

/// One resolved set of vector entry points. All array arguments are
/// kLanes-padded and 64-byte aligned; `m` is the padded length. Results are
/// written densely to `res` (same indexing as the columns, NOT scattered
/// through an idx column — the caller scatters). Kernels that can punt
/// (power/exp) write a NaN sentinel into `res` for lanes the scalar kernel
/// must recompute; constant/linear never punt.
struct SimdKernels {
  void (*constant_batch)(const double* a, std::size_t m, double slope,
                         double* res);
  void (*linear_batch)(const double* a, const double* b, const double* c,
                       std::size_t m, double slope, double* res);
  void (*power_batch)(const double* a, const double* b, const double* c,
                      const double* d, std::size_t m, double slope,
                      double* res);
  void (*exp_batch)(const double* a, const double* b, std::size_t m,
                    double slope, double* res);
  /// Counts piecewise segment starts with point-ratio above `slope`, i.e.
  /// |{j < count : ps[j] > slope * px[j]}|. Under the monotone-predicate
  /// invariant of the piecewise slabs this equals the length of the true
  /// prefix, so (count - 1) with a >=1 clamp is the bracketing segment —
  /// the same answer the scalar binary search produces, bit-identically,
  /// because the per-segment arithmetic is unchanged. `px`/`ps` need not
  /// be padded; the kernel handles the tail scalar.
  std::size_t (*piecewise_count_above)(const double* px, const double* ps,
                                       std::size_t count, double slope);
  const char* name;  ///< "portable" | "avx2"
};

/// The best vector implementation for this process, chosen once at first
/// use (AVX2+FMA variant when the build carries one and the CPU supports
/// it, otherwise the portable variant). Returns nullptr when the build was
/// configured with FPM_SIMD=OFF — callers then use the scalar batch path.
/// Independent of the runtime toggle: compiled.cpp consults
/// simd_kernels_enabled() first.
const SimdKernels* resolved_simd_kernels() noexcept;

}  // namespace fpm::core::detail::simd
