// Width-generic SIMD shim under the batched intersect lanes of
// core/compiled.*.
//
// The scalar batch kernels in speed_kernels.hpp walk one lane entry at a
// time; at p in the thousands the per-line candidate evaluation is the whole
// solve, so the closed-form lanes, the unimodal/stepped bisection lanes, the
// fine-tune speed sweep, and the piecewise segment scan get a vector path
// here. The implementation uses GCC/Clang vector extensions
// (double __attribute__((vector_size(8·W)))) rather than raw intrinsics or
// std::experimental::simd: one kernel body (simd_kernels.inc) is compiled
// once per code-generation variant — portable 4-wide (SSE2, or NEON on
// AArch64), AVX2+FMA 4-wide, and AVX-512 8-wide under
// `#pragma GCC target("avx512f,avx512dq")` — and the best supported variant
// is picked at runtime via __builtin_cpu_supports. The scalar fallback is
// the pre-existing batch kernels, untouched.
//
// Numerics contract (identical on every backend): the constant and
// linear-decay kernels are pure rational arithmetic evaluated in the same
// order as the scalar kernels and are bit-identical to them. The power/exp
// intersect kernels, the unimodal/stepped bisection kernels, and the
// power/exp speed kernels replace libm exp/log/pow/tanh with W-wide
// polynomial implementations (vexp_/vlog_ in the .inc) that agree with libm
// to a few ULPs but not bitwise; they are gated by the toleranced-
// equivalence tests in tests/test_simd.cpp, and any lane whose result could
// be *decision*-sensitive to those ULPs — near exp-decay's underflow floor,
// near power-decay's 2^256 delegation threshold, outside the vexp clamp
// range, non-normal inputs, or a unimodal/stepped crossing beyond max_size
// (where the scalar bracket expansion and its saturation tally must run) —
// is punted back to the scalar kernel by writing a NaN sentinel that the
// caller resolves (see scalar-fixup handling in compiled.cpp).
// set_simd_kernels(false) (declared in core/compiled.hpp) restores the
// bit-exact scalar batch path process-wide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/aligned.hpp"

namespace fpm::core::detail::simd {

/// Maximum vector width in doubles across all compiled variants. Columns
/// handed to the kernels are padded to a multiple of kMaxLanes (pad slots
/// duplicate the last real element so the vector tail computes harmless,
/// in-domain garbage) — padding to the *widest* width keeps every column
/// safe for whichever backend the runtime dispatch picks, so an 8-wide
/// AVX-512 lane never reads past a pool sized for the 4-wide variants.
inline constexpr std::size_t kMaxLanes = 8;

/// Pads `n` up to the next multiple of `width` (the active backend's
/// SimdKernels::width for kernel trip counts, kMaxLanes for storage).
constexpr std::size_t padded_size(std::size_t n,
                                  std::size_t width = kMaxLanes) noexcept {
  return (n + width - 1) / width * width;
}

/// 64-byte-aligned column storage for BatchLane / piecewise slabs: every
/// vector load in the kernels is then naturally aligned, at either width.
using LaneVector = std::vector<double, util::AlignedAllocator<double, 64>>;

/// One compiled set of vector entry points. All array arguments are padded
/// to kMaxLanes and 64-byte aligned; `m` is the padded length (a multiple
/// of `width`). Results are written densely to `res` (same indexing as the
/// columns, NOT scattered through an idx column — the caller scatters).
/// Kernels that can punt write a NaN sentinel into `res` for lanes the
/// scalar kernel must recompute; constant/linear never punt.
struct SimdKernels {
  void (*constant_batch)(const double* a, std::size_t m, double slope,
                         double* res);
  void (*linear_batch)(const double* a, const double* b, const double* c,
                       std::size_t m, double slope, double* res);
  void (*power_batch)(const double* a, const double* b, const double* c,
                      const double* d, std::size_t m, double slope,
                      double* res);
  void (*exp_batch)(const double* a, const double* b, std::size_t m,
                    double slope, double* res);
  /// Unimodal intersect by W-wide bisection on [0, max_size]: columns are
  /// a=s_low, b=s_peak, c=x_peak, d=decay_x0, e=decay_exponent, f=max_size.
  /// Punts (NaN) lanes whose crossing lies at or beyond max_size — those
  /// need the scalar bracket expansion and its saturation tally.
  void (*unimodal_batch)(const double* a, const double* b, const double* c,
                         const double* d, const double* e, const double* f,
                         std::size_t m, double slope, double* res);
  /// Stepped intersect by W-wide bisection. `a`=s0 and `f`=max_size are
  /// per-entry columns; `at`/`ratio`/`width_col` are slot-major slabs of
  /// `nslots` columns with `stride` doubles between slots (slot s of entry
  /// j lives at [s·stride + j]); unused slots are padded to the identity
  /// step (at=+inf, ratio=1, width=1). Same beyond-max_size punt rule.
  void (*stepped_batch)(const double* a, const double* f, const double* at,
                        const double* ratio, const double* width_col,
                        std::size_t m, std::size_t stride, std::size_t nslots,
                        double slope, double* res);
  /// Batched speed evaluation at per-entry sizes (the fine-tune epilogue's
  /// hot loop): res[j] = family_speed(params[j], x[j]). Punts (NaN) on
  /// non-normal parameters and wherever the vexp clamp or the exp-decay
  /// 1e-280 floor decision could bite.
  void (*power_speed_batch)(const double* a, const double* b, const double* c,
                            const double* x, std::size_t m, double* res);
  void (*exp_speed_batch)(const double* a, const double* b, const double* x,
                          std::size_t m, double* res);
  /// Counts piecewise segment starts with point-ratio above `slope`, i.e.
  /// |{j < count : ps[j] > slope * px[j]}|. Under the monotone-predicate
  /// invariant of the piecewise slabs this equals the length of the true
  /// prefix, so (count - 1) with a >=1 clamp is the bracketing segment —
  /// the same answer the scalar binary search produces, bit-identically,
  /// because the per-segment arithmetic is unchanged. `px`/`ps` need not
  /// be padded; the kernel handles the tail scalar.
  std::size_t (*piecewise_count_above)(const double* px, const double* ps,
                                       std::size_t count, double slope);
  const char* name;   ///< "portable" | "avx2" | "avx512" | "neon"
  std::size_t width;  ///< vector width in doubles (4 or 8)
};

/// The vector implementation this process runs right now: the forced
/// variant when one is installed, otherwise the best supported variant
/// (avx512 > avx2 > portable/neon), chosen once at first use. Returns
/// nullptr when the build was configured with FPM_SIMD=OFF — callers then
/// use the scalar batch path. Independent of the runtime toggle:
/// compiled.cpp consults simd_kernels_enabled() first.
const SimdKernels* resolved_simd_kernels() noexcept;

/// Every variant compiled into this build, best-first. Empty under
/// FPM_SIMD=OFF. Lets tests iterate all compiled-in backends, not just the
/// one the dispatch would pick.
std::span<const SimdKernels* const> compiled_simd_variants() noexcept;

/// Whether this CPU can execute `k` (ISA check via __builtin_cpu_supports;
/// always true for the baseline portable/neon variant).
bool simd_variant_supported(const SimdKernels& k) noexcept;

/// The compiled-in variant with this name, or nullptr.
const SimdKernels* find_simd_variant(std::string_view name) noexcept;

/// Overrides the runtime dispatch (nullptr restores auto). The caller is
/// responsible for checking simd_variant_supported first — this is the
/// mechanism under core::force_simd_backend, which validates.
void set_forced_simd_variant(const SimdKernels* k) noexcept;

}  // namespace fpm::core::detail::simd
