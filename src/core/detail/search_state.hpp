// Internal shared state for the bracketing line search used by the basic,
// modified, and combined partitioning algorithms. Not part of the public
// API; include only from core/*.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compiled.hpp"
#include "core/finetune.hpp"
#include "core/observer.hpp"
#include "core/partition.hpp"

namespace fpm::core::detail {

/// Non-owning wrapper that counts every speed() evaluation and intersect()
/// solve made through it, forwarding both to the wrapped function so the
/// numerics (including closed-form intersects) are bit-identical. The
/// counters live in the owning SearchState and outlive the view.
class CountingSpeedView final : public SpeedFunction {
 public:
  CountingSpeedView(const SpeedFunction& base, std::int64_t* speed_evals,
                    std::int64_t* intersect_solves)
      : base_(&base),
        speed_evals_(speed_evals),
        intersect_solves_(intersect_solves) {}

  double speed(double x) const override {
    ++*speed_evals_;
    return base_->speed(x);
  }
  double max_size() const override { return base_->max_size(); }
  double intersect(double slope) const override {
    ++*intersect_solves_;
    return base_->intersect(slope);
  }

 private:
  const SpeedFunction* base_;
  std::int64_t* speed_evals_;
  std::int64_t* intersect_solves_;
};

/// The region between two lines through the origin, tracked as the slope
/// interval together with the per-processor intersection coordinates.
///
/// When compiled_partitioning_enabled() (the default) the constructor
/// flattens the input through CompiledSpeedList once, and every hot-path
/// solve (bracket detection, line splits) runs on the compiled kernels with
/// no virtual dispatch; counted_speeds() then exposes CompiledEntryView
/// adaptors feeding the same counters, so fine-tuning stays accounted. With
/// the toggle off the legacy CountingSpeedView path runs instead. Both
/// paths execute the shared kernels of detail/speed_kernels.hpp and are
/// bit-identical, counters included.
class SearchState {
 public:
  /// Initializes from the Figure-18 bracket and solves both lines. The
  /// observer pointer, when non-null and pointing at a non-empty function,
  /// receives one SearchStep per bracket/slope decision; it must outlive
  /// this object. A usable `hint` replaces the cold bracket with a tight
  /// verified one around the hinted slope (see PartitionHint); verification
  /// failure falls back to the cold bracket, so the search result is
  /// bit-identical with or without the hint.
  SearchState(const SpeedList& speeds, std::int64_t n,
              const SearchObserver* observer = nullptr,
              const PartitionHint* hint = nullptr);

  // speeds_ holds pointers into views_, so shallow copies would dangle.
  SearchState(const SearchState&) = delete;
  SearchState& operator=(const SearchState&) = delete;

  /// Per-processor intersections with the steep line (sum <= n).
  const std::vector<double>& small() const noexcept { return small_; }
  /// Per-processor intersections with the shallow line (sum >= n).
  const std::vector<double>& large() const noexcept { return large_; }

  double hi_slope() const noexcept { return bracket_.hi_slope; }
  double lo_slope() const noexcept { return bracket_.lo_slope; }
  int iterations() const noexcept { return iterations_; }
  int intersections() const noexcept { return intersections_; }

  /// Speed-function evaluations observed at the SpeedFunction boundary
  /// (includes bracket-detection probes, unlike intersections()).
  std::int64_t speed_evals() const noexcept { return counters_.speed_evals; }
  /// c·x = s(x) solves observed at the SpeedFunction boundary.
  std::int64_t intersect_solves() const noexcept {
    return counters_.intersect_solves;
  }

  /// Generic-bisection bracket saturations observed since this state was
  /// constructed (the thread-local tally delta — intersect_all migrates
  /// pool-thread chunks back to the solving thread, so the delta is
  /// complete). Read from the constructing thread, like the counters.
  std::int64_t bracket_saturations() const noexcept;

  /// What the constructor did with the warm-start hint.
  WarmStart warmstart() const noexcept { return warmstart_; }

  /// The counting views over the caller's speeds, for running follow-up
  /// solves (e.g. fine-tuning) under the same counters. Valid only while
  /// this SearchState is alive.
  const SpeedList& counted_speeds() const noexcept { return speeds_; }

  /// The Figure-9 fine-tune over this search's steep line: the batched
  /// compiled overload (one speeds_at sweep seeds the award heap) when the
  /// search ran on a compiled model, the counted virtual views otherwise.
  /// Both paths feed the same counters and are bit-identical with the
  /// scalar kernels.
  Distribution fine_tune_epilogue(std::int64_t n) {
    return compiled_ != nullptr ? fine_tune(*compiled_, n, small_, &counters_)
                                : fine_tune(speeds_, n, small_);
  }

  /// Count of integers k with small[i] < k <= large[i]: the candidate
  /// solutions the i-th graph still contributes to the solution space.
  std::int64_t interior_count(std::size_t i) const;

  /// Sum of interior_count over all processors.
  std::int64_t total_interior() const;

  /// The paper's stopping criterion: no processor bracket contains an
  /// integer strictly inside.
  bool converged() const;

  /// One basic-bisection step: split the slope interval at the (angle or
  /// tangent) midpoint and keep the half containing the optimum.
  void step_basic(bool bisect_angles);

  /// One modified-algorithm step: pick the processor with the most interior
  /// candidates, draw the line through the midpoint of its size bracket,
  /// and shrink the region with it. Falls back to a tangent bisection when
  /// the midpoint line degenerates numerically.
  void step_modified();

  /// One step with a caller-chosen slope (used by the interpolation
  /// search); slopes outside the open bracket are replaced by a tangent
  /// bisection.
  void step_custom(double slope);

 private:
  /// Evaluates the line of slope `c`, then assigns it to the steep or
  /// shallow side depending on whether its total size is below n.
  void split_at(double slope, SearchStepKind kind,
                std::size_t processor = kNoProcessor);

  /// Records an interval at round-off width where no usable split existed
  /// (the attempted slope is logged; the bracket is unchanged).
  void degenerate_step(double slope);

  /// Attempts to open a verified bracket around the hinted slope; on
  /// success fills bracket_/small_/large_ and returns true. On failure the
  /// members are untouched and the caller runs the cold detection.
  bool try_warm_bracket(const PartitionHint& hint, std::int64_t n,
                        const SpeedList& original);

  bool observing() const { return observer_ && *observer_; }
  void emit(SearchStepKind kind, double slope, bool kept_low,
            std::size_t processor) const;

  // Exactly one of the two view vectors is populated, depending on the
  // compiled-partitioning toggle at construction; speeds_ points into it.
  // Both kinds of view feed counters_, so the accessors are mode-agnostic.
  // In compiled mode compiled_ points either at compiled_storage_ (we
  // compiled here) or at a caller-owned model installed via
  // PrecompiledGuard (the batch server's once-per-request compilation).
  std::optional<CompiledSpeedList> compiled_storage_;
  const CompiledSpeedList* compiled_ = nullptr;  // set in compiled mode
  std::vector<CompiledEntryView> entry_views_;   // compiled mode
  std::vector<CountingSpeedView> views_;        // legacy (virtual) mode
  SpeedList speeds_;                            // pointers into a view vector
  double n_;
  SlopeBracket bracket_;
  std::vector<double> small_;
  std::vector<double> large_;
  int iterations_ = 0;
  int intersections_ = 0;
  EvalCounters counters_;
  std::int64_t saturation_base_ = 0;  ///< tally snapshot at construction
  const SearchObserver* observer_ = nullptr;
  WarmStart warmstart_ = WarmStart::None;
};

}  // namespace fpm::core::detail
