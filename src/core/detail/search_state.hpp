// Internal shared state for the bracketing line search used by the basic,
// modified, and combined partitioning algorithms. Not part of the public
// API; include only from core/*.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"

namespace fpm::core::detail {

/// The region between two lines through the origin, tracked as the slope
/// interval together with the per-processor intersection coordinates.
class SearchState {
 public:
  /// Initializes from the Figure-18 bracket and solves both lines.
  SearchState(const SpeedList& speeds, std::int64_t n);

  /// Per-processor intersections with the steep line (sum <= n).
  const std::vector<double>& small() const noexcept { return small_; }
  /// Per-processor intersections with the shallow line (sum >= n).
  const std::vector<double>& large() const noexcept { return large_; }

  double hi_slope() const noexcept { return bracket_.hi_slope; }
  double lo_slope() const noexcept { return bracket_.lo_slope; }
  int iterations() const noexcept { return iterations_; }
  int intersections() const noexcept { return intersections_; }

  /// Count of integers k with small[i] < k <= large[i]: the candidate
  /// solutions the i-th graph still contributes to the solution space.
  std::int64_t interior_count(std::size_t i) const;

  /// Sum of interior_count over all processors.
  std::int64_t total_interior() const;

  /// The paper's stopping criterion: no processor bracket contains an
  /// integer strictly inside.
  bool converged() const;

  /// One basic-bisection step: split the slope interval at the (angle or
  /// tangent) midpoint and keep the half containing the optimum.
  void step_basic(bool bisect_angles);

  /// One modified-algorithm step: pick the processor with the most interior
  /// candidates, draw the line through the midpoint of its size bracket,
  /// and shrink the region with it. Falls back to a tangent bisection when
  /// the midpoint line degenerates numerically.
  void step_modified();

  /// One step with a caller-chosen slope (used by the interpolation
  /// search); slopes outside the open bracket are replaced by a tangent
  /// bisection.
  void step_custom(double slope);

 private:
  /// Evaluates the line of slope `c`, then assigns it to the steep or
  /// shallow side depending on whether its total size is below n.
  void split_at(double slope);

  SpeedList speeds_;  // non-owning pointers, copied so temporaries are safe
  double n_;
  SlopeBracket bracket_;
  std::vector<double> small_;
  std::vector<double> large_;
  int iterations_ = 0;
  int intersections_ = 0;
};

}  // namespace fpm::core::detail
