// The scalar math behind every analytic speed family, factored into free
// inline functions so the virtual SpeedFunction classes and the compiled
// (devirtualized) evaluation layer in core/compiled.* execute the *same*
// floating-point operations in the *same* order. Bit-identical results
// across the two paths are a hard requirement (asserted in tests); any
// change here changes both sides together, which is the point.
//
// Not part of the public API; include only from src/core/*.cpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

namespace fpm::core::detail {

// -------------------------------------------------------------------------
// speed(x) kernels — one per analytic family, byte-for-byte the formulas
// documented in core/speed_function.hpp.
// -------------------------------------------------------------------------

inline double linear_decay_speed(double s0, double max_size, double floor,
                                 double x) {
  return std::max(floor, s0 * (1.0 - x / max_size));
}

inline double power_decay_speed(double s0, double x0, double k, double x) {
  if (x <= 0.0) return s0;
  return s0 / (1.0 + std::pow(x / x0, k));
}

inline double exp_decay_speed(double s0, double lambda, double x) {
  // A tiny positive floor keeps times finite (and the ratio decreasing)
  // even when exp(-x/lambda) underflows for absurdly oversized problems.
  return std::max(s0 * std::exp(-x / lambda), 1e-280);
}

inline double unimodal_speed(double s_low, double s_peak, double x_peak,
                             double x0, double k, double x) {
  double s;
  if (x <= 0.0) {
    s = s_low;
  } else if (x < x_peak) {
    // Concave sqrt ramp with positive intercept keeps speed(x)/x decreasing.
    s = s_low + (s_peak - s_low) * std::sqrt(x / x_peak);
  } else {
    s = s_peak;
  }
  // Decay engages smoothly around x0 (>= x_peak in sensible configurations).
  const double decay = x <= 0.0 ? 1.0 : 1.0 / (1.0 + std::pow(x / x0, k));
  return s * decay;
}

/// One multiplicative tanh step of the SteppedSpeed product form. The caller
/// iterates the steps in order, threading `s` (the accumulated speed) and
/// `level` (the previous plateau).
inline double stepped_step_factor(double at, double to, double width,
                                  double level, double x) {
  const double t = 0.5 * (1.0 + std::tanh((x - at) / width));
  const double factor = to / level;
  return (1.0 - t) + t * factor;
}

// -------------------------------------------------------------------------
// intersect(slope) kernels: solve slope·x = s(x) on (0, max_size], with the
// same beyond-the-range semantics as SpeedFunction::intersect.
// -------------------------------------------------------------------------

/// Thread-local tally of generic_intersect bracket saturations: expansions
/// that hit the 256-doubling cap with the curve still above the line. A
/// saturated solve silently returns the midpoint of a bracket that does NOT
/// straddle the crossing — the answer is the furthest representable probe
/// (~max_size·2^256), not the true intersection. Callers that care
/// (detail::SearchState -> PartitionStats::bracket_saturations, rolled into
/// the partition.intersect.bracket_saturations obs counter) snapshot this
/// tally around a solve; the counter is cheap because it only moves on the
/// (pathological) saturating slopes.
inline std::int64_t& bracket_saturation_tally() noexcept {
  thread_local std::int64_t tally = 0;
  return tally;
}

/// The default bisection of SpeedFunction::intersect, templated over the
/// speed callable so the compiled layer can run it without virtual calls.
/// `speed` must be the exact function the owning object exposes.
template <typename SpeedFn>
inline double generic_intersect(SpeedFn&& speed, double max_size,
                                double slope) {
  // The ratio r(x) = speed(x)/x is strictly decreasing with r(0+) = +inf.
  // Speed functions remain defined beyond max_size() (continuing their
  // decay trend), so when even at x = b the curve is above the line the
  // bracket expands geometrically until it straddles the crossing: the
  // partitioning problem stays well-posed even when n exceeds the sum of
  // the modelled ranges.
  double hi = max_size;
  int doublings = 0;
  while (doublings < 256 && speed(hi) >= slope * hi) {
    hi *= 2.0;
    ++doublings;
  }
  if (doublings == 256 && speed(hi) >= slope * hi)
    ++bracket_saturation_tally();  // saturated: [0, hi] does not straddle
  double lo = 0.0;  // ratio(lo) > slope (limit at 0+)
  // 200 halvings of [0, b] reach ~b/2^200: far below any representable
  // spacing, so the loop is effectively exact; bail early on fixpoint.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;
    if (speed(mid) > slope * mid)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

inline double constant_intersect(double s0, double slope) {
  // The constant model has no memory wall: the crossing is exact and may
  // lie beyond the modelled range (consistent with speed() everywhere s0).
  return s0 / slope;
}

inline double linear_decay_intersect(double s0, double max_size, double floor,
                                     double slope) {
  // c·x = s0·(1 - x/B)  =>  x = s0 / (c + s0/B); valid while above floor.
  const double x = s0 / (slope + s0 / max_size);
  if (s0 * (1.0 - x / max_size) >= floor) return x;
  // On the floor plateau the crossing is floor/c (possibly beyond B).
  return floor / slope;
}

/// Closed-form intersection for the power-decay family, solved in log
/// space: with y = ln x the crossing slope·x·(1 + (x/x0)^k) = s0 becomes
///   h(y) = ln(slope) - ln(s0) + y + softplus(k·(y - ln x0)) = 0,
/// where softplus(z) = ln(1 + e^z). h is increasing and convex with
/// h' = 1 + k·sigmoid(z) in [1, 1+k], so Newton started from the flat-head
/// bound y0 = ln(s0/slope) (where h(y0) = softplus >= 0) steps once to the
/// left of the root and then climbs monotonically with quadratic local
/// convergence — a handful of iterations for any slope, versus the ~200
/// halvings of the generic bisection. The log parameterization keeps every
/// intermediate finite even where (x/x0)^k itself would overflow.
///
/// Lines shallow enough to cross beyond max_size·2^256 — the furthest the
/// generic bisection's bracket expansion reaches — are delegated to that
/// bisection so the two paths stay interchangeable even where the generic
/// answer is its saturated bracket rather than the true crossing. Such a
/// delegated solve saturates the bisection's bracket by construction and
/// therefore bumps bracket_saturation_tally(): the returned value is the
/// saturated bracket's midpoint (~max_size·2^255), a deliberate stand-in
/// for an astronomically distant crossing, and the tally is how that loss
/// of meaning becomes observable instead of silent.
inline double power_decay_intersect(double s0, double x0, double k,
                                    double max_size, double slope) {
  const double c0 = std::log(slope) - std::log(s0);
  const double ly0 = std::log(x0);
  double y = -c0;  // ln(s0/slope): the curve never exceeds s0
  for (int i = 0; i < 80; ++i) {
    const double z = k * (y - ly0);
    const double softplus = z > 0.0 ? z + std::log1p(std::exp(-z))
                                    : std::log1p(std::exp(z));
    const double h = c0 + y + softplus;
    const double dh = 1.0 + k / (1.0 + std::exp(-z));
    const double next = y - h / dh;
    if (std::abs(next - y) <= 1e-15) {
      y = next;
      break;
    }
    y = next;
  }
  const double x = std::exp(y);
  if (!(x < max_size * 0x1p256))
    return generic_intersect(
        [&](double xx) { return power_decay_speed(s0, x0, k, xx); }, max_size,
        slope);
  return x;
}

/// Closed-form intersection for the exponential-decay family: substituting
/// u = x/lambda turns the smooth crossing slope·x = s0·exp(-x/lambda) into
///   u + ln u = K,  K = ln(s0/lambda) - ln(slope),
/// whose left side is increasing and concave (d/du = 1 + 1/u), so Newton
/// from u0 = K (for K > 1, where the residual ln K is >= 0) or from the
/// underestimate e^(K-1) converges monotonically after the first step. The
/// 1e-280 floor of the speed kernel only matters for astronomically shallow
/// lines; when the smooth root lands below the floor the crossing moves
/// onto the floor plateau at floor/slope, mirroring the generic bisection
/// on the floored curve.
inline double exp_decay_intersect(double s0, double lambda,
                                  [[maybe_unused]] double max_size,
                                  double slope) {
  const double K = std::log(s0 / lambda) - std::log(slope);
  double u = K > 1.0 ? K : std::exp(K - 1.0);
  for (int i = 0; i < 80; ++i) {
    const double h = u + std::log(u) - K;
    const double dh = 1.0 + 1.0 / u;
    const double next = u - h / dh;
    if (!(next > 0.0)) break;  // round-off guard; the root is positive
    if (std::abs(next - u) <= 1e-15 * u) {
      u = next;
      break;
    }
    u = next;
  }
  const double x = u * lambda;
  if (s0 * std::exp(-x / lambda) >= 1e-280) return x;
  return 1e-280 / slope;  // crossing on the underflow floor plateau
}

// -------------------------------------------------------------------------
// Piece-wise-linear helpers, shared between PiecewiseLinearSpeed (AoS
// breakpoints) and the compiled SoA layout. Segment *selection* may differ
// structurally between the two as long as it picks the same segment; the
// arithmetic on the selected segment lives here.
// -------------------------------------------------------------------------

/// Linear interpolation on the segment [x0, x1].
inline double piecewise_segment_speed(double x0, double s0, double x1,
                                      double s1, double x) {
  const double t = (x - x0) / (x1 - x0);
  return s0 + t * (s1 - s0);
}

/// Extrapolation beyond the last breakpoint: a falling final segment
/// continues its cached slope, a flat or rising one extends as a constant;
/// both clamp at the positive floor. `dx` is x - last_breakpoint (>= 0).
inline double piecewise_tail_speed(double last_speed, double tail_slope,
                                   double floor_speed, double dx) {
  if (tail_slope >= 0.0) return std::max(floor_speed, last_speed);
  return std::max(floor_speed, last_speed + tail_slope * dx);
}

/// Crossing of slope·x = s(x) when it lies beyond the last breakpoint:
/// try the extended falling segment first, then the constant extension,
/// then the floor plateau.
inline double piecewise_tail_intersect(double last_x, double last_speed,
                                       double tail_slope, double floor_speed,
                                       double slope) {
  if (tail_slope < 0.0 && slope != tail_slope) {
    const double x = (last_speed - tail_slope * last_x) / (slope - tail_slope);
    if (x >= last_x && last_speed + tail_slope * (x - last_x) >= floor_speed)
      return x;
  }
  if (tail_slope >= 0.0 && last_speed > floor_speed)
    return last_speed / slope;  // constant extension
  return floor_speed / slope;
}

/// Solves slope·x = s0 + m·(x - x0) for the segment through (x0, s0) with
/// slope m, clamped to [seg_lo, seg_hi] against round-off.
inline double piecewise_segment_intersect(double x0, double s0, double m,
                                          double slope, double seg_lo,
                                          double seg_hi) {
  const double x = (s0 - m * x0) / (slope - m);
  return std::clamp(x, seg_lo, seg_hi);
}

// -------------------------------------------------------------------------
// Batched structure-of-arrays intersect kernels: one pass per closed-form
// family over contiguous parameter lanes, scattering each crossing to
// out[idx[j]]. CompiledSpeedList groups its entries into these lanes at
// compile time, so a whole candidate line is evaluated against all p graphs
// with four tight loops instead of p switch dispatches. Each element runs
// the exact scalar kernel above — the batch is a reordering of *entries*,
// never of the arithmetic within one, so results stay bit-identical to the
// per-entry path.
// -------------------------------------------------------------------------

inline void constant_intersect_batch(std::span<const std::uint32_t> idx,
                                     std::span<const double> a, double slope,
                                     std::span<double> out) {
  for (std::size_t j = 0; j < idx.size(); ++j)
    out[idx[j]] = constant_intersect(a[j], slope);
}

inline void linear_decay_intersect_batch(std::span<const std::uint32_t> idx,
                                         std::span<const double> a,
                                         std::span<const double> b,
                                         std::span<const double> c,
                                         double slope, std::span<double> out) {
  for (std::size_t j = 0; j < idx.size(); ++j)
    out[idx[j]] = linear_decay_intersect(a[j], b[j], c[j], slope);
}

inline void power_decay_intersect_batch(std::span<const std::uint32_t> idx,
                                        std::span<const double> a,
                                        std::span<const double> b,
                                        std::span<const double> c,
                                        std::span<const double> d, double slope,
                                        std::span<double> out) {
  for (std::size_t j = 0; j < idx.size(); ++j)
    out[idx[j]] = power_decay_intersect(a[j], b[j], c[j], d[j], slope);
}

inline void exp_decay_intersect_batch(std::span<const std::uint32_t> idx,
                                      std::span<const double> a,
                                      std::span<const double> b,
                                      std::span<const double> d, double slope,
                                      std::span<double> out) {
  for (std::size_t j = 0; j < idx.size(); ++j)
    out[idx[j]] = exp_decay_intersect(a[j], b[j], d[j], slope);
}

}  // namespace fpm::core::detail
