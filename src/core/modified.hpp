// The modified partitioning algorithm (paper §2, Figures 10-12): instead of
// bisecting the angular region, bisect the *space of solutions* — the set of
// lines through the origin passing through an integer-size point of some
// speed graph. Each step selects the processor whose graph carries the most
// remaining candidate lines and halves that processor's candidates by
// drawing the line through the midpoint of its size bracket. After p steps
// the total candidate count is at least halved, giving the guaranteed
// O(p²·log₂ n) complexity regardless of the curve shapes.
#pragma once

#include <cstdint>
#include <optional>

#include "core/observer.hpp"
#include "core/partition.hpp"

namespace fpm::core {

struct ModifiedBisectionOptions {
  /// Hard iteration cap; the p·log₂(n) bound plus slack is applied on top
  /// of this automatically.
  int max_iterations = 1 << 22;
  /// Optional per-step trace callback (see core/observer.hpp). Empty
  /// disables instrumentation.
  SearchObserver observer{};
  /// Optional warm-start hint from a previous solve of a nearby problem
  /// (see PartitionHint); never changes the distribution, only the cost.
  std::optional<PartitionHint> hint{};
};

/// Partitions n elements with the modified (space-of-solutions) algorithm
/// followed by fine-tuning. Requires a non-empty speed list.
PartitionResult partition_modified(const SpeedList& speeds, std::int64_t n,
                                   const ModifiedBisectionOptions& opts = {});

}  // namespace fpm::core
