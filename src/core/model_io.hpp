// Persistence for functional performance models.
//
// Building a speed function costs real benchmark runs (§3.1), so a usable
// library must let applications build once and reuse across runs — the
// same design as the FuPerMod toolchain that grew out of this paper. The
// format is a small line-oriented text format, one file per machine or a
// multi-model bundle:
//
//   # fpm-model v1
//   model <name>
//   band <epsilon>
//   point <size> <lower_speed> <upper_speed>
//   ...
//   end
//
// Lines starting with '#' are comments. Sizes must be strictly increasing
// within a model. A single-curve model writes lower == upper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/piecewise.hpp"

namespace fpm::core {

/// A named performance band ready for saving or just loaded.
struct NamedModel {
  std::string name;
  double epsilon = 0.0;  ///< the builder's accepted deviation (metadata)
  std::vector<SpeedPoint> lower;
  std::vector<SpeedPoint> upper;

  /// Centre curve of the band (repaired to the shape requirement).
  PiecewiseLinearSpeed curve() const;
};

/// Builds a NamedModel from a single curve (lower == upper).
NamedModel make_named_model(std::string name,
                            const PiecewiseLinearSpeed& curve,
                            double epsilon = 0.0);

/// Builds a NamedModel from a band.
NamedModel make_named_model(std::string name, const PerformanceBand& band,
                            double epsilon);

/// Writes one or more models to a stream in the fpm-model format.
void save_models(std::ostream& os, const std::vector<NamedModel>& models);

/// Parses models from a stream. Throws std::runtime_error with a line
/// number on malformed input.
std::vector<NamedModel> load_models(std::istream& is);

/// Convenience file-path wrappers; throw std::runtime_error on I/O failure.
void save_models_file(const std::string& path,
                      const std::vector<NamedModel>& models);
std::vector<NamedModel> load_models_file(const std::string& path);

}  // namespace fpm::core
