// Umbrella header for the fpmlib core: the functional performance model and
// the set-partitioning algorithms of Lastovetsky & Reddy (IPDPS 2004).
#pragma once

#include "core/bisection.hpp"
#include "core/bounded.hpp"
#include "core/builder.hpp"
#include "core/combined.hpp"
#include "core/compiled.hpp"
#include "core/finetune.hpp"
#include "core/hierarchy.hpp"
#include "core/interpolation.hpp"
#include "core/modified.hpp"
#include "core/observer.hpp"
#include "core/partition.hpp"
#include "core/piecewise.hpp"
#include "core/policy.hpp"
#include "core/server.hpp"
#include "core/speed_function.hpp"
#include "core/surface.hpp"
