// Practical construction of the functional model (paper §3.1, Figures 14,
// 19, 20): build a piece-wise-linear band approximation of a processor's
// speed function from few experimentally obtained points.
//
// The procedure starts from a single band connecting (a, s(a)·(1±ε)) to
// (b, [0, ε·s(a)]) — a is a size fitting the top-level cache, b a size large
// enough that the speed is practically zero — and recursively refines by
// *trisection*: probe the two interior third-points of an interval; if both
// measured speeds fall within the current band the piece is accepted,
// otherwise the band is re-anchored at the out-of-band probes and the
// procedure recurses into the sub-intervals the paper prescribes. Trisection
// (rather than bisection) is essential: under the single-intersection shape
// assumption two probe points cannot both lie on the chord by accident
// (Figure 19c).
#pragma once

#include <vector>

#include "core/piecewise.hpp"

namespace fpm::core {

/// Source of experimental speed observations: runs (or simulates) the
/// application at a given problem size and reports the observed speed.
/// Measurements may be noisy; the builder treats each call as one
/// experiment and counts it towards the model-building cost.
class MeasurementSource {
 public:
  virtual ~MeasurementSource() = default;

  /// Observed speed for a problem of `size` elements. Must be >= 0.
  virtual double measure(double size) = 0;
};

/// Retry policy for RetryingMeasurementSource.
struct RetryOptions {
  /// Re-measurements allowed per probe after the first attempt.
  int max_retries = 4;
  /// A reading farther than this factor (in either direction) from the
  /// nearest previously accepted reading at a similar size is an outlier.
  double outlier_factor = 4.0;
  /// Sizes within this factor of each other count as similar for the
  /// outlier reference.
  double reference_window = 2.0;
  /// Each retry widens the outlier factor by this multiplier, so a
  /// *persistent* change of speed (a genuinely degraded machine, not a
  /// glitch) is eventually accepted as the new truth.
  double backoff = 2.0;
};

/// Decorator giving any MeasurementSource retry-with-backoff on invalid
/// readings: NaN/inf/<= 0 results and outliers (relative to the nearest
/// accepted reading at a similar size) are re-measured up to
/// `max_retries` times with a geometrically widening acceptance band,
/// instead of flowing into the curve. When every retry fails, the nearest
/// previously accepted reading is substituted; with no history at all the
/// source throws std::runtime_error (the machine is unusable).
class RetryingMeasurementSource final : public MeasurementSource {
 public:
  explicit RetryingMeasurementSource(MeasurementSource& inner,
                                     const RetryOptions& opts = {});
  double measure(double size) override;

  /// Total re-measurements performed.
  int retries() const noexcept { return retries_; }
  /// Total readings discarded as invalid or outlying.
  int rejected() const noexcept { return rejected_; }

 private:
  /// Speed of the accepted reading nearest to `size` in log-size distance
  /// within the reference window; 0 when none qualifies.
  double reference_speed(double size) const;

  MeasurementSource& inner_;
  RetryOptions opts_;
  std::vector<SpeedPoint> accepted_;
  int retries_ = 0;
  int rejected_ = 0;
};

struct BuilderOptions {
  /// Band half-width as a fraction of the measured speed: the paper's
  /// acceptable deviation (±5%).
  double epsilon = 0.05;
  /// a: the smallest modelled size (fits in the top cache level).
  double min_size = 1.0;
  /// b: a size large enough that the speed is practically zero.
  double max_size = 0.0;
  /// Repetitions averaged per probe point (the paper repeats small-scale
  /// experiments and averages).
  int samples_per_point = 1;
  /// Refinement floor: intervals shorter than this are accepted as-is.
  /// <= 0 selects (b - a)/4096.
  double min_interval = 0.0;
  /// Relative refinement floor: an interval [xl, xr] with xr - xl below
  /// min_relative_interval·xl is accepted as-is. Because speed features
  /// (cache and paging knees) sit at size *scales*, this keeps the small
  /// end of a range spanning several decades refinable without letting the
  /// recursion chase noise: geometric refinement depth is logarithmic.
  double min_relative_interval = 0.02;
  /// Upper bound on measure() calls; refinement stops once exhausted.
  int max_probes = 512;
};

/// The constructed model plus its experimental cost.
struct BuiltModel {
  PerformanceBand band;            ///< lower/upper piece-wise envelopes
  int probes = 0;                  ///< measure() calls consumed
  std::vector<SpeedPoint> probed;  ///< every measured (size, speed) pair
};

/// Runs the trisection procedure. Requires 0 < min_size < max_size and
/// epsilon in (0, 1).
BuiltModel build_speed_band(MeasurementSource& source,
                            const BuilderOptions& opts);

/// Convenience: builds the band and returns its centre curve, ready for the
/// partitioning algorithms.
PiecewiseLinearSpeed build_speed_model(MeasurementSource& source,
                                       const BuilderOptions& opts);

}  // namespace fpm::core
