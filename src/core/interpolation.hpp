// An interpolation-based line search — a candidate for the paper's open
// challenge (§2): "An ideal bisection algorithm would be of the complexity
// O(p·log₂n), reducing at each step the space of solutions by 50% and
// being insensitive to the shape of the graphs. The design of such an
// algorithm is still a challenge."
//
// Idea: the total-size function N(c) = Σ x_i(c) is strictly decreasing and,
// for the observed curve families, close to a power law in the slope over
// wide ranges. Instead of bisecting the slope interval, fit the secant of
// log N against log c through the bracket endpoints and step to the slope
// it predicts for N = n (regula falsi in log-log space), with a bisection
// safeguard: if the interpolated point falls outside the middle 98% of the
// bracket or fails to shrink it geometrically, fall back to one bisection
// step. The safeguard bounds the worst case by 2x the basic algorithm
// while the interpolation typically converges superlinearly — including on
// the exponential family, where log N is near-*linear* in log c and plain
// bisection degrades to O(n) steps.
//
// This does not settle the theoretical challenge (no O(p·log n) worst-case
// proof), but it is measurably shape-insensitive in practice — see
// bench/ablation_algorithms.
#pragma once

#include <cstdint>
#include <optional>

#include "core/observer.hpp"
#include "core/partition.hpp"

namespace fpm::core {

struct InterpolationOptions {
  /// Fraction of the log-slope bracket the interpolated point must stay
  /// inside; outside, the step is replaced by a bisection.
  double safeguard_margin = 0.01;
  int max_iterations = 1 << 20;
  /// Optional per-step trace callback (see core/observer.hpp). Empty
  /// disables instrumentation.
  SearchObserver observer{};
  /// Optional warm-start hint from a previous solve of a nearby problem
  /// (see PartitionHint); never changes the distribution, only the cost.
  std::optional<PartitionHint> hint{};
};

/// Partitions n elements with the safeguarded log-log regula-falsi search
/// followed by the standard fine-tuning.
PartitionResult partition_interpolation(const SpeedList& speeds,
                                        std::int64_t n,
                                        const InterpolationOptions& opts = {});

}  // namespace fpm::core
