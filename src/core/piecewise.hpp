// Piece-wise-linear speed functions and performance bands.
//
// The paper's practical procedure (§3.1, Figure 14/20) approximates each
// processor's real-life speed curve by a piece-wise linear function built
// from a few experimentally obtained points, together with a band of width
// ±epsilon capturing workload fluctuations. PiecewiseLinearSpeed is the
// partitioning-facing single curve; PerformanceBand keeps the lower/upper
// envelopes produced by the builder.
#pragma once

#include <span>
#include <vector>

#include "core/speed_function.hpp"

namespace fpm::core {

/// One experimental point of a speed curve: the processor runs a problem of
/// `size` elements at `speed` speed units.
struct SpeedPoint {
  double size = 0.0;
  double speed = 0.0;
};

/// Continuous piece-wise-linear speed function through a sorted list of
/// points (x_0 < x_1 < ... < x_{m-1}).
///
///  * For x < x_0 the speed is the constant speed(x_0) (the paper measures
///    the first point at a size fitting in the top-level cache; below it the
///    speed is flat).
///  * For x > x_{m-1} the speed continues the last segment's trend, clamped
///    to a small positive floor so the function never reaches zero exactly.
///
/// The constructor validates the paper's shape requirement — the ratio
/// speed(x)/x strictly decreasing — which for a piece-wise-linear curve
/// reduces to checking the breakpoints; construction throws on violation.
/// Noisy measured points can be pre-conditioned with
/// repair_shape_requirement().
class PiecewiseLinearSpeed final : public SpeedFunction {
 public:
  /// `points` must be non-empty, sorted by strictly increasing size, with
  /// non-negative speeds and at least one positive speed.
  explicit PiecewiseLinearSpeed(std::vector<SpeedPoint> points);

  double speed(double x) const override;
  double max_size() const override { return points_.back().size; }

  /// Closed-form intersection: binary-searches the breakpoint whose ratio
  /// brackets the slope, then solves the linear segment directly. O(log m).
  double intersect(double slope) const override;

  std::span<const SpeedPoint> points() const noexcept { return points_; }

  /// Positive floor used beyond the last point.
  double floor_speed() const noexcept { return floor_speed_; }
  /// Cached slope of the final segment (0 for a single point); negative
  /// values drive the beyond-the-range extrapolation, which is therefore
  /// allocation- and division-free per call.
  double tail_slope() const noexcept { return tail_slope_; }

 private:
  std::vector<SpeedPoint> points_;
  double floor_speed_;      ///< positive floor used beyond the last point
  double tail_slope_ = 0.0; ///< final-segment slope, hoisted from speed()
};

/// Adjusts a sorted point list so the ratio speed/size is strictly
/// decreasing, by lowering any breakpoint speed that rises above the ratio
/// bound implied by its predecessor. This is the minimal monotone repair for
/// measurement noise: points already satisfying the requirement are returned
/// unchanged.
std::vector<SpeedPoint> repair_shape_requirement(std::vector<SpeedPoint> points);

/// A band of speed curves (paper §1, Figure 2): lower and upper envelopes
/// over the same breakpoints. The width reflects workload fluctuation; the
/// partitioner consumes the centre curve.
class PerformanceBand {
 public:
  /// Both vectors must share sizes (same x per index) and satisfy
  /// lower[i].speed <= upper[i].speed.
  PerformanceBand(std::vector<SpeedPoint> lower, std::vector<SpeedPoint> upper);

  /// Centre curve (arithmetic mean of the envelopes), repaired to satisfy
  /// the shape requirement.
  PiecewiseLinearSpeed center() const;

  /// Lower / upper envelope curves (also repaired).
  PiecewiseLinearSpeed lower_curve() const;
  PiecewiseLinearSpeed upper_curve() const;

  /// Band half-width at x as a fraction of the centre speed.
  double relative_width(double x) const;

  std::span<const SpeedPoint> lower_points() const noexcept { return lower_; }
  std::span<const SpeedPoint> upper_points() const noexcept { return upper_; }

 private:
  std::vector<SpeedPoint> lower_;
  std::vector<SpeedPoint> upper_;
};

}  // namespace fpm::core
