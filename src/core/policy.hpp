// The unified partitioner engine: every member of the partitioning family
// (basic, modified, combined, interpolation, bounded) is registered under a
// string id in a process-wide registry, and consumers select one at runtime
// through a PartitionPolicy value instead of hard-coding a call. The policy
// carries the algorithm id, an options variant, an optional step-trace
// observer, and (for the bounded algorithm) per-processor capacity bounds —
// everything a layer needs to delegate the "which partitioner, tuned how"
// decision to its caller, a spec file, or a CLI flag.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/bisection.hpp"
#include "core/bounded.hpp"
#include "core/combined.hpp"
#include "core/interpolation.hpp"
#include "core/modified.hpp"
#include "core/observer.hpp"
#include "core/partition.hpp"

namespace fpm::core {

/// Per-algorithm tuning knobs. std::monostate selects the algorithm's
/// defaults; a non-matching alternative is rejected at dispatch with
/// std::invalid_argument.
using AlgorithmOptions =
    std::variant<std::monostate, BasicBisectionOptions,
                 ModifiedBisectionOptions, CombinedOptions,
                 InterpolationOptions, BoundedOptions>;

/// A value describing which partitioner to run and how. The default policy
/// (combined algorithm, default options, no observer) reproduces
/// partition_combined(speeds, n) bit for bit.
struct PartitionPolicy {
  /// Registry id (see partitioner_registry().ids()).
  std::string algorithm = kAlgorithmCombined;
  /// Tuning knobs; monostate = the algorithm's defaults.
  AlgorithmOptions options{};
  /// When non-empty, installed into the dispatched options so every
  /// bracket/slope decision of the search is reported (core/observer.hpp).
  SearchObserver observer{};
  /// Per-processor capacity bounds, used by the "bounded" algorithm only.
  /// Empty: derived from each curve's max_size() (the paper's point b, the
  /// size at which the processor is effectively paging to a halt).
  std::vector<std::int64_t> bounds{};
  /// Warm-start hint from a previous solve of a nearby problem, installed
  /// into the dispatched options like the observer. The result stays
  /// bit-identical with or without it (a hint only narrows the search
  /// bracket), which is why format_policy() deliberately ignores it — two
  /// policies differing only in the hint are the same cache key.
  std::optional<PartitionHint> hint{};
};

/// Static description of a registered algorithm.
struct PartitionerInfo {
  std::string id;          ///< registry key, also PartitionStats::algorithm
  std::string summary;     ///< one-line description for CLIs
  std::string complexity;  ///< asymptotic cost in intersection solves
  bool needs_bounds = false;  ///< consumes PartitionPolicy::bounds
};

/// String-keyed dispatch table over the partitioner family.
class PartitionerRegistry {
 public:
  using Runner = std::function<PartitionResult(
      const SpeedList&, std::int64_t, const PartitionPolicy&)>;

  /// Registers an algorithm; ids must be unique.
  void add(PartitionerInfo info, Runner runner);

  /// All registered algorithms, in registration order.
  const std::vector<PartitionerInfo>& entries() const noexcept {
    return infos_;
  }
  /// The registered ids, in registration order.
  std::vector<std::string> ids() const;
  /// Comma-separated id list, for error messages and usage text.
  std::string joined_ids() const;
  /// Lookup; nullptr when the id is unknown.
  const PartitionerInfo* find(std::string_view id) const;
  bool contains(std::string_view id) const { return find(id) != nullptr; }

  /// Dispatches to the algorithm named by policy.algorithm. Throws
  /// std::invalid_argument naming the valid ids when the id is unknown, or
  /// when policy.options holds a different algorithm's options.
  PartitionResult run(const SpeedList& speeds, std::int64_t n,
                      const PartitionPolicy& policy) const;

 private:
  std::vector<PartitionerInfo> infos_;
  std::vector<Runner> runners_;
};

/// The process-wide registry holding the five family members:
/// basic, modified, combined, interpolation, bounded.
const PartitionerRegistry& partitioner_registry();

/// The engine entry point every consumer layer calls: partitions n elements
/// over the listed speeds with the algorithm selected by `policy`. The
/// default policy is exactly partition_combined(speeds, n).
PartitionResult partition(const SpeedList& speeds, std::int64_t n,
                          const PartitionPolicy& policy = {});

/// Parses a policy from an id plus "key value" token pairs — the grammar
/// shared by spec files (`policy combined stall_window 4`) and CLI flags.
/// Accepted keys per algorithm:
///   basic          bisect_angles, max_iterations
///   modified       max_iterations
///   combined       stall_window, bisect_angles, max_iterations
///   interpolation  safeguard_margin, max_iterations
///   bounded        stall_window, bisect_angles, max_iterations (inner solve)
/// Throws std::invalid_argument on an unknown id (naming the valid ids),
/// unknown key, dangling key, or malformed value.
PartitionPolicy parse_policy(std::string_view algorithm,
                             std::span<const std::string> tokens = {});

/// Inverse of parse_policy: the id followed by the keys that differ from
/// the algorithm's defaults (round-trips through parse_policy).
std::string format_policy(const PartitionPolicy& policy);

}  // namespace fpm::core
