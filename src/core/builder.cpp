#include "core/builder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace fpm::core {
namespace {

/// Band value at one breakpoint.
struct Bounds {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double s) const { return lo <= s && s <= hi; }
};

/// Builder state shared across the recursion: the breakpoint map holds the
/// current band; probes are counted against the budget.
class Trisector {
 public:
  Trisector(MeasurementSource& source, const BuilderOptions& opts)
      : source_(source), opts_(opts) {
    if (!(opts_.min_size > 0.0) || !(opts_.max_size > opts_.min_size))
      throw std::invalid_argument("builder: need 0 < min_size < max_size");
    if (!(opts_.epsilon > 0.0) || !(opts_.epsilon < 1.0))
      throw std::invalid_argument("builder: epsilon must be in (0, 1)");
    if (opts_.samples_per_point < 1)
      throw std::invalid_argument("builder: samples_per_point must be >= 1");
    // The absolute floor is only a backstop against runaway recursion; the
    // relative floor is what normally terminates refinement.
    min_interval_ =
        opts_.min_interval > 0.0
            ? opts_.min_interval
            : std::max(1.0, (opts_.max_size - opts_.min_size) / 1048576.0);
  }

  BuiltModel run() {
    const double a = opts_.min_size;
    const double b = opts_.max_size;
    const double sa = probe(a);
    const double eps = opts_.epsilon;
    // Initial approximation (Figure 20a): one band from (a, sa·(1±eps)) to
    // (b, [0, eps·sa]) — at b the speed is practically zero, so its band is
    // the absolute sliver [0, eps·sa].
    band_[a] = {sa * (1.0 - eps), sa * (1.0 + eps)};
    band_[b] = {0.0, eps * sa};
    refine(a, b);
    return finish();
  }

 private:
  /// One experimental point: `samples_per_point` runs averaged.
  double probe(double x) {
    double sum = 0.0;
    for (int i = 0; i < opts_.samples_per_point; ++i) {
      sum += source_.measure(x);
      ++probes_;
    }
    const double s = std::max(0.0, sum / opts_.samples_per_point);
    probed_.push_back({x, s});
    return s;
  }

  bool budget_exhausted() const {
    return probes_ + 2 * opts_.samples_per_point > opts_.max_probes;
  }

  /// Linear interpolation of the current band between two breakpoints.
  Bounds interpolate(double xl, double xr, double x) const {
    const Bounds& l = band_.at(xl);
    const Bounds& r = band_.at(xr);
    const double t = (x - xl) / (xr - xl);
    return {l.lo + t * (r.lo - l.lo), l.hi + t * (r.hi - l.hi)};
  }

  Bounds measured_band(double s) const {
    return {s * (1.0 - opts_.epsilon), s * (1.0 + opts_.epsilon)};
  }

  /// The recursive trisection over the interval [xl, xr]; both endpoints
  /// must already be breakpoints of the band map.
  void refine(double xl, double xr) {
    if (xr - xl < min_interval_ || xr - xl < opts_.min_relative_interval * xl ||
        budget_exhausted())
      return;
    const double third = (xr - xl) / 3.0;
    const double xb1 = xl + third;
    const double xb2 = xl + 2.0 * third;

    const Bounds est1 = interpolate(xl, xr, xb1);
    const Bounds est2 = interpolate(xl, xr, xb2);
    const Bounds end_l = band_.at(xl);
    const Bounds end_r = band_.at(xr);

    const double s1 = probe(xb1);
    const double s2 = probe(xb2);
    const bool in1 = est1.contains(s1);
    const bool in2 = est2.contains(s2);

    if (in1 && in2) return;  // case (a): accept the current piece

    if (!in1 && in2) {
      // Case (b): re-anchor at the measured xb1; the second piece runs from
      // xb1 to the *estimated* band at xb2 (Figure 20b).
      band_[xb1] = measured_band(s1);
      band_[xb2] = est2;
      if (end_l.contains(s1)) {
        refine(xb1, xb2);
      } else {
        refine(xl, xb1);
        refine(xb1, xb2);
      }
      return;
    }

    if (in1 && !in2) {
      // Case (c): mirror image (Figure 20c).
      band_[xb1] = est1;
      band_[xb2] = measured_band(s2);
      if (end_r.contains(s2)) {
        refine(xb1, xb2);
      } else {
        refine(xb1, xb2);
        refine(xb2, xr);
      }
      return;
    }

    // Case (d): both probes out of band (Figure 20d).
    band_[xb1] = measured_band(s1);
    band_[xb2] = measured_band(s2);
    const bool left_ok = end_l.contains(s1);
    const bool right_ok = end_r.contains(s2);
    if (left_ok && right_ok) {
      refine(xb1, xb2);
    } else if (right_ok) {
      refine(xl, xb1);
      refine(xb1, xb2);
    } else if (left_ok) {
      refine(xb1, xb2);
      refine(xb2, xr);
    } else {
      refine(xl, xb1);
      refine(xb1, xb2);
      refine(xb2, xr);
    }
  }

  BuiltModel finish() const {
    std::vector<SpeedPoint> lower;
    std::vector<SpeedPoint> upper;
    lower.reserve(band_.size());
    upper.reserve(band_.size());
    for (const auto& [x, bounds] : band_) {
      lower.push_back({x, bounds.lo});
      upper.push_back({x, bounds.hi});
    }
    BuiltModel model{PerformanceBand(std::move(lower), std::move(upper)),
                     probes_, probed_};
    return model;
  }

  MeasurementSource& source_;
  const BuilderOptions& opts_;
  double min_interval_ = 0.0;
  std::map<double, Bounds> band_;
  std::vector<SpeedPoint> probed_;
  int probes_ = 0;
};

}  // namespace

RetryingMeasurementSource::RetryingMeasurementSource(MeasurementSource& inner,
                                                     const RetryOptions& opts)
    : inner_(inner), opts_(opts) {
  if (opts_.max_retries < 0)
    throw std::invalid_argument("RetryingMeasurementSource: max_retries < 0");
  if (!(opts_.outlier_factor > 1.0))
    throw std::invalid_argument(
        "RetryingMeasurementSource: outlier_factor must be > 1");
  if (!(opts_.reference_window >= 1.0))
    throw std::invalid_argument(
        "RetryingMeasurementSource: reference_window must be >= 1");
  if (!(opts_.backoff >= 1.0))
    throw std::invalid_argument(
        "RetryingMeasurementSource: backoff must be >= 1");
}

double RetryingMeasurementSource::reference_speed(double size) const {
  double best_speed = 0.0;
  double best_distance = std::log(opts_.reference_window);
  for (const SpeedPoint& p : accepted_) {
    const double distance = std::abs(std::log(p.size / size));
    if (distance <= best_distance) {
      best_distance = distance;
      best_speed = p.speed;
    }
  }
  return best_speed;
}

double RetryingMeasurementSource::measure(double size) {
  double tolerance = opts_.outlier_factor;
  for (int attempt = 0;; ++attempt) {
    const double s = inner_.measure(size);
    if (attempt > 0) ++retries_;
    bool valid = std::isfinite(s) && s > 0.0;
    if (valid) {
      const double reference = reference_speed(size);
      if (reference > 0.0 &&
          (s > reference * tolerance || s < reference / tolerance))
        valid = false;
    }
    if (valid) {
      accepted_.push_back({size, s});
      return s;
    }
    ++rejected_;
    if (attempt >= opts_.max_retries) break;
    tolerance *= opts_.backoff;  // widen: persistent change wins eventually
  }
  const double fallback = reference_speed(size);
  if (fallback > 0.0) return fallback;
  throw std::runtime_error(
      "RetryingMeasurementSource: no valid measurement obtainable at size " +
      std::to_string(size));
}

BuiltModel build_speed_band(MeasurementSource& source,
                            const BuilderOptions& opts) {
  return Trisector(source, opts).run();
}

PiecewiseLinearSpeed build_speed_model(MeasurementSource& source,
                                       const BuilderOptions& opts) {
  return build_speed_band(source, opts).band.center();
}

}  // namespace fpm::core
