// Common types and helpers for the set-partitioning problem (paper §2):
// partition an n-element set over p heterogeneous processors so that the
// number of elements per processor is proportional to its speed at the size
// it receives.
//
// The geometric formulation: an allocation (x_1..x_p) with x_i proportional
// to s_i(x_i) corresponds to a straight line of some slope c through the
// origin, with x_i the intersection of that line with the i-th speed graph
// and sum(x_i) = n. All algorithms search for that slope.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/speed_function.hpp"

namespace fpm::core {

/// Canonical algorithm ids reported in PartitionStats::algorithm. The first
/// five name the registered members of the partitioner family (see
/// core/policy.hpp); the rest name special-purpose partitioners that report
/// through the same field.
inline constexpr const char* kAlgorithmBasic = "basic";
inline constexpr const char* kAlgorithmModified = "modified";
inline constexpr const char* kAlgorithmCombined = "combined";
inline constexpr const char* kAlgorithmInterpolation = "interpolation";
inline constexpr const char* kAlgorithmBounded = "bounded";
inline constexpr const char* kAlgorithmEven = "even";
inline constexpr const char* kAlgorithmSingleNumber = "single-number";
inline constexpr const char* kAlgorithmHierarchical = "hierarchical";
inline constexpr const char* kAlgorithmCommAware = "comm-aware";
inline constexpr const char* kAlgorithmWeightedContiguous =
    "weighted-contiguous";
/// PartitionServer degraded answers (core/slo.hpp): a previous solution
/// rescaled to the requested n, not an engine search.
inline constexpr const char* kAlgorithmDegraded = "degraded";

/// Integer allocation of the n elements: counts[i] elements to processor i.
struct Distribution {
  std::vector<std::int64_t> counts;

  std::int64_t total() const noexcept;
  std::size_t processors() const noexcept { return counts.size(); }
};

/// A warm-start hint carried between successive solves of nearly identical
/// problems (Rebalancer rounds, server near-miss traffic, mpp recovery):
/// the previous solution's slope, the n it solved, and the models it was
/// computed against. The search opens a tight verified bracket around the
/// hinted slope instead of the Figure-18 cold bracket; a stale hint (wrong
/// models, garbage slope, optimum too far away) falls back to the cold
/// bracket. Either way the returned distribution is bit-identical to a cold
/// run — the hint can only change how many solves the search spends.
struct PartitionHint {
  /// PartitionStats::final_slope of the previous solve; must be a positive
  /// finite number to be usable.
  double slope = 0.0;
  /// The element count the hint solved. When it differs from the current n
  /// the hinted slope is rescaled by old-n/new-n before bracketing; 0 means
  /// "same n" (no rescale).
  std::int64_t n = 0;
  /// CompiledSpeedList fingerprint of the models the hint was computed
  /// against. A mismatch marks the hint stale before any solve is spent.
  /// 0 skips the check — for callers whose models legitimately change every
  /// round (e.g. the Rebalancer re-learns its curves), who rely on the
  /// bracket verification alone.
  std::uint64_t fingerprint = 0;
  /// Iteration count of the solve that produced the hint (or of the last
  /// cold solve), used to report PartitionStats::iterations_saved.
  int baseline_iterations = 0;
  /// The previous distribution, for diagnostics and callers that want to
  /// diff allocations across rounds; not consulted by the search.
  std::vector<std::int64_t> counts;

  /// True when the slope can seed a bracket at all.
  bool usable() const noexcept { return std::isfinite(slope) && slope > 0.0; }
};

/// Outcome of the warm-start attempt for one search.
enum class WarmStart : std::uint8_t {
  None,   ///< no usable hint supplied
  Hit,    ///< hinted bracket verified and adopted
  Stale,  ///< hint rejected: fingerprint mismatch or verification failed
};

/// Diagnostics reported by the iterative partitioners.
///
/// Two counter families coexist: `iterations`/`intersections` are the
/// paper-facing accounting (bisection steps and the p solves each one
/// charges, plus 2p for the initial bracket) and are left untouched for
/// backward compatibility; `speed_evals`/`intersect_solves` are measured at
/// the SpeedFunction boundary and therefore also see bracket-expansion
/// probes, fallback re-bisections, and fine-tuning — they are the honest
/// totals the complexity guards assert on.
struct PartitionStats {
  int iterations = 0;              ///< bisection steps performed
  int intersections = 0;           ///< c·x = s(x) solves performed
  double final_slope = 0.0;        ///< slope of the line used for fine-tuning
  std::string algorithm;           ///< registry id of the producing algorithm
  bool switched_to_modified = false;  ///< combined algorithm fell back
  std::int64_t speed_evals = 0;       ///< s(x) evaluations observed
  std::int64_t intersect_solves = 0;  ///< c·x = s(x) solves observed
  WarmStart warmstart = WarmStart::None;  ///< what became of the hint
  /// Iterations below the hint's baseline_iterations (>= 0; only meaningful
  /// on a WarmStart::Hit with a caller-supplied baseline).
  int iterations_saved = 0;
  /// The search-phase portion of speed_evals/intersect_solves: everything
  /// up to (excluding) the fine-tuning epilogue. Fine-tuning costs the same
  /// ~1.5p evaluations whether the search started cold or warm, so these
  /// are the counters a warm-start actually shrinks — the drift ablation
  /// gates on them.
  std::int64_t search_speed_evals = 0;
  std::int64_t search_intersect_solves = 0;
  /// Generic-bisection bracket expansions that hit the 256-doubling cap
  /// with the curve still above the line: those solves returned the
  /// saturated bracket's midpoint (~max_size·2^256), a stand-in for a
  /// crossing too distant to represent, not a true intersection. Nonzero
  /// means some candidate line was astronomically shallower than every
  /// model — usually a modelling problem worth surfacing, hence the
  /// partition.intersect.bracket_saturations obs counter.
  std::int64_t bracket_saturations = 0;
};

/// A partitioner's output: the integer allocation plus diagnostics.
struct PartitionResult {
  Distribution distribution;
  PartitionStats stats;
};

/// Intersections of a slope-c line with every graph: x_i = s_i^{-1}-style
/// solve of c·x = s_i(x). Sizes are real-valued (the integer allocation is
/// produced later by fine-tuning).
std::vector<double> sizes_at(const SpeedList& speeds, double slope);

/// Sum of sizes_at(); strictly decreasing in the slope.
double total_size_at(const SpeedList& speeds, double slope);

/// A pair of slopes bracketing the optimal line: total size >= n at
/// `lo_slope` and <= n at `hi_slope` (hi_slope >= lo_slope).
struct SlopeBracket {
  double lo_slope = 0.0;  ///< shallow line, larger sizes (sum >= n)
  double hi_slope = 0.0;  ///< steep line, smaller sizes (sum <= n)
};

/// Initial bracket detection (paper Figure 18): evaluate every speed at
/// n/p; line 1 through (n/p, max speed) has sum <= n, line 2 through
/// (n/p, min speed) has sum >= n. A geometric expansion loop guards against
/// degenerate inputs (e.g. sizes beyond every curve's range).
/// Requires n >= 1 and a non-empty speed list.
SlopeBracket detect_bracket(const SpeedList& speeds, std::int64_t n);

/// Even distribution: n/p elements each, remainders to the lowest ranks.
/// The paper's fallback when model information is unusable.
Distribution partition_even(std::int64_t n, std::size_t p);

/// The single-number model baseline: distributes n proportionally to the
/// constant speeds, then fixes rounding with a min-completion-time greedy so
/// the counts sum to exactly n. Complexity O(p·log p).
Distribution partition_single_number(std::int64_t n,
                                     std::span<const double> speeds);

/// Convenience: the single-number baseline where each constant speed is
/// read off the functional model at a reference size (the paper's
/// experiments measure all processors at one fixed size, e.g. a 500x500
/// matrix).
Distribution partition_single_number_at(const SpeedList& speeds,
                                        std::int64_t n, double reference_size);

/// Parallel execution time of a distribution under the functional model:
/// max_i counts[i] / s_i(counts[i]) in reciprocal speed units. This is the
/// objective the optimal line minimizes.
double makespan(const SpeedList& speeds, const Distribution& d);

/// Per-processor execution times counts[i] / s_i(counts[i]).
std::vector<double> execution_times(const SpeedList& speeds,
                                    const Distribution& d);

}  // namespace fpm::core
