// The functional performance model (FPM) of Lastovetsky & Reddy (IPDPS'04):
// the speed of a processor is a continuous, relatively smooth function of the
// problem size, rather than a single number.
//
// Conventions
// -----------
//  * The problem size x is the amount of data stored and processed by the
//    algorithm, measured in *elements* (paper §2: e.g. 3·n² for a square
//    matrix multiplication).
//  * speed(x) is the absolute speed a processor exhibits when solving a
//    problem of size x, in any fixed unit (the paper uses MFlops). For the
//    partitioning geometry only *relative* speeds matter, so the unit is
//    opaque to the algorithms as long as it is consistent across processors
//    and the work of a partition is proportional to its element count.
//  * The execution time of a problem of size x is proportional to
//    x / speed(x).
//
// Shape requirement (paper §2, Figure 5)
// --------------------------------------
// Every straight line through the origin must intersect the graph of the
// speed function in exactly one point. Equivalently, the *ratio*
// r(x) = speed(x)/x must be strictly decreasing on (0, max_size]. This also
// implies the paper's explicit assumption that execution time x/speed(x) is
// non-decreasing in x. All concrete families below satisfy the requirement
// by construction; fpm::core::satisfies_shape_requirement() verifies it
// numerically for externally supplied functions.
#pragma once

#include <memory>
#include <vector>

namespace fpm::core {

/// Abstract speed-versus-problem-size function s(x).
///
/// Implementations must be defined for x in [0, max_size()], continuous,
/// non-negative, with speed(0+) > 0 and speed(x)/x strictly decreasing
/// (the single-intersection shape requirement).
class SpeedFunction {
 public:
  virtual ~SpeedFunction() = default;

  /// Absolute speed at problem size x (x in elements). Must accept any
  /// x >= 0; values beyond max_size() should continue the trend (typically
  /// approaching zero) so callers never need to clamp.
  virtual double speed(double x) const = 0;

  /// Upper end of the modelled size range (the paper's point b: a size at
  /// which the processor is effectively paging itself to a halt).
  virtual double max_size() const = 0;

  /// Solves c·x = speed(x) for x in (0, max_size], i.e. intersects the graph
  /// with a line of slope c through the origin. Returns max_size() when the
  /// line passes below the whole graph (c <= speed(max_size())/max_size())
  /// and 0 when c is +infinity-like. The default implementation performs a
  /// bisection on the strictly decreasing ratio speed(x)/x; subclasses with
  /// closed forms may override.
  virtual double intersect(double slope) const;

  /// speed(x)/x, the quantity that is strictly decreasing in x.
  double ratio(double x) const { return speed(x) / x; }

  /// Execution time of a problem of size x in the reciprocal speed unit
  /// (elements per speed-unit). Proportional to wall-clock time.
  double time(double x) const { return x <= 0.0 ? 0.0 : x / speed(x); }
};

/// Numerically checks the single-intersection shape requirement by sampling
/// `samples` points geometrically spaced over (0, f.max_size()] and testing
/// that the ratio speed(x)/x is strictly decreasing. Returns true when no
/// violation is found.
bool satisfies_shape_requirement(const SpeedFunction& f, int samples = 2048);

// ---------------------------------------------------------------------------
// Analytic families. These model the experimentally observed curve shapes of
// the paper (Figures 1, 5 and 19) and supply ground truth for tests and the
// machine simulator.
// ---------------------------------------------------------------------------

/// The classic single-number model: s(x) = s0 on (0, B].
class ConstantSpeed final : public SpeedFunction {
 public:
  ConstantSpeed(double s0, double max_size);
  double speed(double) const override { return s0_; }
  double max_size() const override { return max_size_; }
  double intersect(double slope) const override;

  double s0() const noexcept { return s0_; }

 private:
  double s0_;
  double max_size_;
};

/// Linearly decaying speed: s(x) = s0·max(floor, 1 - x/B). Models a smooth
/// "inefficient memory reference pattern" curve (Figure 5, s1).
class LinearDecaySpeed final : public SpeedFunction {
 public:
  /// floor_fraction keeps the speed at floor_fraction*s0 beyond B so the
  /// function stays positive (default matches the paper's "practically
  /// zero" endpoint).
  LinearDecaySpeed(double s0, double max_size, double floor_fraction = 1e-3);
  double speed(double x) const override;
  double max_size() const override { return max_size_; }
  double intersect(double slope) const override;

  double s0() const noexcept { return s0_; }
  double floor_speed() const noexcept { return floor_; }

 private:
  double s0_;
  double max_size_;
  double floor_;
};

/// Smooth sigmoid-like decay: s(x) = s0 / (1 + (x/x0)^k), strictly
/// decreasing; with small k this is the smooth "MatrixMult" shape and with
/// large k it approaches a step (cache/paging cliff).
class PowerDecaySpeed final : public SpeedFunction {
 public:
  PowerDecaySpeed(double s0, double x0, double exponent, double max_size);
  double speed(double x) const override;
  double max_size() const override { return max_size_; }
  /// Closed form: bracketed Newton on slope·x·(1+(x/x0)^k) = s0, with
  /// bisection fallback steps whenever Newton would leave the sign bracket.
  double intersect(double slope) const override;

  double s0() const noexcept { return s0_; }
  double x0() const noexcept { return x0_; }
  double exponent() const noexcept { return k_; }

 private:
  double s0_;
  double x0_;
  double k_;
  double max_size_;
};

/// Rising-then-falling speed (Figure 5, s2): a concave ramp from s_low at 0
/// to s_peak at x_peak, followed by a smooth power decay towards ~0 at B.
/// The ramp is concave with a positive intercept, which preserves the
/// strictly decreasing ratio.
class UnimodalSpeed final : public SpeedFunction {
 public:
  UnimodalSpeed(double s_low, double s_peak, double x_peak, double decay_x0,
                double decay_exponent, double max_size);
  double speed(double x) const override;
  double max_size() const override { return max_size_; }

  double s_low() const noexcept { return s_low_; }
  double s_peak() const noexcept { return s_peak_; }
  double x_peak() const noexcept { return x_peak_; }
  double decay_x0() const noexcept { return x0_; }
  double decay_exponent() const noexcept { return k_; }

 private:
  double s_low_;
  double s_peak_;
  double x_peak_;
  double x0_;
  double k_;
  double max_size_;
};

/// Multi-plateau curve with smooth (tanh) transitions at memory-hierarchy
/// boundaries — the "carefully designed application" shape of Figure 1(a,b):
/// near-constant plateaus separated by drops at the cache and paging points.
class SteppedSpeed final : public SpeedFunction {
 public:
  struct Step {
    double at;    ///< problem size where the drop is centred
    double to;    ///< plateau speed after the drop
    double width; ///< transition half-width (>0, smaller = sharper cliff)
  };
  /// `s0` is the initial plateau; steps must be ordered by `at` with
  /// strictly decreasing `to`.
  SteppedSpeed(double s0, std::vector<Step> steps, double max_size);
  double speed(double x) const override;
  double max_size() const override { return max_size_; }

  double s0() const noexcept { return s0_; }
  const std::vector<Step>& steps() const noexcept { return steps_; }

 private:
  double s0_;
  std::vector<Step> steps_;
  double max_size_;
};

/// Exponentially decaying speed s(x) = s0·exp(-x/lambda). The optimal line
/// slope for this family decays exponentially in n, which is the pathological
/// case where the basic angle-bisection algorithm degrades to O(p·n) and the
/// modified algorithm keeps its O(p²·log n) bound (paper §2).
class ExpDecaySpeed final : public SpeedFunction {
 public:
  ExpDecaySpeed(double s0, double lambda, double max_size);
  double speed(double x) const override;
  double max_size() const override { return max_size_; }
  /// Closed form: bracketed Newton on slope·x = s0·exp(-x/lambda) — the
  /// family whose optimal slope decays exponentially in n, so this is the
  /// hottest generic-bisection call site it replaces.
  double intersect(double slope) const override;

  double s0() const noexcept { return s0_; }
  double lambda() const noexcept { return lambda_; }

 private:
  double s0_;
  double lambda_;
  double max_size_;
};

/// Wraps another speed function, scaling speed by `factor` (e.g. to model a
/// persistent external load shifting the whole band down, paper §1).
class ScaledSpeed final : public SpeedFunction {
 public:
  ScaledSpeed(std::shared_ptr<const SpeedFunction> base, double factor);
  double speed(double x) const override;
  double max_size() const override;

  const SpeedFunction& base() const noexcept { return *base_; }
  double factor() const noexcept { return factor_; }

 private:
  std::shared_ptr<const SpeedFunction> base_;
  double factor_;
};

/// Re-parameterizes a speed function from elements to coarser items (e.g.
/// matrix rows of n elements each, or column blocks): with k elements per
/// item, speed_items(r) = base(r·k)/k, so the item-count execution time
/// r/speed_items(r) equals the element-count time (r·k)/base(r·k) and the
/// shape requirement is inherited. Partitioning r items with this wrapper is
/// exactly partitioning r·k elements at item granularity.
class GranularSpeed final : public SpeedFunction {
 public:
  GranularSpeed(std::shared_ptr<const SpeedFunction> base,
                double elements_per_item);
  double speed(double items) const override;
  double max_size() const override;

  const SpeedFunction& base() const noexcept { return *base_; }
  double elements_per_item() const noexcept { return k_; }

 private:
  std::shared_ptr<const SpeedFunction> base_;
  double k_;
};

/// Non-owning variant of GranularSpeed for stack-scoped use (the base must
/// outlive this object).
class GranularSpeedView final : public SpeedFunction {
 public:
  GranularSpeedView(const SpeedFunction& base, double elements_per_item);
  double speed(double items) const override;
  double max_size() const override;

  const SpeedFunction& base() const noexcept { return *base_; }
  double elements_per_item() const noexcept { return k_; }

 private:
  const SpeedFunction* base_;
  double k_;
};

/// Non-owning list of processor speed functions, the form consumed by all
/// partitioning algorithms. Pointers must outlive the call.
using SpeedList = std::vector<const SpeedFunction*>;

/// Convenience: builds a SpeedList view over owned functions.
template <typename Container>
SpeedList make_speed_list(const Container& owned) {
  SpeedList list;
  list.reserve(owned.size());
  for (const auto& f : owned) list.push_back(&*f);
  return list;
}

}  // namespace fpm::core
