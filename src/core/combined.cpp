#include "core/combined.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/detail/search_state.hpp"
#include "core/finetune.hpp"

namespace fpm::core {

PartitionResult partition_combined(const SpeedList& speeds, std::int64_t n,
                                   const CombinedOptions& opts) {
  if (speeds.empty())
    throw std::invalid_argument("partition_combined: no speeds");
  PartitionResult result;
  result.stats.algorithm = kAlgorithmCombined;
  if (n <= 0) {
    result.distribution.counts.assign(speeds.size(), 0);
    return result;
  }
  detail::SearchState state(speeds, n, &opts.observer,
                            opts.hint ? &*opts.hint : nullptr);

  // Phase 1: basic bisection while it makes geometric progress.
  std::int64_t window_start_count = state.total_interior();
  int window_used = 0;
  bool switched = false;
  while (!state.converged() && state.iterations() < opts.max_iterations) {
    state.step_basic(opts.bisect_angles);
    if (++window_used >= opts.stall_window) {
      const std::int64_t now = state.total_interior();
      if (now * 2 > window_start_count) {
        switched = true;  // stalled: candidate count failed to halve
        break;
      }
      window_start_count = now;
      window_used = 0;
    }
  }

  // Phase 2: shape-insensitive modified steps with the guaranteed bound.
  if (switched) {
    const double pd = static_cast<double>(speeds.size());
    const int bound =
        state.iterations() +
        static_cast<int>(pd * (std::log2(static_cast<double>(n) * pd) + 4.0)) +
        64;
    const int cap = std::min(opts.max_iterations, bound);
    while (!state.converged() && state.iterations() < cap)
      state.step_modified();
  }

  result.stats.iterations = state.iterations();
  result.stats.intersections = state.intersections();
  result.stats.final_slope = state.hi_slope();
  result.stats.switched_to_modified = switched;
  result.stats.search_speed_evals = state.speed_evals();
  result.stats.search_intersect_solves = state.intersect_solves();
  result.distribution = state.fine_tune_epilogue(n);
  result.stats.speed_evals = state.speed_evals();
  result.stats.intersect_solves = state.intersect_solves();
  result.stats.bracket_saturations = state.bracket_saturations();
  result.stats.warmstart = state.warmstart();
  if (result.stats.warmstart == WarmStart::Hit)
    result.stats.iterations_saved = std::max(
        0, opts.hint->baseline_iterations - result.stats.iterations);
  return result;
}

}  // namespace fpm::core
