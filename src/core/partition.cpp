#include "core/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace fpm::core {

std::int64_t Distribution::total() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
}

std::vector<double> sizes_at(const SpeedList& speeds, double slope) {
  std::vector<double> xs(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i)
    xs[i] = speeds[i]->intersect(slope);
  return xs;
}

double total_size_at(const SpeedList& speeds, double slope) {
  double sum = 0.0;
  for (const SpeedFunction* f : speeds) sum += f->intersect(slope);
  return sum;
}

SlopeBracket detect_bracket(const SpeedList& speeds, std::int64_t n) {
  if (speeds.empty()) throw std::invalid_argument("detect_bracket: no speeds");
  if (n < 1) throw std::invalid_argument("detect_bracket: n must be >= 1");
  const double p = static_cast<double>(speeds.size());
  const double probe = static_cast<double>(n) / p;
  double s_min = std::numeric_limits<double>::infinity();
  double s_max = 0.0;
  for (const SpeedFunction* f : speeds) {
    const double s = f->speed(std::min(probe, f->max_size()));
    s_min = std::min(s_min, s);
    s_max = std::max(s_max, s);
  }
  SlopeBracket br;
  br.hi_slope = s_max / probe;  // line 1 of Figure 18
  br.lo_slope = s_min / probe;  // line 2 of Figure 18
  if (br.lo_slope <= 0.0) br.lo_slope = br.hi_slope * 1e-12;
  // Figure 18's construction guarantees the bracket under the shape
  // requirement; the expansion loops below make the function total for any
  // inputs. Intersections extend beyond the modelled ranges (see
  // SpeedFunction::intersect), so total_size_at is unbounded as the slope
  // approaches zero and the shallow expansion always terminates.
  const double nd = static_cast<double>(n);
  for (int i = 0; i < 256 && total_size_at(speeds, br.hi_slope) > nd; ++i)
    br.hi_slope *= 2.0;
  for (int i = 0; i < 256 && total_size_at(speeds, br.lo_slope) < nd; ++i)
    br.lo_slope *= 0.5;
  if (br.lo_slope > br.hi_slope) std::swap(br.lo_slope, br.hi_slope);
  return br;
}

Distribution partition_even(std::int64_t n, std::size_t p) {
  if (p == 0) throw std::invalid_argument("partition_even: p must be >= 1");
  Distribution d;
  d.counts.assign(p, n / static_cast<std::int64_t>(p));
  const std::int64_t rem = n % static_cast<std::int64_t>(p);
  for (std::int64_t i = 0; i < rem; ++i) ++d.counts[static_cast<std::size_t>(i)];
  return d;
}

Distribution partition_single_number(std::int64_t n,
                                     std::span<const double> speeds) {
  if (speeds.empty())
    throw std::invalid_argument("partition_single_number: no speeds");
  double total_speed = 0.0;
  for (const double s : speeds) {
    if (!(s > 0.0))
      throw std::invalid_argument(
          "partition_single_number: speeds must be positive");
    total_speed += s;
  }
  Distribution d;
  d.counts.resize(speeds.size());
  // Floor of the proportional share, then award the remaining elements one
  // at a time to the processor whose completion time after the award is
  // smallest — the standard O(p log p) heterogeneous rounding.
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    d.counts[i] = static_cast<std::int64_t>(
        std::floor(static_cast<double>(n) * speeds[i] / total_speed));
    assigned += d.counts[i];
  }
  using Entry = std::pair<double, std::size_t>;  // (post-award time, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < speeds.size(); ++i)
    heap.emplace(static_cast<double>(d.counts[i] + 1) / speeds[i], i);
  for (std::int64_t left = n - assigned; left > 0; --left) {
    const auto [t, i] = heap.top();
    heap.pop();
    ++d.counts[i];
    heap.emplace(static_cast<double>(d.counts[i] + 1) / speeds[i], i);
  }
  return d;
}

Distribution partition_single_number_at(const SpeedList& speeds,
                                        std::int64_t n,
                                        double reference_size) {
  std::vector<double> constants(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i)
    constants[i] = speeds[i]->speed(reference_size);
  return partition_single_number(n, constants);
}

double makespan(const SpeedList& speeds, const Distribution& d) {
  assert(speeds.size() == d.counts.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const auto x = static_cast<double>(d.counts[i]);
    if (x <= 0.0) continue;
    worst = std::max(worst, x / speeds[i]->speed(x));
  }
  return worst;
}

std::vector<double> execution_times(const SpeedList& speeds,
                                    const Distribution& d) {
  assert(speeds.size() == d.counts.size());
  std::vector<double> ts(speeds.size(), 0.0);
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const auto x = static_cast<double>(d.counts[i]);
    if (x > 0.0) ts[i] = x / speeds[i]->speed(x);
  }
  return ts;
}

}  // namespace fpm::core
