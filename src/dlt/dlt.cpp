#include "dlt/dlt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fpm::dlt {

ComputeTime ComputeTime::constant_rate(double seconds_per_unit) {
  if (!(seconds_per_unit > 0.0))
    throw std::invalid_argument("ComputeTime: rate must be > 0");
  return {{0.0}, {seconds_per_unit}};
}

ComputeTime ComputeTime::out_of_core(double in_core, double memory_units,
                                     double out_of_core) {
  if (!(in_core > 0.0) || !(out_of_core >= in_core) || !(memory_units > 0.0))
    throw std::invalid_argument(
        "ComputeTime: need 0 < in_core <= out_of_core and memory > 0");
  return {{0.0, memory_units}, {in_core, out_of_core}};
}

double ComputeTime::seconds(double load) const {
  assert(!knots.empty() && knots.size() == slopes.size());
  double t = 0.0;
  for (std::size_t k = 0; k < knots.size(); ++k) {
    const double seg_lo = knots[k];
    if (load <= seg_lo) break;
    const double seg_hi =
        k + 1 < knots.size() ? std::min(knots[k + 1], load) : load;
    t += (seg_hi - seg_lo) * slopes[k];
  }
  return t;
}

double ComputeTime::invert(double seconds_avail) const {
  assert(!knots.empty() && knots.size() == slopes.size());
  if (seconds_avail <= 0.0) return 0.0;
  double t = 0.0;
  for (std::size_t k = 0; k < knots.size(); ++k) {
    const double seg_lo = knots[k];
    const bool last = k + 1 == knots.size();
    const double seg_len =
        last ? std::numeric_limits<double>::infinity() : knots[k + 1] - seg_lo;
    const double seg_time = seg_len * slopes[k];
    if (last || t + seg_time >= seconds_avail)
      return seg_lo + (seconds_avail - t) / slopes[k];
    t += seg_time;
  }
  return knots.back();  // unreachable
}

namespace {

/// Total load distributable within makespan T: the forward recursion of
/// the simultaneous-finish principle. Worker i receives its share after the
/// cumulative communication C_{i-1}; its share is the largest load whose
/// transfer plus computation fits in T - C_{i-1} - startup, solved on the
/// convex compute-time curve, clamped by the memory bound.
double total_within(std::span<const DltWorker> workers, double T,
                    std::vector<double>* shares) {
  double cumulative_comm = 0.0;
  double total = 0.0;
  if (shares) shares->assign(workers.size(), 0.0);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const DltWorker& w = workers[i];
    const double avail = T - cumulative_comm - w.startup_s;
    if (avail <= 0.0) continue;  // no time left for this worker
    // Solve compute.seconds(a) + z*a == avail for a: both addends increase
    // in a, so bisect on a. Upper bound: avail/z or the pure-compute
    // inverse, whichever is larger.
    double hi = w.compute.invert(avail);
    if (w.link_s_per_unit > 0.0)
      hi = std::min(hi, avail / w.link_s_per_unit);
    double lo = 0.0;
    for (int it = 0; it < 100; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (mid <= lo || mid >= hi) break;
      if (w.compute.seconds(mid) + w.link_s_per_unit * mid <= avail)
        lo = mid;
      else
        hi = mid;
    }
    double share = 0.5 * (lo + hi);
    share = std::min(share, w.memory_limit);
    if (shares) (*shares)[i] = share;
    cumulative_comm += w.startup_s + w.link_s_per_unit * share;
    total += share;
  }
  return total;
}

}  // namespace

DltSchedule schedule_single_round(std::span<const DltWorker> workers,
                                  double total_load) {
  if (workers.empty())
    throw std::invalid_argument("schedule_single_round: no workers");
  if (total_load < 0.0)
    throw std::invalid_argument("schedule_single_round: negative load");
  DltSchedule result;
  result.shares.assign(workers.size(), 0.0);
  if (total_load == 0.0) return result;

  // Feasibility: memory bounds cap the distributable volume.
  double capacity = 0.0;
  for (const DltWorker& w : workers) capacity += w.memory_limit;
  if (capacity < total_load) {
    result.feasible = false;
    return result;
  }

  // Bracket the makespan: worker 0 handling everything alone is feasible
  // when its memory allows; otherwise grow geometrically until the total
  // fits (memory-capped totals still grow with T via later workers).
  double t_hi = workers[0].startup_s +
                workers[0].link_s_per_unit * total_load +
                workers[0].compute.seconds(total_load);
  for (int i = 0; i < 256 && total_within(workers, t_hi, nullptr) < total_load;
       ++i)
    t_hi *= 2.0;
  double t_lo = 0.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (mid <= t_lo || mid >= t_hi) break;
    if (total_within(workers, mid, nullptr) >= total_load)
      t_hi = mid;
    else
      t_lo = mid;
  }
  total_within(workers, t_hi, &result.shares);
  // Scale the tiny bisection overshoot back onto the last non-zero share.
  double sum = std::accumulate(result.shares.begin(), result.shares.end(), 0.0);
  if (sum > 0.0) {
    const double excess = sum - total_load;
    if (excess > 0.0) {
      for (std::size_t i = result.shares.size(); i-- > 0;) {
        const double take = std::min(result.shares[i], excess);
        result.shares[i] -= take;
        if (take >= excess) break;
      }
    }
  }
  result.makespan_s = t_hi;
  return result;
}

DltMultiSchedule schedule_multi_round(std::span<const DltWorker> workers,
                                      double total_load, int rounds) {
  if (rounds < 1)
    throw std::invalid_argument("schedule_multi_round: rounds must be >= 1");
  DltMultiSchedule result;
  // Equal installments with single-round proportions per installment; the
  // makespan comes from simulating the pipelined timeline (the master
  // sends installment r+1 while workers compute installment r). Each
  // installment is processed and retired before the next, so per-
  // installment compute time uses the installment size — which is exactly
  // how multi-installment processing sidesteps the out-of-core penalty.
  const double per_round = total_load / rounds;
  const DltSchedule base = schedule_single_round(workers, per_round);
  result.feasible = base.feasible;
  result.shares.assign(workers.size(), 0.0);
  if (!base.feasible) return result;
  for (std::size_t i = 0; i < workers.size(); ++i)
    result.shares[i] = base.shares[i] * rounds;

  double clock = 0.0;
  std::vector<double> finish(workers.size(), 0.0);
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const double share = base.shares[i];
      if (share <= 0.0) continue;
      clock += workers[i].startup_s + workers[i].link_s_per_unit * share;
      const double start = std::max(clock, finish[i]);
      finish[i] = start + workers[i].compute.seconds(share);
    }
  }
  for (const double f : finish) result.makespan_s = std::max(result.makespan_s, f);
  return result;
}

std::vector<std::size_t> optimize_order(std::span<const DltWorker> workers,
                                        double total_load) {
  std::vector<std::size_t> identity(workers.size());
  std::iota(identity.begin(), identity.end(), std::size_t{0});

  const auto evaluate = [&](const std::vector<std::size_t>& order) {
    std::vector<DltWorker> permuted;
    permuted.reserve(order.size());
    for (const std::size_t i : order) permuted.push_back(workers[i]);
    const DltSchedule s = schedule_single_round(permuted, total_load);
    return s.feasible ? s.makespan_s
                      : std::numeric_limits<double>::infinity();
  };

  std::vector<std::size_t> by_link = identity;
  std::stable_sort(by_link.begin(), by_link.end(),
                   [&](std::size_t a, std::size_t b) {
                     return workers[a].link_s_per_unit <
                            workers[b].link_s_per_unit;
                   });
  std::vector<std::size_t> by_compute = identity;
  std::stable_sort(by_compute.begin(), by_compute.end(),
                   [&](std::size_t a, std::size_t b) {
                     return workers[a].compute.slopes.front() <
                            workers[b].compute.slopes.front();
                   });

  std::vector<std::size_t> best = identity;
  double best_t = evaluate(identity);
  for (const auto* cand : {&by_link, &by_compute}) {
    const double t = evaluate(*cand);
    if (t < best_t) {
      best_t = t;
      best = *cand;
    }
  }
  return best;
}

DltWorker worker_from_speed_function(const core::SpeedFunction& speed,
                                     double memory_elements,
                                     double flops_per_element,
                                     double startup_s,
                                     double link_s_per_unit) {
  if (!(memory_elements > 0.0) || !(flops_per_element > 0.0))
    throw std::invalid_argument("worker_from_speed_function: bad parameters");
  DltWorker w;
  w.startup_s = startup_s;
  w.link_s_per_unit = link_s_per_unit;
  // In-core rate: the speed at half the memory size; out-of-core rate: the
  // speed at twice the memory size (deep enough that paging dominates).
  const double s_in = speed.speed(memory_elements * 0.5);
  const double s_out = speed.speed(memory_elements * 2.0);
  const double in_core = flops_per_element / (s_in * 1e6);
  const double out_core =
      std::max(in_core, flops_per_element / (s_out * 1e6));
  w.compute = ComputeTime::out_of_core(in_core, memory_elements, out_core);
  return w;
}

}  // namespace fpm::dlt
