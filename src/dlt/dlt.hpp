// Divisible Load Theory (DLT) baselines — the scheduling-theory line of
// work the paper positions itself against (its references [17] Bharadwaj et
// al., [18] Drozdowski & Wolniewicz "Divisible Load Scheduling in Systems
// with Limited Memory", [19] "Out-of-Core Divisible Load Processing").
//
// Model: a star network. The master holds V units of divisible load and
// sends fraction alpha_i to worker i over a dedicated link, one worker
// after another (single-installment, sequential distribution). Worker i
// starts computing when its share has arrived. The classic optimality
// principle — all workers finish simultaneously — yields a forward
// recursion per candidate makespan T, and the total distributed load is
// monotone in T, so the optimal T is found by bisection.
//
// Three model variants, matching the three references:
//   * classic: constant compute rate w_i seconds/unit (flat memory model);
//   * limited memory: a hard per-worker buffer bound B_i;
//   * out-of-core: compute time piecewise-linear and convex in the share
//     (the rate degrades once the share spills out of memory).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/speed_function.hpp"

namespace fpm::dlt {

/// Piecewise-linear convex compute-time function: time(load) interpolates
/// the breakpoints and extends the last slope beyond them. Breakpoints must
/// start at (0, 0) implicitly; `slopes[k]` applies on [knots[k], knots[k+1])
/// with knots[0] == 0 and knots.size() == slopes.size().
struct ComputeTime {
  std::vector<double> knots;   ///< load thresholds, knots[0] == 0
  std::vector<double> slopes;  ///< seconds per unit on each segment, increasing

  /// Constant-rate model (the classic flat-memory DLT).
  static ComputeTime constant_rate(double seconds_per_unit);

  /// Two-rate out-of-core model: `in_core` seconds/unit until
  /// `memory_units`, `out_of_core` seconds/unit beyond.
  static ComputeTime out_of_core(double in_core, double memory_units,
                                 double out_of_core);

  double seconds(double load) const;
  /// Largest load finishing within `seconds_avail`; inverse of seconds().
  double invert(double seconds_avail) const;
};

/// One worker of the star.
struct DltWorker {
  double startup_s = 0.0;        ///< link start-up cost per message
  double link_s_per_unit = 0.0;  ///< z_i: transfer seconds per load unit
  ComputeTime compute;           ///< compute-time model
  double memory_limit =          ///< B_i: hard buffer bound (units)
      std::numeric_limits<double>::infinity();
};

/// The resulting schedule.
struct DltSchedule {
  std::vector<double> shares;  ///< alpha_i, in load units; sums to V
  double makespan_s = 0.0;
  bool feasible = true;  ///< false when memory bounds cannot hold V
};

/// Optimal single-installment schedule for the given worker order.
/// Workers receive their shares in index order. Requires V >= 0.
DltSchedule schedule_single_round(std::span<const DltWorker> workers,
                                  double total_load);

/// Heuristic order optimization: evaluates the identity order, workers
/// sorted by link rate, and workers sorted by compute rate, returning the
/// permutation with the best makespan (ties keep the earlier candidate).
std::vector<std::size_t> optimize_order(std::span<const DltWorker> workers,
                                        double total_load);

/// Multi-installment scheduling: the load is dispatched in `rounds`
/// consecutive single-round schedules, so every worker starts computing
/// after receiving only ~1/rounds of its total share — the classic remedy
/// for the long initial distribution phase when links are slow relative to
/// computation. Workers compute their installments back to back; the
/// makespan is the completion of the last installment. Memory bounds apply
/// per installment stock (conservatively: to each installment).
/// Requires rounds >= 1; rounds == 1 reduces to schedule_single_round.
struct DltMultiSchedule {
  std::vector<double> shares;  ///< total per worker, sums to V
  double makespan_s = 0.0;
  bool feasible = true;
};
DltMultiSchedule schedule_multi_round(std::span<const DltWorker> workers,
                                      double total_load, int rounds);

/// Adapter from a functional performance model: derives an out-of-core
/// two-rate DLT worker from a speed function by probing the in-core and
/// deep-paging speeds around the given memory size.
/// `flops_per_element` converts speeds (MFlops) into seconds per element.
DltWorker worker_from_speed_function(const core::SpeedFunction& speed,
                                     double memory_elements,
                                     double flops_per_element,
                                     double startup_s, double link_s_per_unit);

}  // namespace fpm::dlt
