// Dynamic repartitioning for iterative data-parallel applications.
//
// An iterative application (Jacobi sweeps, time-stepped simulation,
// iterative solvers) executes the same partitioned computation many times.
// Every iteration yields free measurements — each processor's wall time at
// its current share — which the Rebalancer feeds into per-processor
// OnlineModels and uses to repartition when the observed imbalance exceeds
// a threshold and the predicted gain outweighs the data-migration cost.
//
// Speed units: the rebalancer works in elements/second (speed_i =
// share_i / seconds_i), so it needs no knowledge of the application's flop
// counts and its models plug straight into the partitioners.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "balance/online_model.hpp"
#include "core/partition.hpp"
#include "core/policy.hpp"

namespace fpm::core {
class PartitionServer;
}

namespace fpm::balance {

struct RebalancerOptions {
  /// Repartition when (t_max - t_min)/t_max exceeds this.
  double imbalance_threshold = 0.10;
  /// Seconds to move one element between processors (0 = free migration).
  double migration_cost_per_element_s = 0.0;
  /// Iterations to run on the initial distribution before the models are
  /// trusted (they need at least one observation per processor anyway).
  int warmup_iterations = 1;
  /// Minimum iterations between repartitions (damps thrashing on noisy
  /// measurements).
  int cooldown_iterations = 3;
  /// Required relative improvement of the *predicted* makespan (evaluated
  /// on the learned curves, so measurement noise cancels) before a
  /// repartition is accepted.
  double gain_margin = 0.05;
  /// Evacuation threshold: a processor whose observed speed stays below
  /// this fraction of its own model's estimate for `collapse_strikes`
  /// consecutive iterations is declared collapsed and drained — its share
  /// is redistributed over the healthy processors immediately, bypassing
  /// cooldown and gain margin (an emergency, not an optimization). 0
  /// disables speed-based collapse detection.
  double evacuation_speed_fraction = 0.0;
  /// Consecutive below-threshold iterations before draining.
  int collapse_strikes = 2;
  /// A processor that holds a non-empty share yet delivers no valid
  /// iteration time (<= 0 or NaN) for this many consecutive iterations is
  /// likewise drained. 0 disables missing-measurement collapse detection.
  int max_missing_measurements = 0;
  /// Partitioner applied to the learned curves on every repartition
  /// (default: combined).
  core::PartitionPolicy policy{};
  /// Optional shared partitioning service (core/server.hpp). When set,
  /// repartitions go through server->serve() instead of core::partition(),
  /// so many rebalancing loops share one result cache and identical
  /// (model, n, policy) requests are answered without recomputation. The
  /// server must outlive the Rebalancer; results are bit-identical either
  /// way.
  core::PartitionServer* server = nullptr;
};

class Rebalancer {
 public:
  /// Starts from an even distribution of n elements over p processors.
  Rebalancer(std::size_t processors, std::int64_t n,
             const OnlineModelOptions& model_opts,
             const RebalancerOptions& opts);

  /// Starts from a caller-provided initial distribution (e.g. one computed
  /// offline with pre-built models).
  Rebalancer(core::Distribution initial, const OnlineModelOptions& model_opts,
             const RebalancerOptions& opts);

  /// The distribution the application should use for the next iteration.
  const core::Distribution& distribution() const noexcept { return dist_; }

  /// Feeds the measured per-processor wall times of the last iteration
  /// (seconds[i] == 0 is allowed for processors with empty shares).
  /// Returns true when the distribution was changed, in which case the
  /// caller pays migration_seconds() before the next iteration.
  bool step(std::span<const double> seconds);

  /// Relative imbalance of the most recent iteration.
  double last_imbalance() const noexcept { return last_imbalance_; }
  /// Number of repartitions performed so far.
  int repartitions() const noexcept { return repartitions_; }
  /// Migration time charged by the most recent repartition.
  double last_migration_seconds() const noexcept { return last_migration_s_; }
  /// Read access to a processor's learned model.
  const OnlineModel& model(std::size_t i) const { return models_.at(i); }
  /// False once processor i has been declared collapsed and drained.
  bool active(std::size_t i) const { return active_.at(i) != 0; }
  /// Number of processors drained so far.
  int evacuations() const noexcept { return evacuations_; }

 private:
  /// Repartitions n_ over the active processors (zero share elsewhere)
  /// using their learned curves, or evenly when a curve is not ready yet.
  /// Model-based solves warm-start from the previous accepted slope (the
  /// curves drift a little per round, so each solve is a near miss of the
  /// last) and refresh that hint afterwards.
  core::Distribution partition_active();

  core::Distribution dist_;
  std::int64_t n_;
  std::vector<OnlineModel> models_;
  RebalancerOptions opts_;
  std::vector<char> active_;
  std::vector<int> slow_streak_;
  std::vector<int> missing_streak_;
  int evacuations_ = 0;
  int iterations_seen_ = 0;
  int last_repartition_iteration_ = std::numeric_limits<int>::min() / 2;
  int repartitions_ = 0;
  double last_imbalance_ = 0.0;
  double last_migration_s_ = 0.0;
  /// Slope of the last accepted model-based repartition. fingerprint stays
  /// 0 (the re-learned curves legitimately differ every round); the
  /// engine's bracket verification alone decides whether the hint holds.
  std::optional<core::PartitionHint> hint_;
};

}  // namespace fpm::balance
