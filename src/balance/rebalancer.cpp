#include "balance/rebalancer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/combined.hpp"

namespace fpm::balance {

Rebalancer::Rebalancer(std::size_t processors, std::int64_t n,
                       const OnlineModelOptions& model_opts,
                       const RebalancerOptions& opts)
    : Rebalancer(core::partition_even(n, processors), model_opts, opts) {}

Rebalancer::Rebalancer(core::Distribution initial,
                       const OnlineModelOptions& model_opts,
                       const RebalancerOptions& opts)
    : dist_(std::move(initial)), n_(dist_.total()), opts_(opts) {
  if (dist_.counts.empty())
    throw std::invalid_argument("Rebalancer: no processors");
  models_.reserve(dist_.counts.size());
  for (std::size_t i = 0; i < dist_.counts.size(); ++i)
    models_.emplace_back(model_opts);
}

bool Rebalancer::step(std::span<const double> seconds) {
  if (seconds.size() != dist_.counts.size())
    throw std::invalid_argument("Rebalancer::step: size mismatch");
  ++iterations_seen_;
  last_migration_s_ = 0.0;

  // Ingest observations and compute the iteration's imbalance.
  double t_max = 0.0;
  double t_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    const auto share = static_cast<double>(dist_.counts[i]);
    if (share <= 0.0 || !(seconds[i] > 0.0)) continue;
    models_[i].observe(share, share / seconds[i]);
    t_max = std::max(t_max, seconds[i]);
    t_min = std::min(t_min, seconds[i]);
  }
  last_imbalance_ = t_max > 0.0 ? (t_max - t_min) / t_max : 0.0;

  if (iterations_seen_ <= opts_.warmup_iterations) return false;
  if (iterations_seen_ - last_repartition_iteration_ <=
      opts_.cooldown_iterations)
    return false;
  if (last_imbalance_ <= opts_.imbalance_threshold) return false;
  for (const OnlineModel& m : models_)
    if (!m.ready()) return false;  // someone has no data yet (empty share)

  // Candidate repartition from the learned curves.
  std::vector<core::PiecewiseLinearSpeed> curves;
  curves.reserve(models_.size());
  for (const OnlineModel& m : models_) curves.push_back(m.curve());
  core::SpeedList speeds;
  for (const auto& c : curves) speeds.push_back(&c);
  core::Distribution candidate =
      core::partition_combined(speeds, n_).distribution;

  // Accept only if the *predicted* makespan (both sides evaluated on the
  // learned curves, cancelling measurement noise) improves by the margin
  // plus the one-off migration cost amortized over a single iteration.
  const double predicted_new = core::makespan(speeds, candidate);
  const double predicted_current = core::makespan(speeds, dist_);
  std::int64_t moved = 0;
  for (std::size_t i = 0; i < candidate.counts.size(); ++i)
    moved += std::abs(candidate.counts[i] - dist_.counts[i]);
  moved /= 2;  // every element moved leaves one share and enters another
  const double migration =
      static_cast<double>(moved) * opts_.migration_cost_per_element_s;
  if (predicted_new + migration >=
      predicted_current * (1.0 - opts_.gain_margin))
    return false;

  dist_ = std::move(candidate);
  ++repartitions_;
  last_repartition_iteration_ = iterations_seen_;
  last_migration_s_ = migration;
  return true;
}

}  // namespace fpm::balance
