#include "balance/rebalancer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/policy.hpp"
#include "core/server.hpp"
#include "obs/metrics.hpp"

namespace fpm::balance {

Rebalancer::Rebalancer(std::size_t processors, std::int64_t n,
                       const OnlineModelOptions& model_opts,
                       const RebalancerOptions& opts)
    : Rebalancer(core::partition_even(n, processors), model_opts, opts) {}

Rebalancer::Rebalancer(core::Distribution initial,
                       const OnlineModelOptions& model_opts,
                       const RebalancerOptions& opts)
    : dist_(std::move(initial)), n_(dist_.total()), opts_(opts) {
  if (dist_.counts.empty())
    throw std::invalid_argument("Rebalancer: no processors");
  models_.reserve(dist_.counts.size());
  for (std::size_t i = 0; i < dist_.counts.size(); ++i)
    models_.emplace_back(model_opts);
  active_.assign(dist_.counts.size(), 1);
  slow_streak_.assign(dist_.counts.size(), 0);
  missing_streak_.assign(dist_.counts.size(), 0);
}

core::Distribution Rebalancer::partition_active() {
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < active_.size(); ++i)
    if (active_[i]) alive.push_back(i);
  if (alive.empty())
    throw std::runtime_error("Rebalancer: every processor collapsed");

  core::Distribution out;
  out.counts.assign(dist_.counts.size(), 0);
  bool all_ready = true;
  for (const std::size_t i : alive)
    if (!models_[i].ready()) all_ready = false;
  if (all_ready) {
    std::vector<core::PiecewiseLinearSpeed> curves;
    curves.reserve(alive.size());
    for (const std::size_t i : alive) curves.push_back(models_[i].curve());
    core::SpeedList speeds;
    speeds.reserve(curves.size());
    for (const auto& c : curves) speeds.push_back(&c);
    core::PartitionPolicy policy = opts_.policy;
    if (!policy.hint) policy.hint = hint_;
    const core::PartitionResult res =
        opts_.server ? opts_.server->serve(speeds, n_, policy)
                     : core::partition(speeds, n_, policy);
    // Carry the accepted slope across rounds. Keep the baseline iteration
    // count from the last cold solve so iterations_saved measures warm
    // against cold rather than warm against warm.
    if (std::isfinite(res.stats.final_slope) && res.stats.final_slope > 0.0) {
      core::PartitionHint next;
      next.slope = res.stats.final_slope;
      next.n = n_;
      next.baseline_iterations =
          hint_ && res.stats.warmstart == core::WarmStart::Hit
              ? hint_->baseline_iterations
              : res.stats.iterations;
      hint_ = std::move(next);
    }
    for (std::size_t j = 0; j < alive.size(); ++j)
      out.counts[alive[j]] = res.distribution.counts[j];
  } else {
    const core::Distribution sub = core::partition_even(n_, alive.size());
    for (std::size_t j = 0; j < alive.size(); ++j)
      out.counts[alive[j]] = sub.counts[j];
  }
  return out;
}

bool Rebalancer::step(std::span<const double> seconds) {
  if (seconds.size() != dist_.counts.size())
    throw std::invalid_argument("Rebalancer::step: size mismatch");
  ++iterations_seen_;
  last_migration_s_ = 0.0;
  obs::metrics().counter(obs::names::kRebalanceRounds).add(1);

  // Ingest observations, compute the iteration's imbalance, and track the
  // two collapse signals: speed far below the model's own estimate
  // (estimated *before* the observation updates the model) and repeated
  // missing measurements on a non-empty share.
  double t_max = 0.0;
  double t_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    const auto share = static_cast<double>(dist_.counts[i]);
    if (share <= 0.0) continue;
    if (!(seconds[i] > 0.0)) {  // missing, zero, or NaN time
      if (active_[i]) ++missing_streak_[i];
      continue;
    }
    missing_streak_[i] = 0;
    const double observed = share / seconds[i];
    if (active_[i] && opts_.evacuation_speed_fraction > 0.0) {
      const std::optional<double> expected = models_[i].estimate(share);
      if (expected && observed < opts_.evacuation_speed_fraction * *expected)
        ++slow_streak_[i];
      else
        slow_streak_[i] = 0;
    }
    models_[i].observe(share, observed);
    t_max = std::max(t_max, seconds[i]);
    t_min = std::min(t_min, seconds[i]);
  }
  last_imbalance_ = t_max > 0.0 ? (t_max - t_min) / t_max : 0.0;

  // Emergency drain of collapsed processors: immediate, no cooldown, no
  // gain margin — holding a share on a dead or 10x-degraded machine costs
  // more per iteration than any migration.
  bool drained = false;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (!active_[i] || dist_.counts[i] <= 0) continue;
    const bool missing_collapse =
        opts_.max_missing_measurements > 0 &&
        missing_streak_[i] >= opts_.max_missing_measurements;
    const bool speed_collapse = opts_.evacuation_speed_fraction > 0.0 &&
                                slow_streak_[i] >= opts_.collapse_strikes;
    if (missing_collapse || speed_collapse) {
      active_[i] = 0;
      ++evacuations_;
      obs::metrics().counter(obs::names::kRebalanceEvacuations).add(1);
      drained = true;
    }
  }
  if (drained) {
    core::Distribution candidate = partition_active();
    std::int64_t moved = 0;
    for (std::size_t i = 0; i < candidate.counts.size(); ++i)
      moved += std::abs(candidate.counts[i] - dist_.counts[i]);
    moved /= 2;
    last_migration_s_ =
        static_cast<double>(moved) * opts_.migration_cost_per_element_s;
    dist_ = std::move(candidate);
    ++repartitions_;
    obs::metrics().counter(obs::names::kRebalanceRepartitions).add(1);
    last_repartition_iteration_ = iterations_seen_;
    return true;
  }

  if (iterations_seen_ <= opts_.warmup_iterations) return false;
  if (iterations_seen_ - last_repartition_iteration_ <=
      opts_.cooldown_iterations)
    return false;
  if (last_imbalance_ <= opts_.imbalance_threshold) return false;
  for (std::size_t i = 0; i < models_.size(); ++i)
    if (active_[i] && !models_[i].ready())
      return false;  // someone has no data yet (empty share)

  // Candidate repartition from the learned curves of the active
  // processors. Accept only if the *predicted* makespan (both sides
  // evaluated on the learned curves, cancelling measurement noise)
  // improves by the margin plus the one-off migration cost amortized over
  // a single iteration.
  core::Distribution candidate = partition_active();
  std::vector<core::PiecewiseLinearSpeed> curves;
  core::SpeedList speeds;
  core::Distribution sub_candidate, sub_current;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (!active_[i]) continue;
    curves.push_back(models_[i].curve());
    sub_candidate.counts.push_back(candidate.counts[i]);
    sub_current.counts.push_back(dist_.counts[i]);
  }
  speeds.reserve(curves.size());
  for (const auto& c : curves) speeds.push_back(&c);
  const double predicted_new = core::makespan(speeds, sub_candidate);
  const double predicted_current = core::makespan(speeds, sub_current);
  std::int64_t moved = 0;
  for (std::size_t i = 0; i < candidate.counts.size(); ++i)
    moved += std::abs(candidate.counts[i] - dist_.counts[i]);
  moved /= 2;  // every element moved leaves one share and enters another
  const double migration =
      static_cast<double>(moved) * opts_.migration_cost_per_element_s;
  if (predicted_new + migration >=
      predicted_current * (1.0 - opts_.gain_margin))
    return false;

  dist_ = std::move(candidate);
  ++repartitions_;
  obs::metrics().counter(obs::names::kRebalanceRepartitions).add(1);
  last_repartition_iteration_ = iterations_seen_;
  last_migration_s_ = migration;
  return true;
}

}  // namespace fpm::balance
