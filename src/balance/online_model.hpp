// Online maintenance of the functional model.
//
// The paper closes by naming "the problems of efficient building and
// maintaining of our model" as open research (§4). This module implements
// the maintaining half: an incrementally updated piece-wise-linear speed
// model that ingests (size, observed speed) pairs from real executions —
// every iteration of a data-parallel application is a free experiment — and
// ages old observations so the model tracks drifting background load.
//
// Design: a fixed grid of geometric size buckets. Each bucket keeps an
// exponentially weighted moving average (EWMA) of the speeds observed in
// it. The exported curve interpolates the populated buckets and is passed
// through the monotone-ratio repair, so it always satisfies the shape
// requirement the partitioners need.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/model_io.hpp"
#include "core/piecewise.hpp"

namespace fpm::balance {

struct OnlineModelOptions {
  double min_size = 1.0;   ///< smallest modelled size
  double max_size = 1e9;   ///< largest modelled size
  std::size_t buckets = 24;  ///< geometric size buckets over [min, max]
  /// EWMA weight of a new observation (1 = only the latest, 0 = frozen).
  double learning_rate = 0.3;
};

/// Incrementally learned speed model for one processor.
class OnlineModel {
 public:
  explicit OnlineModel(const OnlineModelOptions& opts);

  /// Ingests one observation: the processor ran a problem of `size`
  /// elements at `speed` speed units. Sizes are clamped into the modelled
  /// range; non-positive observations are ignored.
  void observe(double size, double speed);

  /// Number of observations ingested so far.
  std::size_t observations() const noexcept { return observations_; }

  /// True once at least one bucket is populated (curve() is usable).
  bool ready() const noexcept;

  /// Current speed estimate at `size`; nullopt until ready().
  std::optional<double> estimate(double size) const;

  /// Exports the current model as a partitioner-ready curve (monotone-ratio
  /// repaired). Requires ready().
  core::PiecewiseLinearSpeed curve() const;

  /// Serializes the learned state (bucket centres and EWMA speeds) as a
  /// NamedModel for model_io persistence; requires ready().
  core::NamedModel to_named_model(std::string name) const;

  /// Seeds the buckets from a previously saved model: each breakpoint is
  /// ingested as one observation, so a restored model continues adapting.
  void restore(const core::NamedModel& saved);

 private:
  std::size_t bucket_of(double size) const;
  double bucket_centre(std::size_t b) const;

  OnlineModelOptions opts_;
  double log_min_ = 0.0;
  double log_step_ = 0.0;
  std::vector<double> ewma_;   ///< per-bucket speed EWMA (0 = empty)
  std::vector<int> counts_;    ///< per-bucket observation counts
  std::size_t observations_ = 0;
};

}  // namespace fpm::balance
