#include "balance/online_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpm::balance {

OnlineModel::OnlineModel(const OnlineModelOptions& opts) : opts_(opts) {
  if (!(opts.min_size > 0.0) || !(opts.max_size > opts.min_size))
    throw std::invalid_argument("OnlineModel: need 0 < min_size < max_size");
  if (opts.buckets < 2)
    throw std::invalid_argument("OnlineModel: need >= 2 buckets");
  if (!(opts.learning_rate > 0.0) || !(opts.learning_rate <= 1.0))
    throw std::invalid_argument("OnlineModel: learning_rate in (0, 1]");
  log_min_ = std::log(opts.min_size);
  log_step_ = (std::log(opts.max_size) - log_min_) /
              static_cast<double>(opts.buckets);
  ewma_.assign(opts.buckets, 0.0);
  counts_.assign(opts.buckets, 0);
}

std::size_t OnlineModel::bucket_of(double size) const {
  const double clamped = std::clamp(size, opts_.min_size, opts_.max_size);
  const auto b = static_cast<std::size_t>(
      (std::log(clamped) - log_min_) / log_step_);
  return std::min(b, opts_.buckets - 1);
}

double OnlineModel::bucket_centre(std::size_t b) const {
  return std::exp(log_min_ + (static_cast<double>(b) + 0.5) * log_step_);
}

void OnlineModel::observe(double size, double speed) {
  if (!(size > 0.0) || !(speed > 0.0) || !std::isfinite(speed)) return;
  const std::size_t b = bucket_of(size);
  if (counts_[b] == 0)
    ewma_[b] = speed;
  else
    ewma_[b] += opts_.learning_rate * (speed - ewma_[b]);
  ++counts_[b];
  ++observations_;
}

bool OnlineModel::ready() const noexcept {
  return std::any_of(counts_.begin(), counts_.end(),
                     [](int c) { return c > 0; });
}

std::optional<double> OnlineModel::estimate(double size) const {
  if (!ready()) return std::nullopt;
  return curve().speed(size);
}

core::NamedModel OnlineModel::to_named_model(std::string name) const {
  if (!ready())
    throw std::logic_error("OnlineModel::to_named_model: no observations");
  core::NamedModel m;
  m.name = std::move(name);
  m.epsilon = 0.0;  // online models carry no band semantics
  for (std::size_t b = 0; b < opts_.buckets; ++b)
    if (counts_[b] > 0) {
      m.lower.push_back({bucket_centre(b), ewma_[b]});
      m.upper.push_back({bucket_centre(b), ewma_[b]});
    }
  return m;
}

void OnlineModel::restore(const core::NamedModel& saved) {
  for (std::size_t i = 0; i < saved.lower.size(); ++i)
    observe(saved.lower[i].size,
            0.5 * (saved.lower[i].speed + saved.upper[i].speed));
}

core::PiecewiseLinearSpeed OnlineModel::curve() const {
  std::vector<core::SpeedPoint> pts;
  for (std::size_t b = 0; b < opts_.buckets; ++b)
    if (counts_[b] > 0) pts.push_back({bucket_centre(b), ewma_[b]});
  if (pts.empty())
    throw std::logic_error("OnlineModel::curve: no observations yet");
  return core::PiecewiseLinearSpeed(
      core::repair_shape_requirement(std::move(pts)));
}

}  // namespace fpm::balance
