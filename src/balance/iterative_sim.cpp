#include "balance/iterative_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/policy.hpp"

namespace fpm::balance {

IterativeResult simulate_iterative(sim::SimulatedCluster& cluster,
                                   const std::string& app,
                                   const IterativeOptions& opts,
                                   std::span<const DriftEvent> drift) {
  if (opts.n <= 0 || opts.iterations <= 0)
    throw std::invalid_argument("simulate_iterative: need n, iterations >= 1");
  const std::size_t p = cluster.size();

  // Initial distribution by policy.
  core::Distribution dist;
  switch (opts.policy) {
    case BalancePolicy::StaticEven:
    case BalancePolicy::Online:
      dist = core::partition_even(opts.n, p);
      break;
    case BalancePolicy::StaticFunctional: {
      sim::ClusterModels models = sim::build_cluster_models(cluster, app);
      dist = core::partition(models.list(), opts.n, opts.partition_policy)
                 .distribution;
      break;
    }
  }

  OnlineModelOptions model_opts = opts.model;
  if (model_opts.max_size <= model_opts.min_size) {
    // Default the modelled range to the distribution scale.
    model_opts.min_size = 1.0;
    model_opts.max_size = static_cast<double>(opts.n);
  }
  Rebalancer rebalancer(dist, model_opts, opts.rebalance);

  IterativeResult result;
  result.iteration_seconds.reserve(static_cast<std::size_t>(opts.iterations));
  std::size_t next_drift = 0;

  for (int it = 0; it < opts.iterations; ++it) {
    while (next_drift < drift.size() && drift[next_drift].iteration <= it) {
      cluster.set_load_shift(drift[next_drift].machine,
                             drift[next_drift].load_shift);
      ++next_drift;
    }
    const core::Distribution& current =
        opts.policy == BalancePolicy::Online ? rebalancer.distribution()
                                             : dist;
    std::vector<double> seconds(p, 0.0);
    double wall = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      const auto share = static_cast<double>(current.counts[i]);
      if (share <= 0.0) continue;
      seconds[i] =
          cluster.sampled_seconds(i, app, share, opts.flops_per_element);
      wall = std::max(wall, seconds[i]);
    }
    if (opts.policy == BalancePolicy::Online) {
      if (rebalancer.step(seconds))
        wall += rebalancer.last_migration_seconds();
    }
    result.iteration_seconds.push_back(wall);
    result.total_seconds += wall;
  }
  result.repartitions = rebalancer.repartitions();
  return result;
}

}  // namespace fpm::balance
