// Driver for studying dynamic load balancing on the simulated cluster: an
// iterative data-parallel application whose per-iteration work is
// flops_per_element per owned element, with optional background-load drift
// events injected mid-run (a user logs into a machine and starts a heavy
// job; paper §1 observes such loads shift the performance band down).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "simcluster/cluster.hpp"

namespace fpm::balance {

/// Background-load change applied before the given iteration starts.
struct DriftEvent {
  int iteration = 0;        ///< 0-based iteration index
  std::size_t machine = 0;  ///< which machine changes
  double load_shift = 0.0;  ///< new persistent load fraction [0, 1)
};

/// How the distribution is chosen.
enum class BalancePolicy {
  StaticEven,        ///< n/p each, never changes
  StaticFunctional,  ///< one offline functional partition, never changes
  Online,            ///< Rebalancer-driven
};

struct IterativeOptions {
  std::int64_t n = 0;              ///< elements partitioned each iteration
  int iterations = 50;             ///< iteration count
  double flops_per_element = 100;  ///< per-iteration work per element
  BalancePolicy policy = BalancePolicy::Online;
  RebalancerOptions rebalance;     ///< used when policy == Online
  OnlineModelOptions model;        ///< used when policy == Online
  /// Partitioner for the offline StaticFunctional solve (default:
  /// combined). Online runs take theirs from `rebalance.policy`.
  core::PartitionPolicy partition_policy{};
};

struct IterativeResult {
  double total_seconds = 0.0;
  std::vector<double> iteration_seconds;  ///< wall time per iteration
  int repartitions = 0;
};

/// Runs the simulation. Drift events must be sorted by iteration. The
/// StaticFunctional policy builds §3.1 models before the run (their cost is
/// not charged to total_seconds, matching how the paper reports run times).
IterativeResult simulate_iterative(sim::SimulatedCluster& cluster,
                                   const std::string& app,
                                   const IterativeOptions& opts,
                                   std::span<const DriftEvent> drift = {});

}  // namespace fpm::balance
