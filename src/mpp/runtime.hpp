// A minimal in-process message-passing runtime (MPI-flavoured), so the
// heterogeneous data-parallel algorithms can execute *really* distributed —
// each rank on its own thread with private data, communicating only through
// messages — rather than only through the makespan simulator. The API is a
// deliberately small subset of the MPI concepts the algorithms need:
// blocking tagged point-to-point, barrier, broadcast, and gather.
//
// Semantics
//  * Payloads are vectors of double (all our kernels move dense data).
//  * send() is asynchronous (buffered); recv() blocks until a message with
//    the requested (source, tag) arrives. Messages between a fixed
//    (source, destination, tag) triple are delivered in send order.
//  * Collectives must be entered by every rank (as in MPI).
//  * Any exception thrown by a rank aborts the run: run_parallel rethrows
//    the first one after joining all threads (ranks blocked in recv or
//    barrier are woken and receive an AbortedError).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace fpm::mpp {

/// Thrown inside surviving ranks when another rank aborted the run.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("mpp: a peer rank aborted the run") {}
};

namespace detail {
struct World;
}  // namespace detail

/// Per-rank handle to the communication world. Valid only inside the
/// function invoked by run_parallel; not copyable.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered asynchronous send of `data` to `dest` under `tag`.
  void send(int dest, int tag, std::span<const double> data);

  /// Blocks until a message from `source` with `tag` arrives; returns its
  /// payload. FIFO per (source, this rank, tag).
  std::vector<double> recv(int source, int tag);

  /// Synchronizes all ranks.
  void barrier();

  /// Root's `data` is distributed to every rank (root included).
  std::vector<double> broadcast(int root, std::span<const double> data);

  /// Every rank contributes `mine`; root receives all payloads indexed by
  /// rank (others receive an empty vector).
  std::vector<std::vector<double>> gather(int root,
                                          std::span<const double> mine);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

 private:
  friend void run_parallel(int, const std::function<void(Communicator&)>&);
  Communicator(detail::World& world, int rank) : world_(&world), rank_(rank) {}

  detail::World* world_;
  int rank_;
};

/// Spawns `ranks` threads, invokes `fn` on each with its Communicator, and
/// joins. If any rank throws, every other rank is aborted and the first
/// exception is rethrown to the caller. Requires ranks >= 1.
void run_parallel(int ranks, const std::function<void(Communicator&)>& fn);

}  // namespace fpm::mpp
