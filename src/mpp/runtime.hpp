// A minimal in-process message-passing runtime (MPI-flavoured), so the
// heterogeneous data-parallel algorithms can execute *really* distributed —
// each rank on its own thread with private data, communicating only through
// messages — rather than only through the makespan simulator. The API is a
// deliberately small subset of the MPI concepts the algorithms need:
// blocking tagged point-to-point, barrier, broadcast, and gather.
//
// Semantics
//  * Payloads are vectors of double (all our kernels move dense data).
//  * send() is asynchronous (buffered); recv() blocks until a message with
//    the requested (source, tag) arrives. Messages between a fixed
//    (source, destination, tag) triple are delivered in send order.
//  * Collectives must be entered by every rank (as in MPI).
//  * Any exception thrown by a rank aborts the run: run_parallel rethrows
//    the first one after joining all threads (ranks blocked in recv or
//    barrier are woken and receive an AbortedError).
//
// Fault-tolerant mode (run_parallel with RunOptions::fault_tolerant)
//  * A rank's exception no longer tears the world down: the rank is marked
//    *failed* and every peer learns about it at its next blocking call,
//    which throws RankFailedError naming a failed rank. Survivors keep a
//    fully functional world among themselves (alive_ranks()) and can run a
//    recovery protocol (see mpp/recovery.hpp).
//  * With RunOptions::timeout_seconds > 0, recv and barrier convert a hung
//    peer into a failure: when the deadline expires the unresponsive rank
//    is marked failed and RankFailedError is thrown, instead of blocking
//    forever. A rank declared failed this way is fenced: all of its own
//    subsequent communication attempts throw RankFailedError on itself.
//  * run_parallel returns a RunReport listing the failed ranks instead of
//    rethrowing, unless *every* rank failed (then the first error is
//    rethrown as in strict mode).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpm::mpp {

class FaultPlan;

/// Thrown inside surviving ranks when another rank aborted a strict run.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("mpp: a peer rank aborted the run") {}
};

/// Thrown in fault-tolerant runs when a peer rank has failed (crashed, was
/// detected hung past the deadline, or was fenced off). Unlike
/// AbortedError it names *which* rank, so survivors can re-partition the
/// work around it instead of being torn down.
class RankFailedError : public std::runtime_error {
 public:
  explicit RankFailedError(int failed_rank)
      : std::runtime_error("mpp: rank " + std::to_string(failed_rank) +
                           " failed"),
        rank_(failed_rank) {}
  int failed_rank() const noexcept { return rank_; }

 private:
  int rank_;
};

/// Execution policy of one run_parallel invocation.
struct RunOptions {
  /// Peer exceptions mark that rank failed (surfacing as RankFailedError
  /// in blocked peers) instead of aborting the whole run.
  bool fault_tolerant = false;
  /// Failure-detection deadline for recv/barrier in seconds; 0 waits
  /// forever. Only honoured in fault-tolerant mode. The value must exceed
  /// the longest legitimate compute phase between two communication calls,
  /// or slow ranks will be declared dead spuriously.
  double timeout_seconds = 0.0;
  /// Optional injected-fault schedule consulted by Communicator::at_step.
  const FaultPlan* faults = nullptr;
};

/// Outcome of a fault-tolerant run.
struct RunReport {
  std::vector<int> failed_ranks;  ///< sorted ascending; empty = clean run
};

namespace detail {
struct World;
}  // namespace detail

/// Per-rank handle to the communication world. Valid only inside the
/// function invoked by run_parallel; not copyable.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered asynchronous send of `data` to `dest` under `tag`. In
  /// fault-tolerant mode sending to a failed rank throws RankFailedError.
  void send(int dest, int tag, std::span<const double> data);

  /// Blocks until a message from `source` with `tag` arrives; returns its
  /// payload. FIFO per (source, this rank, tag). A self-recv with no
  /// matching message already queued can never be satisfied (no other
  /// thread may produce it) and throws std::invalid_argument immediately.
  std::vector<double> recv(int source, int tag);

  /// Synchronizes all ranks (all *alive* ranks in fault-tolerant mode).
  void barrier();

  /// Root's `data` is distributed to every rank (root included).
  std::vector<double> broadcast(int root, std::span<const double> data);

  /// Every rank contributes `mine`; root receives all payloads indexed by
  /// rank (others receive an empty vector).
  std::vector<std::vector<double>> gather(int root,
                                          std::span<const double> mine);

  /// Consults the run's FaultPlan at (this rank, step): injected crashes
  /// throw InjectedFault, injected stalls block for their window. No-op
  /// when the run has no plan. Iterative kernels call this once per step.
  void at_step(int step);

  /// Ranks not (yet) marked failed, ascending. In strict mode this is
  /// always every rank.
  std::vector<int> alive_ranks() const;

  /// True while `rank` has not been marked failed.
  bool is_alive(int rank) const;

  /// Discards every undelivered message addressed to this rank. Recovery
  /// protocols call this at a quiescent point to drop stale traffic from
  /// before a failure.
  void purge_inbox();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

 private:
  friend RunReport run_parallel(int, const std::function<void(Communicator&)>&,
                                const RunOptions&);
  Communicator(detail::World& world, int rank) : world_(&world), rank_(rank) {}

  detail::World* world_;
  int rank_;
};

/// Spawns `ranks` threads, invokes `fn` on each with its Communicator, and
/// joins. If any rank throws, every other rank is aborted and the first
/// exception is rethrown to the caller. Requires ranks >= 1.
void run_parallel(int ranks, const std::function<void(Communicator&)>& fn);

/// As above but governed by `options`. In fault-tolerant mode rank
/// exceptions are absorbed into the report; the first exception is only
/// rethrown when no rank survived.
RunReport run_parallel(int ranks, const std::function<void(Communicator&)>& fn,
                       const RunOptions& options);

}  // namespace fpm::mpp
