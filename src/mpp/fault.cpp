#include "mpp/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace fpm::mpp {

FaultPlan& FaultPlan::crash(int rank, int step) {
  if (rank < 0) throw std::invalid_argument("FaultPlan::crash: rank < 0");
  if (step < 0) throw std::invalid_argument("FaultPlan::crash: step < 0");
  actions_[{rank, step}] = Action{Kind::kCrash, 0.0};
  return *this;
}

FaultPlan& FaultPlan::stall(int rank, int step, double seconds) {
  if (rank < 0) throw std::invalid_argument("FaultPlan::stall: rank < 0");
  if (step < 0) throw std::invalid_argument("FaultPlan::stall: step < 0");
  if (!(seconds >= 0.0))
    throw std::invalid_argument("FaultPlan::stall: seconds must be >= 0");
  actions_[{rank, step}] = Action{Kind::kStall, seconds};
  return *this;
}

FaultPlan FaultPlan::random(util::Rng& rng, int ranks, int steps,
                            double crash_probability) {
  if (ranks < 1) throw std::invalid_argument("FaultPlan::random: ranks < 1");
  if (steps < 1) throw std::invalid_argument("FaultPlan::random: steps < 1");
  FaultPlan plan;
  for (int r = 1; r < ranks; ++r) {
    const bool dies = rng.uniform() < crash_probability;
    const int step = static_cast<int>(rng.uniform() * steps);
    if (dies) plan.crash(r, std::min(step, steps - 1));
  }
  return plan;
}

void FaultPlan::fire(int rank, int step) const {
  const auto it = actions_.find({rank, step});
  if (it == actions_.end()) return;
  const Action& action = it->second;
  if (action.kind == Kind::kCrash) throw InjectedFault(rank, step);
  std::this_thread::sleep_for(std::chrono::duration<double>(action.seconds));
}

}  // namespace fpm::mpp
