#include "mpp/runtime.hpp"

#include <cstdint>
#include <deque>
#include <exception>
#include <thread>
#include <tuple>

namespace fpm::mpp {
namespace detail {

/// Shared state of one run: mailboxes, the barrier, and the abort flag.
/// One mutex guards everything — message rates in this runtime are far too
/// low for lock contention to matter, and a single lock keeps the
/// semantics easy to reason about.
struct World {
  explicit World(int ranks) : size(ranks) {}

  const int size;
  std::mutex mutex;
  std::condition_variable cv;

  /// Mailboxes keyed by (source, destination, tag); FIFO per key.
  std::map<std::tuple<int, int, int>, std::deque<std::vector<double>>> mail;

  /// Generation-counting barrier.
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  bool aborted = false;

  void abort_locked() {
    aborted = true;
    cv.notify_all();
  }
  void check_aborted_locked() const {
    if (aborted) throw AbortedError();
  }
};

}  // namespace detail

int Communicator::size() const noexcept { return world_->size; }

void Communicator::send(int dest, int tag, std::span<const double> data) {
  if (dest < 0 || dest >= world_->size)
    throw std::invalid_argument("mpp::send: destination out of range");
  std::unique_lock lock(world_->mutex);
  world_->check_aborted_locked();
  world_->mail[{rank_, dest, tag}].emplace_back(data.begin(), data.end());
  world_->cv.notify_all();
}

std::vector<double> Communicator::recv(int source, int tag) {
  if (source < 0 || source >= world_->size)
    throw std::invalid_argument("mpp::recv: source out of range");
  std::unique_lock lock(world_->mutex);
  const auto key = std::tuple{source, rank_, tag};
  world_->cv.wait(lock, [&] {
    if (world_->aborted) return true;
    const auto it = world_->mail.find(key);
    return it != world_->mail.end() && !it->second.empty();
  });
  world_->check_aborted_locked();
  auto& queue = world_->mail[key];
  std::vector<double> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Communicator::barrier() {
  std::unique_lock lock(world_->mutex);
  world_->check_aborted_locked();
  const std::uint64_t my_generation = world_->barrier_generation;
  if (++world_->barrier_waiting == world_->size) {
    world_->barrier_waiting = 0;
    ++world_->barrier_generation;
    world_->cv.notify_all();
    return;
  }
  world_->cv.wait(lock, [&] {
    return world_->aborted || world_->barrier_generation != my_generation;
  });
  world_->check_aborted_locked();
}

std::vector<double> Communicator::broadcast(int root,
                                            std::span<const double> data) {
  if (root < 0 || root >= world_->size)
    throw std::invalid_argument("mpp::broadcast: root out of range");
  constexpr int kBcastTag = -101;
  if (rank_ == root) {
    for (int r = 0; r < world_->size; ++r)
      if (r != root) send(r, kBcastTag, data);
    return {data.begin(), data.end()};
  }
  return recv(root, kBcastTag);
}

std::vector<std::vector<double>> Communicator::gather(
    int root, std::span<const double> mine) {
  if (root < 0 || root >= world_->size)
    throw std::invalid_argument("mpp::gather: root out of range");
  constexpr int kGatherTag = -102;
  if (rank_ != root) {
    send(root, kGatherTag, mine);
    return {};
  }
  std::vector<std::vector<double>> all(static_cast<std::size_t>(world_->size));
  all[static_cast<std::size_t>(root)] = {mine.begin(), mine.end()};
  for (int r = 0; r < world_->size; ++r)
    if (r != root) all[static_cast<std::size_t>(r)] = recv(r, kGatherTag);
  return all;
}

void run_parallel(int ranks, const std::function<void(Communicator&)>& fn) {
  if (ranks < 1) throw std::invalid_argument("run_parallel: ranks must be >= 1");
  detail::World world(ranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(world, r);
      try {
        fn(comm);
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        std::scoped_lock lock(world.mutex);
        world.abort_locked();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // first_error always holds the *original* failure: the thrower records
  // it before raising the abort flag, and ranks woken by the abort can
  // only record afterwards (and find the slot taken).
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fpm::mpp
