#include "mpp/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <thread>
#include <tuple>

#include "mpp/fault.hpp"
#include "obs/metrics.hpp"

namespace fpm::mpp {
namespace detail {

/// Shared state of one run: mailboxes, the barrier, the abort flag, and —
/// in fault-tolerant mode — the per-rank failure ledger. One mutex guards
/// everything: message rates in this runtime are far too low for lock
/// contention to matter, and a single lock keeps the semantics easy to
/// reason about.
struct World {
  World(int ranks, const RunOptions& options)
      : size(ranks),
        opts(options),
        alive(ranks),
        failed(static_cast<std::size_t>(ranks), 0),
        in_wait(static_cast<std::size_t>(ranks), 0),
        barrier_arrived(static_cast<std::size_t>(ranks), 0),
        epoch_seen(static_cast<std::size_t>(ranks), 0) {}

  const int size;
  const RunOptions opts;
  std::mutex mutex;
  std::condition_variable cv;

  /// Mailboxes keyed by (source, destination, tag); FIFO per key.
  std::map<std::tuple<int, int, int>, std::deque<std::vector<double>>> mail;

  /// Generation-counting barrier.
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  bool aborted = false;

  // --- Fault-tolerant mode only. ---
  int alive;                            ///< ranks not marked failed
  std::vector<char> failed;             ///< per-rank failure flag
  std::vector<char> in_wait;            ///< rank is blocked in recv/barrier
  std::vector<char> barrier_arrived;    ///< per-rank, current generation
  std::vector<std::uint64_t> epoch_seen;  ///< last failure_epoch each rank saw
  std::uint64_t failure_epoch = 0;      ///< bumped on every new failure
  int last_failed = -1;                 ///< rank of the most recent failure

  void abort_locked() {
    aborted = true;
    cv.notify_all();
  }
  void check_aborted_locked() const {
    if (aborted) throw AbortedError();
  }

  /// Records a failure: shrinks the alive count, bumps the epoch (so every
  /// peer's next blocking call throws RankFailedError exactly once), and
  /// removes the rank from a barrier it may be counted in.
  void mark_failed_locked(int r) {
    const auto i = static_cast<std::size_t>(r);
    if (failed[i]) return;
    failed[i] = 1;
    --alive;
    ++failure_epoch;
    obs::metrics().counter(obs::names::kMppFailureEpochs).add(1);
    last_failed = r;
    if (barrier_arrived[i]) {
      barrier_arrived[i] = 0;
      --barrier_waiting;
    }
    cv.notify_all();
  }

  /// Throws if this rank was fenced off, or if failures happened that it
  /// has not yet observed (each failure is reported to each peer once).
  void check_failures_locked(int me) {
    const auto i = static_cast<std::size_t>(me);
    if (failed[i]) throw RankFailedError(me);
    if (epoch_seen[i] != failure_epoch) {
      epoch_seen[i] = failure_epoch;
      throw RankFailedError(last_failed);
    }
  }

  /// Releases the barrier generation once every alive rank has arrived
  /// *and* is current on failures — a stale waiter must wake and throw
  /// RankFailedError rather than silently pass the barrier.
  bool try_release_barrier_locked() {
    if (alive <= 0 || barrier_waiting < alive) return false;
    for (int r = 0; r < size; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (barrier_arrived[i] && epoch_seen[i] != failure_epoch) return false;
    }
    barrier_waiting = 0;
    std::fill(barrier_arrived.begin(), barrier_arrived.end(), 0);
    ++barrier_generation;
    cv.notify_all();
    return true;
  }

  /// Withdraws a waiter from an unreleased barrier generation.
  void leave_barrier_locked(int r, std::uint64_t my_generation) {
    const auto i = static_cast<std::size_t>(r);
    if (barrier_generation == my_generation && barrier_arrived[i]) {
      barrier_arrived[i] = 0;
      --barrier_waiting;
    }
  }
};

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_for(double timeout_seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
}

}  // namespace

int Communicator::size() const noexcept { return world_->size; }

void Communicator::send(int dest, int tag, std::span<const double> data) {
  if (dest < 0 || dest >= world_->size)
    throw std::invalid_argument("mpp::send: destination out of range");
  std::unique_lock lock(world_->mutex);
  detail::World& w = *world_;
  w.check_aborted_locked();
  if (w.opts.fault_tolerant) {
    w.check_failures_locked(rank_);
    if (w.failed[static_cast<std::size_t>(dest)]) throw RankFailedError(dest);
  }
  w.mail[{rank_, dest, tag}].emplace_back(data.begin(), data.end());
  w.cv.notify_all();
}

std::vector<double> Communicator::recv(int source, int tag) {
  if (source < 0 || source >= world_->size)
    throw std::invalid_argument("mpp::recv: source out of range");
  std::unique_lock lock(world_->mutex);
  detail::World& w = *world_;
  const auto key = std::tuple{source, rank_, tag};
  if (source == rank_) {
    // Only this thread could ever satisfy it, and it is here, receiving.
    const auto it = w.mail.find(key);
    if (it == w.mail.end() || it->second.empty())
      throw std::invalid_argument(
          "mpp::recv: self-recv with no queued message can never be "
          "satisfied");
  }
  const auto pop = [&] {
    auto& queue = w.mail[key];
    std::vector<double> payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  };
  const auto available = [&] {
    const auto it = w.mail.find(key);
    return it != w.mail.end() && !it->second.empty();
  };

  if (!w.opts.fault_tolerant) {
    w.cv.wait(lock, [&] { return w.aborted || available(); });
    w.check_aborted_locked();
    return pop();
  }

  w.check_aborted_locked();
  w.check_failures_locked(rank_);
  const bool with_deadline = w.opts.timeout_seconds > 0.0;
  auto deadline =
      with_deadline ? deadline_for(w.opts.timeout_seconds) : Clock::time_point{};
  const auto me = static_cast<std::size_t>(rank_);
  const auto src = static_cast<std::size_t>(source);
  for (;;) {
    const auto woken = [&] {
      return w.aborted || w.failed[me] || w.epoch_seen[me] != w.failure_epoch ||
             w.failed[src] || available();
    };
    bool in_time = true;
    w.in_wait[me] = 1;
    if (with_deadline)
      in_time = w.cv.wait_until(lock, deadline, woken);
    else
      w.cv.wait(lock, woken);
    w.in_wait[me] = 0;
    if (!in_time) {
      // A peer blocked inside recv/barrier itself is *responsive* — it may
      // merely be transitively blocked on the true culprit, whose own
      // deadline
      // (held by whoever is waiting on it) will fire. Only a rank outside
      // the communication layer (computing, or genuinely stalled) can be
      // indicted here. A cycle of application-level recvs with no culprit
      // would extend forever; bulk-synchronous kernels cannot form one.
      if (w.in_wait[src]) {
        deadline = deadline_for(w.opts.timeout_seconds);
        continue;
      }
      // Deadline expired with nothing delivered: the peer is hung.
      w.mark_failed_locked(source);
      w.epoch_seen[me] = w.failure_epoch;
      throw RankFailedError(source);
    }
    w.check_aborted_locked();
    w.check_failures_locked(rank_);
    if (available()) return pop();
    if (w.failed[src]) throw RankFailedError(source);
  }
}

void Communicator::barrier() {
  std::unique_lock lock(world_->mutex);
  detail::World& w = *world_;
  w.check_aborted_locked();

  if (!w.opts.fault_tolerant) {
    const std::uint64_t my_generation = w.barrier_generation;
    if (++w.barrier_waiting == w.size) {
      w.barrier_waiting = 0;
      ++w.barrier_generation;
      w.cv.notify_all();
      return;
    }
    w.cv.wait(lock, [&] {
      return w.aborted || w.barrier_generation != my_generation;
    });
    w.check_aborted_locked();
    return;
  }

  w.check_failures_locked(rank_);
  const auto me = static_cast<std::size_t>(rank_);
  const std::uint64_t my_generation = w.barrier_generation;
  w.barrier_arrived[me] = 1;
  ++w.barrier_waiting;
  if (w.try_release_barrier_locked()) return;

  const bool with_deadline = w.opts.timeout_seconds > 0.0;
  auto deadline =
      with_deadline ? deadline_for(w.opts.timeout_seconds) : Clock::time_point{};
  for (;;) {
    const auto woken = [&] {
      return w.aborted || w.failed[me] ||
             w.barrier_generation != my_generation ||
             w.epoch_seen[me] != w.failure_epoch;
    };
    bool in_time = true;
    w.in_wait[me] = 1;
    if (with_deadline)
      in_time = w.cv.wait_until(lock, deadline, woken);
    else
      w.cv.wait(lock, woken);
    w.in_wait[me] = 0;
    if (!in_time) {
      // Deadline expired: every alive rank that never arrived *and* is not
      // blocked inside recv/barrier is hung. A missing rank sitting in a
      // recv is responsive — its own recv deadline fires on the true
      // culprit; indicting it here would spread one stall into spurious
      // extra failures (seen as a race under sanitizer-grade slowdowns).
      bool marked = false;
      for (int r = 0; r < w.size; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (!w.failed[i] && !w.barrier_arrived[i] && !w.in_wait[i]) {
          w.mark_failed_locked(r);
          marked = true;
        }
      }
      if (!woken()) {
        // Nobody indictable yet; give the responsive ranks a fresh window.
        if (!marked) deadline = deadline_for(w.opts.timeout_seconds);
        continue;
      }
    }
    w.check_aborted_locked();
    if (w.failed[me]) {
      w.leave_barrier_locked(rank_, my_generation);
      throw RankFailedError(rank_);
    }
    if (w.epoch_seen[me] != w.failure_epoch) {
      w.epoch_seen[me] = w.failure_epoch;
      w.leave_barrier_locked(rank_, my_generation);
      throw RankFailedError(w.last_failed);
    }
    if (w.barrier_generation != my_generation) return;
  }
}

std::vector<double> Communicator::broadcast(int root,
                                            std::span<const double> data) {
  if (root < 0 || root >= world_->size)
    throw std::invalid_argument("mpp::broadcast: root out of range");
  constexpr int kBcastTag = -101;
  if (rank_ == root) {
    // In fault-tolerant mode skip ranks already known dead: they are
    // fenced and will never receive (a rank failing mid-loop still makes
    // the send throw, which recovery handles).
    const bool ft = world_->opts.fault_tolerant;
    for (int r = 0; r < world_->size; ++r)
      if (r != root && (!ft || is_alive(r))) send(r, kBcastTag, data);
    return {data.begin(), data.end()};
  }
  return recv(root, kBcastTag);
}

std::vector<std::vector<double>> Communicator::gather(
    int root, std::span<const double> mine) {
  if (root < 0 || root >= world_->size)
    throw std::invalid_argument("mpp::gather: root out of range");
  constexpr int kGatherTag = -102;
  if (rank_ != root) {
    send(root, kGatherTag, mine);
    return {};
  }
  std::vector<std::vector<double>> all(static_cast<std::size_t>(world_->size));
  all[static_cast<std::size_t>(root)] = {mine.begin(), mine.end()};
  for (int r = 0; r < world_->size; ++r)
    if (r != root) all[static_cast<std::size_t>(r)] = recv(r, kGatherTag);
  return all;
}

void Communicator::at_step(int step) {
  if (world_->opts.faults != nullptr) world_->opts.faults->fire(rank_, step);
}

std::vector<int> Communicator::alive_ranks() const {
  std::unique_lock lock(world_->mutex);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(world_->alive));
  for (int r = 0; r < world_->size; ++r)
    if (!world_->failed[static_cast<std::size_t>(r)]) out.push_back(r);
  return out;
}

bool Communicator::is_alive(int rank) const {
  if (rank < 0 || rank >= world_->size)
    throw std::invalid_argument("mpp::is_alive: rank out of range");
  std::unique_lock lock(world_->mutex);
  return !world_->failed[static_cast<std::size_t>(rank)];
}

void Communicator::purge_inbox() {
  std::unique_lock lock(world_->mutex);
  auto& mail = world_->mail;
  for (auto it = mail.begin(); it != mail.end();)
    it = std::get<1>(it->first) == rank_ ? mail.erase(it) : std::next(it);
}

void run_parallel(int ranks, const std::function<void(Communicator&)>& fn) {
  run_parallel(ranks, fn, RunOptions{});
}

RunReport run_parallel(int ranks, const std::function<void(Communicator&)>& fn,
                       const RunOptions& options) {
  if (ranks < 1)
    throw std::invalid_argument("run_parallel: ranks must be >= 1");
  detail::World world(ranks, options);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(world, r);
      try {
        fn(comm);
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        std::scoped_lock lock(world.mutex);
        if (options.fault_tolerant)
          world.mark_failed_locked(r);
        else
          world.abort_locked();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  if (!options.fault_tolerant) {
    // first_error always holds the *original* failure: the thrower records
    // it before raising the abort flag, and ranks woken by the abort can
    // only record afterwards (and find the slot taken).
    if (first_error) std::rethrow_exception(first_error);
    return {};
  }
  RunReport report;
  for (int r = 0; r < ranks; ++r)
    if (world.failed[static_cast<std::size_t>(r)])
      report.failed_ranks.push_back(r);
  if (static_cast<int>(report.failed_ranks.size()) == ranks && first_error)
    std::rethrow_exception(first_error);
  return report;
}

}  // namespace fpm::mpp
