#include "mpp/distributed_stencil.hpp"

#include <numeric>
#include <stdexcept>

#include "util/timer.hpp"

namespace fpm::mpp {
namespace {

constexpr int kScatterTag = 21;
constexpr int kHaloBase = 100;  // +2*iter (down) / +2*iter+1 (up)

}  // namespace

DistributedStencilResult distributed_jacobi(
    const util::MatrixD& grid, std::span<const std::int64_t> rows,
    int iterations, std::span<const int> work_multiplier) {
  if (rows.empty())
    throw std::invalid_argument("distributed_jacobi: no ranks");
  const std::int64_t total =
      std::accumulate(rows.begin(), rows.end(), std::int64_t{0});
  if (total != static_cast<std::int64_t>(grid.rows()))
    throw std::invalid_argument("distributed_jacobi: rows do not cover grid");
  if (iterations < 0)
    throw std::invalid_argument("distributed_jacobi: iterations < 0");
  if (!work_multiplier.empty() && work_multiplier.size() != rows.size())
    throw std::invalid_argument("distributed_jacobi: multiplier size");
  for (const int m : work_multiplier)
    if (m < 1) throw std::invalid_argument("distributed_jacobi: multiplier < 1");

  const int p = static_cast<int>(rows.size());
  const std::size_t cols = grid.cols();
  const std::size_t n_rows = grid.rows();

  std::vector<std::size_t> first(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r)
    first[r + 1] = first[r] + static_cast<std::size_t>(rows[r]);

  // Ring neighbours among non-empty bands: prev_of[r] / next_of[r] is the
  // rank owning the band directly above / below rank r's band (-1 = none).
  std::vector<int> prev_of(p, -1), next_of(p, -1);
  {
    int last = -1;
    for (int r = 0; r < p; ++r) {
      if (rows[r] == 0) continue;
      prev_of[r] = last;
      if (last >= 0) next_of[last] = r;
      last = r;
    }
  }

  DistributedStencilResult result;
  result.grid = grid;
  result.compute_seconds.assign(static_cast<std::size_t>(p), 0.0);

  run_parallel(p, [&](Communicator& comm) {
    const int me = comm.rank();
    const auto my_rows = static_cast<std::size_t>(rows[me]);
    const int mult =
        work_multiplier.empty() ? 1 : work_multiplier[static_cast<std::size_t>(me)];

    // Scatter bands.
    util::MatrixD band(0, 0);
    if (me == 0) {
      for (int r = 1; r < p; ++r)
        if (rows[r] > 0) {
          const util::MatrixD slice =
              grid.slice_rows(first[r], static_cast<std::size_t>(rows[r]));
          comm.send(r, kScatterTag, slice.flat());
        }
      band = my_rows > 0 ? grid.slice_rows(0, my_rows) : util::MatrixD(0, cols);
    } else if (my_rows > 0) {
      const std::vector<double> payload = comm.recv(0, kScatterTag);
      band = util::MatrixD(my_rows, cols);
      std::copy(payload.begin(), payload.end(), band.flat().begin());
    } else {
      band = util::MatrixD(0, cols);
    }

    util::Timer timer;
    for (int it = 0; it < iterations; ++it) {
      std::vector<double> halo_above, halo_below;
      if (my_rows > 0) {
        const int up = prev_of[me];
        const int down = next_of[me];
        const int tag_down = kHaloBase + 2 * it;      // sent to the band below
        const int tag_up = kHaloBase + 2 * it + 1;    // sent to the band above
        if (down >= 0) {
          const auto last_row = band.row(my_rows - 1);
          comm.send(down, tag_down, last_row);
        }
        if (up >= 0) {
          const auto first_row = band.row(0);
          comm.send(up, tag_up, first_row);
        }
        if (up >= 0) halo_above = comm.recv(up, tag_down);
        if (down >= 0) halo_below = comm.recv(down, tag_up);
      }

      if (my_rows > 0 && cols >= 3) {
        timer.reset();
        util::MatrixD next(0, 0);
        for (int repeat = 0; repeat < mult; ++repeat) {
          next = band;
          const auto row_above = [&](std::size_t local) -> const double* {
            if (local > 0) return &band(local - 1, 0);
            return halo_above.empty() ? nullptr : halo_above.data();
          };
          const auto row_below = [&](std::size_t local) -> const double* {
            if (local + 1 < my_rows) return &band(local + 1, 0);
            return halo_below.empty() ? nullptr : halo_below.data();
          };
          for (std::size_t local = 0; local < my_rows; ++local) {
            const std::size_t global = first[me] + local;
            if (global == 0 || global + 1 >= n_rows) continue;  // boundary
            const double* above = row_above(local);
            const double* below = row_below(local);
            for (std::size_t c = 1; c + 1 < cols; ++c)
              next(local, c) = 0.25 * (above[c] + below[c] +
                                       band(local, c - 1) + band(local, c + 1));
          }
        }
        result.compute_seconds[static_cast<std::size_t>(me)] += timer.seconds();
        band = std::move(next);
      }
    }

    // Gather the final bands.
    const auto all = comm.gather(0, band.flat());
    if (me == 0) {
      for (int r = 0; r < p; ++r) {
        if (rows[r] == 0) continue;
        util::MatrixD slice(static_cast<std::size_t>(rows[r]), cols);
        std::copy(all[static_cast<std::size_t>(r)].begin(),
                  all[static_cast<std::size_t>(r)].end(),
                  slice.flat().begin());
        result.grid.paste_rows(first[r], slice);
      }
    }
  });
  return result;
}

}  // namespace fpm::mpp
