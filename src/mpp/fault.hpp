// Seeded, scripted fault injection for the mpp runtime. A FaultPlan is an
// immutable schedule of (rank, step) -> fault actions that iterative
// kernels consult via Communicator::at_step. Plans can be built
// explicitly (crash rank 2 at step 5, stall rank 1 for 50 ms at step 3)
// or drawn reproducibly from a util::Rng child stream, so every
// fault-injection run is replayable from its seed.
//
// A *crash* fires by throwing InjectedFault out of the victim's step
// function; in a fault-tolerant run the runtime marks the rank failed and
// its peers observe RankFailedError. A *stall* fires by blocking the
// victim's thread for the window, which a timeout-armed run converts into
// a detected failure once the deadline expires.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace fpm::util {
class Rng;
}  // namespace fpm::util

namespace fpm::mpp {

/// Thrown out of Communicator::at_step when a scheduled crash fires.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(int rank, int step)
      : std::runtime_error("mpp: injected crash of rank " +
                           std::to_string(rank) + " at step " +
                           std::to_string(step)),
        rank_(rank),
        step_(step) {}
  int rank() const noexcept { return rank_; }
  int step() const noexcept { return step_; }

 private:
  int rank_;
  int step_;
};

/// An immutable fault schedule. Build it before the run; fire() is const
/// and safe to call concurrently from every rank.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Rank `rank` throws InjectedFault when it reaches `step`.
  FaultPlan& crash(int rank, int step);

  /// Rank `rank` blocks for `seconds` of wall time when it reaches `step`.
  FaultPlan& stall(int rank, int step, double seconds);

  /// Draws a reproducible random plan: each of `ranks` ranks independently
  /// crashes with probability `crash_probability` at a uniform step in
  /// [0, steps). Rank 0 is never crashed (something must survive to report
  /// results). Identical rng state yields an identical plan.
  static FaultPlan random(util::Rng& rng, int ranks, int steps,
                          double crash_probability);

  /// Executes whatever is scheduled for (rank, step): throws InjectedFault
  /// for a crash, sleeps for a stall, otherwise returns immediately.
  void fire(int rank, int step) const;

  bool empty() const noexcept { return actions_.empty(); }

 private:
  enum class Kind { kCrash, kStall };
  struct Action {
    Kind kind = Kind::kCrash;
    double seconds = 0.0;  ///< stall window; unused for crashes
  };
  std::map<std::pair<int, int>, Action> actions_;  ///< keyed by (rank, step)
};

}  // namespace fpm::mpp
