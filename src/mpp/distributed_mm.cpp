#include "mpp/distributed_mm.hpp"

#include <numeric>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "util/timer.hpp"

namespace fpm::mpp {
namespace {

constexpr int kSliceTag = 1;    // scatter of A/B slices
constexpr int kRingTag = 2;     // circulating B slices

/// Serializes rows x cols starting with a 2-element header so slices of
/// unknown size can travel as flat payloads.
std::vector<double> pack(const util::MatrixD& m) {
  std::vector<double> payload;
  payload.reserve(2 + m.size());
  payload.push_back(static_cast<double>(m.rows()));
  payload.push_back(static_cast<double>(m.cols()));
  payload.insert(payload.end(), m.flat().begin(), m.flat().end());
  return payload;
}

util::MatrixD unpack(const std::vector<double>& payload) {
  if (payload.size() < 2)
    throw std::runtime_error("distributed_mm: malformed slice payload");
  const auto rows = static_cast<std::size_t>(payload[0]);
  const auto cols = static_cast<std::size_t>(payload[1]);
  if (payload.size() != 2 + rows * cols)
    throw std::runtime_error("distributed_mm: slice size mismatch");
  util::MatrixD m(rows, cols);
  std::copy(payload.begin() + 2, payload.end(), m.flat().begin());
  return m;
}

}  // namespace

DistributedMmResult distributed_mm_abt(
    const util::MatrixD& a, const util::MatrixD& b,
    std::span<const std::int64_t> rows,
    std::span<const int> work_multiplier) {
  if (a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows())
    throw std::invalid_argument("distributed_mm_abt: need equal square A, B");
  if (rows.empty())
    throw std::invalid_argument("distributed_mm_abt: no ranks");
  const std::int64_t total =
      std::accumulate(rows.begin(), rows.end(), std::int64_t{0});
  if (total != static_cast<std::int64_t>(a.rows()))
    throw std::invalid_argument("distributed_mm_abt: rows do not cover A");
  if (!work_multiplier.empty() && work_multiplier.size() != rows.size())
    throw std::invalid_argument("distributed_mm_abt: multiplier size");
  for (const int m : work_multiplier)
    if (m < 1)
      throw std::invalid_argument("distributed_mm_abt: multiplier < 1");

  const int p = static_cast<int>(rows.size());
  const std::size_t n = a.rows();

  // First row index of every rank's slice.
  std::vector<std::size_t> first(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r)
    first[r + 1] = first[r] + static_cast<std::size_t>(rows[r]);

  DistributedMmResult result;
  result.c = util::MatrixD(n, n);
  result.compute_seconds.assign(static_cast<std::size_t>(p), 0.0);

  run_parallel(p, [&](Communicator& comm) {
    const int me = comm.rank();
    const auto my_rows = static_cast<std::size_t>(rows[me]);

    // --- Scatter: rank 0 ships each rank its A and B slices. ---
    util::MatrixD my_a(0, 0), my_b(0, 0);
    if (me == 0) {
      for (int r = 1; r < p; ++r) {
        comm.send(r, kSliceTag,
                  pack(a.slice_rows(first[r], static_cast<std::size_t>(rows[r]))));
        comm.send(r, kSliceTag,
                  pack(b.slice_rows(first[r], static_cast<std::size_t>(rows[r]))));
      }
      my_a = a.slice_rows(0, my_rows);
      my_b = b.slice_rows(0, my_rows);
    } else {
      my_a = unpack(comm.recv(0, kSliceTag));
      my_b = unpack(comm.recv(0, kSliceTag));
    }

    // --- Ring: p steps; at step s this rank holds the B slice that
    // started at rank (me + s) mod p. ---
    util::MatrixD my_c(my_rows, n);
    util::MatrixD held = std::move(my_b);
    int held_owner = me;
    const int mult =
        work_multiplier.empty() ? 1 : work_multiplier[static_cast<std::size_t>(me)];
    util::Timer timer;
    double compute_s = 0.0;
    for (int step = 0; step < p; ++step) {
      // Multiply own A slice against the held B slice: produces the C
      // columns belonging to the held slice's global rows.
      if (my_rows > 0 && held.rows() > 0) {
        timer.reset();
        util::MatrixD block(0, 0);
        for (int repeat = 0; repeat < mult; ++repeat)
          block = linalg::matmul_abt_naive(my_a, held);
        compute_s += timer.seconds();
        const std::size_t col0 = first[held_owner];
        for (std::size_t i = 0; i < my_rows; ++i)
          for (std::size_t j = 0; j < block.cols(); ++j)
            my_c(i, col0 + j) = block(i, j);
      }
      if (p == 1) break;
      // Pass the held slice along the ring (send before recv is safe: the
      // runtime buffers sends). Tag by owner so steps cannot cross.
      const int next = (me + 1) % p;
      const int prev = (me + p - 1) % p;
      std::vector<double> packet = pack(held);
      packet.push_back(static_cast<double>(held_owner));
      comm.send(next, kRingTag + step, packet);
      std::vector<double> incoming = comm.recv(prev, kRingTag + step);
      held_owner = static_cast<int>(incoming.back());
      incoming.pop_back();
      held = unpack(incoming);
    }

    // --- Gather C slices and timings at rank 0. ---
    const auto c_slices = comm.gather(0, pack(my_c));
    const auto times = comm.gather(0, std::vector<double>{compute_s});
    if (me == 0) {
      for (int r = 0; r < p; ++r) {
        const util::MatrixD slice = unpack(c_slices[static_cast<std::size_t>(r)]);
        if (slice.rows() > 0) result.c.paste_rows(first[r], slice);
        result.compute_seconds[static_cast<std::size_t>(r)] =
            times[static_cast<std::size_t>(r)][0];
      }
    }
  });
  return result;
}

}  // namespace fpm::mpp
