#include "mpp/distributed_lu.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "util/timer.hpp"

namespace fpm::mpp {
namespace {

constexpr int kBlockTag = 11;   // initial distribution of column blocks
constexpr int kPanelTag = 12;   // per-step pivot + panel broadcast
constexpr int kGatherTag = 13;  // final collection

}  // namespace

DistributedLuResult distributed_lu(const util::MatrixD& a, std::size_t block,
                                   std::span<const int> block_owner,
                                   int ranks,
                                   std::span<const int> work_multiplier) {
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("distributed_lu: matrix must be square");
  if (block == 0) throw std::invalid_argument("distributed_lu: block == 0");
  const std::size_t nb = (n + block - 1) / block;
  if (block_owner.size() != nb)
    throw std::invalid_argument("distributed_lu: one owner per column block");
  if (ranks < 1) throw std::invalid_argument("distributed_lu: ranks < 1");
  for (const int o : block_owner)
    if (o < 0 || o >= ranks)
      throw std::invalid_argument("distributed_lu: owner out of range");
  if (!work_multiplier.empty() &&
      work_multiplier.size() != static_cast<std::size_t>(ranks))
    throw std::invalid_argument("distributed_lu: multiplier size");
  for (const int m : work_multiplier)
    if (m < 1) throw std::invalid_argument("distributed_lu: multiplier < 1");

  DistributedLuResult result;
  result.lu = util::MatrixD(n, n);
  result.pivots.assign(n, 0);
  result.compute_seconds.assign(static_cast<std::size_t>(ranks), 0.0);

  const auto width_of = [&](std::size_t kb_idx) {
    return std::min(block, n - kb_idx * block);
  };

  run_parallel(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    const int mult =
        work_multiplier.empty() ? 1 : work_multiplier[static_cast<std::size_t>(me)];

    // --- Distribute: rank 0 ships every rank its column blocks (full n
    // rows each). Extract from `a` directly on rank 0; others receive. ---
    std::map<std::size_t, util::MatrixD> mine;  // block index -> n x width
    for (std::size_t kb_idx = 0; kb_idx < nb; ++kb_idx) {
      const std::size_t w = width_of(kb_idx);
      const int owner = block_owner[kb_idx];
      if (me == 0) {
        util::MatrixD cols(n, w);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < w; ++j)
            cols(i, j) = a(i, kb_idx * block + j);
        if (owner == 0) {
          mine.emplace(kb_idx, std::move(cols));
        } else {
          comm.send(owner, kBlockTag + static_cast<int>(kb_idx),
                    cols.flat());
        }
      } else if (owner == me) {
        const std::vector<double> payload =
            comm.recv(0, kBlockTag + static_cast<int>(kb_idx));
        util::MatrixD cols(n, w);
        std::copy(payload.begin(), payload.end(), cols.flat().begin());
        mine.emplace(kb_idx, std::move(cols));
      }
    }

    std::vector<std::size_t> pivots(n, 0);
    bool singular = false;
    util::Timer timer;

    for (std::size_t kb_idx = 0; kb_idx < nb && !singular; ++kb_idx) {
      const std::size_t col0 = kb_idx * block;
      const std::size_t w = width_of(kb_idx);
      const int owner = block_owner[kb_idx];

      // --- Panel factorization by the owner. ---
      std::vector<double> payload;  // [status, pivots(w), panel rows col0..n)
      if (owner == me) {
        util::MatrixD& panel = mine.at(kb_idx);
        double status = 1.0;
        for (std::size_t jl = 0; jl < w; ++jl) {
          const std::size_t g = col0 + jl;
          std::size_t piv = g;
          double best = std::abs(panel(g, jl));
          for (std::size_t i = g + 1; i < n; ++i) {
            const double v = std::abs(panel(i, jl));
            if (v > best) {
              best = v;
              piv = i;
            }
          }
          pivots[g] = piv;
          if (best == 0.0) {
            status = 0.0;
            break;
          }
          if (piv != g)
            for (std::size_t j = 0; j < w; ++j)
              std::swap(panel(g, j), panel(piv, j));
          const double inv = 1.0 / panel(g, jl);
          for (std::size_t i = g + 1; i < n; ++i) {
            const double l = panel(i, jl) * inv;
            panel(i, jl) = l;
            for (std::size_t j = jl + 1; j < w; ++j)
              panel(i, j) -= l * panel(g, j);
          }
        }
        payload.push_back(status);
        for (std::size_t jl = 0; jl < w; ++jl)
          payload.push_back(static_cast<double>(pivots[col0 + jl]));
        for (std::size_t i = col0; i < n; ++i)
          for (std::size_t j = 0; j < w; ++j) payload.push_back(panel(i, j));
      }
      payload = comm.broadcast(owner, payload);
      if (payload[0] == 0.0) {
        singular = true;
        break;
      }
      for (std::size_t jl = 0; jl < w; ++jl)
        pivots[col0 + jl] = static_cast<std::size_t>(payload[1 + jl]);
      // Panel factors for rows [col0, n), unit-lower L plus U on top.
      const std::size_t panel_rows = n - col0;
      const auto panel_at = [&](std::size_t i, std::size_t j) {
        return payload[1 + w + i * w + j];  // i relative to col0
      };

      // --- Apply the panel's row swaps to every local non-panel block. ---
      for (auto& [idx, cols] : mine) {
        if (idx == kb_idx) continue;
        for (std::size_t jl = 0; jl < w; ++jl) {
          const std::size_t g = col0 + jl;
          const std::size_t piv = pivots[g];
          if (piv != g)
            for (std::size_t j = 0; j < cols.cols(); ++j)
              std::swap(cols(g, j), cols(piv, j));
        }
      }

      // --- Trailing update of the local blocks right of the panel. ---
      timer.reset();
      for (int repeat = 0; repeat < mult; ++repeat) {
        const bool for_real = repeat + 1 == mult;
        for (auto& [idx, cols] : mine) {
          if (idx <= kb_idx) continue;
          util::MatrixD scratch(0, 0);
          util::MatrixD& target = for_real ? cols : (scratch = cols, scratch);
          const std::size_t cw = target.cols();
          // U12 = L11^{-1} A12 (unit lower forward substitution).
          for (std::size_t jl = 0; jl < w; ++jl)
            for (std::size_t i = jl + 1; i < w; ++i) {
              const double l = panel_at(i, jl);
              if (l == 0.0) continue;
              for (std::size_t j = 0; j < cw; ++j)
                target(col0 + i, j) -= l * target(col0 + jl, j);
            }
          // A22 -= L21 U12.
          for (std::size_t i = w; i < panel_rows; ++i)
            for (std::size_t jl = 0; jl < w; ++jl) {
              const double l = panel_at(i, jl);
              if (l == 0.0) continue;
              for (std::size_t j = 0; j < cw; ++j)
                target(col0 + i, j) -= l * target(col0 + jl, j);
            }
        }
      }
      result.compute_seconds[static_cast<std::size_t>(me)] += timer.seconds();
      comm.barrier();  // step boundary (matches the bulk-synchronous model)
    }

    // --- Gather the factored blocks and pivots at rank 0. ---
    std::vector<double> flat;
    for (const auto& [idx, cols] : mine) {
      flat.push_back(static_cast<double>(idx));
      flat.insert(flat.end(), cols.flat().begin(), cols.flat().end());
    }
    const auto all_blocks = comm.gather(0, flat);
    // Every rank already knows all pivots (each panel's were broadcast),
    // so rank 0 can publish them directly.
    if (me == 0) {
      result.nonsingular = !singular;
      for (std::size_t g = 0; g < n; ++g) result.pivots[g] = pivots[g];
      for (const auto& rank_flat : all_blocks) {
        std::size_t pos = 0;
        while (pos < rank_flat.size()) {
          const auto idx = static_cast<std::size_t>(rank_flat[pos++]);
          const std::size_t wv = width_of(idx);
          for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < wv; ++j)
              result.lu(i, idx * block + j) = rank_flat[pos++];
        }
      }
    }
  });
  return result;
}

}  // namespace fpm::mpp
