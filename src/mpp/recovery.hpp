// Checkpoint/restart recovery for the distributed kernels, built on the
// fault-tolerant mpp runtime: survivors of a rank failure re-run the FPM
// partitioner over the remaining processors' speed curves, reload the last
// complete checkpoint, and resume — producing results bit-identical to the
// fault-free serial reference.
//
// Recovery protocol (all survivors, on catching RankFailedError):
//   1. barrier #1 — every survivor has observed the failure and stopped
//      sending (the runtime's failure epoch guarantees each survivor gets
//      exactly one RankFailedError per failure, even mid-recv);
//   2. the lowest alive rank discards checkpoint versions newer than the
//      last *complete* one (ranks that ran ahead may have saved partial
//      state) — then every survivor discards its undelivered messages;
//   3. barrier #2 — no stale message or stale checkpoint survives;
//   4. re-partition over the survivors' speed curves, reload the rollback
//      checkpoint, resume. A failure during recovery simply restarts the
//      protocol (the alive set is monotone).
//
// Determinism: the kernels re-execute the same arithmetic in the same
// per-element order regardless of which rank owns which piece, so a
// recovered run is bit-identical to a fault-free one.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "core/policy.hpp"
#include "core/speed_function.hpp"
#include "mpp/runtime.hpp"
#include "util/matrix.hpp"

namespace fpm::mpp {

/// Thread-safe in-memory stand-in for stable checkpoint storage. A
/// checkpoint *version* is a set of item -> payload blobs; it is usable
/// for rollback only once every item of the problem is present
/// (latest_complete), so partially written checkpoints from ranks that
/// died or ran ahead are never restored.
class CheckpointStore {
 public:
  /// `items` is the number of blobs a complete version must hold
  /// (items are indexed 0..items-1).
  explicit CheckpointStore(std::int64_t items);

  /// Stores (overwrites) one item's payload under `version`.
  void save(int version, std::int64_t item, std::vector<double> data);

  /// Largest version holding every item; -1 when no version is complete.
  int latest_complete() const;

  /// Discards every version newer than `version` (pass latest_complete()
  /// to drop partial run-ahead state during recovery).
  void purge_after(int version);

  /// Returns a copy of one item's payload; throws std::out_of_range when
  /// the (version, item) blob is absent.
  std::vector<double> load(int version, std::int64_t item) const;

  std::int64_t items() const noexcept { return items_; }

 private:
  mutable std::mutex mutex_;
  std::int64_t items_;
  std::map<int, std::map<std::int64_t, std::vector<double>>> versions_;
};

/// Policy knobs shared by the fault-tolerant kernels.
struct FaultToleranceOptions {
  /// Failure-detection deadline handed to the runtime (0 = wait forever;
  /// required to detect stalls, see RunOptions::timeout_seconds).
  double timeout_seconds = 0.0;
  /// Injected faults, fired via Communicator::at_step.
  const FaultPlan* faults = nullptr;
  /// Iterations (Jacobi) / panel steps (LU) between checkpoints; >= 1.
  int checkpoint_interval = 1;
  /// Per-rank speed curves driving the FPM re-partition over survivors;
  /// empty (or wrong-sized) falls back to an even split.
  core::SpeedList speeds;
  /// The world's partitioner policy (default: combined). Survivor
  /// re-partitioning honours it, so recovery uses the same algorithm the
  /// initial distribution was built with.
  core::PartitionPolicy policy{};
};

struct FtJacobiResult {
  util::MatrixD grid;                    ///< final grid, fully assembled
  std::vector<int> failed_ranks;         ///< ranks lost during the run
  std::vector<std::int64_t> final_rows;  ///< per-rank band after recovery
  int recoveries = 0;                    ///< completed recovery rounds
};

/// `iterations` Jacobi sweeps over `grid` on `ranks` threads with
/// checkpoint/rollback recovery. The initial distribution comes from the
/// same partitioner as the recovery path (options.speeds over all ranks).
FtJacobiResult fault_tolerant_jacobi(const util::MatrixD& grid, int ranks,
                                     int iterations,
                                     const FaultToleranceOptions& options);

struct FtLuResult {
  util::MatrixD lu;                     ///< packed L\U factors
  std::vector<std::size_t> pivots;      ///< as linalg::lu_factor
  bool nonsingular = true;
  std::vector<int> failed_ranks;
  std::vector<int> final_block_owner;   ///< ownership after recovery
  int recoveries = 0;
};

/// Fault-tolerant right-looking block LU (same numerics as
/// distributed_lu). On failure the dead rank's column blocks are dealt
/// out to survivors in proportion to their speed curves.
FtLuResult fault_tolerant_lu(const util::MatrixD& a, std::size_t block,
                             std::span<const int> block_owner, int ranks,
                             const FaultToleranceOptions& options);

struct FtMmResult {
  util::MatrixD c;
  std::vector<int> failed_ranks;
  std::vector<std::int64_t> final_rows;
  int recoveries = 0;
};

/// Fault-tolerant ring C = A·Bᵀ. The ring holds no reusable intermediate
/// state, so recovery restarts the multiplication from the inputs over
/// the survivors (checkpoint version 0) rather than rolling back.
FtMmResult fault_tolerant_mm_abt(const util::MatrixD& a,
                                 const util::MatrixD& b, int ranks,
                                 const FaultToleranceOptions& options);

}  // namespace fpm::mpp
