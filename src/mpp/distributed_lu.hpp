// Truly distributed right-looking block LU with partial pivoting on the
// mpp runtime, scheduled by a column-block ownership map (typically the
// Variable Group Block distribution): the owner of block k factorizes the
// panel, broadcasts the pivot sequence and the packed panel, and every
// rank applies the row swaps and updates its own trailing column blocks.
//
// The computation is numerically *identical* to the serial blocked
// factorization (and hence to the unblocked one): the same pivots are
// chosen and the same updates applied, merely by different owners.
#pragma once

#include <cstdint>
#include <vector>

#include "mpp/runtime.hpp"
#include "util/matrix.hpp"

namespace fpm::mpp {

struct DistributedLuResult {
  util::MatrixD lu;                   ///< packed L\U factors (rank 0's view)
  std::vector<std::size_t> pivots;    ///< row swaps, as linalg::lu_factor
  bool nonsingular = true;
  std::vector<double> compute_seconds;  ///< per-rank update-kernel time
};

/// Factorizes the square matrix `a` with column blocks of size `block`
/// distributed per `block_owner` (one entry per column block; owners in
/// [0, ranks)). `ranks` threads are spawned; `work_multiplier` emulates
/// heterogeneity as in distributed_mm_abt.
DistributedLuResult distributed_lu(const util::MatrixD& a, std::size_t block,
                                   std::span<const int> block_owner,
                                   int ranks,
                                   std::span<const int> work_multiplier = {});

}  // namespace fpm::mpp
