// Truly distributed Jacobi iteration on the mpp runtime: each rank owns a
// band of grid rows (sized by the partitioner) and exchanges one halo row
// with each neighbour per iteration — the real message pattern the stencil
// simulation in apps/stencil only costs out.
#pragma once

#include <cstdint>
#include <vector>

#include "mpp/runtime.hpp"
#include "util/matrix.hpp"

namespace fpm::mpp {

struct DistributedStencilResult {
  util::MatrixD grid;                   ///< final grid (rank 0's view)
  std::vector<double> compute_seconds;  ///< per-rank sweep-kernel time
};

/// Runs `iterations` Jacobi sweeps over `grid` with `rows[i]` rows owned by
/// rank i (must sum to grid.rows(); empty bands allowed). Boundary rows and
/// columns hold fixed values, exactly as apps::jacobi_sweep. The result is
/// bit-identical to `iterations` serial sweeps. `work_multiplier` emulates
/// heterogeneity as in the other distributed kernels.
DistributedStencilResult distributed_jacobi(
    const util::MatrixD& grid, std::span<const std::int64_t> rows,
    int iterations, std::span<const int> work_multiplier = {});

}  // namespace fpm::mpp
