#include "mpp/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "core/partition.hpp"
#include "core/policy.hpp"
#include "linalg/kernels.hpp"
#include "mpp/fault.hpp"
#include "obs/metrics.hpp"

namespace fpm::mpp {

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

CheckpointStore::CheckpointStore(std::int64_t items) : items_(items) {
  if (items < 1)
    throw std::invalid_argument("CheckpointStore: items must be >= 1");
}

void CheckpointStore::save(int version, std::int64_t item,
                           std::vector<double> data) {
  if (item < 0 || item >= items_)
    throw std::out_of_range("CheckpointStore::save: item out of range");
  std::scoped_lock lock(mutex_);
  versions_[version][item] = std::move(data);
}

int CheckpointStore::latest_complete() const {
  std::scoped_lock lock(mutex_);
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it)
    if (static_cast<std::int64_t>(it->second.size()) == items_)
      return it->first;
  return -1;
}

void CheckpointStore::purge_after(int version) {
  std::scoped_lock lock(mutex_);
  versions_.erase(versions_.upper_bound(version), versions_.end());
}

std::vector<double> CheckpointStore::load(int version,
                                          std::int64_t item) const {
  std::scoped_lock lock(mutex_);
  return versions_.at(version).at(item);
}

// ---------------------------------------------------------------------------
// Shared recovery machinery
// ---------------------------------------------------------------------------

namespace {

/// Allocates n items over the alive ranks: counts indexed by *rank* (dead
/// ranks get 0). Runs the world's partitioner policy over the survivors'
/// speed curves at item granularity (`elements_per_item` elements each);
/// falls back to an even split when no usable curves are supplied.
///
/// `hint`, when non-null, is an in/out warm-start slot: a usable previous
/// slope narrows the search (the post-failure problem is a near miss of the
/// pre-failure one — same curves, fewer ranks) and the accepted slope is
/// written back. The fingerprint stays 0 because the survivor sub-list
/// legitimately changes across failures; the engine's bracket verification
/// alone decides whether the hint holds. Distributions are bit-identical
/// with or without a hint, so every rank computes the same counts no matter
/// how its private hint evolved.
std::vector<std::int64_t> partition_over(const std::vector<int>& active,
                                         int ranks,
                                         const FaultToleranceOptions& options,
                                         std::int64_t n,
                                         double elements_per_item,
                                         core::PartitionHint* hint = nullptr) {
  const core::SpeedList& speeds = options.speeds;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(ranks), 0);
  core::Distribution d;
  if (speeds.size() == static_cast<std::size_t>(ranks)) {
    std::vector<core::GranularSpeedView> views;
    views.reserve(active.size());
    for (const int r : active)
      views.emplace_back(*speeds[static_cast<std::size_t>(r)],
                         elements_per_item);
    core::SpeedList sub;
    sub.reserve(views.size());
    for (const auto& v : views) sub.push_back(&v);
    core::PartitionPolicy policy = options.policy;
    if (hint != nullptr && hint->usable() && !policy.hint)
      policy.hint = *hint;
    const core::PartitionResult res = core::partition(sub, n, policy);
    d = res.distribution;
    if (hint != nullptr && std::isfinite(res.stats.final_slope) &&
        res.stats.final_slope > 0.0) {
      core::PartitionHint next;
      next.slope = res.stats.final_slope;
      next.n = n;
      next.baseline_iterations =
          hint->usable() && res.stats.warmstart == core::WarmStart::Hit
              ? hint->baseline_iterations
              : res.stats.iterations;
      *hint = next;
    }
  } else {
    d = core::partition_even(n, active.size());
  }
  for (std::size_t i = 0; i < active.size(); ++i)
    counts[static_cast<std::size_t>(active[i])] = d.counts[i];
  return counts;
}

/// The recovery rendezvous (see file header of recovery.hpp). Returns when
/// the world is quiescent with stale checkpoints and messages discarded; a
/// further failure mid-protocol restarts it. Rethrows when this rank
/// itself has been declared failed (it must die, not recover).
void rendezvous(Communicator& comm, CheckpointStore& store,
                std::atomic<int>& recoveries) {
  // Per-rank recovery wall time; the protocol may restart on further
  // failures, and the span covers every restart until quiescence.
  obs::TimerSpan span(
      obs::metrics().histogram(obs::names::kMppRecoveryDuration));
  for (;;) {
    try {
      comm.barrier();
      const std::vector<int> active = comm.alive_ranks();
      if (comm.rank() == active.front()) {
        store.purge_after(store.latest_complete());
        recoveries.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().counter(obs::names::kMppRecoveries).add(1);
      }
      comm.purge_inbox();
      comm.barrier();
      return;
    } catch (const RankFailedError& e) {
      if (e.failed_rank() == comm.rank() || !comm.is_alive(comm.rank()))
        throw;
    }
  }
}

/// True when `e` means this rank itself is dead and must not recover.
bool fenced(const RankFailedError& e, const Communicator& comm) {
  return e.failed_rank() == comm.rank() || !comm.is_alive(comm.rank());
}

std::vector<std::size_t> prefix_offsets(std::span<const std::int64_t> counts) {
  std::vector<std::size_t> first(counts.size() + 1, 0);
  for (std::size_t r = 0; r < counts.size(); ++r)
    first[r + 1] = first[r] + static_cast<std::size_t>(counts[r]);
  return first;
}

RunOptions run_options(const FaultToleranceOptions& options) {
  RunOptions ro;
  ro.fault_tolerant = true;
  ro.timeout_seconds = options.timeout_seconds;
  ro.faults = options.faults;
  return ro;
}

void validate_common(int ranks, const FaultToleranceOptions& options) {
  if (ranks < 1) throw std::invalid_argument("fault_tolerant: ranks < 1");
  if (options.checkpoint_interval < 1)
    throw std::invalid_argument("fault_tolerant: checkpoint_interval < 1");
}

}  // namespace

// ---------------------------------------------------------------------------
// Jacobi
// ---------------------------------------------------------------------------

FtJacobiResult fault_tolerant_jacobi(const util::MatrixD& grid, int ranks,
                                     int iterations,
                                     const FaultToleranceOptions& options) {
  validate_common(ranks, options);
  if (iterations < 0)
    throw std::invalid_argument("fault_tolerant_jacobi: iterations < 0");
  if (grid.rows() == 0 || grid.cols() == 0)
    throw std::invalid_argument("fault_tolerant_jacobi: empty grid");
  const auto n_rows = static_cast<std::int64_t>(grid.rows());
  const std::size_t cols = grid.cols();
  const int interval = options.checkpoint_interval;

  // Version 0 = the initial grid, row by row (item = global row index).
  CheckpointStore store(n_rows);
  for (std::int64_t r = 0; r < n_rows; ++r) {
    const auto row = grid.row(static_cast<std::size_t>(r));
    store.save(0, r, std::vector<double>(row.begin(), row.end()));
  }

  FtJacobiResult out;
  out.grid = util::MatrixD(grid.rows(), cols);
  std::atomic<int> recoveries{0};

  const RunReport report = run_parallel(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    // Survives recovery restarts: after a failure the repartition over the
    // survivors warm-starts from the pre-failure slope.
    core::PartitionHint part_hint;
    for (;;) {
      try {
        const std::vector<int> active = comm.alive_ranks();
        const int from = store.latest_complete();
        const std::vector<std::int64_t> rows =
            partition_over(active, ranks, options, n_rows,
                           static_cast<double>(cols), &part_hint);
        const std::vector<std::size_t> first = prefix_offsets(rows);

        // Ring neighbours among non-empty bands (dead ranks own 0 rows).
        std::vector<int> prev_of(static_cast<std::size_t>(ranks), -1);
        std::vector<int> next_of(static_cast<std::size_t>(ranks), -1);
        {
          int last = -1;
          for (int r = 0; r < ranks; ++r) {
            if (rows[static_cast<std::size_t>(r)] == 0) continue;
            prev_of[static_cast<std::size_t>(r)] = last;
            if (last >= 0) next_of[static_cast<std::size_t>(last)] = r;
            last = r;
          }
        }

        const auto my_rows =
            static_cast<std::size_t>(rows[static_cast<std::size_t>(me)]);
        util::MatrixD band(my_rows, cols);
        for (std::size_t local = 0; local < my_rows; ++local) {
          const auto data = store.load(
              from, static_cast<std::int64_t>(first[static_cast<std::size_t>(me)] + local));
          std::copy(data.begin(), data.end(), band.row(local).begin());
        }

        constexpr int kHaloBase = 100;  // +2*iter (down) / +2*iter+1 (up)
        for (int it = from; it < iterations; ++it) {
          comm.at_step(it);

          std::vector<double> halo_above, halo_below;
          if (my_rows > 0) {
            const int up = prev_of[static_cast<std::size_t>(me)];
            const int down = next_of[static_cast<std::size_t>(me)];
            const int tag_down = kHaloBase + 2 * it;
            const int tag_up = kHaloBase + 2 * it + 1;
            if (down >= 0) comm.send(down, tag_down, band.row(my_rows - 1));
            if (up >= 0) comm.send(up, tag_up, band.row(0));
            if (up >= 0) halo_above = comm.recv(up, tag_down);
            if (down >= 0) halo_below = comm.recv(down, tag_up);
          }

          if (my_rows > 0) {
            // Same arithmetic, in the same order, as apps::jacobi_sweep —
            // ownership changes must not perturb a single bit.
            util::MatrixD next = band;
            const auto row_above = [&](std::size_t local) -> const double* {
              if (local > 0) return &band(local - 1, 0);
              return halo_above.empty() ? nullptr : halo_above.data();
            };
            const auto row_below = [&](std::size_t local) -> const double* {
              if (local + 1 < my_rows) return &band(local + 1, 0);
              return halo_below.empty() ? nullptr : halo_below.data();
            };
            for (std::size_t local = 0; local < my_rows; ++local) {
              const std::size_t global =
                  first[static_cast<std::size_t>(me)] + local;
              if (global == 0 ||
                  global + 1 >= static_cast<std::size_t>(n_rows))
                continue;  // fixed boundary rows
              const double* above = row_above(local);
              const double* below = row_below(local);
              for (std::size_t c = 1; c + 1 < cols; ++c)
                next(local, c) =
                    0.25 * (above[c] + below[c] + band(local, c - 1) +
                            band(local, c + 1));
            }
            band = std::move(next);
          }

          const int done = it + 1;
          if (done % interval == 0 || done == iterations) {
            for (std::size_t local = 0; local < my_rows; ++local) {
              const auto row = band.row(local);
              store.save(
                  done,
                  static_cast<std::int64_t>(first[static_cast<std::size_t>(me)] + local),
                  std::vector<double>(row.begin(), row.end()));
            }
            comm.barrier();  // the checkpoint commit point
          }
        }

        if (me == active.front()) {
          for (std::int64_t r = 0; r < n_rows; ++r) {
            const auto data = store.load(iterations, r);
            std::copy(data.begin(), data.end(),
                      out.grid.row(static_cast<std::size_t>(r)).begin());
          }
          out.final_rows = rows;
        }
        return;
      } catch (const RankFailedError& e) {
        if (fenced(e, comm)) throw;
        rendezvous(comm, store, recoveries);
      }
    }
  }, run_options(options));

  out.failed_ranks = report.failed_ranks;
  out.recoveries = recoveries.load();
  return out;
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

namespace {

/// Ownership map after failures: surviving owners keep their blocks; dead
/// owners' blocks are dealt out cyclically to survivors in proportion to
/// their speed curves. Pure function of (base, active), so every survivor
/// computes the identical map.
std::vector<int> owners_over(std::span<const int> base,
                             const std::vector<int>& active, int ranks,
                             const FaultToleranceOptions& options,
                             double elements_per_block,
                             core::PartitionHint* hint = nullptr) {
  std::vector<char> alive(static_cast<std::size_t>(ranks), 0);
  for (const int r : active) alive[static_cast<std::size_t>(r)] = 1;
  std::vector<int> owners(base.begin(), base.end());
  std::vector<std::size_t> orphans;
  for (std::size_t kb = 0; kb < owners.size(); ++kb)
    if (!alive[static_cast<std::size_t>(owners[kb])]) orphans.push_back(kb);
  if (orphans.empty()) return owners;

  std::vector<std::int64_t> quota =
      partition_over(active, ranks, options,
                     static_cast<std::int64_t>(orphans.size()),
                     elements_per_block, hint);
  std::size_t next_orphan = 0;
  while (next_orphan < orphans.size()) {
    for (const int r : active) {
      if (next_orphan >= orphans.size()) break;
      if (quota[static_cast<std::size_t>(r)] == 0) continue;
      --quota[static_cast<std::size_t>(r)];
      owners[orphans[next_orphan++]] = r;
    }
  }
  return owners;
}

}  // namespace

FtLuResult fault_tolerant_lu(const util::MatrixD& a, std::size_t block,
                             std::span<const int> block_owner, int ranks,
                             const FaultToleranceOptions& options) {
  validate_common(ranks, options);
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("fault_tolerant_lu: matrix must be square");
  if (block == 0) throw std::invalid_argument("fault_tolerant_lu: block == 0");
  const std::size_t nb = (n + block - 1) / block;
  if (block_owner.size() != nb)
    throw std::invalid_argument("fault_tolerant_lu: one owner per block");
  for (const int o : block_owner)
    if (o < 0 || o >= ranks)
      throw std::invalid_argument("fault_tolerant_lu: owner out of range");
  const int interval = options.checkpoint_interval;

  const auto width_of = [&](std::size_t kb) {
    return std::min(block, n - kb * block);
  };

  // Items 0..nb-1 hold the column blocks (n x width, flat); item nb is the
  // pivot record [status, pivots_0 .. pivots_{n-1}]. Version = completed
  // panel steps (nb = finished, possibly early via a singular panel).
  const auto record_item = static_cast<std::int64_t>(nb);
  CheckpointStore store(record_item + 1);
  for (std::size_t kb = 0; kb < nb; ++kb) {
    const std::size_t w = width_of(kb);
    std::vector<double> flat;
    flat.reserve(n * w);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < w; ++j)
        flat.push_back(a(i, kb * block + j));
    store.save(0, static_cast<std::int64_t>(kb), std::move(flat));
  }
  {
    std::vector<double> record(1 + n, 0.0);
    record[0] = 1.0;
    store.save(0, record_item, std::move(record));
  }

  FtLuResult out;
  out.lu = util::MatrixD(n, n);
  out.pivots.assign(n, 0);
  std::atomic<int> recoveries{0};

  const std::vector<int> base_owner(block_owner.begin(), block_owner.end());

  const RunReport report = run_parallel(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    // Warm-starts each recovery's orphan redistribution from the slope the
    // previous failure settled on (same curves, one survivor fewer).
    core::PartitionHint part_hint;
    for (;;) {
      try {
        const std::vector<int> active = comm.alive_ranks();
        const int from = store.latest_complete();
        const std::vector<int> owners =
            owners_over(base_owner, active, ranks, options,
                        static_cast<double>(n * block), &part_hint);

        std::map<std::size_t, util::MatrixD> mine;
        for (std::size_t kb = 0; kb < nb; ++kb) {
          if (owners[kb] != me) continue;
          const std::size_t w = width_of(kb);
          const auto flat = store.load(from, static_cast<std::int64_t>(kb));
          util::MatrixD cols(n, w);
          std::copy(flat.begin(), flat.end(), cols.flat().begin());
          mine.emplace(kb, std::move(cols));
        }
        std::vector<std::size_t> pivots(n, 0);
        bool singular = false;
        {
          const auto record = store.load(from, record_item);
          singular = record[0] == 0.0;
          for (std::size_t g = 0; g < n; ++g)
            pivots[g] = static_cast<std::size_t>(record[1 + g]);
        }

        const auto checkpoint = [&](int version, double status) {
          for (const auto& [idx, cols] : mine)
            store.save(version, static_cast<std::int64_t>(idx),
                       std::vector<double>(cols.flat().begin(),
                                           cols.flat().end()));
          if (me == active.front()) {
            std::vector<double> record(1 + n);
            record[0] = status;
            for (std::size_t g = 0; g < n; ++g)
              record[1 + g] = static_cast<double>(pivots[g]);
            store.save(version, record_item, std::move(record));
          }
          comm.barrier();  // the checkpoint commit point
        };

        for (std::size_t kb = static_cast<std::size_t>(from);
             kb < nb && !singular; ++kb) {
          comm.at_step(static_cast<int>(kb));
          const std::size_t col0 = kb * block;
          const std::size_t w = width_of(kb);
          const int owner = owners[kb];

          // Panel factorization by the owner (identical arithmetic to
          // distributed_lu — only the owner may differ after recovery).
          std::vector<double> payload;
          if (owner == me) {
            util::MatrixD& panel = mine.at(kb);
            double status = 1.0;
            for (std::size_t jl = 0; jl < w; ++jl) {
              const std::size_t g = col0 + jl;
              std::size_t piv = g;
              double best = std::abs(panel(g, jl));
              for (std::size_t i = g + 1; i < n; ++i) {
                const double v = std::abs(panel(i, jl));
                if (v > best) {
                  best = v;
                  piv = i;
                }
              }
              pivots[g] = piv;
              if (best == 0.0) {
                status = 0.0;
                break;
              }
              if (piv != g)
                for (std::size_t j = 0; j < w; ++j)
                  std::swap(panel(g, j), panel(piv, j));
              const double inv = 1.0 / panel(g, jl);
              for (std::size_t i = g + 1; i < n; ++i) {
                const double l = panel(i, jl) * inv;
                panel(i, jl) = l;
                for (std::size_t j = jl + 1; j < w; ++j)
                  panel(i, j) -= l * panel(g, j);
              }
            }
            payload.push_back(status);
            for (std::size_t jl = 0; jl < w; ++jl)
              payload.push_back(static_cast<double>(pivots[col0 + jl]));
            for (std::size_t i = col0; i < n; ++i)
              for (std::size_t j = 0; j < w; ++j)
                payload.push_back(panel(i, j));
          }
          payload = comm.broadcast(owner, payload);
          if (payload[0] == 0.0) {
            singular = true;
            break;
          }
          for (std::size_t jl = 0; jl < w; ++jl)
            pivots[col0 + jl] = static_cast<std::size_t>(payload[1 + jl]);
          const std::size_t panel_rows = n - col0;
          const auto panel_at = [&](std::size_t i, std::size_t j) {
            return payload[1 + w + i * w + j];  // i relative to col0
          };

          for (auto& [idx, cols] : mine) {
            if (idx == kb) continue;
            for (std::size_t jl = 0; jl < w; ++jl) {
              const std::size_t g = col0 + jl;
              const std::size_t piv = pivots[g];
              if (piv != g)
                for (std::size_t j = 0; j < cols.cols(); ++j)
                  std::swap(cols(g, j), cols(piv, j));
            }
          }
          for (auto& [idx, cols] : mine) {
            if (idx <= kb) continue;
            const std::size_t cw = cols.cols();
            for (std::size_t jl = 0; jl < w; ++jl)
              for (std::size_t i = jl + 1; i < w; ++i) {
                const double l = panel_at(i, jl);
                if (l == 0.0) continue;
                for (std::size_t j = 0; j < cw; ++j)
                  cols(col0 + i, j) -= l * cols(col0 + jl, j);
              }
            for (std::size_t i = w; i < panel_rows; ++i)
              for (std::size_t jl = 0; jl < w; ++jl) {
                const double l = panel_at(i, jl);
                if (l == 0.0) continue;
                for (std::size_t j = 0; j < cw; ++j)
                  cols(col0 + i, j) -= l * cols(col0 + jl, j);
              }
          }

          const int done = static_cast<int>(kb) + 1;
          if (done % interval == 0 || done == static_cast<int>(nb))
            checkpoint(done, 1.0);
        }
        if (singular && from < static_cast<int>(nb))
          checkpoint(static_cast<int>(nb), 0.0);

        if (me == active.front()) {
          const auto record = store.load(static_cast<int>(nb), record_item);
          out.nonsingular = record[0] != 0.0;
          for (std::size_t g = 0; g < n; ++g)
            out.pivots[g] = static_cast<std::size_t>(record[1 + g]);
          for (std::size_t kb = 0; kb < nb; ++kb) {
            const std::size_t w = width_of(kb);
            const auto flat =
                store.load(static_cast<int>(nb), static_cast<std::int64_t>(kb));
            for (std::size_t i = 0; i < n; ++i)
              for (std::size_t j = 0; j < w; ++j)
                out.lu(i, kb * block + j) = flat[i * w + j];
          }
          out.final_block_owner = owners;
        }
        return;
      } catch (const RankFailedError& e) {
        if (fenced(e, comm)) throw;
        rendezvous(comm, store, recoveries);
      }
    }
  }, run_options(options));

  out.failed_ranks = report.failed_ranks;
  out.recoveries = recoveries.load();
  return out;
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

FtMmResult fault_tolerant_mm_abt(const util::MatrixD& a,
                                 const util::MatrixD& b, int ranks,
                                 const FaultToleranceOptions& options) {
  validate_common(ranks, options);
  if (a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows())
    throw std::invalid_argument("fault_tolerant_mm_abt: need equal square A, B");
  if (a.rows() == 0)
    throw std::invalid_argument("fault_tolerant_mm_abt: empty matrices");
  const std::size_t n = a.rows();

  // The ring holds no reusable intermediate state, so there is only one
  // checkpoint: version 1 = the finished C rows. A failure restarts the
  // multiplication from the (read-only) inputs over the survivors.
  CheckpointStore store(static_cast<std::int64_t>(n));

  FtMmResult out;
  out.c = util::MatrixD(n, n);
  std::atomic<int> recoveries{0};

  const RunReport report = run_parallel(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    // Post-failure restarts warm-start from the pre-failure slope.
    core::PartitionHint part_hint;
    for (;;) {
      try {
        const std::vector<int> active = comm.alive_ranks();
        const std::vector<std::int64_t> rows =
            partition_over(active, ranks, options,
                           static_cast<std::int64_t>(n),
                           static_cast<double>(n), &part_hint);
        const std::vector<std::size_t> first = prefix_offsets(rows);
        const auto my_rows =
            static_cast<std::size_t>(rows[static_cast<std::size_t>(me)]);
        const std::size_t my_first = first[static_cast<std::size_t>(me)];

        const int k = static_cast<int>(active.size());
        const int pos = static_cast<int>(
            std::find(active.begin(), active.end(), me) - active.begin());

        util::MatrixD my_a = a.slice_rows(my_first, my_rows);
        util::MatrixD held = b.slice_rows(my_first, my_rows);
        int held_owner = me;
        util::MatrixD my_c(my_rows, n);

        constexpr int kRingTag = 2;
        for (int step = 0; step < k; ++step) {
          comm.at_step(step);
          if (my_rows > 0 && held.rows() > 0) {
            const util::MatrixD blockc = linalg::matmul_abt_naive(my_a, held);
            const std::size_t col0 = first[static_cast<std::size_t>(held_owner)];
            for (std::size_t i = 0; i < my_rows; ++i)
              for (std::size_t j = 0; j < blockc.cols(); ++j)
                my_c(i, col0 + j) = blockc(i, j);
          }
          if (k == 1) break;
          const int next = active[static_cast<std::size_t>((pos + 1) % k)];
          const int prev =
              active[static_cast<std::size_t>((pos + k - 1) % k)];
          std::vector<double> packet;
          packet.reserve(held.size() + 3);
          packet.push_back(static_cast<double>(held.rows()));
          packet.insert(packet.end(), held.flat().begin(), held.flat().end());
          packet.push_back(static_cast<double>(held_owner));
          comm.send(next, kRingTag + step, packet);
          std::vector<double> incoming = comm.recv(prev, kRingTag + step);
          held_owner = static_cast<int>(incoming.back());
          incoming.pop_back();
          const auto in_rows = static_cast<std::size_t>(incoming.front());
          held = util::MatrixD(in_rows, n);
          std::copy(incoming.begin() + 1, incoming.end(),
                    held.flat().begin());
        }

        for (std::size_t i = 0; i < my_rows; ++i) {
          const auto row = my_c.row(i);
          store.save(1, static_cast<std::int64_t>(my_first + i),
                     std::vector<double>(row.begin(), row.end()));
        }
        comm.barrier();  // the result commit point

        if (me == active.front()) {
          for (std::size_t r = 0; r < n; ++r) {
            const auto data = store.load(1, static_cast<std::int64_t>(r));
            std::copy(data.begin(), data.end(), out.c.row(r).begin());
          }
          out.final_rows = rows;
        }
        return;
      } catch (const RankFailedError& e) {
        if (fenced(e, comm)) throw;
        rendezvous(comm, store, recoveries);
      }
    }
  }, run_options(options));

  out.failed_ranks = report.failed_ranks;
  out.recoveries = recoveries.load();
  return out;
}

}  // namespace fpm::mpp
