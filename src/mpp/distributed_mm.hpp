// Truly distributed striped matrix multiplication C = A·Bᵀ on the mpp
// runtime: the heterogeneous 1-D ring algorithm the paper's application
// implements on real machines (its Figure 16). Each rank owns a horizontal
// slice of A, B and C sized by the partitioner; B slices circulate around
// the ring so every rank multiplies its A slice against every B slice
// while only ever holding one foreign slice at a time.
//
// Data flow (per rank r, p ranks, rows_i rows for rank i):
//   1. rank 0 scatters the A and B slices;
//   2. for p steps: multiply own A slice against the currently held B
//      slice (producing the C columns that correspond to that slice's
//      rows), then pass the held slice to the next rank on the ring;
//   3. rank 0 gathers the C slices.
//
// The result is bit-identical to the serial A·Bᵀ: each C entry is the same
// dot product computed in the same order.
#pragma once

#include <cstdint>
#include <vector>

#include "mpp/runtime.hpp"
#include "util/matrix.hpp"

namespace fpm::mpp {

struct DistributedMmResult {
  util::MatrixD c;                       ///< full product, valid on rank 0
  std::vector<double> compute_seconds;   ///< per-rank kernel time
};

/// Runs the ring algorithm over `rows[i]` rows per rank (must sum to
/// a.rows(); a and b must be square and equally sized, as in the paper's
/// C = A·Bᵀ with square matrices). `work_multiplier[i] >= 1` repeats rank
/// i's kernel to emulate a slower machine (the timing study knob); pass an
/// empty span for uniform ranks. Returns the assembled product (rank 0's
/// view) and each rank's measured kernel seconds.
DistributedMmResult distributed_mm_abt(
    const util::MatrixD& a, const util::MatrixD& b,
    std::span<const std::int64_t> rows,
    std::span<const int> work_multiplier = {});

}  // namespace fpm::mpp
