// Communication cost modelling — the paper's stated future work (§1),
// built here as an extension. Following Bhat, Prasanna & Raghavendra (the
// paper's [13]), the link between every processor pair is characterized by
// two parameters: a start-up time and a data transmission rate. The paper
// also notes that on switched 100 Mbit Ethernet it is desirable that only
// one processor sends at a time; the serialized collective costs model
// exactly that schedule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/partition.hpp"

namespace fpm::comm {

/// Two-parameter link model: seconds(bytes) = startup_s + bytes/rate_Bps.
struct LinkParams {
  double startup_s = 0.0;
  double rate_Bps = 1.0;  ///< bytes per second (> 0)
};

/// Per-pair link parameters for a p-processor network. The maximal number
/// of distinct links is p² (paper §1); a switched network is modelled by
/// uniform parameters.
class CommModel {
 public:
  /// Uniform network: every pair shares the same parameters.
  static CommModel uniform(std::size_t processors, LinkParams link);

  /// Fully general p x p matrix (row = sender, column = receiver).
  explicit CommModel(std::vector<std::vector<LinkParams>> links);

  std::size_t processors() const noexcept { return links_.size(); }

  /// Point-to-point time for `bytes` from `from` to `to`; 0 when from == to.
  double send_seconds(std::size_t from, std::size_t to, double bytes) const;

  /// Root sends bytes[i] to each processor i, one message at a time (the
  /// serialized Ethernet schedule): the total is the sum of the sends.
  double scatter_seconds(std::size_t root, std::span<const double> bytes) const;

  /// Each processor returns bytes[i] to the root, serialized.
  double gather_seconds(std::size_t root, std::span<const double> bytes) const;

  /// Root sends the same payload to everyone, serialized flat tree.
  double broadcast_seconds(std::size_t root, double bytes) const;

 private:
  std::vector<std::vector<LinkParams>> links_;
};

/// Parameters of the communication-aware partitioning problem: processor i
/// receiving x elements pays its compute time plus the cost of receiving
/// x·bytes_per_element from the root.
struct CommAwareProblem {
  std::size_t root = 0;
  double bytes_per_element = 8.0;
  /// Converts the speed-function unit into seconds: compute seconds =
  /// x·flops_per_element / (speed(x)·1e6) for speeds in MFlops.
  double flops_per_element = 1.0;
};

/// Communication-aware partitioning assuming links operate concurrently:
/// minimizes max_i [recv_i(x_i) + compute_i(x_i)] by bisection on the
/// makespan (each addend is non-decreasing in x_i, so per-processor
/// capacities are well-defined). The root pays no receive cost.
core::PartitionResult partition_comm_aware(const core::SpeedList& speeds,
                                           std::int64_t n,
                                           const CommModel& comm,
                                           const CommAwareProblem& problem);

/// Evaluates a distribution under the serialized-Ethernet schedule: the
/// root scatters every share in sequence (index order), then computation
/// proceeds in parallel (processor i starts after its own receive
/// completes).
double serialized_makespan_seconds(const core::SpeedList& speeds,
                                   const core::Distribution& d,
                                   const CommModel& comm,
                                   const CommAwareProblem& problem);

/// Like serialized_makespan_seconds but with an explicit send order (a
/// permutation of 0..p-1; the root's own entry costs nothing wherever it
/// appears).
double serialized_makespan_seconds_ordered(
    const core::SpeedList& speeds, const core::Distribution& d,
    const CommModel& comm, const CommAwareProblem& problem,
    std::span<const std::size_t> order);

/// Refines a distribution for the *serialized* schedule by local search:
/// repeatedly moves a small chunk of elements away from the processor that
/// finishes last (under the optimized send order) to the processor whose
/// finish time grows least, keeping moves that reduce the serialized
/// makespan. Starts from `seed` (typically partition_comm_aware's output)
/// and returns the improved distribution. Deterministic;
/// O(rounds · p · makespan evaluations).
core::Distribution refine_serialized(const core::SpeedList& speeds,
                                     const core::Distribution& seed,
                                     const CommModel& comm,
                                     const CommAwareProblem& problem,
                                     int max_rounds = 256);

/// Chooses a good send order for the serialized schedule. The classic rule
/// — serve the longest remaining computation first — is optimal for
/// uniform links (an exchange argument: delaying a long computation by a
/// short send beats the converse); for non-uniform links it is a strong
/// heuristic. Returns the permutation.
std::vector<std::size_t> optimize_send_order(const core::SpeedList& speeds,
                                             const core::Distribution& d,
                                             const CommModel& comm,
                                             const CommAwareProblem& problem);

}  // namespace fpm::comm
