#include "comm/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fpm::comm {

CommModel CommModel::uniform(std::size_t processors, LinkParams link) {
  if (processors == 0)
    throw std::invalid_argument("CommModel: processors must be >= 1");
  if (!(link.rate_Bps > 0.0) || link.startup_s < 0.0)
    throw std::invalid_argument("CommModel: invalid link parameters");
  std::vector<std::vector<LinkParams>> links(
      processors, std::vector<LinkParams>(processors, link));
  return CommModel(std::move(links));
}

CommModel::CommModel(std::vector<std::vector<LinkParams>> links)
    : links_(std::move(links)) {
  if (links_.empty()) throw std::invalid_argument("CommModel: empty matrix");
  for (const auto& row : links_) {
    if (row.size() != links_.size())
      throw std::invalid_argument("CommModel: matrix must be square");
    for (const LinkParams& l : row)
      if (!(l.rate_Bps > 0.0) || l.startup_s < 0.0)
        throw std::invalid_argument("CommModel: invalid link parameters");
  }
}

double CommModel::send_seconds(std::size_t from, std::size_t to,
                               double bytes) const {
  if (from >= links_.size() || to >= links_.size())
    throw std::out_of_range("CommModel: processor index");
  if (from == to || bytes <= 0.0) return 0.0;
  const LinkParams& l = links_[from][to];
  return l.startup_s + bytes / l.rate_Bps;
}

double CommModel::scatter_seconds(std::size_t root,
                                  std::span<const double> bytes) const {
  assert(bytes.size() == links_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < bytes.size(); ++i)
    total += send_seconds(root, i, bytes[i]);
  return total;
}

double CommModel::gather_seconds(std::size_t root,
                                 std::span<const double> bytes) const {
  assert(bytes.size() == links_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < bytes.size(); ++i)
    total += send_seconds(i, root, bytes[i]);
  return total;
}

double CommModel::broadcast_seconds(std::size_t root, double bytes) const {
  double total = 0.0;
  for (std::size_t i = 0; i < links_.size(); ++i)
    total += send_seconds(root, i, bytes);
  return total;
}

core::PartitionResult partition_comm_aware(const core::SpeedList& speeds,
                                           std::int64_t n,
                                           const CommModel& comm,
                                           const CommAwareProblem& problem) {
  if (speeds.size() != comm.processors())
    throw std::invalid_argument("partition_comm_aware: size mismatch");
  if (problem.root >= speeds.size())
    throw std::invalid_argument("partition_comm_aware: root out of range");
  core::PartitionResult result;
  result.stats.algorithm = core::kAlgorithmCommAware;
  result.distribution.counts.assign(speeds.size(), 0);
  if (n <= 0) return result;

  const auto total_seconds = [&](std::size_t i, std::int64_t x) {
    const double xd = static_cast<double>(x);
    const double compute =
        xd * problem.flops_per_element / (speeds[i]->speed(xd) * 1e6);
    const double recv = comm.send_seconds(problem.root, i,
                                          xd * problem.bytes_per_element);
    return compute + recv;
  };
  const auto cap = [&](std::size_t i, double T) -> std::int64_t {
    if (total_seconds(i, 1) > T) return 0;
    std::int64_t lo = 1;
    std::int64_t hi = n;
    if (total_seconds(i, hi) <= T) return hi;
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (total_seconds(i, mid) <= T)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  };
  const auto total_cap = [&](double T) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < speeds.size(); ++i) sum += cap(i, T);
    return sum;
  };

  double t_hi = total_seconds(problem.root, n);  // root alone: no comm cost
  double t_lo = 0.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (mid <= t_lo || mid >= t_hi) break;
    if (total_cap(mid) >= n)
      t_hi = mid;
    else
      t_lo = mid;
    ++result.stats.iterations;
  }

  std::int64_t sum = 0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    result.distribution.counts[i] = cap(i, t_hi);
    sum += result.distribution.counts[i];
  }
  // Trim overshoot from the slowest finishers.
  while (sum > n) {
    std::size_t worst = 0;
    double worst_t = -1.0;
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      if (result.distribution.counts[i] == 0) continue;
      const double t = total_seconds(i, result.distribution.counts[i]);
      if (t > worst_t) {
        worst_t = t;
        worst = i;
      }
    }
    --result.distribution.counts[worst];
    --sum;
  }
  result.stats.final_slope = t_hi;
  return result;
}

double serialized_makespan_seconds_ordered(
    const core::SpeedList& speeds, const core::Distribution& d,
    const CommModel& comm, const CommAwareProblem& problem,
    std::span<const std::size_t> order) {
  assert(speeds.size() == d.counts.size());
  assert(order.size() == speeds.size());
  double clock = 0.0;
  double finish = 0.0;
  for (const std::size_t i : order) {
    if (i == problem.root) continue;  // the root keeps its share locally
    const double xd = static_cast<double>(d.counts[i]);
    if (xd <= 0.0) continue;
    clock += comm.send_seconds(problem.root, i, xd * problem.bytes_per_element);
    const double compute =
        xd * problem.flops_per_element / (speeds[i]->speed(xd) * 1e6);
    finish = std::max(finish, clock + compute);
  }
  // The master is busy sending; its own computation starts once the
  // scatter completes (the classic DLT master-computes-last convention).
  const double root_x = static_cast<double>(d.counts[problem.root]);
  if (root_x > 0.0)
    finish = std::max(
        finish, clock + root_x * problem.flops_per_element /
                            (speeds[problem.root]->speed(root_x) * 1e6));
  return finish;
}

double serialized_makespan_seconds(const core::SpeedList& speeds,
                                   const core::Distribution& d,
                                   const CommModel& comm,
                                   const CommAwareProblem& problem) {
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return serialized_makespan_seconds_ordered(speeds, d, comm, problem, order);
}

core::Distribution refine_serialized(const core::SpeedList& speeds,
                                     const core::Distribution& seed,
                                     const CommModel& comm,
                                     const CommAwareProblem& problem,
                                     int max_rounds) {
  const std::size_t p = speeds.size();
  assert(seed.counts.size() == p);
  core::Distribution best = seed;
  const auto evaluate = [&](const core::Distribution& d) {
    const auto order = optimize_send_order(speeds, d, comm, problem);
    return serialized_makespan_seconds_ordered(speeds, d, comm, problem,
                                               order);
  };
  double best_t = evaluate(best);
  // Chunk size: fine enough to converge close to a local optimum, coarse
  // enough to keep the search cheap.
  const std::int64_t chunk =
      std::max<std::int64_t>(1, best.total() / (static_cast<std::int64_t>(p) * 64));

  for (int round = 0; round < max_rounds; ++round) {
    // Identify the finisher that defines the makespan.
    const auto order = optimize_send_order(speeds, best, comm, problem);
    double clock = 0.0;
    std::size_t bottleneck = problem.root;
    double bottleneck_t = -1.0;
    for (const std::size_t i : order) {
      const double xd = static_cast<double>(best.counts[i]);
      if (i == problem.root || xd <= 0.0) continue;
      clock += comm.send_seconds(problem.root, i, xd * problem.bytes_per_element);
      const double finish =
          clock + xd * problem.flops_per_element / (speeds[i]->speed(xd) * 1e6);
      if (finish > bottleneck_t) {
        bottleneck_t = finish;
        bottleneck = i;
      }
    }
    const double root_x = static_cast<double>(best.counts[problem.root]);
    if (root_x > 0.0) {
      const double finish = clock + root_x * problem.flops_per_element /
                                        (speeds[problem.root]->speed(root_x) * 1e6);
      if (finish > bottleneck_t) {
        bottleneck_t = finish;
        bottleneck = problem.root;
      }
    }
    const std::int64_t give =
        std::min(chunk, best.counts[bottleneck]);
    if (give == 0) break;

    // Try the move to every other processor; keep the best improvement.
    double round_best_t = best_t;
    core::Distribution round_best = best;
    for (std::size_t to = 0; to < p; ++to) {
      if (to == bottleneck) continue;
      core::Distribution candidate = best;
      candidate.counts[bottleneck] -= give;
      candidate.counts[to] += give;
      const double t = evaluate(candidate);
      if (t < round_best_t) {
        round_best_t = t;
        round_best = std::move(candidate);
      }
    }
    if (round_best_t >= best_t * (1.0 - 1e-12)) break;  // local optimum
    best = std::move(round_best);
    best_t = round_best_t;
  }
  return best;
}

std::vector<std::size_t> optimize_send_order(const core::SpeedList& speeds,
                                             const core::Distribution& d,
                                             const CommModel& comm,
                                             const CommAwareProblem& problem) {
  assert(speeds.size() == d.counts.size());
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> compute(speeds.size(), 0.0);
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double xd = static_cast<double>(d.counts[i]);
    if (xd > 0.0)
      compute[i] = xd * problem.flops_per_element / (speeds[i]->speed(xd) * 1e6);
  }
  // Longest computation first; the root (zero receive cost) goes last so
  // its slot never delays anyone. Stable for determinism.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (a == problem.root) return false;
                     if (b == problem.root) return true;
                     return compute[a] > compute[b];
                   });
  (void)comm;
  return order;
}

}  // namespace fpm::comm
