#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <variant>

namespace fpm::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kHistogramShards = 8;
}  // namespace

Histogram::Histogram(HistogramOptions options)
    : options_(options), shards_(kHistogramShards) {
  if (!(options_.first_bound > 0.0) || !(options_.growth > 1.0) ||
      options_.buckets == 0)
    throw std::invalid_argument(
        "Histogram: need first_bound > 0, growth > 1, buckets >= 1");
  bounds_.reserve(options_.buckets);
  double b = options_.first_bound;
  for (std::size_t i = 0; i < options_.buckets; ++i) {
    bounds_.push_back(b);
    b *= options_.growth;
  }
  for (Shard& sh : shards_) sh.counts.assign(bounds_.size() + 1, 0);
}

Histogram::Shard& Histogram::shard_for_this_thread() noexcept {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % shards_.size()];
}

void Histogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  // Log-bucket index without a search: the bucket is determined by how many
  // growth factors fit between first_bound and the value. upper_bound keeps
  // the exact <= bound semantics at the seams.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // == size: overflow
  Shard& sh = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.counts[idx];
  ++sh.count;
  sh.sum += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (std::size_t i = 0; i < sh.counts.size(); ++i)
      s.counts[i] += sh.counts[i];
    s.count += sh.count;
    s.sum += sh.sum;
  }
  return s;
}

void Histogram::reset() noexcept {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    std::fill(sh.counts.begin(), sh.counts.end(), 0);
    sh.count = 0;
    sh.sum = 0.0;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Slot {
  std::string name;
  // Counter/Gauge hold atomics (immovable), so the variant alternative is
  // selected in place at construction and never reassigned.
  std::variant<Counter, Gauge, std::unique_ptr<Histogram>> metric;

  template <typename Kind, typename... A>
  Slot(std::string n, std::in_place_type_t<Kind> kind, A&&... a)
      : name(std::move(n)), metric(kind, std::forward<A>(a)...) {}
};

MetricsRegistry::~MetricsRegistry() {
  for (Slot* s : slots_) delete s;
}

MetricsRegistry::Slot* MetricsRegistry::find_locked(
    std::string_view name) const {
  for (Slot* s : slots_)
    if (s->name == name) return s;
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Slot* s = find_locked(name)) {
    if (auto* c = std::get_if<Counter>(&s->metric)) return *c;
    throw std::invalid_argument("metrics: '" + std::string(name) +
                                "' is not a counter");
  }
  Slot* s = new Slot(std::string(name), std::in_place_type<Counter>);
  slots_.push_back(s);
  return std::get<Counter>(s->metric);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Slot* s = find_locked(name)) {
    if (auto* g = std::get_if<Gauge>(&s->metric)) return *g;
    throw std::invalid_argument("metrics: '" + std::string(name) +
                                "' is not a gauge");
  }
  Slot* s = new Slot(std::string(name), std::in_place_type<Gauge>);
  slots_.push_back(s);
  return std::get<Gauge>(s->metric);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Slot* s = find_locked(name)) {
    if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&s->metric))
      return **h;
    throw std::invalid_argument("metrics: '" + std::string(name) +
                                "' is not a histogram");
  }
  Slot* s = new Slot(std::string(name),
                     std::in_place_type<std::unique_ptr<Histogram>>,
                     std::make_unique<Histogram>(options));
  slots_.push_back(s);
  return *std::get<std::unique_ptr<Histogram>>(s->metric);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot* s : slots_) {
    if (auto* c = std::get_if<Counter>(&s->metric))
      c->reset();
    else if (auto* g = std::get_if<Gauge>(&s->metric))
      g->reset();
    else
      std::get<std::unique_ptr<Histogram>>(s->metric)->reset();
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot* s : slots_) {
      if (const auto* c = std::get_if<Counter>(&s->metric))
        out.counters.emplace_back(s->name, c->value());
      else if (const auto* g = std::get_if<Gauge>(&s->metric))
        out.gauges.emplace_back(s->name, g->value());
      else
        out.histograms.emplace_back(
            s->name,
            std::get<std::unique_ptr<Histogram>>(s->metric)->snapshot());
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

namespace {

std::string fmt_double(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Prometheus metric name: fpm_ prefix, illegal characters to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "fpm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot s = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : s.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : s.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + fmt_double(h.sum) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? fmt_double(h.bounds[i]) : "\"+Inf\"";
      out += ", \"count\": " + std::to_string(h.counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const MetricsSnapshot s = snapshot();
  std::string out;
  for (const auto& [name, value] : s.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += p + "_bucket{le=\"";
      out += i < h.bounds.size() ? fmt_double(h.bounds[i]) : "+Inf";
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_sum " + fmt_double(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed:
  // hot paths cache references, which must stay valid through every static
  // destructor that might still partition.
  return *registry;
}

std::span<const MetricInfo> metric_catalogue() {
  static constexpr std::array<MetricInfo, 37> kCatalogue{{
      {"partition.invocations.<algorithm>", "counter",
       "core::partition() calls per registry algorithm (the paper's "
       "basic/modified/combined family, Figs. 7-15)"},
      {names::kPartitionSpeedEvals, "counter",
       "s(x) evaluations at the SpeedFunction boundary — the cost of "
       "consulting the functional performance model"},
      {names::kPartitionIntersectSolves, "counter",
       "c*x = s(x) solves — the paper's complexity unit for the "
       "bisection searches"},
      {names::kPartitionBracketSaturations, "counter",
       "generic-bisection bracket expansions that hit the 256-doubling cap "
       "still above the line: the solve returned a saturated-bracket "
       "midpoint, not a true crossing (slope far below every model)"},
      {names::kPartitionBatchSimdEntries, "counter",
       "intersect_all entries solved by the vector batch kernels (SIMD "
       "lane occupancy of the compiled SoA plan)"},
      {names::kPartitionBatchScalarEntries, "counter",
       "intersect_all entries solved scalar: per-entry fallback lane plus "
       "vector-kernel punts recomputed with libm (hit rate = simd / "
       "(simd + scalar))"},
      {names::kPartitionBatchParallelSweeps, "counter",
       "intersect_all sweeps that split their lanes across the lane pool "
       "(entry count above parallel_intersect_threshold)"},
      {names::kPartitionBatchBackend, "gauge",
       "active vector backend of the batch lanes as the core::SimdBackend "
       "enum value (0=off 1=portable 2=avx2 3=avx512 4=neon)"},
      {names::kPartitionBatchSimdEntriesPortable, "counter",
       "simd_entries solved by the portable (baseline-ISA) vector variant"},
      {names::kPartitionBatchSimdEntriesAvx2, "counter",
       "simd_entries solved by the AVX2+FMA 4-wide vector variant"},
      {names::kPartitionBatchSimdEntriesAvx512, "counter",
       "simd_entries solved by the AVX-512F/DQ 8-wide vector variant"},
      {names::kPartitionBatchSimdEntriesNeon, "counter",
       "simd_entries solved by the AArch64 NEON 4-wide vector variant"},
      {names::kPartitionWarmstartHits, "counter",
       "searches whose PartitionHint bracket verified, replacing the "
       "Fig. 18 cold bracket with a tight one around the previous slope"},
      {names::kPartitionWarmstartStale, "counter",
       "hints rejected (model fingerprint changed or the optimum drifted "
       "beyond the verification budget); the search ran cold"},
      {names::kPartitionWarmstartIterationsSaved, "counter",
       "bisection iterations saved versus each hint's cold baseline — the "
       "O(log2 n) vs O(log2 delta) gap on drifting inputs"},
      {names::kServerServeLatency, "histogram",
       "PartitionServer::serve wall time per request (partition cost the "
       "paper bounds by O(p^2 log2 n), Fig. 21)"},
      {names::kServerQueueDepth, "gauge",
       "requests queued for the server's worker pool"},
      {names::kServerCacheHits, "counter",
       "requests answered from the result cache (recurring (model, n, "
       "policy) triples)"},
      {names::kServerCacheMisses, "counter",
       "requests that ran the partitioner and stored their result"},
      {names::kServerCacheEvictions, "counter",
       "LRU evictions under cache-capacity pressure"},
      {names::kServerCacheUncacheable, "counter",
       "requests that bypassed the cache (observer-carrying policies, or "
       "caching disabled)"},
      {names::kServerHintsEvicted, "counter",
       "warm-start hints LRU-evicted under fingerprint churn "
       "(ServerOptions::hint_capacity)"},
      {names::kServerSloOffered, "counter",
       "SLO-aware requests received (submit/run_batch/serve_slo); equals "
       "admitted + degraded + the four shed counters at all times"},
      {names::kServerSloAdmitted, "counter",
       "SLO requests answered in full by the engine or cache"},
      {names::kServerSloDegraded, "counter",
       "SLO requests answered approximately from the hint store (previous "
       "solution rescaled to the requested n, with an error bound)"},
      {names::kServerSloShedAdmission, "counter",
       "requests shed at submission: predicted completion past the "
       "deadline"},
      {names::kServerSloShedQueueFull, "counter",
       "requests displaced from a full queue (lowest priority, latest "
       "deadline first)"},
      {names::kServerSloShedExpired, "counter",
       "requests whose deadline passed while queued (shed at dispatch, "
       "before spending the solve)"},
      {names::kServerSloShedShutdown, "counter",
       "requests shed by drain() timeout or server destruction (their "
       "futures are still fulfilled)"},
      {names::kServerSloDeadlineMisses, "counter",
       "answers (full or degraded) delivered after their deadline"},
      {names::kServerSloQueueDelayMicros, "gauge",
       "latest admission-time queue-delay estimate (EWMA service time x "
       "queue depth ahead / workers), microseconds"},
      {names::kRebalanceRounds, "counter",
       "Rebalancer::step calls — iterations observed under fluctuating "
       "load (paper Fig. 2 performance bands)"},
      {names::kRebalanceRepartitions, "counter",
       "accepted repartitions from re-learned speed curves"},
      {names::kRebalanceEvacuations, "counter",
       "processors drained after collapse (paging / lost measurements)"},
      {names::kMppFailureEpochs, "counter",
       "rank-failure epochs observed by the mpp runtime"},
      {names::kMppRecoveryDuration, "histogram",
       "per-survivor recovery rendezvous wall time (checkpoint rollback + "
       "FPM re-partition over survivors)"},
      {names::kMppRecoveries, "counter",
       "completed recovery rounds (counted once per round, by the lowest "
       "surviving rank)"},
  }};
  return kCatalogue;
}

}  // namespace fpm::obs
