// Process-wide observability for the partition engine: named counters,
// gauges, and fixed log-bucket latency histograms behind one thread-safe
// MetricsRegistry, plus JSON and Prometheus text exporters.
//
// The paper's central claim is that processor speed is a *function*
// observed under real conditions (performance bands, paging, transient
// load); a runtime built on that model has to be able to watch itself the
// same way. Every layer reports here: core::partition() rolls up
// per-algorithm invocation counts and the speed_evals/intersect_solves
// accounting of PartitionStats, the PartitionServer records serve latency
// and cache traffic, the Rebalancer its rounds and evacuations, and the
// mpp runtime its failure epochs and recovery durations. The registry is a
// process singleton (obs::metrics()) so one scrape sees the whole stack;
// docs/observability.md maps each metric to the paper concept it measures.
//
// Concurrency: counters and gauges are single relaxed atomics; histograms
// are lock-sharded like core::PartitionCache (each shard an independently
// locked bucket array, the recording thread picks its shard by thread id),
// so concurrent record() calls rarely contend and snapshot() never loses a
// sample. Metric objects are created on first use and live as long as the
// registry; references returned by counter()/gauge()/histogram() stay
// valid forever and may be cached by hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fpm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Instantaneous level (queue depth, entries); may go up and down.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Bucket layout of a Histogram: `buckets` upper bounds starting at
/// `first_bound` and growing geometrically by `growth`, plus one implicit
/// overflow bucket. The defaults cover 1 µs .. ~4 s in factor-2 steps —
/// sized for the serve/recovery latencies this library measures.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  std::size_t buckets = 22;
};

/// Fixed log-bucket histogram of non-negative samples (latencies in
/// seconds by convention). Lock-sharded: record() locks only the calling
/// thread's shard, snapshot() folds all shards into one consistent view.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  /// Records one sample (negative values clamp to zero; NaN is dropped).
  void record(double value) noexcept;

  struct Snapshot {
    std::vector<double> bounds;        ///< bucket upper bounds, ascending
    std::vector<std::int64_t> counts;  ///< per-bucket; size bounds+1 (last
                                       ///< = overflow beyond bounds.back())
    std::int64_t count = 0;            ///< total samples
    double sum = 0.0;                  ///< sum of all samples
  };
  Snapshot snapshot() const;

  const HistogramOptions& options() const noexcept { return options_; }
  void reset() noexcept;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::int64_t> counts;
    std::int64_t count = 0;
    double sum = 0.0;
  };
  Shard& shard_for_this_thread() noexcept;

  HistogramOptions options_;
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// RAII latency span: records the elapsed wall time (seconds) into a
/// histogram when destroyed, or earlier via stop().
class TimerSpan {
 public:
  explicit TimerSpan(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  TimerSpan(const TimerSpan&) = delete;
  TimerSpan& operator=(const TimerSpan&) = delete;
  ~TimerSpan() { stop(); }

  /// Records now and disarms the destructor; returns the elapsed seconds.
  double stop() noexcept {
    if (histogram_ == nullptr) return 0.0;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    histogram_->record(seconds);
    histogram_ = nullptr;
    return seconds;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// One consistent read of a registry, in name order per kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Thread-safe name -> metric map. Lookup creates on first use; the
/// returned references are stable for the registry's lifetime. A name may
/// hold only one metric kind (std::invalid_argument otherwise).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `options` applies only on first creation of `name`.
  Histogram& histogram(std::string_view name, HistogramOptions options = {});

  /// Zeroes every value; registrations (and references) survive.
  void reset();

  MetricsSnapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count", "sum", "buckets": [{"le", "count"}...]}}} — bucket counts
  /// are per-bucket, the final bucket ("le": "+Inf") is the overflow.
  std::string to_json() const;

  /// Prometheus text exposition format. Names are prefixed with "fpm_"
  /// and mapped to the legal charset ('.' and '-' become '_'); histogram
  /// series follow the cumulative _bucket/_sum/_count convention.
  std::string to_prometheus() const;

 private:
  struct Slot;
  Slot* find_locked(std::string_view name) const;

  mutable std::mutex mu_;
  std::vector<Slot*> slots_;  // owned; insertion order
};

/// The process-wide registry every fpm layer reports into.
MetricsRegistry& metrics();

/// Canonical metric names wired through the stack. Kept here (not in each
/// layer) so exporters, the CLI catalogue, and docs/observability.md agree.
namespace names {
// core::partition(): one invocation counter per registry algorithm id,
// plus rollups of the PartitionStats boundary counters.
inline constexpr const char* kPartitionInvocationsPrefix =
    "partition.invocations.";  // + algorithm id
inline constexpr const char* kPartitionSpeedEvals = "partition.speed_evals";
inline constexpr const char* kPartitionIntersectSolves =
    "partition.intersect_solves";
// Bracket expansions of the generic bisection that hit the 256-doubling cap
// with the curve still above the line (the solve then returns the saturated
// bracket's midpoint, not a true crossing — see speed_kernels.hpp).
inline constexpr const char* kPartitionBracketSaturations =
    "partition.intersect.bracket_saturations";
// Batch-lane occupancy of CompiledSpeedList::intersect_all: entries solved
// by the vector kernels vs entries that took a scalar path (per-entry
// fallback lane, or vector-kernel punts recomputed scalar). The vector-path
// hit rate is simd_entries / (simd_entries + scalar_entries). One
// parallel_sweeps tick per intersect_all that split across the lane pool.
inline constexpr const char* kPartitionBatchSimdEntries =
    "partition.batch.simd_entries";
inline constexpr const char* kPartitionBatchScalarEntries =
    "partition.batch.scalar_entries";
inline constexpr const char* kPartitionBatchParallelSweeps =
    "partition.batch.parallel_sweeps";
// Which vector backend the batch lanes are running on, as an info gauge
// holding the core::SimdBackend enum value (0=off 1=portable 2=avx2
// 3=avx512 4=neon), plus a per-backend split of simd_entries so a fleet
// mixing ISAs can attribute its vector-path throughput per variant.
inline constexpr const char* kPartitionBatchBackend =
    "partition.batch.backend";
inline constexpr const char* kPartitionBatchSimdEntriesPortable =
    "partition.batch.simd_entries.portable";
inline constexpr const char* kPartitionBatchSimdEntriesAvx2 =
    "partition.batch.simd_entries.avx2";
inline constexpr const char* kPartitionBatchSimdEntriesAvx512 =
    "partition.batch.simd_entries.avx512";
inline constexpr const char* kPartitionBatchSimdEntriesNeon =
    "partition.batch.simd_entries.neon";
// Warm-start layer (PartitionHint): verified-hint hits, rejected hints, and
// the iterations saved versus each hint's cold baseline.
inline constexpr const char* kPartitionWarmstartHits =
    "partition.warmstart.hits";
inline constexpr const char* kPartitionWarmstartStale =
    "partition.warmstart.stale";
inline constexpr const char* kPartitionWarmstartIterationsSaved =
    "partition.warmstart.iterations_saved";
// core::PartitionServer (aggregated over every server in the process).
inline constexpr const char* kServerServeLatency =
    "server.serve_latency_seconds";
inline constexpr const char* kServerQueueDepth = "server.queue_depth";
inline constexpr const char* kServerCacheHits = "server.cache.hits";
inline constexpr const char* kServerCacheMisses = "server.cache.misses";
inline constexpr const char* kServerCacheEvictions = "server.cache.evictions";
inline constexpr const char* kServerCacheUncacheable =
    "server.cache.uncacheable";
inline constexpr const char* kServerHintsEvicted = "server.hints.evicted";
// SLO layer of the PartitionServer: deadline-aware requests only
// (submit/run_batch/serve_slo). offered == admitted + degraded + sheds.
inline constexpr const char* kServerSloOffered = "server.slo.offered";
inline constexpr const char* kServerSloAdmitted = "server.slo.admitted";
inline constexpr const char* kServerSloDegraded = "server.slo.degraded";
inline constexpr const char* kServerSloShedAdmission =
    "server.slo.shed.admission";
inline constexpr const char* kServerSloShedQueueFull =
    "server.slo.shed.queue_full";
inline constexpr const char* kServerSloShedExpired =
    "server.slo.shed.expired";
inline constexpr const char* kServerSloShedShutdown =
    "server.slo.shed.shutdown";
inline constexpr const char* kServerSloDeadlineMisses =
    "server.slo.deadline_misses";
inline constexpr const char* kServerSloQueueDelayMicros =
    "server.slo.queue_delay_us";
// balance::Rebalancer.
inline constexpr const char* kRebalanceRounds = "rebalance.rounds";
inline constexpr const char* kRebalanceRepartitions =
    "rebalance.repartitions";
inline constexpr const char* kRebalanceEvacuations = "rebalance.evacuations";
// mpp runtime + recovery.
inline constexpr const char* kMppFailureEpochs = "mpp.failure_epochs";
inline constexpr const char* kMppRecoveryDuration =
    "mpp.recovery_duration_seconds";
inline constexpr const char* kMppRecoveries = "mpp.recoveries";
}  // namespace names

/// Static description of one catalogued metric, for the CLI and docs.
struct MetricInfo {
  const char* name;  ///< registry name ("…" marks a per-algorithm family)
  const char* kind;  ///< "counter" | "gauge" | "histogram"
  const char* help;  ///< one line, including the paper concept it measures
};

/// Every metric the library exports, in stack order.
std::span<const MetricInfo> metric_catalogue();

}  // namespace fpm::obs
