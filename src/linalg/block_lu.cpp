#include "linalg/block_lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpm::linalg {

bool block_lu_factor(util::MatrixD& a, std::size_t b,
                     std::vector<std::size_t>& pivots) {
  if (b == 0) throw std::invalid_argument("block_lu_factor: block == 0");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t steps = std::min(m, n);
  pivots.assign(steps, 0);
  bool nonsingular = true;

  for (std::size_t k0 = 0; k0 < steps; k0 += b) {
    const std::size_t kb = std::min(b, steps - k0);

    // Panel factorization (unblocked, columns k0..k0+kb) with pivot search
    // over the full trailing rows — identical choices to lu_factor.
    for (std::size_t k = k0; k < k0 + kb; ++k) {
      std::size_t piv = k;
      double best = std::abs(a(k, k));
      for (std::size_t i = k + 1; i < m; ++i) {
        const double v = std::abs(a(i, k));
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      pivots[k] = piv;
      if (best == 0.0) {
        nonsingular = false;
        continue;
      }
      if (piv != k)  // swap whole rows: L history and the panel alike
        for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      const double inv = 1.0 / a(k, k);
      for (std::size_t i = k + 1; i < m; ++i) {
        const double l = a(i, k) * inv;
        a(i, k) = l;
        // Update only within the panel; the block row/update below handles
        // the rest of the matrix.
        for (std::size_t j = k + 1; j < k0 + kb; ++j) a(i, j) -= l * a(k, j);
      }
    }
    if (!nonsingular) return false;

    const std::size_t j0 = k0 + kb;
    if (j0 >= n) continue;

    // Block row: A12 <- L11^{-1}·A12 (unit lower triangular solve).
    for (std::size_t k = k0; k < k0 + kb; ++k)
      for (std::size_t i = k + 1; i < k0 + kb; ++i) {
        const double l = a(i, k);
        if (l == 0.0) continue;
        for (std::size_t j = j0; j < n; ++j) a(i, j) -= l * a(k, j);
      }

    // Trailing update: A22 <- A22 - L21·U12.
    for (std::size_t i = j0; i < m; ++i)
      for (std::size_t k = k0; k < k0 + kb; ++k) {
        const double l = a(i, k);
        if (l == 0.0) continue;
        for (std::size_t j = j0; j < n; ++j) a(i, j) -= l * a(k, j);
      }
  }
  return nonsingular;
}

}  // namespace fpm::linalg
