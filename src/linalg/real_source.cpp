#include "linalg/real_source.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"
#include "util/timer.hpp"

namespace fpm::linalg {
namespace {

// The checksum sink keeps the optimizer from deleting the measured work.
volatile double g_sink = 0.0;

}  // namespace

double measure_mm_mflops(std::size_t n1, std::size_t n2, bool blocked) {
  const MatrixD a = random_matrix(n1, n2, 7);
  const MatrixD b = random_matrix(n2, n1, 11);
  util::Timer timer;
  const MatrixD c = blocked ? matmul_blocked(a, b) : matmul_naive(a, b);
  const double secs = std::max(timer.seconds(), 1e-9);
  g_sink = c(0, 0);
  return mm_flops(static_cast<std::int64_t>(n1),
                  static_cast<std::int64_t>(n2),
                  static_cast<std::int64_t>(n1)) /
         (secs * 1e6);
}

double measure_lu_mflops(std::size_t n1, std::size_t n2) {
  MatrixD a = random_matrix(n1, n2, 13);
  std::vector<std::size_t> pivots;
  util::Timer timer;
  lu_factor(a, pivots);
  const double secs = std::max(timer.seconds(), 1e-9);
  g_sink = a(0, 0);
  return lu_flops(static_cast<std::int64_t>(n1),
                  static_cast<std::int64_t>(n2)) /
         (secs * 1e6);
}

RealKernelSource::RealKernelSource(Kernel kernel) : kernel_(kernel) {}

std::string RealKernelSource::name() const {
  switch (kernel_) {
    case Kernel::MatMulNaive:
      return "MatrixMult";
    case Kernel::MatMulBlocked:
      return "MatrixMultBlocked";
    case Kernel::LuFactor:
      return "LU";
    case Kernel::Cholesky:
      return "Cholesky";
    case Kernel::ArrayOps:
      return "ArrayOpsF";
  }
  return "unknown";
}

double RealKernelSource::measure(double size) {
  const double x = std::max(size, 16.0);
  switch (kernel_) {
    case Kernel::MatMulNaive:
    case Kernel::MatMulBlocked: {
      const auto n = static_cast<std::size_t>(std::sqrt(x / 3.0));
      return measure_mm_mflops(std::max<std::size_t>(n, 2),
                               std::max<std::size_t>(n, 2),
                               kernel_ == Kernel::MatMulBlocked);
    }
    case Kernel::LuFactor: {
      const auto n = static_cast<std::size_t>(std::sqrt(x));
      return measure_lu_mflops(std::max<std::size_t>(n, 2),
                               std::max<std::size_t>(n, 2));
    }
    case Kernel::Cholesky: {
      const auto n = std::max<std::size_t>(
          static_cast<std::size_t>(std::sqrt(x)), 2);
      util::MatrixD a = spd_matrix(n, 17);
      util::Timer timer;
      cholesky_factor(a);
      const double secs = std::max(timer.seconds(), 1e-9);
      g_sink = a(0, 0);
      return cholesky_flops(static_cast<std::int64_t>(n)) / (secs * 1e6);
    }
    case Kernel::ArrayOps: {
      const auto count = static_cast<std::size_t>(x);
      std::vector<double> data(count, 1.0);
      constexpr int kSweeps = 4;
      util::Timer timer;
      g_sink = array_ops(data, kSweeps);
      const double secs = std::max(timer.seconds(), 1e-9);
      return array_ops_flops(static_cast<std::int64_t>(count), kSweeps) /
             (secs * 1e6);
    }
  }
  return 0.0;
}

}  // namespace fpm::linalg
