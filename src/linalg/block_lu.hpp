// Right-looking block LU factorization with partial pivoting — the serial
// reference for the parallel algorithm the VGB distribution schedules
// (paper Figure 17a): panel factorization, pivot application, triangular
// solve of the block row, trailing-matrix update. Produces bit-identical
// factors to the unblocked lu_factor (same pivot choices), which the test
// suite verifies.
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace fpm::linalg {

/// In-place blocked LU with partial pivoting, block size `b`. Semantics
/// match lu_factor: on return `a` packs L (unit diagonal) and U, and
/// `pivots[k]` is the row swapped with row k at elimination step k.
/// Returns false on an exactly singular pivot column.
bool block_lu_factor(util::MatrixD& a, std::size_t b,
                     std::vector<std::size_t>& pivots);

}  // namespace fpm::linalg
