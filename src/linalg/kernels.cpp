#include "linalg/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace fpm::linalg {

MatrixD matmul_naive(const MatrixD& a, const MatrixD& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul_naive: inner dimensions differ");
  MatrixD c(a.rows(), b.cols());
  // Deliberately the textbook i-j-k order with a strided walk over B: the
  // paper's "MatrixMult" uses inefficient memory reference patterns.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      c(i, j) = sum;
    }
  return c;
}

MatrixD matmul_abt_naive(const MatrixD& a, const MatrixD& b) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("matmul_abt_naive: inner dimensions differ");
  MatrixD c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      c(i, j) = sum;
    }
  return c;
}

MatrixD matmul_blocked(const MatrixD& a, const MatrixD& b, std::size_t block) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("matmul_blocked: inner dimensions differ");
  if (block == 0) throw std::invalid_argument("matmul_blocked: block == 0");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  MatrixD c(m, n);
  for (std::size_t ii = 0; ii < m; ii += block)
    for (std::size_t kk = 0; kk < k; kk += block)
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t ie = std::min(ii + block, m);
        const std::size_t ke = std::min(kk + block, k);
        const std::size_t je = std::min(jj + block, n);
        for (std::size_t i = ii; i < ie; ++i)
          for (std::size_t kx = kk; kx < ke; ++kx) {
            const double av = a(i, kx);
            for (std::size_t j = jj; j < je; ++j) c(i, j) += av * b(kx, j);
          }
      }
  return c;
}

bool lu_factor(MatrixD& a, std::vector<std::size_t>& pivots) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t steps = std::min(m, n);
  pivots.assign(steps, 0);
  for (std::size_t k = 0; k < steps; ++k) {
    // Partial pivoting: the largest magnitude in column k at/below row k.
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < m; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    pivots[k] = piv;
    if (best == 0.0) return false;  // exactly singular column
    if (piv != k)
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
    const double inv = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < m; ++i) {
      const double l = a(i, k) * inv;
      a(i, k) = l;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= l * a(k, j);
    }
  }
  return true;
}

std::vector<double> lu_solve(const MatrixD& lu,
                             std::span<const std::size_t> pivots,
                             std::span<const double> b) {
  const std::size_t n = lu.rows();
  if (lu.cols() != n || b.size() != n || pivots.size() != n)
    throw std::invalid_argument("lu_solve: shape mismatch");
  std::vector<double> x(b.begin(), b.end());
  // Apply the row swaps in factorization order.
  for (std::size_t k = 0; k < n; ++k)
    if (pivots[k] != k) std::swap(x[k], x[pivots[k]]);
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu(ii, j) * x[j];
    x[ii] = sum / lu(ii, ii);
  }
  return x;
}

MatrixD lu_reconstruct(const MatrixD& lu) {
  const std::size_t m = lu.rows();
  const std::size_t n = lu.cols();
  const std::size_t r = std::min(m, n);
  MatrixD out(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t kmax = std::min({i, j + 1, r});
      for (std::size_t k = 0; k < kmax; ++k) sum += lu(i, k) * lu(k, j);
      if (i <= j && i < r) sum += lu(i, j);  // unit diagonal of L times U
      out(i, j) = sum;
    }
  return out;
}

MatrixD apply_pivots(const MatrixD& a, std::span<const std::size_t> pivots) {
  MatrixD out = a;
  for (std::size_t k = 0; k < pivots.size(); ++k)
    if (pivots[k] != k)
      for (std::size_t j = 0; j < out.cols(); ++j)
        std::swap(out(k, j), out(pivots[k], j));
  return out;
}

double array_ops(std::span<double> data, int sweeps) {
  double checksum = 0.0;
  for (int s = 0; s < sweeps; ++s) {
    const double scale = 1.0 + 1.0 / static_cast<double>(s + 2);
    for (double& v : data) v = v * scale + 1e-6;
  }
  for (const double v : data) checksum += v;
  return checksum;
}

double mm_flops(std::int64_t m, std::int64_t k, std::int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

double lu_flops(std::int64_t m, std::int64_t n) {
  // Rectangular getrf: one multiply and one add per inner-loop update, so
  // twice the multiplication count m·n·r - (m+n)·r²/2 + r³/3; for m == n
  // this reduces to ~(2/3)n³.
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double r = std::min(md, nd);
  return 2.0 * (md * nd * r - 0.5 * (md + nd) * r * r + (r * r * r) / 3.0) +
         1.5 * md * r;  // divisions and pivot search, lower order
}

double array_ops_flops(std::int64_t elements, int sweeps) {
  return 2.0 * static_cast<double>(elements) * static_cast<double>(sweeps);
}

MatrixD random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  MatrixD m(rows, cols);
  for (double& v : m.flat()) v = rng.uniform(-1.0, 1.0);
  // Mild diagonal dominance keeps random LU test systems well conditioned.
  const std::size_t r = std::min(rows, cols);
  for (std::size_t i = 0; i < r; ++i) m(i, i) += 2.0;
  return m;
}

}  // namespace fpm::linalg
