// Cholesky factorization A = L·Lᵀ for symmetric positive-definite matrices
// — the third dense factorization of the paper's "linear algebra
// algorithms" workload class. Unblocked and right-looking blocked variants
// produce bit-identical factors (same arithmetic, different owners), the
// same property the LU pair has, so either can anchor a distributed
// implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace fpm::linalg {

/// In-place lower Cholesky of a symmetric positive-definite matrix: on
/// success the lower triangle (including diagonal) holds L and the strict
/// upper triangle is zeroed. Returns false when a non-positive pivot shows
/// the matrix is not positive definite (contents then unspecified).
bool cholesky_factor(util::MatrixD& a);

/// Right-looking blocked variant with block size `b`; bit-identical to
/// cholesky_factor.
bool block_cholesky_factor(util::MatrixD& a, std::size_t b);

/// Solves A·x = rhs given the Cholesky factor L (forward then backward
/// substitution).
std::vector<double> cholesky_solve(const util::MatrixD& l,
                                   std::span<const double> rhs);

/// L·Lᵀ, for verifying factors.
util::MatrixD cholesky_reconstruct(const util::MatrixD& l);

/// Deterministic symmetric positive-definite test matrix (Bᵀ·B + n·I).
util::MatrixD spd_matrix(std::size_t n, std::uint64_t seed = 42);

/// Flop count ~ n³/3 (multiply-add pairs counted as 2).
double cholesky_flops(std::int64_t n);

}  // namespace fpm::linalg
