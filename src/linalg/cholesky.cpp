#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"

namespace fpm::linalg {

bool cholesky_factor(util::MatrixD& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("cholesky_factor: matrix must be square");
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = a(k, k);
    if (!(pivot > 0.0)) return false;
    const double root = std::sqrt(pivot);
    a(k, k) = root;
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) /= root;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double l_jk = a(j, k);
      if (l_jk == 0.0) continue;
      for (std::size_t i = j; i < n; ++i) a(i, j) -= a(i, k) * l_jk;
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

bool block_cholesky_factor(util::MatrixD& a, std::size_t b) {
  if (b == 0) throw std::invalid_argument("block_cholesky_factor: block == 0");
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("block_cholesky_factor: matrix must be square");
  for (std::size_t k0 = 0; k0 < n; k0 += b) {
    const std::size_t kb = std::min(b, n - k0);
    // Diagonal block: unblocked factorization restricted to the panel,
    // updating only columns within it (trailing columns handled below).
    for (std::size_t k = k0; k < k0 + kb; ++k) {
      const double pivot = a(k, k);
      if (!(pivot > 0.0)) return false;
      const double root = std::sqrt(pivot);
      a(k, k) = root;
      for (std::size_t i = k + 1; i < n; ++i) a(i, k) /= root;
      for (std::size_t j = k + 1; j < k0 + kb; ++j) {
        const double l_jk = a(j, k);
        if (l_jk == 0.0) continue;
        for (std::size_t i = j; i < n; ++i) a(i, j) -= a(i, k) * l_jk;
      }
    }
    // Trailing update: A22 -= L21·L21ᵀ (lower triangle only), with L21 the
    // rows below the panel of the panel columns.
    const std::size_t j0 = k0 + kb;
    for (std::size_t j = j0; j < n; ++j)
      for (std::size_t k = k0; k < k0 + kb; ++k) {
        const double l_jk = a(j, k);
        if (l_jk == 0.0) continue;
        for (std::size_t i = j; i < n; ++i) a(i, j) -= a(i, k) * l_jk;
      }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

std::vector<double> cholesky_solve(const util::MatrixD& l,
                                   std::span<const double> rhs) {
  const std::size_t n = l.rows();
  if (l.cols() != n || rhs.size() != n)
    throw std::invalid_argument("cholesky_solve: shape mismatch");
  std::vector<double> x(rhs.begin(), rhs.end());
  // Forward substitution: L·y = rhs.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l(i, j) * x[j];
    x[i] = sum / l(i, i);
  }
  // Backward substitution: Lᵀ·x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l(j, ii) * x[j];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

util::MatrixD cholesky_reconstruct(const util::MatrixD& l) {
  const std::size_t n = l.rows();
  util::MatrixD out(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t kmax = std::min(i, j) + 1;
      for (std::size_t k = 0; k < kmax; ++k) sum += l(i, k) * l(j, k);
      out(i, j) = sum;
    }
  return out;
}

util::MatrixD spd_matrix(std::size_t n, std::uint64_t seed) {
  const util::MatrixD b = random_matrix(n, n, seed);
  util::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double sum = i == j ? static_cast<double>(n) : 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += b(k, i) * b(k, j);
      a(i, j) = sum;
    }
  return a;
}

double cholesky_flops(std::int64_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0 + 1.5 * nd * nd;
}

}  // namespace fpm::linalg
