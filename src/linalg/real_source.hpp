// Real-machine measurement sources: build a functional model of the *host*
// by actually running a kernel, exactly as the paper does on its testbed.
// Sizes follow the library convention (elements stored and processed):
// a matrix-multiplication problem of x elements runs the kernel on square
// matrices with n = sqrt(x/3); an LU problem of x elements uses n = sqrt(x).
#pragma once

#include <functional>
#include <string>

#include "core/builder.hpp"

namespace fpm::linalg {

/// Which kernel the source runs.
enum class Kernel {
  MatMulNaive,
  MatMulBlocked,
  LuFactor,
  Cholesky,
  ArrayOps,
};

/// core::MeasurementSource that executes the kernel and reports the
/// observed MFlops. Each measure() call is one real run; keep sizes modest.
class RealKernelSource final : public core::MeasurementSource {
 public:
  explicit RealKernelSource(Kernel kernel);

  /// Runs the kernel at problem size `size` (elements) and returns MFlops.
  double measure(double size) override;

  /// Human-readable kernel name.
  std::string name() const;

 private:
  Kernel kernel_;
};

/// One-shot measurement helper (used by the shape-invariance benches):
/// multiplies an n1 x n2 by an n2 x n1 matrix and returns the MFlops.
double measure_mm_mflops(std::size_t n1, std::size_t n2, bool blocked);

/// LU-factorizes an n1 x n2 matrix and returns the MFlops.
double measure_lu_mflops(std::size_t n1, std::size_t n2);

}  // namespace fpm::linalg
