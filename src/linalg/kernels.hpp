// Serial dense linear-algebra kernels.
//
// These are the real computations behind the paper's workloads: the naive
// triple-loop matrix multiplication ("MatrixMult" — deliberately cache-
// hostile), a blocked multiplication standing in for the ATLAS dgemm
// ("MatrixMultATLAS"), LU factorization with partial pivoting, and the
// ArrayOpsF streaming kernel. They serve three purposes: verifying the
// numerics of the parallel algorithms on small sizes, grounding the flop
// formulas (MF = 2 for MM, 2/3 for LU), and optionally measuring *real*
// speed functions of the host machine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace fpm::linalg {

using util::MatrixD;

/// C = A·B with the naive i-j-k triple loop. A is m x k, B is k x n.
MatrixD matmul_naive(const MatrixD& a, const MatrixD& b);

/// C = A·Bᵀ with the naive loop (the paper's application operates on
/// horizontally striped A and B, computing A·Bᵀ). A is m x k, B is n x k.
MatrixD matmul_abt_naive(const MatrixD& a, const MatrixD& b);

/// C = A·B with square tiling of `block` (cache-friendly, ATLAS stand-in).
MatrixD matmul_blocked(const MatrixD& a, const MatrixD& b,
                       std::size_t block = 48);

/// In-place LU factorization with partial (row) pivoting: on return `a`
/// holds L (unit diagonal, below) and U (on/above the diagonal) and `pivots`
/// the row swaps applied at each step. Works for rectangular m x n matrices
/// (factorizes the first min(m,n) columns). Returns false when a pivot
/// column is exactly singular.
bool lu_factor(MatrixD& a, std::vector<std::size_t>& pivots);

/// Solves A·x = b using the output of lu_factor (square A only).
std::vector<double> lu_solve(const MatrixD& lu,
                             std::span<const std::size_t> pivots,
                             std::span<const double> b);

/// Rebuilds P·A from the packed LU factors (square or rectangular), for
/// verifying the factorization: returns L·U.
MatrixD lu_reconstruct(const MatrixD& lu);

/// Applies the pivot sequence to a copy of `a` (the P of P·A = L·U).
MatrixD apply_pivots(const MatrixD& a, std::span<const std::size_t> pivots);

/// ArrayOpsF: a streaming pass over `data` doing a fused multiply-add per
/// element, repeated `sweeps` times. Returns the final checksum so the
/// optimizer cannot delete the work.
double array_ops(std::span<double> data, int sweeps);

/// Flop counts matching the paper's conventions.
double mm_flops(std::int64_t m, std::int64_t k, std::int64_t n);  // 2mkn
double lu_flops(std::int64_t m, std::int64_t n);  // rectangular getrf
double array_ops_flops(std::int64_t elements, int sweeps);

/// Deterministically filled test matrix (values in [-1, 1], full rank with
/// high probability for the given seed).
MatrixD random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed = 42);

}  // namespace fpm::linalg
