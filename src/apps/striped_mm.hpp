// Parallel matrix multiplication C = A·Bᵀ with horizontal striped
// partitioning (paper §3.1, Figure 16): a heterogeneous 1-D clone of the
// ScaLAPACK algorithm. A, B and C are partitioned into horizontal slices
// whose total element count is proportional to the speed of the owning
// processor; processor i computes its C rows against every B slice.
//
// Problem-size convention: the partitioned set holds the 3·n² elements of
// A, B and C, at row granularity (one row of the three matrices = 3·n
// elements). The per-processor speed argument is its slice size 3·r_i·n;
// its useful work is 2·r_i·n² flops, i.e. 2n/3 flops per slice element —
// uniform across processors, so partitioning by MFlops speeds is exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/model.hpp"
#include "core/partition.hpp"
#include "core/policy.hpp"
#include "simcluster/cluster.hpp"
#include "util/matrix.hpp"

namespace fpm::apps {

/// Which performance model drives the distribution.
enum class ModelKind {
  Functional,    ///< the paper's model: speed as a function of size
  SingleNumber,  ///< constant speeds measured at one reference size
  Even,          ///< equal rows per processor
};

/// A planned striped distribution for one multiplication.
struct StripedMmPlan {
  std::vector<std::int64_t> rows;  ///< rows of A/B/C per processor, sums to n
  core::PartitionStats stats;      ///< partitioner diagnostics
};

/// Plans the distribution of an n x n multiplication over the given models
/// (x in elements). For ModelKind::SingleNumber the constant speeds are the
/// model values at the problem size of a reference_n x reference_n serial
/// multiplication (3·reference_n² elements) — exactly the paper's baseline.
/// `policy` selects the partitioner for ModelKind::Functional (default:
/// combined); the baselines ignore it.
StripedMmPlan plan_striped_mm(const core::SpeedList& models, std::int64_t n,
                              ModelKind kind, std::int64_t reference_n = 500,
                              const core::PartitionPolicy& policy = {});

/// Simulated wall-clock seconds of executing the plan on the cluster:
/// every machine multiplies its slice concurrently; the makespan is the
/// slowest machine. `sampled` draws speeds from the fluctuation bands,
/// otherwise band centres are used.
double simulate_striped_mm_seconds(sim::SimulatedCluster& cluster,
                                   const std::string& app,
                                   const StripedMmPlan& plan, std::int64_t n,
                                   bool sampled);

/// Like simulate_striped_mm_seconds but charging the ring communication of
/// the B slices under the given link model: the algorithm runs p ring
/// steps; in each, every machine forwards the B slice it holds to its ring
/// successor (its own slice size rotates around), then computes. Per-step
/// time is the slowest (send + compute); the machine-k slice has
/// rows[k]·n·8 bytes.
double simulate_striped_mm_with_comm_seconds(sim::SimulatedCluster& cluster,
                                             const std::string& app,
                                             const StripedMmPlan& plan,
                                             std::int64_t n,
                                             const comm::CommModel& net,
                                             bool sampled);

/// Numerical reference path: computes C = A·Bᵀ slice by slice following the
/// plan and reassembles the result — bit-for-bit the distributed
/// computation, used to verify that striping preserves the numerics.
util::MatrixD striped_mm_compute(const util::MatrixD& a,
                                 const util::MatrixD& b,
                                 const StripedMmPlan& plan);

}  // namespace fpm::apps
