#include "apps/stencil.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/policy.hpp"

namespace fpm::apps {

StencilPlan plan_stencil(const core::SpeedList& models, std::int64_t rows,
                         std::int64_t cols,
                         const core::PartitionPolicy& policy) {
  if (models.empty()) throw std::invalid_argument("plan_stencil: no models");
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("plan_stencil: grid must be >= 1x1");
  StencilPlan plan;
  plan.grid_rows = rows;
  plan.grid_cols = cols;

  std::vector<core::GranularSpeedView> row_speeds;
  row_speeds.reserve(models.size());
  for (const core::SpeedFunction* m : models)
    row_speeds.emplace_back(*m, static_cast<double>(cols));
  core::SpeedList list;
  for (const auto& rs : row_speeds) list.push_back(&rs);
  core::PartitionResult result = core::partition(list, rows, policy);
  plan.rows = std::move(result.distribution.counts);
  plan.stats = std::move(result.stats);
  return plan;
}

util::MatrixD jacobi_sweep(const util::MatrixD& grid) {
  util::MatrixD out = grid;  // boundaries keep their values
  if (grid.rows() < 3 || grid.cols() < 3) return out;
  for (std::size_t r = 1; r + 1 < grid.rows(); ++r)
    for (std::size_t c = 1; c + 1 < grid.cols(); ++c)
      out(r, c) = 0.25 * (grid(r - 1, c) + grid(r + 1, c) + grid(r, c - 1) +
                          grid(r, c + 1));
  return out;
}

util::MatrixD striped_jacobi_sweep(const util::MatrixD& grid,
                                   const StencilPlan& plan) {
  std::int64_t total = 0;
  for (const std::int64_t r : plan.rows) total += r;
  if (total != static_cast<std::int64_t>(grid.rows()) ||
      plan.grid_cols != static_cast<std::int64_t>(grid.cols()))
    throw std::invalid_argument("striped_jacobi_sweep: plan/grid mismatch");

  util::MatrixD out = grid;
  std::size_t first = 0;
  for (const std::int64_t band_rows : plan.rows) {
    if (band_rows == 0) continue;
    // The band owner assembles its rows plus up to two halo rows; here the
    // "message" is simply reading the neighbour rows of the shared grid —
    // numerically identical to what the distributed code computes.
    const std::size_t lo = first == 0 ? 1 : first;
    const std::size_t hi = std::min(first + static_cast<std::size_t>(band_rows),
                                    grid.rows() - 1);
    for (std::size_t r = lo; r < hi; ++r)
      for (std::size_t c = 1; c + 1 < grid.cols(); ++c)
        out(r, c) = 0.25 * (grid(r - 1, c) + grid(r + 1, c) + grid(r, c - 1) +
                            grid(r, c + 1));
    first += static_cast<std::size_t>(band_rows);
  }
  return out;
}

double simulate_stencil_seconds(sim::SimulatedCluster& cluster,
                                const std::string& app,
                                const StencilPlan& plan, int iterations,
                                const comm::CommModel& net, bool sampled) {
  if (plan.rows.size() != cluster.size())
    throw std::invalid_argument("simulate_stencil_seconds: size mismatch");
  if (iterations < 0)
    throw std::invalid_argument("simulate_stencil_seconds: iterations < 0");
  constexpr double kFlopsPerCell = 5.0;
  const double cols = static_cast<double>(plan.grid_cols);
  const double halo_bytes = cols * 8.0;

  // Identify the non-empty bands in stacking order for halo neighbours.
  std::vector<std::size_t> bands;
  for (std::size_t i = 0; i < plan.rows.size(); ++i)
    if (plan.rows[i] > 0) bands.push_back(i);

  double total = 0.0;
  for (int it = 0; it < iterations; ++it) {
    double slowest = 0.0;
    for (std::size_t k = 0; k < bands.size(); ++k) {
      const std::size_t i = bands[k];
      const double cells = static_cast<double>(plan.rows[i]) * cols;
      double t = sampled
                     ? cluster.sampled_seconds(i, app, cells, kFlopsPerCell)
                     : cluster.expected_seconds(i, app, cells, kFlopsPerCell);
      // Halo exchange with each adjacent band: one row each way.
      if (k > 0)
        t += net.send_seconds(bands[k - 1], i, halo_bytes) +
             net.send_seconds(i, bands[k - 1], halo_bytes);
      if (k + 1 < bands.size())
        t += net.send_seconds(bands[k + 1], i, halo_bytes) +
             net.send_seconds(i, bands[k + 1], halo_bytes);
      slowest = std::max(slowest, t);
    }
    total += slowest;
  }
  return total;
}

}  // namespace fpm::apps
