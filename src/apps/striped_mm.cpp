#include "apps/striped_mm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/policy.hpp"
#include "linalg/kernels.hpp"
#include "simcluster/presets.hpp"

namespace fpm::apps {

StripedMmPlan plan_striped_mm(const core::SpeedList& models, std::int64_t n,
                              ModelKind kind, std::int64_t reference_n,
                              const core::PartitionPolicy& policy) {
  if (models.empty())
    throw std::invalid_argument("plan_striped_mm: no models");
  if (n <= 0) throw std::invalid_argument("plan_striped_mm: n must be >= 1");
  const double elements_per_row = 3.0 * static_cast<double>(n);

  StripedMmPlan plan;
  switch (kind) {
    case ModelKind::Functional: {
      // Partition the n rows with row-granular views of the speed curves.
      std::vector<core::GranularSpeedView> row_speeds;
      row_speeds.reserve(models.size());
      for (const core::SpeedFunction* m : models)
        row_speeds.emplace_back(*m, elements_per_row);
      core::SpeedList list;
      list.reserve(models.size());
      for (const auto& rs : row_speeds) list.push_back(&rs);
      core::PartitionResult result = core::partition(list, n, policy);
      plan.rows = std::move(result.distribution.counts);
      plan.stats = std::move(result.stats);
      break;
    }
    case ModelKind::SingleNumber: {
      // The paper's baseline: one speed per processor, measured by a serial
      // square multiplication at the reference size.
      const double ref_elements = sim::mm_problem_size(reference_n);
      std::vector<double> constants(models.size());
      for (std::size_t i = 0; i < models.size(); ++i)
        constants[i] = models[i]->speed(ref_elements);
      core::Distribution d = core::partition_single_number(n, constants);
      plan.rows = std::move(d.counts);
      plan.stats.algorithm = core::kAlgorithmSingleNumber;
      break;
    }
    case ModelKind::Even: {
      core::Distribution d = core::partition_even(n, models.size());
      plan.rows = std::move(d.counts);
      plan.stats.algorithm = core::kAlgorithmEven;
      break;
    }
  }
  return plan;
}

double simulate_striped_mm_seconds(sim::SimulatedCluster& cluster,
                                   const std::string& app,
                                   const StripedMmPlan& plan, std::int64_t n,
                                   bool sampled) {
  if (plan.rows.size() != cluster.size())
    throw std::invalid_argument("simulate_striped_mm_seconds: size mismatch");
  const double nd = static_cast<double>(n);
  // Each slice element carries 2n/3 useful flops (2·r·n² flops over 3·r·n
  // slice elements).
  const double flops_per_element = 2.0 * nd / 3.0;
  double makespan = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const double x = 3.0 * static_cast<double>(plan.rows[i]) * nd;
    const double t =
        sampled ? cluster.sampled_seconds(i, app, x, flops_per_element)
                : cluster.expected_seconds(i, app, x, flops_per_element);
    makespan = std::max(makespan, t);
  }
  return makespan;
}

double simulate_striped_mm_with_comm_seconds(sim::SimulatedCluster& cluster,
                                             const std::string& app,
                                             const StripedMmPlan& plan,
                                             std::int64_t n,
                                             const comm::CommModel& net,
                                             bool sampled) {
  const std::size_t p = cluster.size();
  if (plan.rows.size() != p || net.processors() != p)
    throw std::invalid_argument(
        "simulate_striped_mm_with_comm_seconds: size mismatch");
  const double nd = static_cast<double>(n);
  double total = 0.0;
  // Ring step s: machine i holds the B slice that started at (i+s) mod p,
  // computes against it, then forwards it to (i+1) mod p. Compute is
  // charged per step in proportion to the held slice's share of n; the
  // speed argument stays the machine's full resident set (its slices are
  // resident throughout).
  for (std::size_t s = 0; s < p; ++s) {
    double step = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      if (plan.rows[i] == 0) continue;
      const std::size_t held = (i + s) % p;
      const double x_resident = 3.0 * static_cast<double>(plan.rows[i]) * nd;
      // Work this step: rows_i x n x (rows of the held slice) x 2 flops,
      // expressed as flops-per-resident-element for the simulator.
      const double flops =
          2.0 * static_cast<double>(plan.rows[i]) * nd *
          static_cast<double>(plan.rows[held]);
      const double fpe = flops / x_resident;
      double t = sampled ? cluster.sampled_seconds(i, app, x_resident, fpe)
                         : cluster.expected_seconds(i, app, x_resident, fpe);
      // Forward the held slice along the ring.
      const double bytes = static_cast<double>(plan.rows[held]) * nd * 8.0;
      t += net.send_seconds(i, (i + 1) % p, bytes);
      step = std::max(step, t);
    }
    total += step;
  }
  return total;
}

util::MatrixD striped_mm_compute(const util::MatrixD& a,
                                 const util::MatrixD& b,
                                 const StripedMmPlan& plan) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("striped_mm_compute: shape mismatch");
  std::int64_t total = 0;
  for (const std::int64_t r : plan.rows) total += r;
  if (total != static_cast<std::int64_t>(a.rows()))
    throw std::invalid_argument("striped_mm_compute: plan does not cover A");

  util::MatrixD c(a.rows(), b.rows());
  std::size_t first = 0;
  for (const std::int64_t rows : plan.rows) {
    if (rows == 0) continue;
    // The owner of this slice multiplies its A rows against all of B
    // (received slice by slice in the real algorithm; numerically it is one
    // A_slice·Bᵀ product).
    const util::MatrixD a_slice =
        a.slice_rows(first, static_cast<std::size_t>(rows));
    const util::MatrixD c_slice = linalg::matmul_abt_naive(a_slice, b);
    c.paste_rows(first, c_slice);
    first += static_cast<std::size_t>(rows);
  }
  return c;
}

}  // namespace fpm::apps
