#include "apps/textsearch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/bounded.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace fpm::apps {

std::size_t Corpus::total_bytes() const {
  std::size_t total = 0;
  for (const std::string& d : documents) total += d.size();
  return total;
}

Corpus make_corpus(std::size_t documents, std::size_t mean_bytes,
                   std::string_view pattern, std::uint64_t seed) {
  if (documents == 0 || mean_bytes < pattern.size() + 8)
    throw std::invalid_argument("make_corpus: degenerate parameters");
  util::Rng rng(seed);
  Corpus corpus;
  corpus.documents.reserve(documents);
  static constexpr char kAlphabet[] = "abcdefghij klmnopqrstuvwxyz .\n";
  for (std::size_t d = 0; d < documents; ++d) {
    // Heavy-tailed lengths: most documents small, a few ~20x the mean.
    const double u = rng.uniform();
    const double factor = 0.2 + 2.0 * u * u * u * u * 10.0;
    const auto len = static_cast<std::size_t>(
        std::max<double>(static_cast<double>(pattern.size()) + 8.0,
                         static_cast<double>(mean_bytes) * factor));
    std::string text;
    text.reserve(len);
    while (text.size() < len) {
      // Embed the pattern at deterministic pseudo-random spots.
      if (!pattern.empty() && rng.uniform() < 0.01 &&
          text.size() + pattern.size() <= len)
        text.append(pattern);
      else
        text.push_back(
            kAlphabet[rng.uniform_int(0, sizeof(kAlphabet) - 2)]);
    }
    corpus.documents.push_back(std::move(text));
  }
  return corpus;
}

std::size_t count_occurrences(std::string_view text,
                              std::string_view pattern) {
  if (pattern.empty() || text.size() < pattern.size()) return 0;
  std::size_t count = 0;
  for (std::size_t pos = text.find(pattern, 0); pos != std::string_view::npos;
       pos = text.find(pattern, pos + 1))
    ++count;
  return count;
}

SearchPlan plan_search(const core::SpeedList& models, const Corpus& corpus,
                       const SearchPlanOptions& opts) {
  if (models.empty()) throw std::invalid_argument("plan_search: no models");
  if (corpus.documents.empty())
    throw std::invalid_argument("plan_search: empty corpus");
  std::vector<double> weights;
  weights.reserve(corpus.documents.size());
  for (const std::string& d : corpus.documents)
    weights.push_back(static_cast<double>(std::max<std::size_t>(d.size(), 1)));

  SearchPlan plan;
  if (opts.partition_by_bytes) {
    // Partition the total byte count with the policy-selected algorithm,
    // then pack whole documents contiguously: each processor takes
    // documents until the next one would overshoot its byte target (always
    // at least one while elements remain, so every document is assigned).
    double total = 0.0;
    for (const double w : weights) total += w;
    core::PartitionResult r = core::partition(
        models, static_cast<std::int64_t>(std::llround(total)), opts.policy);
    plan.stats = std::move(r.stats);
    plan.boundaries.assign(models.size() + 1, 0);
    std::size_t next = 0;
    double packed = 0.0;
    double target_prefix = 0.0;
    for (std::size_t i = 0; i < models.size(); ++i) {
      target_prefix += static_cast<double>(r.distribution.counts[i]);
      // A document goes to processor i while its midpoint falls before the
      // cumulative byte target — monotone boundaries, every document
      // assigned exactly once.
      while (next < weights.size() &&
             packed + 0.5 * weights[next] <= target_prefix) {
        packed += weights[next];
        ++next;
      }
      plan.boundaries[i + 1] = next;
    }
    plan.boundaries.back() = corpus.documents.size();
  } else {
    plan.boundaries = core::partition_weighted_contiguous(models, weights);
    plan.stats.algorithm = core::kAlgorithmWeightedContiguous;
  }
  plan.bytes.assign(models.size(), 0.0);
  for (std::size_t i = 0; i < models.size(); ++i)
    for (std::size_t j = plan.boundaries[i]; j < plan.boundaries[i + 1]; ++j)
      plan.bytes[i] += weights[j];
  return plan;
}

std::size_t run_search(const Corpus& corpus, const SearchPlan& plan,
                       std::string_view pattern) {
  if (plan.boundaries.empty() || plan.boundaries.back() != corpus.documents.size())
    throw std::invalid_argument("run_search: plan does not cover the corpus");
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < plan.boundaries.size(); ++i)
    for (std::size_t j = plan.boundaries[i]; j < plan.boundaries[i + 1]; ++j)
      total += count_occurrences(corpus.documents[j], pattern);
  return total;
}

double simulate_search_seconds(sim::SimulatedCluster& cluster,
                               const std::string& app, const SearchPlan& plan,
                               bool sampled) {
  if (plan.bytes.size() != cluster.size())
    throw std::invalid_argument("simulate_search_seconds: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (plan.bytes[i] <= 0.0) continue;
    const double t = sampled
                         ? cluster.sampled_seconds(i, app, plan.bytes[i], 1.0)
                         : cluster.expected_seconds(i, app, plan.bytes[i], 1.0);
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace fpm::apps
