// Parallel LU factorization driven by a Variable Group Block distribution
// (paper §3.1, Figure 17): at step k the owner of column block k factors the
// panel, then every processor updates the trailing column blocks it owns.
// The simulated makespan evaluates the speed of each processor *at the
// problem size it processes at that step* — the heart of the functional
// model's advantage, since the shrinking trailing matrix crosses paging
// thresholds as the factorization progresses.
//
// Algorithm selection: the LU pipeline takes no partitioning decisions of
// its own — the distribution is fixed by the VgbDistribution it is handed,
// so the partitioner policy enters through VgbOptions::policy when the
// distribution is built (see apps/vgb.hpp and core/policy.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "apps/vgb.hpp"
#include "comm/model.hpp"
#include "simcluster/cluster.hpp"

namespace fpm::apps {

/// Step-by-step simulated execution of the factorization on the cluster.
/// For step k (0-based) with panel rows m_k = n - k·b:
///   * the panel owner factors the m_k x b panel (getf2 flops);
///   * processor i updates its owned trailing blocks: with c_i trailing
///     columns the update is 2·(m_k - b)·b·c_i flops at problem size
///     (m_k - b)·c_i elements (its share of the trailing matrix);
///   * the step time is the panel time plus the slowest update.
/// Returns the sum over all steps, in seconds. `sampled` draws speeds from
/// the fluctuation bands; otherwise band centres are used.
double simulate_lu_seconds(sim::SimulatedCluster& cluster,
                           const std::string& app,
                           const VgbDistribution& dist, bool sampled);

/// Like simulate_lu_seconds but charging the panel broadcast of each step
/// under the given link model: after factorizing the m_k x b panel its
/// owner broadcasts the packed factors (m_k·b·8 bytes) to every other
/// machine before the trailing update starts.
double simulate_lu_with_comm_seconds(sim::SimulatedCluster& cluster,
                                     const std::string& app,
                                     const VgbDistribution& dist,
                                     const comm::CommModel& net,
                                     bool sampled);

/// Total useful flops of the factorization (~(2/3)·n³), for reporting.
double lu_total_flops(std::int64_t n);

}  // namespace fpm::apps
