// The Variable Group Block (VGB) distribution (paper §3.1, Figure 17): a
// static column-block distribution for LU factorization on heterogeneous
// processors. The matrix is vertically partitioned into groups of column
// blocks; the size of each group and the per-processor share inside it are
// derived from the *functional* speeds at the problem size remaining when
// the factorization reaches that group — so the distribution keeps balancing
// the trailing updates as the matrix shrinks, including across paging
// thresholds.
//
// Group construction (paper's steps, with our reading of the g₁ formula):
//   1. Partition the remaining m² elements optimally; obtain (x_i).
//   2. g = round(sum(x_i) / min(x_i)) blocks, so the slowest processor gets
//      about one block; if g/p < 2 the group is doubled to guarantee enough
//      blocks per group.
//   3. Distribute the g blocks in proportion to the x_i; inside a group the
//      fastest processors come first.
//   4. The last group is reordered to start with the *slowest* processors,
//      keeping the fastest processor last for load balance.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "core/policy.hpp"

namespace fpm::apps {

/// Which model drives the group computation.
enum class VgbModel {
  Functional,    ///< speeds re-evaluated at each group's remaining size
  SingleNumber,  ///< constant speeds at a reference size (Group Block)
};

struct VgbOptions {
  std::int64_t block = 32;  ///< column block size b
  VgbModel model = VgbModel::Functional;
  /// Reference matrix size for VgbModel::SingleNumber: constant speeds are
  /// the model values at reference_n² elements.
  std::int64_t reference_n = 2000;
  /// Partitioner for the per-group optimal-share solve under
  /// VgbModel::Functional (default: combined); SingleNumber ignores it.
  core::PartitionPolicy policy{};
};

/// The computed distribution: which processor owns every column block.
struct VgbDistribution {
  std::int64_t n = 0;      ///< matrix size
  std::int64_t block = 0;  ///< block size b
  std::vector<std::int64_t> group_sizes;  ///< blocks per group, sums to the total
  std::vector<int> block_owner;           ///< owner of block j, one per block

  std::int64_t total_blocks() const noexcept {
    return static_cast<std::int64_t>(block_owner.size());
  }
  /// Number of column blocks with index >= first_block owned by `proc`.
  std::int64_t owned_blocks_from(int proc, std::int64_t first_block) const;
};

/// Computes the Variable Group Block distribution of an n x n matrix over
/// the given models (speed argument in elements). Requires n >= 1 and
/// 1 <= block.
VgbDistribution variable_group_block(const core::SpeedList& models,
                                     std::int64_t n, const VgbOptions& opts);

}  // namespace fpm::apps
