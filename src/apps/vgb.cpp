#include "apps/vgb.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/policy.hpp"

namespace fpm::apps {

std::int64_t VgbDistribution::owned_blocks_from(int proc,
                                                std::int64_t first_block) const {
  std::int64_t count = 0;
  for (std::size_t j = static_cast<std::size_t>(std::max<std::int64_t>(
           first_block, 0));
       j < block_owner.size(); ++j)
    if (block_owner[j] == proc) ++count;
  return count;
}

VgbDistribution variable_group_block(const core::SpeedList& models,
                                     std::int64_t n, const VgbOptions& opts) {
  if (models.empty())
    throw std::invalid_argument("variable_group_block: no models");
  if (n < 1 || opts.block < 1)
    throw std::invalid_argument("variable_group_block: need n >= 1, b >= 1");
  const std::size_t p = models.size();
  const std::int64_t b = opts.block;

  VgbDistribution dist;
  dist.n = n;
  dist.block = b;

  std::int64_t remaining_cols = n;
  while (remaining_cols > 0) {
    const std::int64_t blocks_remaining = (remaining_cols + b - 1) / b;
    const double m = static_cast<double>(remaining_cols);
    const std::int64_t elements = static_cast<std::int64_t>(m * m);

    // Step 1: optimal shares (x_i) for the remaining sub-matrix.
    std::vector<double> shares(p);
    if (opts.model == VgbModel::Functional) {
      core::PartitionResult r = core::partition(models, elements, opts.policy);
      for (std::size_t i = 0; i < p; ++i)
        shares[i] = static_cast<double>(r.distribution.counts[i]);
    } else {
      const double ref = static_cast<double>(opts.reference_n) *
                         static_cast<double>(opts.reference_n);
      double total = 0.0;
      for (std::size_t i = 0; i < p; ++i) total += models[i]->speed(ref);
      for (std::size_t i = 0; i < p; ++i)
        shares[i] =
            static_cast<double>(elements) * models[i]->speed(ref) / total;
    }

    // Step 2: group size — the slowest contributing processor gets about
    // one block; double if that leaves fewer than two blocks per processor.
    double sum_shares = 0.0;
    double min_share = std::numeric_limits<double>::infinity();
    for (const double x : shares) {
      sum_shares += x;
      if (x >= 1.0) min_share = std::min(min_share, x);
    }
    if (!std::isfinite(min_share)) min_share = std::max(sum_shares, 1.0);
    std::int64_t g =
        std::max<std::int64_t>(1, std::llround(sum_shares / min_share));
    if (g < 2 * static_cast<std::int64_t>(p)) g *= 2;
    g = std::min(g, blocks_remaining);

    // Step 3: distribute the g blocks in proportion to the shares. A share
    // of zero (a processor too slow to earn a single element) is clamped to
    // a sliver so the proportional rounding simply awards it no blocks.
    std::vector<double> weights(shares);
    for (double& w : weights) w = std::max(w, 1e-6);
    core::Distribution blocks_of = core::partition_single_number(g, weights);

    // Emit the group, fastest processors first. The final group instead
    // starts with the slowest processors, keeping the fastest last.
    const bool is_last = g == blocks_remaining;
    std::vector<std::size_t> order(p);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t c) {
                       return shares[a] > shares[c];
                     });
    if (is_last) std::reverse(order.begin(), order.end());
    for (const std::size_t i : order)
      for (std::int64_t k = 0; k < blocks_of.counts[i]; ++k)
        dist.block_owner.push_back(static_cast<int>(i));

    dist.group_sizes.push_back(g);
    remaining_cols -= std::min(remaining_cols, g * b);
  }
  assert(dist.total_blocks() == (n + b - 1) / b);
  return dist;
}

}  // namespace fpm::apps
