// Pattern search over a large text corpus — the first workload the paper's
// introduction motivates ("search for patterns in text, audio, graphical
// files ... processing of very large linear data files").
//
// The corpus is a sequence of documents of unequal length. Processors
// receive *contiguous* runs of documents (cheap to ship and to describe),
// so the distribution problem is the weighted contiguous partitioning of
// the general formulation: document weight = its byte length, processor
// speed = a functional model in bytes/second vs assigned bytes (a machine
// whose slice outgrows its page cache drops to disk speed).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/policy.hpp"
#include "simcluster/cluster.hpp"

namespace fpm::apps {

/// A synthetic corpus: documents with deterministic pseudo-text content.
struct Corpus {
  std::vector<std::string> documents;

  std::size_t total_bytes() const;
};

/// Generates `documents` documents whose lengths follow a heavy-tailed
/// deterministic distribution (a few big files dominate, as in real
/// corpora) and whose text embeds the pattern at known positions.
Corpus make_corpus(std::size_t documents, std::size_t mean_bytes,
                   std::string_view pattern, std::uint64_t seed);

/// Counts (possibly overlapping) occurrences of `pattern` in `text` —
/// the real search kernel.
std::size_t count_occurrences(std::string_view text, std::string_view pattern);

/// A contiguous assignment of documents: processor i searches documents
/// [boundaries[i], boundaries[i+1]).
struct SearchPlan {
  std::vector<std::size_t> boundaries;  ///< size p+1, 0 .. documents
  std::vector<double> bytes;            ///< bytes assigned per processor
  core::PartitionStats stats;           ///< partitioner diagnostics
};

struct SearchPlanOptions {
  /// false (default): weighted contiguous partitioning over document-size
  /// weights — exact for unequal documents, ignores `policy`'s algorithm.
  /// true: partition the corpus's total *bytes* with the policy-selected
  /// family algorithm, then pack whole documents contiguously up to each
  /// processor's byte target — approximate at document granularity but
  /// exercises the same engine as every other layer.
  bool partition_by_bytes = false;
  /// Partitioner for the by-bytes mode (default: combined).
  core::PartitionPolicy policy{};
};

/// Plans the distribution: weights are document byte sizes, speed argument
/// is assigned bytes. Models must use bytes as the problem-size unit.
SearchPlan plan_search(const core::SpeedList& models, const Corpus& corpus,
                       const SearchPlanOptions& opts = {});

/// Runs the search: every processor's range is scanned (serially here) and
/// the per-range counts are summed. The distributed result must equal the
/// serial scan of the whole corpus — verified in tests.
std::size_t run_search(const Corpus& corpus, const SearchPlan& plan,
                       std::string_view pattern);

/// Simulated wall time of the parallel search on the cluster: processor i
/// scans bytes[i] at its modelled speed (MFlops stand in for MB/s up to
/// the app's flops_per_element scale; we use 1 flop per byte).
double simulate_search_seconds(sim::SimulatedCluster& cluster,
                               const std::string& app, const SearchPlan& plan,
                               bool sampled);

}  // namespace fpm::apps
