#include "apps/lu_app.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "linalg/kernels.hpp"

namespace fpm::apps {

namespace {

/// Shared implementation: `net` == nullptr skips communication costs.
double simulate_lu_impl(sim::SimulatedCluster& cluster, const std::string& app,
                        const VgbDistribution& dist,
                        const comm::CommModel* net, bool sampled) {
  const std::int64_t n = dist.n;
  const std::int64_t b = dist.block;
  const std::int64_t nb = dist.total_blocks();
  if (nb == 0) return 0.0;
  for (const int owner : dist.block_owner)
    if (owner < 0 || static_cast<std::size_t>(owner) >= cluster.size())
      throw std::invalid_argument("simulate_lu_seconds: owner out of range");

  // Trailing-block counts per processor, maintained incrementally: counts
  // of blocks with index > k as k advances.
  std::vector<std::int64_t> trailing(cluster.size(), 0);
  for (const int owner : dist.block_owner) ++trailing[owner];

  const auto seconds = [&](std::size_t machine, double x, double flops) {
    if (x <= 0.0 || flops <= 0.0) return 0.0;
    // sampled_seconds/expected_seconds take flops-per-element; pass the
    // ratio so the total is exactly `flops`.
    const double fpe = flops / x;
    return sampled ? cluster.sampled_seconds(machine, app, x, fpe)
                   : cluster.expected_seconds(machine, app, x, fpe);
  };

  double total = 0.0;
  for (std::int64_t k = 0; k < nb; ++k) {
    const auto owner = static_cast<std::size_t>(dist.block_owner[k]);
    --trailing[owner];  // block k leaves the trailing set

    const std::int64_t col0 = k * b;
    const std::int64_t kb = std::min(b, n - col0);  // this panel's width
    const std::int64_t m_rows = n - col0;           // panel height

    // Panel factorization by the owner.
    const double panel_flops =
        linalg::lu_flops(m_rows, kb);
    const double panel_elems = static_cast<double>(m_rows * kb);
    total += seconds(owner, panel_elems, panel_flops);
    if (net != nullptr)
      total += net->broadcast_seconds(owner, panel_elems * 8.0);

    // Trailing update: every processor updates its own column blocks.
    const std::int64_t rows_u = m_rows - kb;
    if (rows_u <= 0) continue;
    double slowest = 0.0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (trailing[i] == 0) continue;
      // Trailing columns owned by i (the final block may be partial).
      std::int64_t cols = trailing[i] * b;
      if (dist.block_owner.back() == static_cast<int>(i)) {
        const std::int64_t last_cols = n - (nb - 1) * b;
        cols -= b - last_cols;
      }
      const double update_flops = 2.0 * static_cast<double>(rows_u) *
                                  static_cast<double>(kb) *
                                  static_cast<double>(cols);
      const double x = static_cast<double>(rows_u) * static_cast<double>(cols);
      slowest = std::max(slowest, seconds(i, x, update_flops));
    }
    total += slowest;
  }
  return total;
}

}  // namespace

double simulate_lu_seconds(sim::SimulatedCluster& cluster,
                           const std::string& app,
                           const VgbDistribution& dist, bool sampled) {
  return simulate_lu_impl(cluster, app, dist, nullptr, sampled);
}

double simulate_lu_with_comm_seconds(sim::SimulatedCluster& cluster,
                                     const std::string& app,
                                     const VgbDistribution& dist,
                                     const comm::CommModel& net,
                                     bool sampled) {
  if (net.processors() != cluster.size())
    throw std::invalid_argument("simulate_lu_with_comm_seconds: net size");
  return simulate_lu_impl(cluster, app, dist, &net, sampled);
}

double lu_total_flops(std::int64_t n) { return linalg::lu_flops(n, n); }

}  // namespace fpm::apps
