// Iterative 5-point Jacobi stencil over a 2-D grid with 1-D (row-striped)
// decomposition — the "simulation / processing of very large linear data
// files" workload class from the paper's introduction. Each processor owns
// a horizontal band of the grid; one iteration updates every interior cell
// from its four neighbours and exchanges one halo row with each adjacent
// band.
//
// Problem-size convention: x = owned cells (rows x grid width). One
// iteration performs 5 flops per owned cell (4 adds + 1 multiply).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/model.hpp"
#include "core/partition.hpp"
#include "core/policy.hpp"
#include "simcluster/cluster.hpp"
#include "util/matrix.hpp"

namespace fpm::apps {

/// A striped stencil decomposition: band i owns `rows[i]` consecutive grid
/// rows; bands are stacked in index order.
struct StencilPlan {
  std::int64_t grid_rows = 0;
  std::int64_t grid_cols = 0;
  std::vector<std::int64_t> rows;
  core::PartitionStats stats;
};

/// Plans the decomposition of a rows x cols grid over the models (speed
/// argument in cells). Bands are partitioned at row granularity with the
/// algorithm the policy selects (default: combined).
StencilPlan plan_stencil(const core::SpeedList& models, std::int64_t rows,
                         std::int64_t cols,
                         const core::PartitionPolicy& policy = {});

/// One serial Jacobi sweep over the whole grid: returns the updated grid
/// (fixed boundary values). The reference for numeric verification.
util::MatrixD jacobi_sweep(const util::MatrixD& grid);

/// The distributed computation path: each band sweeps its own rows using
/// halo rows from its neighbours, and the results are reassembled. Must be
/// bit-identical to jacobi_sweep (Jacobi reads only old values).
util::MatrixD striped_jacobi_sweep(const util::MatrixD& grid,
                                   const StencilPlan& plan);

/// Simulated wall time of `iterations` sweeps on the cluster: per-iteration
/// compute time from the speed model at the band size, plus two halo-row
/// exchanges per interior band boundary under the link model.
double simulate_stencil_seconds(sim::SimulatedCluster& cluster,
                                const std::string& app,
                                const StencilPlan& plan, int iterations,
                                const comm::CommModel& net, bool sampled);

}  // namespace fpm::apps
