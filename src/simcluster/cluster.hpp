// A simulated network of heterogeneous computers: the measurement and
// execution substrate standing in for the paper's real testbeds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/speed_function.hpp"
#include "simcluster/faults.hpp"
#include "simcluster/machine.hpp"
#include "simcluster/workload.hpp"
#include "util/rng.hpp"

namespace fpm::sim {

/// One machine of the simulated network: its spec, its fluctuation band,
/// one ground-truth speed function per registered application, and the
/// application profiles the curves were synthesized from (kept so cluster
/// definitions can be saved and reloaded — see spec_io).
struct SimulatedMachine {
  MachineSpec spec;
  FluctuationProfile fluctuation;
  std::map<std::string, std::shared_ptr<const MachineSpeed>> apps;
  std::map<std::string, AppProfile> profiles;

  /// Registers an application: synthesizes the ground-truth curve and
  /// remembers the profile. `paging_onset_elements` pins the onset.
  void register_app(const AppProfile& profile,
                    std::optional<double> paging_onset_elements = std::nullopt);
};

/// The simulated network. All observation noise is drawn from per-machine
/// child streams of the constructor seed, so experiments are reproducible
/// and machines are statistically independent.
class SimulatedCluster {
 public:
  SimulatedCluster(std::vector<SimulatedMachine> machines,
                   std::uint64_t seed);

  std::size_t size() const noexcept { return machines_.size(); }
  const SimulatedMachine& machine(std::size_t i) const;

  /// Ground-truth curve of machine i for the named application; throws if
  /// the application was not registered for that machine.
  const MachineSpeed& ground_truth(std::size_t i,
                                   const std::string& app) const;

  /// Non-owning ground-truth list across all machines, ready for the
  /// partitioning algorithms (an omniscient-model baseline).
  core::SpeedList ground_truth_list(const std::string& app) const;

  /// One noisy speed observation (a benchmark run) of machine i at size x.
  double measure(std::size_t i, const std::string& app, double x);

  /// Changes machine i's persistent external load mid-experiment (the
  /// paper's observation: heavy load shifts the whole band down, width
  /// unchanged). Used to study dynamic model maintenance.
  void set_load_shift(std::size_t i, double shift);

  /// Wall-clock seconds machine i needs for x elements at
  /// `flops_per_element` useful flops each, with speeds in MFlops. Draws
  /// the speed from the fluctuation band (`sampled`) or uses the curve
  /// centre (`expected`).
  double sampled_seconds(std::size_t i, const std::string& app, double x,
                         double flops_per_element);
  double expected_seconds(std::size_t i, const std::string& app, double x,
                          double flops_per_element) const;

  // --- Faults (see simcluster/faults.hpp). ---

  /// Installs a fault schedule (replacing any previous one) and resets the
  /// fault clock to tick 0. Crashed machines throw MachineFailedError from
  /// measure()/sampled_seconds(); stalled and glitching machines return
  /// NaN (the benchmark run never finished).
  void set_fault_script(FaultScript script);
  const FaultScript& fault_script() const noexcept { return faults_; }

  /// Advances the fault clock — by convention one tick per application
  /// iteration of the experiment being simulated.
  void advance_time(int ticks = 1);
  int tick() const noexcept { return tick_; }

  /// True while machine i has not crashed (as of the current tick).
  bool machine_alive(std::size_t i) const;
  /// True while machine i is inside a scripted stall window.
  bool machine_stalled(std::size_t i) const;

  /// Seeded per-message Bernoulli draw from machine i's child stream:
  /// true when the current message involving machine i is lost. Only
  /// consumes randomness when a drop probability is scripted.
  bool message_dropped(std::size_t i);
  /// Multiplier (>= 1) on the transfer time of messages involving i.
  double message_delay_factor(std::size_t i) const;

 private:
  std::vector<SimulatedMachine> machines_;
  std::vector<util::Rng> streams_;
  FaultScript faults_;
  int tick_ = 0;
};

/// Adapter exposing one (machine, application) pair as a
/// core::MeasurementSource for the model builder.
class MachineMeasurement final : public core::MeasurementSource {
 public:
  MachineMeasurement(SimulatedCluster& cluster, std::size_t machine,
                     std::string app);
  double measure(double size) override;

 private:
  SimulatedCluster& cluster_;
  std::size_t machine_;
  std::string app_;
};

/// Builds a functional model (band centre curve) for every machine of the
/// cluster with the §3.1 trisection procedure. `a_fraction`/`b_fraction`
/// place the interval ends relative to each machine's cache capacity and
/// modelled range. Returns one curve per machine plus the probe counts.
struct ClusterModels {
  std::vector<core::PiecewiseLinearSpeed> curves;
  std::vector<int> probes;

  /// Non-owning view for the partitioners.
  core::SpeedList list() const;
};
/// Defaults: epsilon is set a little above the large-size fluctuation floor
/// (the paper ties the acceptable deviation to "the inherent deviation of
/// the performance of computers typically observed in the network");
/// samples_per_point averages fluctuation noise down to that level; the
/// probe budget keeps the experimental cost to a few dozen runs.
ClusterModels build_cluster_models(SimulatedCluster& cluster,
                                   const std::string& app,
                                   double epsilon = 0.08,
                                   int samples_per_point = 5,
                                   int max_probes = 96);

}  // namespace fpm::sim
