// Scripted machine faults for the simulated cluster: crash a machine at a
// given tick, stall it for a window of ticks, make its benchmark runs
// glitch (return NaN), or degrade its messaging (drop / delay). Scripts
// are immutable schedules; all randomness (random scripts, message-drop
// draws) comes from util::Rng child streams, so every faulty experiment
// replays exactly from its seed.
//
// Semantics at the cluster (see SimulatedCluster):
//  * crashed machine      -> measure()/sampled_seconds() throw
//                            MachineFailedError from the crash tick on;
//  * stalled machine      -> measure()/sampled_seconds() return NaN for
//                            the window (the benchmark never finishes);
//  * glitching machine    -> measure() returns NaN with the configured
//                            probability (a failed benchmark run);
//  * message drop / delay -> queried per message by the communication
//                            simulations via message_dropped() and
//                            message_delay_factor().
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>

namespace fpm::util {
class Rng;
}  // namespace fpm::util

namespace fpm::sim {

/// Thrown when a crashed machine is asked to run anything.
class MachineFailedError : public std::runtime_error {
 public:
  MachineFailedError(std::size_t machine, int tick)
      : std::runtime_error("simcluster: machine " + std::to_string(machine) +
                           " crashed at tick " + std::to_string(tick)),
        machine_(machine),
        tick_(tick) {}
  std::size_t machine() const noexcept { return machine_; }
  int tick() const noexcept { return tick_; }

 private:
  std::size_t machine_;
  int tick_;
};

/// An immutable per-machine fault schedule over discrete ticks (a tick is
/// whatever unit the experiment advances the cluster by — typically one
/// application iteration).
class FaultScript {
 public:
  FaultScript() = default;

  /// Machine is dead from `tick` on (crashes are permanent).
  FaultScript& crash(std::size_t machine, int tick);

  /// Machine produces no measurements during [from_tick, until_tick).
  FaultScript& stall(std::size_t machine, int from_tick, int until_tick);

  /// Each of the machine's benchmark runs fails (NaN) with `probability`.
  FaultScript& glitch(std::size_t machine, double probability);

  /// Each message to/from the machine is dropped with `probability`.
  FaultScript& drop_messages(std::size_t machine, double probability);

  /// Messages to/from the machine take `factor` (>= 1) times longer.
  FaultScript& delay_messages(std::size_t machine, double factor);

  /// Reproducible random script: each of `machines` machines (except
  /// machine 0, so something always survives) crashes with probability
  /// `crash_probability` at a uniform tick in [0, ticks), and stalls with
  /// `stall_probability` for a window of up to ticks/4 starting at a
  /// uniform tick. Identical rng state yields an identical script.
  static FaultScript random(util::Rng& rng, std::size_t machines, int ticks,
                            double crash_probability,
                            double stall_probability);

  // --- Queries (const, thread-safe once built). ---
  bool crashed(std::size_t machine, int tick) const;
  int crash_tick(std::size_t machine) const;  ///< -1 when never crashed
  bool stalled(std::size_t machine, int tick) const;
  double glitch_probability(std::size_t machine) const;
  double drop_probability(std::size_t machine) const;
  double delay_factor(std::size_t machine) const;  ///< 1.0 when undelayed
  bool empty() const noexcept;

 private:
  struct MachineFaults {
    int crash_tick = -1;
    int stall_from = 0;
    int stall_until = 0;  ///< empty window when until <= from
    double glitch_probability = 0.0;
    double drop_probability = 0.0;
    double delay_factor = 1.0;
  };
  const MachineFaults* find(std::size_t machine) const;
  std::map<std::size_t, MachineFaults> faults_;
};

}  // namespace fpm::sim
