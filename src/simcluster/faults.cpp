#include "simcluster/faults.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace fpm::sim {

FaultScript& FaultScript::crash(std::size_t machine, int tick) {
  if (tick < 0) throw std::invalid_argument("FaultScript::crash: tick < 0");
  faults_[machine].crash_tick = tick;
  return *this;
}

FaultScript& FaultScript::stall(std::size_t machine, int from_tick,
                                int until_tick) {
  if (from_tick < 0 || until_tick < from_tick)
    throw std::invalid_argument("FaultScript::stall: bad window");
  faults_[machine].stall_from = from_tick;
  faults_[machine].stall_until = until_tick;
  return *this;
}

FaultScript& FaultScript::glitch(std::size_t machine, double probability) {
  if (!(probability >= 0.0) || !(probability <= 1.0))
    throw std::invalid_argument("FaultScript::glitch: probability");
  faults_[machine].glitch_probability = probability;
  return *this;
}

FaultScript& FaultScript::drop_messages(std::size_t machine,
                                        double probability) {
  if (!(probability >= 0.0) || !(probability <= 1.0))
    throw std::invalid_argument("FaultScript::drop_messages: probability");
  faults_[machine].drop_probability = probability;
  return *this;
}

FaultScript& FaultScript::delay_messages(std::size_t machine, double factor) {
  if (!(factor >= 1.0))
    throw std::invalid_argument("FaultScript::delay_messages: factor < 1");
  faults_[machine].delay_factor = factor;
  return *this;
}

FaultScript FaultScript::random(util::Rng& rng, std::size_t machines,
                                int ticks, double crash_probability,
                                double stall_probability) {
  if (machines == 0)
    throw std::invalid_argument("FaultScript::random: no machines");
  if (ticks < 1) throw std::invalid_argument("FaultScript::random: ticks < 1");
  FaultScript script;
  for (std::size_t m = 1; m < machines; ++m) {
    // Draw every variate unconditionally so the stream consumption (and
    // hence every other machine's schedule) is independent of the
    // probabilities chosen.
    const bool dies = rng.uniform() < crash_probability;
    const int crash_at =
        std::min(static_cast<int>(rng.uniform() * ticks), ticks - 1);
    const bool stalls = rng.uniform() < stall_probability;
    const int stall_at =
        std::min(static_cast<int>(rng.uniform() * ticks), ticks - 1);
    const int window =
        1 + std::min(static_cast<int>(rng.uniform() * (ticks / 4 + 1)),
                     ticks / 4);
    if (dies) script.crash(m, crash_at);
    if (stalls) script.stall(m, stall_at, stall_at + window);
  }
  return script;
}

const FaultScript::MachineFaults* FaultScript::find(
    std::size_t machine) const {
  const auto it = faults_.find(machine);
  return it == faults_.end() ? nullptr : &it->second;
}

bool FaultScript::crashed(std::size_t machine, int tick) const {
  const MachineFaults* f = find(machine);
  return f != nullptr && f->crash_tick >= 0 && tick >= f->crash_tick;
}

int FaultScript::crash_tick(std::size_t machine) const {
  const MachineFaults* f = find(machine);
  return f == nullptr ? -1 : f->crash_tick;
}

bool FaultScript::stalled(std::size_t machine, int tick) const {
  const MachineFaults* f = find(machine);
  return f != nullptr && tick >= f->stall_from && tick < f->stall_until;
}

double FaultScript::glitch_probability(std::size_t machine) const {
  const MachineFaults* f = find(machine);
  return f == nullptr ? 0.0 : f->glitch_probability;
}

double FaultScript::drop_probability(std::size_t machine) const {
  const MachineFaults* f = find(machine);
  return f == nullptr ? 0.0 : f->drop_probability;
}

double FaultScript::delay_factor(std::size_t machine) const {
  const MachineFaults* f = find(machine);
  return f == nullptr ? 1.0 : f->delay_factor;
}

bool FaultScript::empty() const noexcept { return faults_.empty(); }

}  // namespace fpm::sim
