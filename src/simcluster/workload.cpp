#include "simcluster/workload.hpp"

#include <algorithm>
#include <cmath>

namespace fpm::sim {

namespace {

/// The "maximum solvable problem size" that anchors the paper's band-width
/// observation: fluctuations reach the floor at the execution time of the
/// largest problem anyone would run, which in practice sits at the paging
/// cliff, not deep in swap. Found as the smallest size where the speed has
/// fallen to 30% of its small-size value (bisection on the decreasing
/// region).
double saturation_size(const core::SpeedFunction& truth) {
  const double b = truth.max_size();
  const double s0 = truth.speed(b * 1e-6);
  const double target = 0.3 * s0;
  if (truth.speed(b) >= target) return b;
  double lo = b * 1e-6;  // speed above target (or everything saturates)
  double hi = b;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (truth.speed(mid) >= target)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

}  // namespace

double band_width(const FluctuationProfile& p,
                  const core::SpeedFunction& truth, double x) {
  const double t = truth.time(std::max(x, 0.0));
  const double t_sat = truth.time(saturation_size(truth));
  const double frac = t_sat > 0.0 ? std::clamp(t / t_sat, 0.0, 1.0) : 1.0;
  return p.width_large + (p.width_small - p.width_large) * (1.0 - frac);
}

BandEdges band_edges(const FluctuationProfile& p,
                     const core::SpeedFunction& truth, double x) {
  const double s = truth.speed(x) * (1.0 - p.load_shift);
  const double half = 0.5 * band_width(p, truth, x);
  return {s * (1.0 - half), s * (1.0 + half)};
}

double sample_speed(const FluctuationProfile& p,
                    const core::SpeedFunction& truth, double x,
                    util::Rng& rng) {
  const BandEdges e = band_edges(p, truth, x);
  return rng.uniform(e.lower, e.upper);
}

}  // namespace fpm::sim
