// The paper's two testbeds as simulator presets:
//   * Table 1 — four very different computers (Linux P4, SunOS Ultra-5,
//     Windows XP, old Linux i686) used for the speed-curve and band
//     illustrations (Figures 1 and 2).
//   * Table 2 — the twelve Solaris/Linux workstations of the experimental
//     network, including the observed per-application paging onsets
//     ("Paging (MM)" and "Paging (LU)" columns, given as matrix sizes).
//
// Application naming follows the paper: "ArrayOpsF", "MatrixMultATLAS",
// "MatrixMult" (the naive kernel the experiments use) and "LU".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcluster/cluster.hpp"

namespace fpm::sim {

/// Canonical application names.
inline constexpr const char* kArrayOps = "ArrayOpsF";
inline constexpr const char* kMatMulAtlas = "MatrixMultATLAS";
inline constexpr const char* kMatMul = "MatrixMult";
inline constexpr const char* kLu = "LU";

/// Application profiles matching the paper's workloads.
AppProfile arrayops_profile();
AppProfile mm_atlas_profile();
AppProfile mm_naive_profile();
AppProfile lu_profile();

/// Problem-size conventions (paper §2: size = data stored and processed).
/// Square matrix multiplication stores A, B and C: 3·n² elements.
double mm_problem_size(std::int64_t n);
/// LU factorization stores the single matrix: n² elements.
double lu_problem_size(std::int64_t n);

/// The four computers of Table 1, with the three Figure-1 applications
/// registered on each.
std::vector<SimulatedMachine> table1_machines();

/// The twelve computers of Table 2, with MatrixMult and LU registered and
/// paging onsets pinned to the table's Paging(MM)/Paging(LU) columns.
std::vector<SimulatedMachine> table2_machines();

/// A present-day heterogeneous mix (not from the paper): a fat compute
/// server, two mid-range desktops, a laptop with aggressive memory
/// compression, and a single-board computer. The same phenomena — cache
/// plateaus, memory walls, wide speed ratios — at 2020s scales, showing
/// the model is not tied to the 2003 testbed. Registers MatrixMult and LU
/// with onsets derived from free memory.
std::vector<SimulatedMachine> modern_machines();

/// Ready-made clusters over the presets.
SimulatedCluster make_table1_cluster(std::uint64_t seed = 0xf9a2'04u);
SimulatedCluster make_table2_cluster(std::uint64_t seed = 0xf9a2'12u);
SimulatedCluster make_modern_cluster(std::uint64_t seed = 0xf9a2'26u);

}  // namespace fpm::sim
