// Simulated heterogeneous computers.
//
// The paper evaluates on real Solaris/Linux/Windows workstations (Tables 1
// and 2). This module substitutes a deterministic simulator: each machine's
// ground-truth speed function is synthesized from its hardware spec (CPU
// clock, cache size, free main memory, OS paging behaviour) and an
// application profile (how efficiently the code uses the memory hierarchy).
// The synthesized curves reproduce the shape classes the paper observes
// (Figures 1, 5, 19): near-flat plateaus with sharp paging cliffs for
// cache-efficient code, smooth strict decay for cache-hostile code — while
// always satisfying the single-intersection shape requirement the
// partitioning algorithms rely on.
//
// Problem-size convention: x is the total number of stored-and-processed
// elements (paper §2: 3·n² for a square matrix multiplication, n² for LU),
// at 8 bytes per element.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/speed_function.hpp"

namespace fpm::sim {

/// Hardware/OS description, mirroring the columns of the paper's Tables 1-2.
struct MachineSpec {
  std::string name;
  std::string os;    ///< "Linux", "SunOS" or "Windows" — selects the paging model
  std::string arch;
  double cpu_mhz = 0.0;
  std::int64_t main_memory_kb = 0;
  std::int64_t free_memory_kb = 0;  ///< memory actually available to the task
  std::int64_t cache_kb = 0;
};

/// How an application's memory reference pattern interacts with the
/// hierarchy (paper Figure 1's three example codes).
enum class MemoryPattern {
  Efficient,    ///< blocked/ATLAS-style: flat plateaus, sharp cliffs
  Moderate,     ///< mixed locality: gentle decay plus a visible paging knee
  Inefficient,  ///< naive triple loop: smooth strictly decreasing curve
};

/// Application-specific constants of the performance model.
struct AppProfile {
  std::string name;
  MemoryPattern pattern = MemoryPattern::Moderate;
  /// Resident bytes per problem-size element (8 for dense double data).
  double bytes_per_element = 8.0;
  /// Fraction of theoretical peak (clock x issue width) the kernel reaches
  /// in-cache.
  double efficiency = 0.5;
  /// Useful flops per problem-size element within one parallel run; used to
  /// convert speeds (MFlops) into wall-clock seconds. May depend on the
  /// global problem; callers pass the factor to the executor.
  double flops_per_element = 1.0;
};

/// Ground-truth speed curve of one (machine, application) pair together
/// with the derived feature points the experiments report.
class MachineSpeed final : public core::SpeedFunction {
 public:
  /// `paging_onset_elements` overrides the onset derived from free memory
  /// (used to pin the Table-2 paging columns exactly).
  MachineSpeed(const MachineSpec& spec, const AppProfile& app,
               std::optional<double> paging_onset_elements = std::nullopt);

  double speed(double x) const override;
  double max_size() const override { return max_size_; }

  /// The problem size where paging starts degrading the speed (the paper's
  /// point P in Figure 1 and the Paging columns of Table 2).
  double paging_onset() const noexcept { return paging_onset_; }
  /// Problem size where the top-level cache overflows.
  double cache_capacity() const noexcept { return cache_elems_; }
  /// In-cache plateau speed (MFlops).
  double peak_speed() const noexcept { return peak_; }

 private:
  double peak_ = 0.0;          ///< in-cache speed, MFlops
  double cache_elems_ = 0.0;   ///< top-level cache capacity in elements
  double paging_onset_ = 0.0;  ///< elements where paging begins
  double max_size_ = 0.0;      ///< modelled range end (deep into swap)
  double cache_drop_ = 0.7;    ///< post-cache plateau as a fraction of peak
  double decay_k_ = 0.0;       ///< smooth-decay exponent (pattern dependent)
  double paging_width_ = 1.0;  ///< paging transition width (OS dependent)
  double paging_disk_frac_ = 0.04;  ///< post-cliff fraction of the plateau
  double ramp_end_ = 0.0;      ///< end of the small-size warm-up ramp
  double ramp_low_ = 0.6;      ///< speed fraction at x -> 0
  MemoryPattern pattern_;
};

/// Convenience factory returning a shared ground-truth function.
std::shared_ptr<const MachineSpeed> make_ground_truth(
    const MachineSpec& spec, const AppProfile& app,
    std::optional<double> paging_onset_elements = std::nullopt);

}  // namespace fpm::sim
