// Transient workload fluctuation (paper §1, Figure 2): a computer that is an
// integrated node of a general-purpose network constantly runs routine jobs
// (mail clients, browsers, editors), so repeated runs of the same task give
// speeds inside a *band* rather than on a curve. The paper observes:
//   * highly integrated machines fluctuate ~40% at small problem sizes,
//     declining close-to-linearly with execution time to ~6% at the largest
//     solvable size;
//   * low-integration machines stay within ~5-7% throughout;
//   * a persistent heavy external load shifts the whole band down without
//     changing its width.
#pragma once

#include "core/speed_function.hpp"
#include "util/rng.hpp"

namespace fpm::sim {

/// Parameters of one machine's fluctuation band.
struct FluctuationProfile {
  /// Full relative band width at negligible execution time (0.40 = 40%).
  double width_small = 0.40;
  /// Full relative band width floor at long execution times.
  double width_large = 0.06;
  /// Persistent external heavy load: both band edges scale by (1 - shift).
  double load_shift = 0.0;

  /// A low-integration machine: narrow, size-independent band.
  static FluctuationProfile low_integration(double width = 0.06) {
    return {width, width, 0.0};
  }
};

/// Full relative band width at problem size x for a machine whose
/// ground-truth curve is `truth`: declines linearly in the execution time
/// t(x), reaching the floor at the execution time of the largest solvable
/// problem (80% of the modelled range, past which the machine thrashes).
double band_width(const FluctuationProfile& p,
                  const core::SpeedFunction& truth, double x);

/// Lower/upper band edges around the ground-truth speed at x.
struct BandEdges {
  double lower = 0.0;
  double upper = 0.0;
};
BandEdges band_edges(const FluctuationProfile& p,
                     const core::SpeedFunction& truth, double x);

/// One observed speed: uniform draw inside the band (a run of the task at a
/// random moment of the background-load cycle).
double sample_speed(const FluctuationProfile& p,
                    const core::SpeedFunction& truth, double x,
                    util::Rng& rng);

}  // namespace fpm::sim
