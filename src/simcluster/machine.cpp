#include "simcluster/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpm::sim {
namespace {

/// Peak useful instruction throughput per cycle by memory pattern: blocked
/// code keeps the FPU pipelines fed; a naive triple loop stalls on memory.
double flops_per_cycle(MemoryPattern pattern) {
  switch (pattern) {
    case MemoryPattern::Efficient:
      return 1.6;
    case MemoryPattern::Moderate:
      return 0.8;
    case MemoryPattern::Inefficient:
      return 0.35;
  }
  return 0.5;
}

/// Paging-model parameters by OS: the paper notes that different paging
/// algorithms produce different levels of speed degradation for the same
/// overcommit (its §1, second bullet). The model is a sharp drop around the
/// onset to a disk-bound fraction of the plateau, followed by a slow
/// power-law tail — machines deep in swap are very slow but not dead,
/// which is what lets the paper run problems ~3x beyond aggregate RAM.
struct PagingModel {
  double width_frac;  ///< transition width as a fraction of the onset
  double disk_frac;   ///< post-cliff speed as a fraction of the plateau
};
PagingModel paging_model(const std::string& os) {
  if (os.find("Windows") != std::string::npos) return {0.08, 0.03};
  if (os.find("SunOS") != std::string::npos) return {0.30, 0.06};
  return {0.15, 0.04};  // Linux and anything else
}

}  // namespace

MachineSpeed::MachineSpeed(const MachineSpec& spec, const AppProfile& app,
                           std::optional<double> paging_onset_elements)
    : pattern_(app.pattern) {
  if (!(spec.cpu_mhz > 0.0) || spec.cache_kb <= 0 || spec.free_memory_kb <= 0)
    throw std::invalid_argument("MachineSpeed: incomplete machine spec");
  if (!(app.bytes_per_element > 0.0) || !(app.efficiency > 0.0))
    throw std::invalid_argument("MachineSpeed: invalid app profile");

  peak_ = spec.cpu_mhz * flops_per_cycle(app.pattern) * app.efficiency;
  cache_elems_ =
      static_cast<double>(spec.cache_kb) * 1024.0 / app.bytes_per_element;
  const double mem_elems = static_cast<double>(spec.free_memory_kb) * 1024.0 /
                           app.bytes_per_element;
  paging_onset_ = paging_onset_elements.value_or(mem_elems);
  if (!(paging_onset_ > cache_elems_))
    throw std::invalid_argument(
        "MachineSpeed: paging onset must exceed the cache capacity");
  // Model deep into swap (the paper sizes b from main memory plus swap):
  // by 8x the onset the speed is ~1% of the plateau — "practically zero"
  // on the plots, but still positive so heavily oversubscribed problems
  // remain schedulable, as in the paper's largest experiments.
  max_size_ = paging_onset_ * 8.0;
  const PagingModel pm = paging_model(spec.os);
  paging_width_ = pm.width_frac * paging_onset_;
  paging_disk_frac_ = pm.disk_frac;

  switch (app.pattern) {
    case MemoryPattern::Efficient:
      cache_drop_ = 0.85;  // blocked code barely notices main memory
      decay_k_ = 0.0;
      ramp_low_ = 0.55;    // loop startup/BLAS dispatch overhead at tiny sizes
      ramp_end_ = cache_elems_ * 0.5;
      break;
    case MemoryPattern::Moderate:
      cache_drop_ = 0.65;
      decay_k_ = 0.25;
      ramp_low_ = 0.7;
      ramp_end_ = cache_elems_ * 0.25;
      break;
    case MemoryPattern::Inefficient:
      cache_drop_ = 0.45;
      decay_k_ = 0.40;
      ramp_low_ = 1.0;  // no warm-up: the naive code is flat-out slow
      ramp_end_ = 0.0;
      break;
  }
}

double MachineSpeed::speed(double x) const {
  if (x < 0.0) x = 0.0;
  // Warm-up ramp: concave with a positive intercept, so speed(x)/x stays
  // strictly decreasing.
  double ramp = 1.0;
  if (ramp_end_ > 0.0 && x < ramp_end_)
    ramp = ramp_low_ + (1.0 - ramp_low_) * std::sqrt(x / ramp_end_);

  // Cache overflow: a smooth step from 1 down to cache_drop_ around the
  // cache capacity (efficient code keeps a high plateau; naive code folds
  // this into the smooth decay below).
  const double t_cache =
      0.5 * (1.0 + std::tanh((x - cache_elems_) / (0.35 * cache_elems_)));
  const double cache_factor = (1.0 - t_cache) + t_cache * cache_drop_;

  // Gradual out-of-cache decay for non-blocked access patterns.
  double decay = 1.0;
  if (decay_k_ > 0.0 && x > 0.0)
    decay = 1.0 / (1.0 + std::pow(x / (cache_elems_ * 8.0), decay_k_));

  // Paging: a sharp multiplicative drop to the disk-bound fraction once
  // the resident set exceeds free memory, then a slow power-law tail. The
  // transition width and disk fraction encode the OS paging algorithm.
  const double t_page =
      0.5 * (1.0 + std::tanh((x - paging_onset_) / paging_width_));
  const double tail =
      x > paging_onset_ ? std::pow(paging_onset_ / x, 0.5) : 1.0;
  const double paging =
      (1.0 - t_page) + t_page * paging_disk_frac_ * tail;

  return std::max(1e-9, peak_ * ramp * cache_factor * decay * paging);
}

std::shared_ptr<const MachineSpeed> make_ground_truth(
    const MachineSpec& spec, const AppProfile& app,
    std::optional<double> paging_onset_elements) {
  return std::make_shared<const MachineSpeed>(spec, app,
                                              paging_onset_elements);
}

}  // namespace fpm::sim
