#include "simcluster/cluster.hpp"

#include <limits>
#include <stdexcept>

namespace fpm::sim {

void SimulatedMachine::register_app(
    const AppProfile& profile,
    std::optional<double> paging_onset_elements) {
  apps[profile.name] = make_ground_truth(spec, profile, paging_onset_elements);
  profiles[profile.name] = profile;
}

SimulatedCluster::SimulatedCluster(std::vector<SimulatedMachine> machines,
                                   std::uint64_t seed)
    : machines_(std::move(machines)) {
  util::Rng master(seed);
  streams_.reserve(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i)
    streams_.push_back(master.split());
}

const SimulatedMachine& SimulatedCluster::machine(std::size_t i) const {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  return machines_[i];
}

const MachineSpeed& SimulatedCluster::ground_truth(
    std::size_t i, const std::string& app) const {
  const SimulatedMachine& m = machine(i);
  const auto it = m.apps.find(app);
  if (it == m.apps.end())
    throw std::invalid_argument("SimulatedCluster: app '" + app +
                                "' not registered on " + m.spec.name);
  return *it->second;
}

core::SpeedList SimulatedCluster::ground_truth_list(
    const std::string& app) const {
  core::SpeedList list;
  list.reserve(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i)
    list.push_back(&ground_truth(i, app));
  return list;
}

void SimulatedCluster::set_load_shift(std::size_t i, double shift) {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  if (!(shift >= 0.0) || !(shift < 1.0))
    throw std::invalid_argument("SimulatedCluster: shift must be in [0, 1)");
  machines_[i].fluctuation.load_shift = shift;
}

double SimulatedCluster::measure(std::size_t i, const std::string& app,
                                 double x) {
  const SimulatedMachine& m = machine(i);
  if (faults_.crashed(i, tick_))
    throw MachineFailedError(i, faults_.crash_tick(i));
  if (faults_.stalled(i, tick_))
    return std::numeric_limits<double>::quiet_NaN();
  // A glitching machine's benchmark run fails outright. Randomness is only
  // consumed when a glitch is scripted, so fault-free experiments replay
  // the exact observation sequence of earlier seeds.
  const double glitch = faults_.glitch_probability(i);
  if (glitch > 0.0 && streams_[i].uniform() < glitch)
    return std::numeric_limits<double>::quiet_NaN();
  return sample_speed(m.fluctuation, ground_truth(i, app), x, streams_[i]);
}

void SimulatedCluster::set_fault_script(FaultScript script) {
  faults_ = std::move(script);
  tick_ = 0;
}

void SimulatedCluster::advance_time(int ticks) {
  if (ticks < 0)
    throw std::invalid_argument("SimulatedCluster: ticks must be >= 0");
  tick_ += ticks;
}

bool SimulatedCluster::machine_alive(std::size_t i) const {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  return !faults_.crashed(i, tick_);
}

bool SimulatedCluster::machine_stalled(std::size_t i) const {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  return faults_.stalled(i, tick_);
}

bool SimulatedCluster::message_dropped(std::size_t i) {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  const double p = faults_.drop_probability(i);
  if (p <= 0.0) return false;
  return streams_[i].uniform() < p;
}

double SimulatedCluster::message_delay_factor(std::size_t i) const {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  return faults_.delay_factor(i);
}

double SimulatedCluster::sampled_seconds(std::size_t i, const std::string& app,
                                         double x, double flops_per_element) {
  if (x <= 0.0) return 0.0;
  const double mflops = measure(i, app, x);
  return x * flops_per_element / (mflops * 1e6);
}

double SimulatedCluster::expected_seconds(std::size_t i,
                                          const std::string& app, double x,
                                          double flops_per_element) const {
  if (x <= 0.0) return 0.0;
  const SimulatedMachine& m = machine(i);
  const double mflops =
      ground_truth(i, app).speed(x) * (1.0 - m.fluctuation.load_shift);
  return x * flops_per_element / (mflops * 1e6);
}

MachineMeasurement::MachineMeasurement(SimulatedCluster& cluster,
                                       std::size_t machine, std::string app)
    : cluster_(cluster), machine_(machine), app_(std::move(app)) {}

double MachineMeasurement::measure(double size) {
  return cluster_.measure(machine_, app_, size);
}

core::SpeedList ClusterModels::list() const {
  core::SpeedList l;
  l.reserve(curves.size());
  for (const auto& c : curves) l.push_back(&c);
  return l;
}

ClusterModels build_cluster_models(SimulatedCluster& cluster,
                                   const std::string& app, double epsilon,
                                   int samples_per_point, int max_probes) {
  ClusterModels models;
  models.curves.reserve(cluster.size());
  models.probes.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const MachineSpeed& truth = cluster.ground_truth(i, app);
    core::BuilderOptions opts;
    opts.epsilon = epsilon;
    opts.samples_per_point = samples_per_point;
    opts.max_probes = max_probes;
    // a: comfortably in cache; b: deep into swap where speed is ~zero.
    opts.min_size = truth.cache_capacity() * 0.25;
    opts.max_size = truth.max_size();
    // Termination is governed by the relative refinement floor (see
    // BuilderOptions), which resolves the cache knee at small sizes and the
    // paging knee at large sizes with logarithmic depth.
    // Retry-with-backoff shields the trisection from failed benchmark
    // runs (NaN/<= 0) and glitch outliers, which would otherwise be
    // averaged straight into the curve. Outliers are judged only against
    // readings at the *same* size (reference_window = 1): across sizes a
    // genuine paging cliff can exceed any fixed factor.
    MachineMeasurement raw(cluster, i, app);
    core::RetryOptions retry;
    retry.reference_window = 1.0;
    core::RetryingMeasurementSource source(raw, retry);
    core::BuiltModel built = core::build_speed_band(source, opts);
    models.curves.push_back(built.band.center());
    models.probes.push_back(built.probes);
  }
  return models;
}

}  // namespace fpm::sim
