#include "simcluster/cluster.hpp"

#include <stdexcept>

namespace fpm::sim {

void SimulatedMachine::register_app(
    const AppProfile& profile,
    std::optional<double> paging_onset_elements) {
  apps[profile.name] = make_ground_truth(spec, profile, paging_onset_elements);
  profiles[profile.name] = profile;
}

SimulatedCluster::SimulatedCluster(std::vector<SimulatedMachine> machines,
                                   std::uint64_t seed)
    : machines_(std::move(machines)) {
  util::Rng master(seed);
  streams_.reserve(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i)
    streams_.push_back(master.split());
}

const SimulatedMachine& SimulatedCluster::machine(std::size_t i) const {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  return machines_[i];
}

const MachineSpeed& SimulatedCluster::ground_truth(
    std::size_t i, const std::string& app) const {
  const SimulatedMachine& m = machine(i);
  const auto it = m.apps.find(app);
  if (it == m.apps.end())
    throw std::invalid_argument("SimulatedCluster: app '" + app +
                                "' not registered on " + m.spec.name);
  return *it->second;
}

core::SpeedList SimulatedCluster::ground_truth_list(
    const std::string& app) const {
  core::SpeedList list;
  list.reserve(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i)
    list.push_back(&ground_truth(i, app));
  return list;
}

void SimulatedCluster::set_load_shift(std::size_t i, double shift) {
  if (i >= machines_.size())
    throw std::out_of_range("SimulatedCluster: machine index");
  if (!(shift >= 0.0) || !(shift < 1.0))
    throw std::invalid_argument("SimulatedCluster: shift must be in [0, 1)");
  machines_[i].fluctuation.load_shift = shift;
}

double SimulatedCluster::measure(std::size_t i, const std::string& app,
                                 double x) {
  const SimulatedMachine& m = machine(i);
  return sample_speed(m.fluctuation, ground_truth(i, app), x, streams_[i]);
}

double SimulatedCluster::sampled_seconds(std::size_t i, const std::string& app,
                                         double x, double flops_per_element) {
  if (x <= 0.0) return 0.0;
  const double mflops = measure(i, app, x);
  return x * flops_per_element / (mflops * 1e6);
}

double SimulatedCluster::expected_seconds(std::size_t i,
                                          const std::string& app, double x,
                                          double flops_per_element) const {
  if (x <= 0.0) return 0.0;
  const SimulatedMachine& m = machine(i);
  const double mflops =
      ground_truth(i, app).speed(x) * (1.0 - m.fluctuation.load_shift);
  return x * flops_per_element / (mflops * 1e6);
}

MachineMeasurement::MachineMeasurement(SimulatedCluster& cluster,
                                       std::size_t machine, std::string app)
    : cluster_(cluster), machine_(machine), app_(std::move(app)) {}

double MachineMeasurement::measure(double size) {
  return cluster_.measure(machine_, app_, size);
}

core::SpeedList ClusterModels::list() const {
  core::SpeedList l;
  l.reserve(curves.size());
  for (const auto& c : curves) l.push_back(&c);
  return l;
}

ClusterModels build_cluster_models(SimulatedCluster& cluster,
                                   const std::string& app, double epsilon,
                                   int samples_per_point, int max_probes) {
  ClusterModels models;
  models.curves.reserve(cluster.size());
  models.probes.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const MachineSpeed& truth = cluster.ground_truth(i, app);
    core::BuilderOptions opts;
    opts.epsilon = epsilon;
    opts.samples_per_point = samples_per_point;
    opts.max_probes = max_probes;
    // a: comfortably in cache; b: deep into swap where speed is ~zero.
    opts.min_size = truth.cache_capacity() * 0.25;
    opts.max_size = truth.max_size();
    // Termination is governed by the relative refinement floor (see
    // BuilderOptions), which resolves the cache knee at small sizes and the
    // paging knee at large sizes with logarithmic depth.
    MachineMeasurement source(cluster, i, app);
    core::BuiltModel built = core::build_speed_band(source, opts);
    models.curves.push_back(built.band.center());
    models.probes.push_back(built.probes);
  }
  return models;
}

}  // namespace fpm::sim
