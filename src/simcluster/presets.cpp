#include "simcluster/presets.hpp"

namespace fpm::sim {

AppProfile arrayops_profile() {
  AppProfile p;
  p.name = kArrayOps;
  p.pattern = MemoryPattern::Efficient;
  p.bytes_per_element = 8.0;
  p.efficiency = 0.55;
  p.flops_per_element = 2.0;  // one multiply-add per array element
  return p;
}

AppProfile mm_atlas_profile() {
  AppProfile p;
  p.name = kMatMulAtlas;
  p.pattern = MemoryPattern::Efficient;
  p.bytes_per_element = 8.0;
  p.efficiency = 0.85;
  p.flops_per_element = 1.0;  // the executor scales by 2n/3 per run
  return p;
}

AppProfile mm_naive_profile() {
  AppProfile p;
  p.name = kMatMul;
  p.pattern = MemoryPattern::Inefficient;
  p.bytes_per_element = 8.0;
  p.efficiency = 0.9;  // relative to the already-low inefficient peak
  p.flops_per_element = 1.0;
  return p;
}

AppProfile lu_profile() {
  AppProfile p;
  p.name = kLu;
  p.pattern = MemoryPattern::Moderate;
  p.bytes_per_element = 8.0;
  p.efficiency = 0.75;
  p.flops_per_element = 1.0;
  return p;
}

double mm_problem_size(std::int64_t n) {
  const double nd = static_cast<double>(n);
  return 3.0 * nd * nd;
}

double lu_problem_size(std::int64_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd;
}

namespace {

/// Registers the Figure-1 applications on a Table-1 machine; paging onsets
/// derive from free memory (Table 1 lists no measured onsets).
SimulatedMachine make_table1_machine(MachineSpec spec,
                                     FluctuationProfile fluctuation) {
  SimulatedMachine m;
  m.spec = std::move(spec);
  m.fluctuation = fluctuation;
  m.register_app(arrayops_profile());
  m.register_app(mm_atlas_profile());
  m.register_app(mm_naive_profile());
  return m;
}

/// Registers the experiment applications on a Table-2 machine with the
/// paging columns pinned: Paging(MM)=n_mm means the serial square matrix
/// multiplication starts paging at matrix size n_mm, i.e. at 3·n_mm²
/// elements; Paging(LU)=n_lu pins n_lu² elements.
SimulatedMachine make_table2_machine(MachineSpec spec,
                                     FluctuationProfile fluctuation,
                                     std::int64_t paging_mm,
                                     std::int64_t paging_lu) {
  SimulatedMachine m;
  m.spec = std::move(spec);
  m.fluctuation = fluctuation;
  m.register_app(mm_naive_profile(), mm_problem_size(paging_mm));
  m.register_app(lu_profile(), lu_problem_size(paging_lu));
  return m;
}

}  // namespace

std::vector<SimulatedMachine> table1_machines() {
  std::vector<SimulatedMachine> ms;
  // Table 1 gives no free-memory column; assume the OS and routine
  // background jobs hold ~25% of main memory.
  const auto free_of = [](std::int64_t main_kb) {
    return main_kb - main_kb / 4;
  };
  ms.push_back(make_table1_machine(
      {"Comp1", "Linux 2.4.20-8", "Intel Pentium 4", 2793.0, 513304,
       free_of(513304), 512},
      {0.30, 0.08, 0.0}));  // Figure 2(a): ~30% shrinking to ~8%
  ms.push_back(make_table1_machine(
      {"Comp2", "SunOS 5.8", "sun4u sparc Ultra-5_10", 440.0, 524288,
       free_of(524288), 2048},
      {0.35, 0.07, 0.0}));  // Figure 2(b)
  ms.push_back(make_table1_machine(
      {"Comp3", "Windows XP", "x86", 3000.0, 1030388, free_of(1030388), 512},
      FluctuationProfile::low_integration(0.06)));
  ms.push_back(make_table1_machine(
      {"Comp4", "Linux 2.4.7-10", "i686", 730.0, 254524, free_of(254524), 256},
      {0.40, 0.05, 0.0}));  // Figure 2(c): ~40% shrinking to ~5%
  return ms;
}

std::vector<SimulatedMachine> table2_machines() {
  std::vector<SimulatedMachine> ms;
  // Fluctuation levels: the X5-X9 lab machines are heavily integrated
  // (shared interactive use), X1/X2 are desktops with moderate integration,
  // the bigmem servers X3/X4 and the Solaris boxes X10-X12 are quiet.
  ms.push_back(make_table2_machine({"X1", "Linux 2.4.20-20.9", "Pentium III",
                                    997.0, 513304, 363264, 256},
                                   {0.25, 0.06, 0.0}, 4500, 6000));
  ms.push_back(make_table2_machine({"X2", "Linux 2.4.18-3", "Pentium III",
                                    997.0, 254576, 65692, 256},
                                   {0.25, 0.06, 0.0}, 4000, 5000));
  ms.push_back(make_table2_machine({"X3", "Linux 2.4.20-20.9bigmem", "Xeon",
                                    2783.0, 7933500, 2221436, 512},
                                   FluctuationProfile::low_integration(0.07),
                                   6400, 11000));
  ms.push_back(make_table2_machine({"X4", "Linux 2.4.20-20.9bigmem", "Xeon",
                                    2783.0, 7933500, 3073628, 512},
                                   FluctuationProfile::low_integration(0.07),
                                   6400, 11000));
  ms.push_back(make_table2_machine({"X5", "Linux 2.4.18-10smp", "Xeon",
                                    1977.0, 1030508, 415904, 512},
                                   {0.40, 0.06, 0.0}, 6000, 8500));
  ms.push_back(make_table2_machine({"X6", "Linux 2.4.18-10smp", "Xeon",
                                    1977.0, 1030508, 364120, 512},
                                   {0.40, 0.06, 0.0}, 6000, 8500));
  ms.push_back(make_table2_machine({"X7", "Linux 2.4.18-10smp", "Xeon",
                                    1977.0, 1030508, 215752, 512},
                                   {0.40, 0.06, 0.0}, 6000, 8000));
  ms.push_back(make_table2_machine({"X8", "Linux 2.4.18-10smp", "Xeon",
                                    1977.0, 1030508, 134400, 512},
                                   {0.40, 0.06, 0.0}, 5500, 6500));
  ms.push_back(make_table2_machine({"X9", "Linux 2.4.18-10smp", "Xeon",
                                    1977.0, 1030508, 134400, 512},
                                   {0.40, 0.06, 0.0}, 5500, 6500));
  ms.push_back(make_table2_machine({"X10", "SunOS 5.8", "sun4u Ultra-5_10",
                                    440.0, 524288, 409600, 2048},
                                   FluctuationProfile::low_integration(0.06),
                                   4500, 5000));
  ms.push_back(make_table2_machine({"X11", "SunOS 5.8", "sun4u Ultra-5_10",
                                    440.0, 524288, 418816, 2048},
                                   FluctuationProfile::low_integration(0.06),
                                   4500, 5000));
  ms.push_back(make_table2_machine({"X12", "SunOS 5.8", "sun4u Ultra-5_10",
                                    440.0, 524288, 395264, 2048},
                                   FluctuationProfile::low_integration(0.06),
                                   4500, 5000));
  return ms;
}

std::vector<SimulatedMachine> modern_machines() {
  std::vector<SimulatedMachine> ms;
  const auto add = [&ms](MachineSpec spec, FluctuationProfile fluct) {
    SimulatedMachine m;
    m.spec = std::move(spec);
    m.fluctuation = fluct;
    m.register_app(mm_naive_profile());
    m.register_app(lu_profile());
    ms.push_back(std::move(m));
  };
  // name, os, arch, MHz, main kB, free kB, cache kB (last level).
  add({"epyc-server", "Linux 6.1", "EPYC 9354", 3250.0, 256 << 20,
       192 << 20, 262144},
      FluctuationProfile::low_integration(0.05));
  add({"desktop-a", "Linux 6.1", "Ryzen 7700", 3800.0, 32 << 20, 20 << 20,
       32768},
      {0.20, 0.06, 0.0});
  add({"desktop-b", "Windows 11", "Core i5-13400", 2500.0, 16 << 20,
       9 << 20, 20480},
      {0.25, 0.06, 0.0});
  add({"laptop", "Linux 6.1", "mobile Ryzen", 3300.0, 16 << 20, 6 << 20,
       16384},
      {0.35, 0.08, 0.0});
  add({"sbc", "Linux 6.1", "Cortex-A76", 2400.0, 8 << 20, 5 << 20, 2048},
      FluctuationProfile::low_integration(0.06));
  return ms;
}

SimulatedCluster make_table1_cluster(std::uint64_t seed) {
  return SimulatedCluster(table1_machines(), seed);
}

SimulatedCluster make_modern_cluster(std::uint64_t seed) {
  return SimulatedCluster(modern_machines(), seed);
}

SimulatedCluster make_table2_cluster(std::uint64_t seed) {
  return SimulatedCluster(table2_machines(), seed);
}

}  // namespace fpm::sim
