#include "simcluster/spec_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace fpm::sim {
namespace {

[[noreturn]] void parse_error(int line, const std::string& what) {
  throw std::runtime_error("fpm-cluster parse error at line " +
                           std::to_string(line) + ": " + what);
}

/// Reads the rest of the line (for fields with embedded spaces).
std::string rest_of(std::istringstream& ss) {
  std::string rest;
  std::getline(ss, rest);
  const std::size_t start = rest.find_first_not_of(" \t");
  return start == std::string::npos ? std::string() : rest.substr(start);
}

}  // namespace

std::string to_string(MemoryPattern pattern) {
  switch (pattern) {
    case MemoryPattern::Efficient:
      return "efficient";
    case MemoryPattern::Moderate:
      return "moderate";
    case MemoryPattern::Inefficient:
      return "inefficient";
  }
  return "moderate";
}

MemoryPattern pattern_from_string(const std::string& name) {
  if (name == "efficient") return MemoryPattern::Efficient;
  if (name == "moderate") return MemoryPattern::Moderate;
  if (name == "inefficient") return MemoryPattern::Inefficient;
  throw std::runtime_error("unknown memory pattern '" + name + "'");
}

void save_cluster_spec(std::ostream& os, const ClusterSpec& spec) {
  os << "# fpm-cluster v1\n";
  if (spec.has_policy) os << "policy " << core::format_policy(spec.policy)
                          << "\n";
  os << std::setprecision(17);
  for (const SimulatedMachine& m : spec.machines) {
    if (m.spec.name.empty() ||
        m.spec.name.find_first_of(" \t\n") != std::string::npos)
      throw std::runtime_error(
          "save_cluster: machine names must be non-empty without whitespace");
    os << "machine " << m.spec.name << "\n";
    os << "os " << m.spec.os << "\n";
    os << "arch " << m.spec.arch << "\n";
    os << "cpu_mhz " << m.spec.cpu_mhz << "\n";
    os << "main_kb " << m.spec.main_memory_kb << "\n";
    os << "free_kb " << m.spec.free_memory_kb << "\n";
    os << "cache_kb " << m.spec.cache_kb << "\n";
    os << "fluctuation " << m.fluctuation.width_small << ' '
       << m.fluctuation.width_large << ' ' << m.fluctuation.load_shift << "\n";
    for (const auto& [name, profile] : m.profiles) {
      const auto it = m.apps.find(name);
      if (it == m.apps.end())
        throw std::runtime_error("save_cluster: profile without curve: " +
                                 name);
      os << "app " << name << ' ' << to_string(profile.pattern) << ' '
         << profile.bytes_per_element << ' ' << profile.efficiency << ' '
         << profile.flops_per_element << ' ' << it->second->paging_onset()
         << "\n";
    }
    os << "end\n";
  }
}

void save_cluster(std::ostream& os,
                  const std::vector<SimulatedMachine>& machines) {
  ClusterSpec spec;
  spec.machines = machines;
  save_cluster_spec(os, spec);
}

ClusterSpec load_cluster_spec(std::istream& is) {
  ClusterSpec spec;
  SimulatedMachine current;
  struct PendingApp {
    AppProfile profile;
    double onset = 0.0;
  };
  std::vector<PendingApp> pending;
  bool in_machine = false;
  bool have_fluctuation = false;
  std::string line;
  int line_no = 0;

  const auto finish = [&](int at_line) {
    if (current.spec.name.empty()) parse_error(at_line, "machine lacks name");
    if (!have_fluctuation) parse_error(at_line, "machine lacks fluctuation");
    if (pending.empty()) parse_error(at_line, "machine has no apps");
    for (const PendingApp& app : pending) {
      try {
        current.register_app(app.profile, app.onset);
      } catch (const std::invalid_argument& err) {
        parse_error(at_line, std::string("invalid machine/app: ") + err.what());
      }
    }
    spec.machines.push_back(std::move(current));
  };

  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword) || keyword[0] == '#') continue;
    if (keyword == "machine") {
      if (in_machine) parse_error(line_no, "nested 'machine'");
      current = SimulatedMachine{};
      pending.clear();
      have_fluctuation = false;
      if (!(ss >> current.spec.name))
        parse_error(line_no, "missing machine name");
      in_machine = true;
      continue;
    }
    if (keyword == "policy") {
      if (in_machine) parse_error(line_no, "'policy' inside machine");
      if (spec.has_policy) parse_error(line_no, "duplicate 'policy'");
      std::string algorithm;
      if (!(ss >> algorithm)) parse_error(line_no, "missing policy algorithm");
      std::vector<std::string> tokens;
      std::string token;
      while (ss >> token) tokens.push_back(token);
      try {
        spec.policy = core::parse_policy(algorithm, tokens);
      } catch (const std::invalid_argument& err) {
        parse_error(line_no, err.what());
      }
      spec.has_policy = true;
      continue;
    }
    if (!in_machine) parse_error(line_no, "'" + keyword + "' outside machine");
    if (keyword == "os") {
      current.spec.os = rest_of(ss);
    } else if (keyword == "arch") {
      current.spec.arch = rest_of(ss);
    } else if (keyword == "cpu_mhz") {
      if (!(ss >> current.spec.cpu_mhz)) parse_error(line_no, "bad cpu_mhz");
    } else if (keyword == "main_kb") {
      if (!(ss >> current.spec.main_memory_kb))
        parse_error(line_no, "bad main_kb");
    } else if (keyword == "free_kb") {
      if (!(ss >> current.spec.free_memory_kb))
        parse_error(line_no, "bad free_kb");
    } else if (keyword == "cache_kb") {
      if (!(ss >> current.spec.cache_kb)) parse_error(line_no, "bad cache_kb");
    } else if (keyword == "fluctuation") {
      FluctuationProfile& f = current.fluctuation;
      if (!(ss >> f.width_small >> f.width_large >> f.load_shift))
        parse_error(line_no, "bad fluctuation");
      have_fluctuation = true;
    } else if (keyword == "app") {
      PendingApp app;
      std::string pattern;
      if (!(ss >> app.profile.name >> pattern >>
            app.profile.bytes_per_element >> app.profile.efficiency >>
            app.profile.flops_per_element >> app.onset))
        parse_error(line_no, "bad app line");
      try {
        app.profile.pattern = pattern_from_string(pattern);
      } catch (const std::runtime_error& err) {
        parse_error(line_no, err.what());
      }
      pending.push_back(std::move(app));
    } else if (keyword == "end") {
      finish(line_no);
      in_machine = false;
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (in_machine) parse_error(line_no, "unterminated machine (missing 'end')");
  return spec;
}

std::vector<SimulatedMachine> load_cluster(std::istream& is) {
  return load_cluster_spec(is).machines;
}

void save_cluster_spec_file(const std::string& path, const ClusterSpec& spec) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("save_cluster_spec_file: cannot open " + path);
  save_cluster_spec(os, spec);
  if (!os)
    throw std::runtime_error("save_cluster_spec_file: write failed: " + path);
}

ClusterSpec load_cluster_spec_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("load_cluster_spec_file: cannot open " + path);
  return load_cluster_spec(is);
}

void save_cluster_file(const std::string& path,
                       const std::vector<SimulatedMachine>& machines) {
  ClusterSpec spec;
  spec.machines = machines;
  save_cluster_spec_file(path, spec);
}

std::vector<SimulatedMachine> load_cluster_file(const std::string& path) {
  return load_cluster_spec_file(path).machines;
}

}  // namespace fpm::sim
