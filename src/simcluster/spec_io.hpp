// Persistence for simulated-cluster definitions: a line-oriented text
// format describing machines, their fluctuation profiles, and the
// applications registered on each (with optional pinned paging onsets).
// Lets users define their own heterogeneous networks for fpmtool and the
// library without recompiling.
//
//   # fpm-cluster v1
//   policy combined stall_window 4   ; optional cluster-wide partitioner
//   machine X1
//   os Linux 2.4.20-20.9
//   arch Pentium III
//   cpu_mhz 997
//   main_kb 513304
//   free_kb 363264
//   cache_kb 256
//   fluctuation 0.25 0.06 0.0        ; width_small width_large load_shift
//   app MatrixMult inefficient 8 0.9 60750000   ; name pattern bytes eff [onset]
//   app LU moderate 8 0.75                      ; onset derived from free_kb
//   end
//
// Lines starting with '#' are comments; fields may appear in any order
// between `machine` and `end`, except that every field must be present.
// A single optional top-level `policy <id> [key value]...` line (outside
// any machine block) selects the partitioner applied to the cluster's
// curves; its grammar is core::parse_policy's, so the keys are the ones
// documented in core/policy.hpp. Absent line = the default policy.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "simcluster/cluster.hpp"

namespace fpm::sim {

/// A parsed spec file: the machines plus the cluster-wide partitioner
/// policy chosen by the optional top-level `policy` line.
struct ClusterSpec {
  std::vector<SimulatedMachine> machines;
  core::PartitionPolicy policy{};
  /// True when the spec carried an explicit `policy` line (saving skips
  /// the line otherwise, keeping legacy files byte-stable on round trip).
  bool has_policy = false;
};

/// Writes the spec in the fpm-cluster format. App entries carry their
/// ground-truth paging onsets explicitly, so a round trip is faithful even
/// for onsets that were pinned rather than derived.
void save_cluster_spec(std::ostream& os, const ClusterSpec& spec);

/// Parses a spec from the fpm-cluster format. Throws std::runtime_error
/// with a line number on malformed input (including a bad policy line).
ClusterSpec load_cluster_spec(std::istream& is);

/// Machines-only wrappers (the policy line is omitted / ignored).
void save_cluster(std::ostream& os,
                  const std::vector<SimulatedMachine>& machines);
std::vector<SimulatedMachine> load_cluster(std::istream& is);

/// File-path wrappers; throw std::runtime_error on I/O failure.
void save_cluster_spec_file(const std::string& path, const ClusterSpec& spec);
ClusterSpec load_cluster_spec_file(const std::string& path);
void save_cluster_file(const std::string& path,
                       const std::vector<SimulatedMachine>& machines);
std::vector<SimulatedMachine> load_cluster_file(const std::string& path);

/// Pattern-name round trip helpers (used by the format and fpmtool).
std::string to_string(MemoryPattern pattern);
MemoryPattern pattern_from_string(const std::string& name);

}  // namespace fpm::sim
