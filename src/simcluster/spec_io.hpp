// Persistence for simulated-cluster definitions: a line-oriented text
// format describing machines, their fluctuation profiles, and the
// applications registered on each (with optional pinned paging onsets).
// Lets users define their own heterogeneous networks for fpmtool and the
// library without recompiling.
//
//   # fpm-cluster v1
//   machine X1
//   os Linux 2.4.20-20.9
//   arch Pentium III
//   cpu_mhz 997
//   main_kb 513304
//   free_kb 363264
//   cache_kb 256
//   fluctuation 0.25 0.06 0.0        ; width_small width_large load_shift
//   app MatrixMult inefficient 8 0.9 60750000   ; name pattern bytes eff [onset]
//   app LU moderate 8 0.75                      ; onset derived from free_kb
//   end
//
// Lines starting with '#' are comments; fields may appear in any order
// between `machine` and `end`, except that every field must be present.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simcluster/cluster.hpp"

namespace fpm::sim {

/// Writes the machines in the fpm-cluster format. App entries carry their
/// ground-truth paging onsets explicitly, so a round trip is faithful even
/// for onsets that were pinned rather than derived.
void save_cluster(std::ostream& os,
                  const std::vector<SimulatedMachine>& machines);

/// Parses machines from the fpm-cluster format. Throws std::runtime_error
/// with a line number on malformed input.
std::vector<SimulatedMachine> load_cluster(std::istream& is);

/// File-path wrappers; throw std::runtime_error on I/O failure.
void save_cluster_file(const std::string& path,
                       const std::vector<SimulatedMachine>& machines);
std::vector<SimulatedMachine> load_cluster_file(const std::string& path);

/// Pattern-name round trip helpers (used by the format and fpmtool).
std::string to_string(MemoryPattern pattern);
MemoryPattern pattern_from_string(const std::string& name);

}  // namespace fpm::sim
