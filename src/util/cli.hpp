// Minimal --flag command-line parsing used by fpmtool: every flag takes
// exactly one value except declared boolean switches; flags may appear in
// any order. Kept deliberately tiny — the tool has four subcommands, not a
// framework's worth of options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fpm::util {

/// Strict non-negative integer parse: the whole string must be a base-10
/// integer with no trailing characters, no fractional part, and no sign
/// tricks ("100abc", "12.7", "-5", and out-of-range values all throw
/// std::invalid_argument naming `what`). Use for counts (--n, --repeat)
/// where a silent truncation would corrupt the experiment.
std::int64_t parse_int64(const std::string& text, const std::string& what);

/// Strict finite-double parse: the whole string must be one floating-point
/// literal — trailing characters ("1.5x"), empty input, and non-finite
/// values ("nan", "inf", overflowing exponents) all throw
/// std::invalid_argument naming `what`. Use for measured quantities and
/// tuning flags where a half-parsed value or a NaN would silently poison
/// downstream arithmetic.
double parse_double(const std::string& text, const std::string& what);

class CliArgs {
 public:
  /// Parses argv[first..argc): tokens must alternate --flag value, except
  /// flags listed in `switches` which take no value. Throws
  /// std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> switches = {}, int first = 2);

  /// Value of a flag, if present.
  std::optional<std::string> get(const std::string& key) const;

  /// Value of a required flag; throws std::invalid_argument when missing.
  std::string require(const std::string& key) const;

  /// Strict finite-double flag with a fallback (see parse_double); throws
  /// std::invalid_argument when the value is present but invalid.
  double number(const std::string& key, double fallback) const;

  /// Strict non-negative integer flag with a fallback (see parse_int64);
  /// throws std::invalid_argument when the value is present but invalid.
  std::int64_t integer(const std::string& key, std::int64_t fallback) const;

  /// True when a switch (or any flag) was given.
  bool flag(const std::string& key) const { return get(key).has_value(); }

 private:
  std::vector<std::string> switches_;
  std::map<std::string, std::string> values_;
};

}  // namespace fpm::util
