#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fpm::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  assert(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.end());
  return 0.5 * (v[mid - 1] + hi);
}

double percentile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 100.0);
  // Linear interpolation between closest ranks (the numpy default): the
  // q-th percentile sits at fractional rank q/100 * (n-1).
  const double rank = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit f;
  f.slope = (sxx > 0.0) ? sxy / sxx : 0.0;
  f.intercept = my - f.slope * mx;
  f.r2 = (sxx > 0.0 && syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

double rel_diff(double a, double b) noexcept {
  const double denom = std::max(std::abs(a), std::abs(b));
  return denom == 0.0 ? 0.0 : std::abs(a - b) / denom;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  std::vector<double> v;
  if (count == 0) return v;
  v.reserve(count);
  if (count == 1) {
    v.push_back(lo);
    return v;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    v.push_back(lo + step * static_cast<double>(i));
  v.back() = hi;  // avoid accumulated round-off on the endpoint
  return v;
}

}  // namespace fpm::util
