// Small statistics helpers used by the model builder, the workload
// simulator, and the benchmark harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fpm::util {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double stddev(std::span<const double> xs) noexcept;

/// Minimum / maximum; both require a non-empty range.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Median (copies and partially sorts); requires a non-empty range.
double median(std::span<const double> xs);

/// q-th percentile (q in [0, 100]) with linear interpolation between order
/// statistics; copies and sorts. Requires a non-empty range; q is clamped.
/// percentile(xs, 50) agrees with median(xs).
double percentile(std::span<const double> xs, double q);

/// Least-squares straight-line fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
};

/// Fits a line to (xs[i], ys[i]); requires xs.size() == ys.size() >= 2.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
double rel_diff(double a, double b) noexcept;

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geometric_mean(std::span<const double> xs);

/// Evenly spaced grid of `count` points covering [lo, hi] inclusive.
/// Requires count >= 2 (or 1, returning {lo}).
std::vector<double> linspace(double lo, double hi, std::size_t count);

}  // namespace fpm::util
