// Dense row-major matrix container used by the linear-algebra kernels and
// the example applications. Deliberately minimal: the library's contribution
// is the partitioning algorithms, not a BLAS; this container only needs to
// support the serial verification kernels and striped slicing.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace fpm::util {

/// Dense rows x cols matrix of T stored row-major in one contiguous vector.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, value-initialized (zero for arithmetic T).
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  /// rows x cols matrix filled with `init`.
  Matrix(std::size_t rows, std::size_t cols, T init)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable / const view of row r.
  std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Whole storage as a flat span (row-major).
  std::span<T> flat() noexcept { return data_; }
  std::span<const T> flat() const noexcept { return data_; }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Copies rows [first, first+count) into a new count x cols matrix.
  Matrix slice_rows(std::size_t first, std::size_t count) const {
    assert(first + count <= rows_);
    Matrix out(count, cols_);
    for (std::size_t r = 0; r < count; ++r) {
      const auto src = row(first + r);
      auto dst = out.row(r);
      for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
  }

  /// Writes `block` into rows [first, first+block.rows()).
  void paste_rows(std::size_t first, const Matrix& block) {
    assert(block.cols() == cols_ && first + block.rows() <= rows_);
    for (std::size_t r = 0; r < block.rows(); ++r) {
      const auto src = block.row(r);
      auto dst = row(first + r);
      for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
  }

  /// Returns the transpose (cols x rows).
  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;

/// Max |a(i,j) - b(i,j)|; matrices must have identical shape.
template <typename T>
T max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  T worst{};
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    const T d = a.flat()[i] < b.flat()[i] ? b.flat()[i] - a.flat()[i]
                                          : a.flat()[i] - b.flat()[i];
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace fpm::util
