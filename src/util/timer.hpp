// Wall-clock timing for the partitioner-cost experiment (Figure 21) and the
// real-kernel speed measurements.
#pragma once

#include <chrono>

namespace fpm::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fpm::util
