#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace fpm::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64: expands a 64-bit seed into well-distributed state words.
struct SplitMix64 {
  std::uint64_t x;
  std::uint64_t next() noexcept {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm{seed};
  for (auto& s : state_) s = sm.next();
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Debiased modulo via rejection (Lemire-style threshold).
  const std::uint64_t threshold = (~range + 1) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::normal() noexcept {
  // Box–Muller; draws two uniforms per call (the second variate is
  // discarded to keep the generator state a pure function of call count).
  const double u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(1.0 - u1));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> s{};
  for (const std::uint64_t j : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (j & (std::uint64_t{1} << b)) {
        s[0] ^= state_[0];
        s[1] ^= state_[1];
        s[2] ^= state_[2];
        s[3] ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = s;
}

Rng Rng::split() noexcept {
  Rng child = *this;
  child.jump();
  // Advance the parent so successive split() calls yield distinct children.
  (*this)();
  return child;
}

}  // namespace fpm::util
