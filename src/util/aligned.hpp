// Minimal over-aligned allocator so hot structure-of-arrays columns can be
// laid out on cache-line/vector-register boundaries. std::vector's default
// allocator only guarantees alignof(std::max_align_t) (16 on x86-64),
// which splits 32-byte vector loads across cache lines; the batch lanes of
// core/compiled.* allocate through AlignedAllocator<double, 64> instead so
// every column starts on a 64-byte boundary and SIMD loads stay aligned.
#pragma once

#include <cstddef>
#include <new>

namespace fpm::util {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace fpm::util
