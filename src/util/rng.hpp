// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic behaviour in the library (workload fluctuations, measurement
// noise) flows through util::Rng so every experiment is reproducible from a
// seed. The generator is xoshiro256** (Blackman & Vigna), which is fast,
// passes BigCrush, and — unlike std::mt19937 — has a trivially splittable
// state via long jumps, letting each simulated machine own an independent
// stream derived from one master seed.
#pragma once

#include <array>
#include <cstdint>

namespace fpm::util {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions, but the convenience members below avoid
/// the implementation-defined (and thus non-reproducible across standard
/// libraries) behaviour of std distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (deterministic, stateless pairing).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Returns an independent child stream. The child is produced by a
  /// 2^128-step jump of a copy of this generator, so parent and child
  /// sequences are non-overlapping for any realistic use.
  Rng split() noexcept;

 private:
  void jump() noexcept;

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fpm::util
