// Plain-text table and CSV emission for the benchmark harness. Every bench
// binary prints the rows/series of the paper table or figure it regenerates;
// this keeps that output aligned and machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpm::util {

/// Column-aligned text table with an optional title, plus CSV export.
///
/// Usage:
///   Table t{"Figure 22(a)", {"n", "speedup_500", "speedup_4000"}};
///   t.add_row({fmt(n), fmt(s1), fmt(s2)});
///   t.print(std::cout);
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Writes the aligned table (title, header, separator, rows).
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers for table cells.
std::string fmt(double v, int precision = 3);
std::string fmt(long long v);
std::string fmt(unsigned long long v);
std::string fmt(long v);
std::string fmt(unsigned long v);
std::string fmt(int v);
std::string fmt(unsigned v);

}  // namespace fpm::util
