#include "util/cli.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpm::util {

std::int64_t parse_int64(const std::string& text, const std::string& what) {
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &consumed, 10);
  } catch (const std::exception&) {
    throw std::invalid_argument(what + " expects a non-negative integer, got '" +
                                text + "'");
  }
  if (consumed != text.size() || value < 0)
    throw std::invalid_argument(what + " expects a non-negative integer, got '" +
                                text + "'");
  return value;
}

double parse_double(const std::string& text, const std::string& what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(what + " expects a finite number, got '" +
                                text + "'");
  }
  if (consumed != text.size() || !std::isfinite(value))
    throw std::invalid_argument(what + " expects a finite number, got '" +
                                text + "'");
  return value;
}

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> switches, int first)
    : switches_(std::move(switches)) {
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --flag, got '" + key + "'");
    const bool is_switch =
        std::find(switches_.begin(), switches_.end(), key) != switches_.end();
    if (is_switch) {
      values_[key] = "1";
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for " + key);
      values_[key] = argv[++i];
    }
  }
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::nullopt
                             : std::optional<std::string>(it->second);
}

std::string CliArgs::require(const std::string& key) const {
  const auto v = get(key);
  if (!v) throw std::invalid_argument("missing required flag " + key);
  return *v;
}

double CliArgs::number(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return parse_double(*v, "flag " + key);
}

std::int64_t CliArgs::integer(const std::string& key,
                              std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return parse_int64(*v, "flag " + key);
}

}  // namespace fpm::util
