#include "util/table.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fpm::util {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  if (!title_.empty()) os << "## " << title_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt(long long v) { return std::to_string(v); }
std::string fmt(unsigned long long v) { return std::to_string(v); }
std::string fmt(long v) { return std::to_string(v); }
std::string fmt(unsigned long v) { return std::to_string(v); }
std::string fmt(int v) { return std::to_string(v); }
std::string fmt(unsigned v) { return std::to_string(v); }

}  // namespace fpm::util
