// fpmtool — command-line front end to fpmlib.
//
// Subcommands:
//   save-cluster --out FILE [--preset table1|table2]
//       Write a simulated-cluster definition file (editable; see
//       docs/model-format.md) for one of the paper's testbeds.
//   demo-models --out FILE [--app NAME] [--cluster FILE]
//       Build functional models of a simulated network with the §3.1
//       procedure and save them. Default network: the paper's Table 2
//       (apps mm|lu); with --cluster, any fpm-cluster file and any app
//       registered in it.
//   measure --kernel mm|mm-blocked|lu|cholesky|arrayops --out FILE
//           [--min-elements A] [--max-elements B] [--epsilon E] [--probes K]
//       Measure THIS machine's speed function by really running the kernel,
//       and save the built model.
//   show --models FILE [--at X]
//       Print the models in a file; with --at, the speeds at size X.
//   partition --models FILE --n N [--algorithm ID] [--options "KEY V ..."]
//             [--bounds B1,B2,...] [--trace] [--single-number REF] [--csv]
//             [--repeat R] [--threads T] [--deadline-ms MS] [--priority P]
//             [--metrics]
//       Distribute N elements over the modelled processors and print the
//       result (optionally also the single-number baseline at size REF).
//       --algorithm takes any id from the partitioner registry (see
//       --list-algorithms); --trace dumps every bracket/slope decision of
//       the search. The bounded algorithm derives per-processor capacity
//       bounds from the curves unless --bounds overrides them. With
//       --repeat/--threads the request is served repeatedly through a
//       PartitionServer from T client threads, and the report includes
//       p50/p95/p99 per-request latency (--json additionally emits the
//       summary as one JSON object); --metrics dumps the process metrics
//       registry (serve-latency histogram, cache counters, engine
//       rollups) after the run. --deadline-ms attaches a latency SLO to
//       every request (served via serve_slo: admission control may answer
//       approximately from the hint store, or shed) and --priority
//       low|normal|high sets its class; the report then adds the
//       admitted/degraded/shed outcome mix and deadline misses. --simd
//       pins the vector backend of the batch kernels (auto|off|portable|
//       avx2|avx512|neon; names not compiled in or not supported by this
//       CPU are rejected with exit status 1), overriding the
//       FPM_SIMD_BACKEND environment variable, which is validated just as
//       strictly when the flag is absent; the active backend is echoed in
//       the report and in the --json summary.
//   partition --list-algorithms
//       Print the registered partitioners (id, cost, description).
//   simulate --app NAME --n MATRIX_N [--cluster FILE] [--reference REF_N]
//       Figure-22-style experiment on a simulated network: build models,
//       plan the striped matrix multiplication of an N x N matrix with the
//       functional and single-number models, and print both simulated
//       makespans. Default network: Table 2 with NAME in {mm}.
//   metrics [--format table|json|prometheus]
//       Print the metric catalogue (every metric the library exports, with
//       its kind and meaning), or dump the registry's current values as
//       JSON / Prometheus text.
//
// Exit status: 0 on success, 1 on CLI errors, 2 on runtime failures.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fleetgen.hpp"
#include "core/fpm.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "apps/striped_mm.hpp"
#include "core/model_io.hpp"
#include "linalg/real_source.hpp"
#include "simcluster/presets.hpp"
#include "simcluster/spec_io.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace fpm;

int usage() {
  std::cerr
      << "usage:\n"
         "  fpmtool save-cluster --out FILE [--preset table1|table2]\n"
         "  fpmtool demo-models --out FILE [--app NAME] [--cluster FILE]\n"
         "  fpmtool measure --kernel mm|mm-blocked|lu|cholesky|arrayops --out FILE\n"
         "          [--min-elements A] [--max-elements B] [--epsilon E] "
         "[--probes K]\n"
         "  fpmtool show --models FILE [--at X]\n"
         "  fpmtool partition --models FILE --n N [--algorithm ID]\n"
         "          [--options \"KEY VALUE ...\"] [--bounds B1,B2,...] "
         "[--trace]\n"
         "          [--single-number REF] [--csv] [--repeat R] [--threads T]"
         " [--json] [--metrics]\n"
         "          [--deadline-ms MS] [--priority low|normal|high]\n"
         "          [--simd auto|off|portable|avx2|avx512|neon]\n"
         "  fpmtool partition --list-algorithms\n"
         "  fpmtool simulate --app NAME --n MATRIX_N [--cluster FILE] "
         "[--reference REF_N]\n"
         "  fpmtool gen-fleet --p P --out FILE [--seed S] [--points K]\n"
         "          [--mix CONST,LIN,POW,EXP,PIECE,STEP]\n"
         "  fpmtool metrics [--format table|json|prometheus]\n";
  return 1;
}

int cmd_save_cluster(const util::CliArgs& args) {
  const std::string out = args.require("--out");
  const std::string preset = args.get("--preset").value_or("table2");
  if (preset == "table1")
    sim::save_cluster_file(out, sim::table1_machines());
  else if (preset == "table2")
    sim::save_cluster_file(out, sim::table2_machines());
  else
    throw std::invalid_argument("--preset must be table1 or table2");
  std::cout << "wrote cluster definition to " << out << "\n";
  return 0;
}

int cmd_demo_models(const util::CliArgs& args) {
  const std::string out = args.require("--out");
  const std::string app_key = args.get("--app").value_or("mm");
  std::string app = app_key == "lu" ? sim::kLu
                    : app_key == "mm" ? sim::kMatMul
                                      : app_key;

  auto cluster = [&] {
    if (const auto path = args.get("--cluster"))
      return sim::SimulatedCluster(sim::load_cluster_file(*path), 0xf9a2);
    if (app_key != "mm" && app_key != "lu")
      throw std::invalid_argument(
          "--app must be mm or lu for the Table-2 preset (or pass --cluster)");
    return sim::make_table2_cluster();
  }();
  std::vector<core::NamedModel> models;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const sim::MachineSpeed& truth = cluster.ground_truth(i, app);
    sim::MachineMeasurement source(cluster, i, app);
    core::BuilderOptions opts;
    opts.epsilon = 0.08;
    opts.samples_per_point = 5;
    opts.min_size = truth.cache_capacity() * 0.25;
    opts.max_size = truth.max_size();
    const core::BuiltModel built = core::build_speed_band(source, opts);
    models.push_back(core::make_named_model(cluster.machine(i).spec.name,
                                            built.band, opts.epsilon));
    std::cerr << cluster.machine(i).spec.name << ": " << built.probes
              << " probes\n";
  }
  core::save_models_file(out, models);
  std::cout << "wrote " << models.size() << " models to " << out << "\n";
  return 0;
}

int cmd_measure(const util::CliArgs& args) {
  const std::string out = args.require("--out");
  const std::string kernel_key = args.require("--kernel");
  linalg::Kernel kernel;
  if (kernel_key == "mm")
    kernel = linalg::Kernel::MatMulNaive;
  else if (kernel_key == "mm-blocked")
    kernel = linalg::Kernel::MatMulBlocked;
  else if (kernel_key == "lu")
    kernel = linalg::Kernel::LuFactor;
  else if (kernel_key == "cholesky")
    kernel = linalg::Kernel::Cholesky;
  else if (kernel_key == "arrayops")
    kernel = linalg::Kernel::ArrayOps;
  else
    throw std::invalid_argument("unknown kernel '" + kernel_key + "'");

  linalg::RealKernelSource source(kernel);
  core::BuilderOptions opts;
  opts.min_size = args.number("--min-elements", 3.0 * 48 * 48);
  opts.max_size = args.number("--max-elements", 3.0 * 600 * 600);
  opts.epsilon = args.number("--epsilon", 0.10);
  opts.max_probes = static_cast<int>(args.number("--probes", 24));
  std::cerr << "measuring " << source.name() << " over ["
            << opts.min_size << ", " << opts.max_size << "] elements...\n";
  const core::BuiltModel built = core::build_speed_band(source, opts);
  core::save_models_file(
      out, {core::make_named_model(source.name(), built.band, opts.epsilon)});
  std::cout << "wrote model (" << built.probes << " probes) to " << out
            << "\n";
  return 0;
}

int cmd_show(const util::CliArgs& args) {
  const auto models = core::load_models_file(args.require("--models"));
  const auto at = args.get("--at");
  util::Table t("models",
                at ? std::vector<std::string>{"name", "points", "max_size",
                                              "speed_at_" + *at}
                   : std::vector<std::string>{"name", "points", "max_size",
                                              "peak_speed"});
  for (const core::NamedModel& m : models) {
    const core::PiecewiseLinearSpeed curve = m.curve();
    double shown;
    if (at) {
      shown = curve.speed(util::parse_double(*at, "flag --at"));
    } else {
      shown = 0.0;
      for (const core::SpeedPoint& p : curve.points())
        shown = std::max(shown, p.speed);
    }
    t.add_row({m.name, util::fmt(curve.points().size()),
               util::fmt(curve.max_size(), 0), util::fmt(shown, 2)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_list_algorithms() {
  util::Table t("registered partitioners",
                {"id", "cost (intersection solves)", "summary"});
  for (const core::PartitionerInfo& info :
       core::partitioner_registry().entries())
    t.add_row({info.id, info.complexity, info.summary});
  t.print(std::cout);
  return 0;
}

/// Splits an --options string ("stall_window 4 bisect_angles true") into
/// the key/value tokens parse_policy expects.
std::vector<std::string> split_tokens(const std::string& text) {
  std::istringstream ss(text);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

/// Parses a --bounds CSV ("100,200,300") into per-processor bounds.
std::vector<std::int64_t> parse_bounds_csv(const std::string& text) {
  std::vector<std::int64_t> bounds;
  std::istringstream ss(text);
  std::string field;
  while (std::getline(ss, field, ',')) {
    try {
      std::size_t used = 0;
      bounds.push_back(std::stoll(field, &used));
      if (used != field.size()) throw std::invalid_argument(field);
    } catch (const std::exception&) {
      throw std::invalid_argument("--bounds: bad entry '" + field + "'");
    }
  }
  if (bounds.empty()) throw std::invalid_argument("--bounds: empty list");
  return bounds;
}

/// Human scale for a histogram bucket bound in seconds.
std::string fmt_seconds(double s) {
  if (s < 1e-3) return util::fmt(s * 1e6, 1) + " us";
  if (s < 1.0) return util::fmt(s * 1e3, 2) + " ms";
  return util::fmt(s, 3) + " s";
}

/// Dumps the process metrics registry: one table for counters and gauges,
/// one per non-empty histogram (zero buckets skipped for readability).
void print_metrics_report(std::ostream& os) {
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  util::Table scalars("metrics: counters & gauges", {"name", "value"});
  for (const auto& [name, value] : snap.counters)
    scalars.add_row({name, util::fmt(static_cast<long long>(value))});
  for (const auto& [name, value] : snap.gauges)
    scalars.add_row({name, util::fmt(static_cast<long long>(value))});
  scalars.print(os);
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    util::Table t("histogram: " + name, {"le", "count"});
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      t.add_row({i < h.bounds.size() ? fmt_seconds(h.bounds[i]) : "+Inf",
                 util::fmt(static_cast<long long>(h.counts[i]))});
    }
    t.print(os);
    os << "  count " << h.count << ", mean "
       << fmt_seconds(h.sum / static_cast<double>(h.count)) << "\n";
  }
}

int cmd_metrics(const util::CliArgs& args) {
  const std::string format = args.get("--format").value_or("table");
  if (format == "json") {
    std::cout << obs::metrics().to_json() << "\n";
    return 0;
  }
  if (format == "prometheus") {
    std::cout << obs::metrics().to_prometheus();
    return 0;
  }
  if (format != "table")
    throw std::invalid_argument("--format must be table, json, or prometheus");
  util::Table t("metric catalogue", {"name", "kind", "measures"});
  for (const obs::MetricInfo& info : obs::metric_catalogue())
    t.add_row({info.name, info.kind, info.help});
  t.print(std::cout);
  return 0;
}

int cmd_partition(const util::CliArgs& args) {
  if (args.flag("--list-algorithms")) return cmd_list_algorithms();
  const auto models = core::load_models_file(args.require("--models"));
  if (models.empty()) throw std::runtime_error("no models in file");
  // Strict parse: "100abc" or "12.7" must be a CLI error, not a silent
  // truncation that partitions the wrong n.
  const std::int64_t n = util::parse_int64(args.require("--n"), "--n");
  const std::string algo = args.get("--algorithm").value_or(
      core::kAlgorithmCombined);
  if (!core::partitioner_registry().contains(algo))
    throw std::invalid_argument(
        "--algorithm must be one of: " +
        core::partitioner_registry().joined_ids());

  std::vector<core::PiecewiseLinearSpeed> curves;
  curves.reserve(models.size());
  for (const core::NamedModel& m : models) curves.push_back(m.curve());
  core::SpeedList speeds;
  for (const auto& c : curves) speeds.push_back(&c);

  core::PartitionPolicy policy = core::parse_policy(
      algo, split_tokens(args.get("--options").value_or("")));
  if (const auto bounds = args.get("--bounds"))
    policy.bounds = parse_bounds_csv(*bounds);

  // SIMD backend selection for the batch kernels: --simd wins; with the
  // flag absent, an FPM_SIMD_BACKEND environment value is validated here so
  // a typo fails the run loudly (the library alone would silently ignore
  // it and keep auto dispatch). Bad names/unsupported ISAs throw
  // std::invalid_argument -> exit status 1.
  if (const auto simd = args.get("--simd"))
    core::force_simd_backend(*simd);
  else if (const char* env = std::getenv("FPM_SIMD_BACKEND"))
    core::force_simd_backend(env);
  core::StepTrace trace;
  if (args.flag("--trace")) policy.observer = trace.observer();

  const std::int64_t repeat = args.integer("--repeat", 1);
  const auto threads = static_cast<unsigned>(args.integer("--threads", 0));
  if (repeat < 1) throw std::invalid_argument("--repeat must be >= 1");
  if (args.flag("--trace") && (repeat > 1 || threads > 0))
    throw std::invalid_argument(
        "--trace cannot be combined with --repeat/--threads (the trace "
        "would interleave across requests)");

  core::Slo slo;
  if (const auto dl = args.get("--deadline-ms"))
    slo.deadline_s = util::parse_double(*dl, "flag --deadline-ms") * 1e-3;
  if (const auto prio = args.get("--priority")) {
    if (*prio == "low")
      slo.priority = core::Priority::Low;
    else if (*prio == "normal")
      slo.priority = core::Priority::Normal;
    else if (*prio == "high")
      slo.priority = core::Priority::High;
    else
      throw std::invalid_argument("--priority must be low, normal, or high");
  }
  if (slo.has_deadline() && args.flag("--trace"))
    throw std::invalid_argument(
        "--trace cannot be combined with --deadline-ms (observer-carrying "
        "requests are never degraded, so the SLO path adds nothing)");

  core::PartitionResult result;
  if (slo.has_deadline() && repeat == 1 && threads == 0) {
    // One SLO-aware request: report the outcome explicitly; a shed request
    // has no partition to print.
    core::PartitionServer server({.threads = 1});
    const core::ServeResult r = server.serve_slo(speeds, n, policy, slo);
    std::cout << "slo: status=" << core::to_string(r.status)
              << " shed_reason=" << core::to_string(r.shed_reason)
              << " latency=" << util::fmt(r.latency_s * 1e3, 4)
              << " ms deadline_met=" << (r.deadline_met ? "yes" : "no");
    if (r.status == core::ServeStatus::Degraded)
      std::cout << " error_bound=" << util::fmt(r.error_bound, 6);
    std::cout << "\n";
    if (!r.answered()) {
      std::cout << "request shed (" << core::to_string(r.shed_reason)
                << "): no partition to print\n";
      return 0;
    }
    result = r.result;
  } else if (repeat > 1 || threads > 0) {
    // Throughput mode: hammer a shared PartitionServer with the same
    // request from T client threads, timing every serve() call so the
    // report can show latency percentiles, not just the aggregate rate.
    // The printed partition is the first answer (all of them are
    // identical).
    const unsigned clients = threads == 0 ? 1 : threads;
    core::ServerOptions sopts;
    sopts.threads = 1;  // serve() runs on the client threads; pool is idle
    core::PartitionServer server(sopts);
    std::vector<double> latency_ms(static_cast<std::size_t>(repeat), 0.0);
    core::PartitionResult first_result;
    std::atomic<bool> have_first{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
    util::Timer timer;
    {
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (unsigned t = 0; t < clients; ++t)
        pool.emplace_back([&, t] {
          try {
            for (auto i = static_cast<std::size_t>(t);
                 i < latency_ms.size(); i += clients) {
              util::Timer one;
              if (slo.has_deadline()) {
                core::ServeResult r = server.serve_slo(speeds, n, policy, slo);
                latency_ms[i] = r.latency_s * 1e3;
                if (r.answered() && !have_first.exchange(true)) {
                  std::lock_guard<std::mutex> lock(error_mu);
                  first_result = std::move(r.result);
                }
              } else {
                core::PartitionResult r = server.serve(speeds, n, policy);
                latency_ms[i] = one.seconds() * 1e3;
                if (i == 0) {
                  have_first.store(true);
                  first_result = std::move(r);
                }
              }
            }
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        });
      for (std::thread& th : pool) th.join();
    }
    if (first_error) std::rethrow_exception(first_error);
    const double seconds = timer.seconds();
    if (slo.has_deadline()) {
      const core::SloStats ss = server.slo_stats();
      std::cout << "slo (" << core::to_string(slo.priority) << ", "
                << util::fmt(slo.deadline_s * 1e3, 1)
                << " ms deadline): offered=" << ss.offered
                << " admitted=" << ss.admitted << " degraded=" << ss.degraded
                << " shed=" << ss.shed << " deadline_misses="
                << ss.deadline_misses << "\n";
      if (!have_first.load()) {
        std::cout << "every request was shed: no partition to print\n";
        return 0;
      }
    }
    result = std::move(first_result);
    const core::CacheStats cs = server.cache_stats();
    const double total =
        static_cast<double>(cs.hits + cs.misses + cs.uncacheable);
    const double rate =
        static_cast<double>(repeat) / std::max(seconds, 1e-12);
    const double p50 = util::percentile(latency_ms, 50.0);
    const double p95 = util::percentile(latency_ms, 95.0);
    const double p99 = util::percentile(latency_ms, 99.0);
    std::cout << "served " << repeat << " requests on " << clients
              << " client thread(s) in " << util::fmt(seconds * 1e3, 2)
              << " ms (" << util::fmt(rate, 0)
              << " req/s, cache hit rate "
              << util::fmt(total > 0.0
                               ? 100.0 * static_cast<double>(cs.hits) / total
                               : 0.0,
                           1)
              << "%)\n";
    std::cout << "cache: " << cs.hits << " hits, " << cs.misses
              << " misses, " << cs.uncacheable << " uncacheable, "
              << cs.evictions << " evictions, " << cs.entries
              << " entries\n";
    util::Table lat("serve latency over " + std::to_string(repeat) +
                        " requests (ms)",
                    {"p50", "p95", "p99", "min", "max", "mean"});
    lat.add_row({util::fmt(p50, 4), util::fmt(p95, 4), util::fmt(p99, 4),
                 util::fmt(util::min_of(latency_ms), 4),
                 util::fmt(util::max_of(latency_ms), 4),
                 util::fmt(util::mean(latency_ms), 4)});
    if (args.flag("--csv"))
      lat.print_csv(std::cout);
    else
      lat.print(std::cout);
    if (args.flag("--json"))
      std::cout << "{\"requests\":" << repeat << ",\"threads\":" << clients
                << ",\"seconds\":" << util::fmt(seconds, 6)
                << ",\"req_per_s\":" << util::fmt(rate, 1)
                << ",\"simd_backend\":\""
                << core::to_string(core::active_simd_backend())
                << "\",\"latency_ms\":{\"p50\":" << util::fmt(p50, 6)
                << ",\"p95\":" << util::fmt(p95, 6) << ",\"p99\":"
                << util::fmt(p99, 6) << ",\"min\":"
                << util::fmt(util::min_of(latency_ms), 6) << ",\"max\":"
                << util::fmt(util::max_of(latency_ms), 6) << ",\"mean\":"
                << util::fmt(util::mean(latency_ms), 6) << "}}\n";
  } else {
    result = core::partition(speeds, n, policy);
  }

  std::optional<core::Distribution> baseline;
  if (const auto ref = args.get("--single-number"))
    baseline = core::partition_single_number_at(
        speeds, n, util::parse_double(*ref, "flag --single-number"));

  util::Table t("partition of " + std::to_string(n) + " elements (" +
                    result.stats.algorithm + ")",
                baseline ? std::vector<std::string>{"processor", "elements",
                                                    "time", "single_number"}
                         : std::vector<std::string>{"processor", "elements",
                                                    "time"});
  const auto times = core::execution_times(speeds, result.distribution);
  for (std::size_t i = 0; i < models.size(); ++i) {
    std::vector<std::string> row{models[i].name,
                                 util::fmt(result.distribution.counts[i]),
                                 util::fmt(times[i], 4)};
    if (baseline) row.push_back(util::fmt(baseline->counts[i]));
    t.add_row(row);
  }
  if (args.flag("--csv"))
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  std::cout << "makespan: " << core::makespan(speeds, result.distribution)
            << " (" << result.stats.iterations << " iterations, "
            << result.stats.speed_evals << " speed evals, "
            << result.stats.intersect_solves << " intersection solves)\n";
  std::cout << "simd backend: " << core::to_string(core::active_simd_backend())
            << "\n";
  if (baseline)
    std::cout << "single-number makespan: "
              << core::makespan(speeds, *baseline) << "\n";

  if (args.flag("--trace")) {
    util::Table steps("search trace (" + result.stats.algorithm + ")",
                      {"step", "kind", "slope", "bracket_lo", "bracket_hi",
                       "interior", "kept"});
    for (const core::SearchStep& s : trace.steps())
      steps.add_row({util::fmt(s.iteration), core::to_string(s.kind),
                     util::fmt(s.slope, 6), util::fmt(s.lo_slope, 6),
                     util::fmt(s.hi_slope, 6), util::fmt(s.interior),
                     s.kind == core::SearchStepKind::Bracket
                         ? std::string("-")
                         : std::string(s.kept_low ? "low" : "high")});
    steps.print(std::cout);
    if (trace.truncated())
      std::cout << "trace truncated; counters cover the full search\n";
    std::cout << "trace: " << trace.search_steps() << " search steps, "
              << trace.brackets() << " bracket(s)\n";
    if (trace.search_steps() != result.stats.iterations)
      std::cout << "warning: trace step count disagrees with "
                   "stats.iterations ("
                << result.stats.iterations << ")\n";
  }
  if (args.flag("--metrics")) print_metrics_report(std::cout);
  return 0;
}

}  // namespace

int cmd_simulate(const util::CliArgs& args) {
  const std::string app = args.get("--app").value_or(sim::kMatMul);
  const auto n = static_cast<std::int64_t>(args.number("--n", 20000));
  const auto ref = static_cast<std::int64_t>(args.number("--reference", 500));
  // The spec file's top-level `policy` line selects the partitioner the
  // functional plan runs with; preset clusters use the default policy.
  core::PartitionPolicy policy;
  auto cluster = [&] {
    if (const auto path = args.get("--cluster")) {
      sim::ClusterSpec spec = sim::load_cluster_spec_file(*path);
      policy = std::move(spec.policy);
      return sim::SimulatedCluster(std::move(spec.machines), 0xf9a2);
    }
    return sim::make_table2_cluster();
  }();

  std::cerr << "building functional models...\n";
  const sim::ClusterModels models = sim::build_cluster_models(cluster, app);
  const auto functional = apps::plan_striped_mm(
      models.list(), n, apps::ModelKind::Functional, ref, policy);
  const auto single = apps::plan_striped_mm(
      models.list(), n, apps::ModelKind::SingleNumber, ref);

  util::Table t("striped MM, n = " + std::to_string(n),
                {"machine", "functional_rows", "single_number_rows"});
  for (std::size_t i = 0; i < cluster.size(); ++i)
    t.add_row({cluster.machine(i).spec.name, util::fmt(functional.rows[i]),
               util::fmt(single.rows[i])});
  t.print(std::cout);
  const double tf =
      apps::simulate_striped_mm_seconds(cluster, app, functional, n, false);
  const double ts =
      apps::simulate_striped_mm_seconds(cluster, app, single, n, false);
  std::cout << "simulated makespan, functional    : " << util::fmt(tf, 1)
            << " s\n";
  std::cout << "simulated makespan, single-number : " << util::fmt(ts, 1)
            << " s  (speedup " << util::fmt(ts / tf, 2) << "x)\n";
  return 0;
}

/// Samples a synthetic fleet (core/fleetgen.hpp) into piecewise-linear
/// models and writes them in the fpm-model format, so thousand-rank
/// workloads can be driven through `partition --models` without hand-written
/// spec files. The sampling grid is geometric up to each machine's
/// max_size; the saved curve is the analytic model within interpolation
/// error.
int cmd_gen_fleet(const util::CliArgs& args) {
  const auto p = static_cast<std::size_t>(args.integer("--p", 0));
  if (p == 0) throw std::invalid_argument("gen-fleet: --p must be >= 1");
  const std::string out = args.require("--out");
  const auto seed = static_cast<std::uint64_t>(args.integer("--seed", 42));
  const auto points = static_cast<std::size_t>(args.integer("--points", 24));
  if (points < 2)
    throw std::invalid_argument("gen-fleet: --points must be >= 2");

  core::FleetMix mix;
  if (const auto spec = args.get("--mix")) {
    double* const weights[6] = {&mix.constant, &mix.linear_decay,
                                &mix.power_decay, &mix.exp_decay,
                                &mix.piecewise, &mix.stepped};
    std::stringstream ss(*spec);
    std::string tok;
    std::size_t i = 0;
    while (std::getline(ss, tok, ',')) {
      if (i >= 6)
        throw std::invalid_argument("gen-fleet: --mix takes 6 weights");
      *weights[i++] = util::parse_double(tok, "--mix");
    }
    if (i != 6)
      throw std::invalid_argument("gen-fleet: --mix takes 6 weights");
  }

  const core::SyntheticFleet fleet = core::make_synthetic_fleet(p, seed, mix);
  std::vector<core::NamedModel> models;
  models.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    const core::SpeedFunction& f = *fleet.owned[i];
    const double hi = f.max_size();
    const double lo = std::max(1.0, hi * 1e-5);
    std::vector<core::SpeedPoint> pts;
    pts.reserve(points);
    for (std::size_t j = 0; j < points; ++j) {
      const double t =
          static_cast<double>(j) / static_cast<double>(points - 1);
      const double x = lo * std::pow(hi / lo, t);
      pts.push_back({x, f.speed(x)});
    }
    std::string name = "synth-" + std::to_string(i);
    models.push_back(core::make_named_model(
        std::move(name), core::PiecewiseLinearSpeed(std::move(pts))));
  }
  core::save_models_file(out, models);
  std::cout << "wrote " << models.size() << " synthetic models to " << out
            << "\n";
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const util::CliArgs args(
        argc, argv,
        {"--csv", "--trace", "--list-algorithms", "--metrics", "--json"});
    if (command == "save-cluster") return cmd_save_cluster(args);
    if (command == "demo-models") return cmd_demo_models(args);
    if (command == "measure") return cmd_measure(args);
    if (command == "show") return cmd_show(args);
    if (command == "partition") return cmd_partition(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "gen-fleet") return cmd_gen_fleet(args);
    if (command == "metrics") return cmd_metrics(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::invalid_argument& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 2;
  }
}
