// Tests for the dynamic load-balancing subsystem: the online model's
// learning and repair behaviour, the rebalancer's policy (threshold,
// warm-up, migration cost), and end-to-end iterative simulations with
// background-load drift.
#include <gtest/gtest.h>

#include "balance/iterative_sim.hpp"
#include "balance/online_model.hpp"
#include "balance/rebalancer.hpp"
#include "simcluster/presets.hpp"

namespace fpm::balance {
namespace {

OnlineModelOptions small_model() {
  OnlineModelOptions o;
  o.min_size = 10.0;
  o.max_size = 1e6;
  o.buckets = 16;
  return o;
}

TEST(OnlineModel, StartsEmptyAndBecomesReady) {
  OnlineModel m(small_model());
  EXPECT_FALSE(m.ready());
  EXPECT_FALSE(m.estimate(100.0).has_value());
  m.observe(100.0, 50.0);
  EXPECT_TRUE(m.ready());
  EXPECT_EQ(m.observations(), 1u);
  EXPECT_NEAR(*m.estimate(100.0), 50.0, 1e-9);
}

TEST(OnlineModel, IgnoresGarbageObservations) {
  OnlineModel m(small_model());
  m.observe(-5.0, 10.0);
  m.observe(100.0, 0.0);
  m.observe(100.0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(m.ready());
}

TEST(OnlineModel, EwmaTracksAStepChange) {
  OnlineModelOptions o = small_model();
  o.learning_rate = 0.5;
  OnlineModel m(o);
  for (int i = 0; i < 20; ++i) m.observe(1000.0, 100.0);
  EXPECT_NEAR(*m.estimate(1000.0), 100.0, 1e-6);
  for (int i = 0; i < 20; ++i) m.observe(1000.0, 40.0);  // load arrives
  EXPECT_NEAR(*m.estimate(1000.0), 40.0, 0.5);
}

TEST(OnlineModel, LearnsADecreasingCurve) {
  OnlineModel m(small_model());
  // Feed a paging-like truth: fast when small, slow when large.
  for (double x = 20.0; x < 1e6; x *= 1.6)
    m.observe(x, x < 1e4 ? 200.0 : 20.0);
  const core::PiecewiseLinearSpeed curve = m.curve();
  EXPECT_GT(curve.speed(1000.0), curve.speed(5e5));
  EXPECT_TRUE(core::satisfies_shape_requirement(curve));
}

TEST(OnlineModel, CurveAlwaysSatisfiesShapeRequirement) {
  // Even adversarial observations (speed rising with size) export a valid
  // model thanks to the monotone-ratio repair.
  OnlineModel m(small_model());
  for (double x = 20.0; x < 1e6; x *= 2.0) m.observe(x, x);  // absurd
  EXPECT_TRUE(core::satisfies_shape_requirement(m.curve()));
}

TEST(OnlineModel, RejectsBadOptions) {
  OnlineModelOptions o = small_model();
  o.buckets = 1;
  EXPECT_THROW(OnlineModel{o}, std::invalid_argument);
  o = small_model();
  o.learning_rate = 0.0;
  EXPECT_THROW(OnlineModel{o}, std::invalid_argument);
  o = small_model();
  o.max_size = o.min_size;
  EXPECT_THROW(OnlineModel{o}, std::invalid_argument);
}

TEST(OnlineModel, PersistsAndRestoresThroughModelIo) {
  OnlineModel original(small_model());
  for (double x = 20.0; x < 1e6; x *= 2.5)
    original.observe(x, 500.0 / (1.0 + x / 1e4));
  const core::NamedModel saved = original.to_named_model("worker-3");
  EXPECT_EQ(saved.name, "worker-3");

  OnlineModel restored(small_model());
  restored.restore(saved);
  ASSERT_TRUE(restored.ready());
  const auto a = original.curve();
  const auto b = restored.curve();
  for (double x = 50.0; x < 1e6; x *= 3.0)
    EXPECT_NEAR(a.speed(x), b.speed(x), 1e-9 * a.speed(x)) << x;

  // And the restored model keeps adapting.
  for (int i = 0; i < 30; ++i) restored.observe(1000.0, 9999.0);
  EXPECT_GT(*restored.estimate(1000.0), *original.estimate(1000.0));
}

TEST(OnlineModel, ToNamedModelRequiresObservations) {
  const OnlineModel empty(small_model());
  EXPECT_THROW((void)empty.to_named_model("x"), std::logic_error);
}

TEST(Rebalancer, StartsEvenAndHonoursWarmup) {
  RebalancerOptions opts;
  opts.warmup_iterations = 3;
  Rebalancer rb(4, 1000, small_model(), opts);
  EXPECT_EQ(rb.distribution().counts, (std::vector<std::int64_t>{250, 250, 250, 250}));
  // Heavily imbalanced observations during warm-up must not repartition.
  const std::vector<double> times{10.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(rb.step(times));
  EXPECT_FALSE(rb.step(times));
  EXPECT_FALSE(rb.step(times));
  EXPECT_EQ(rb.repartitions(), 0);
  // After warm-up the same signal triggers a repartition.
  EXPECT_TRUE(rb.step(times));
  EXPECT_EQ(rb.repartitions(), 1);
  EXPECT_EQ(rb.distribution().total(), 1000);
  // The slow processor 0 must now hold fewer elements.
  EXPECT_LT(rb.distribution().counts[0], 250);
}

TEST(Rebalancer, QuietWhenBalanced) {
  RebalancerOptions opts;
  opts.warmup_iterations = 0;
  opts.imbalance_threshold = 0.10;
  Rebalancer rb(3, 999, small_model(), opts);
  const std::vector<double> even_times{1.0, 1.02, 0.99};
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(rb.step(even_times));
  EXPECT_EQ(rb.repartitions(), 0);
  EXPECT_NEAR(rb.last_imbalance(), 0.0294, 0.01);
}

TEST(Rebalancer, MigrationCostVetoesMarginalMoves) {
  RebalancerOptions cheap;
  cheap.warmup_iterations = 0;
  cheap.imbalance_threshold = 0.05;
  RebalancerOptions expensive = cheap;
  expensive.migration_cost_per_element_s = 1.0;  // absurdly expensive moves
  Rebalancer rb_cheap(2, 1000, small_model(), cheap);
  Rebalancer rb_expensive(2, 1000, small_model(), expensive);
  const std::vector<double> times{2.0, 1.0};
  EXPECT_TRUE(rb_cheap.step(times));
  EXPECT_FALSE(rb_expensive.step(times));
}

TEST(Rebalancer, RejectsBadInput) {
  EXPECT_THROW(Rebalancer(core::Distribution{}, small_model(), {}),
               std::invalid_argument);
  Rebalancer rb(2, 100, small_model(), {});
  EXPECT_THROW(rb.step(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Rebalancer, ConvergesToSpeedProportionalShares) {
  // Two processors, hidden constant speeds 300 and 100 elem/s: after a few
  // iterations the shares should approach 3:1.
  RebalancerOptions opts;
  opts.warmup_iterations = 0;
  opts.imbalance_threshold = 0.02;
  Rebalancer rb(2, 4000, small_model(), opts);
  for (int it = 0; it < 12; ++it) {
    const auto& d = rb.distribution();
    const std::vector<double> times{static_cast<double>(d.counts[0]) / 300.0,
                                    static_cast<double>(d.counts[1]) / 100.0};
    rb.step(times);
  }
  EXPECT_NEAR(static_cast<double>(rb.distribution().counts[0]), 3000.0, 150.0);
}

TEST(Rebalancer, DrainsACollapsedProcessorWithoutThrashing) {
  // Three equal processors; mid-run processor 2 collapses to a tenth of
  // its speed (a crashed disk, a runaway job). The evacuation path must
  // drain it within collapse_strikes iterations of the collapse and then
  // settle — no further repartitions once the survivors are balanced.
  RebalancerOptions opts;
  opts.warmup_iterations = 0;
  opts.evacuation_speed_fraction = 0.4;
  opts.collapse_strikes = 2;
  Rebalancer rb(3, 3000, small_model(), opts);
  std::vector<double> speed{1000.0, 1000.0, 1000.0};
  const auto iterate = [&] {
    const auto& d = rb.distribution();
    std::vector<double> times(3);
    for (std::size_t i = 0; i < 3; ++i)
      times[i] =
          d.counts[i] > 0 ? static_cast<double>(d.counts[i]) / speed[i] : 0.0;
    return rb.step(times);
  };
  for (int it = 0; it < 4; ++it) iterate();
  EXPECT_EQ(rb.evacuations(), 0);

  speed[2] = 100.0;  // ~10x collapse
  int drained_after = -1;
  for (int it = 0; it < 6 && drained_after < 0; ++it)
    if (iterate() && !rb.active(2)) drained_after = it + 1;
  ASSERT_GT(drained_after, 0) << "collapsed processor never drained";
  EXPECT_LE(drained_after, opts.collapse_strikes + 1);
  EXPECT_FALSE(rb.active(2));
  EXPECT_EQ(rb.evacuations(), 1);
  EXPECT_EQ(rb.distribution().counts[2], 0);
  EXPECT_EQ(rb.distribution().total(), 3000);

  // Post-drain stability: the two equal survivors are balanced, so the
  // rebalancer must go quiet instead of thrashing.
  const int settled = rb.repartitions();
  for (int it = 0; it < 10; ++it) iterate();
  EXPECT_EQ(rb.repartitions(), settled);
  EXPECT_EQ(rb.distribution().counts[2], 0);
}

TEST(Rebalancer, DrainsAProcessorThatStopsReporting) {
  // A machine that holds a share but returns no valid time at all (NaN —
  // e.g. it hangs and the measurement never completes) is drained after
  // max_missing_measurements consecutive silent iterations.
  RebalancerOptions opts;
  opts.warmup_iterations = 0;
  opts.max_missing_measurements = 3;
  Rebalancer rb(2, 1000, small_model(), opts);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  int drained_at = -1;
  for (int it = 0; it < 6 && drained_at < 0; ++it) {
    const auto& d = rb.distribution();
    const std::vector<double> times{
        static_cast<double>(d.counts[0]) / 500.0, nan};
    if (rb.step(times)) drained_at = it + 1;
  }
  EXPECT_EQ(drained_at, 3);
  EXPECT_FALSE(rb.active(1));
  EXPECT_EQ(rb.evacuations(), 1);
  EXPECT_EQ(rb.distribution().counts,
            (std::vector<std::int64_t>{1000, 0}));
}

TEST(Rebalancer, EvacuationDisabledByDefault) {
  // With the default options a persistently slow processor is handled by
  // ordinary rebalancing (smaller share), never declared dead: existing
  // callers see exactly the old policy.
  RebalancerOptions opts;
  opts.warmup_iterations = 0;
  Rebalancer rb(2, 1000, small_model(), opts);
  for (int it = 0; it < 8; ++it) {
    const auto& d = rb.distribution();
    const std::vector<double> times{
        static_cast<double>(d.counts[0]) / 1000.0,
        d.counts[1] > 0 ? static_cast<double>(d.counts[1]) / 100.0 : 0.0};
    rb.step(times);
  }
  EXPECT_TRUE(rb.active(0));
  EXPECT_TRUE(rb.active(1));
  EXPECT_EQ(rb.evacuations(), 0);
  EXPECT_GE(rb.repartitions(), 1);
  EXPECT_GT(rb.distribution().counts[1], 0);
}

TEST(IterativeSim, OnlineBeatsStaticEvenOnHeterogeneousCluster) {
  auto c1 = sim::make_table2_cluster(5);
  auto c2 = sim::make_table2_cluster(5);
  IterativeOptions opts;
  opts.n = 3'000'000;
  opts.iterations = 30;
  opts.policy = BalancePolicy::StaticEven;
  const IterativeResult even = simulate_iterative(c1, sim::kMatMul, opts);
  opts.policy = BalancePolicy::Online;
  opts.rebalance.warmup_iterations = 1;
  const IterativeResult online = simulate_iterative(c2, sim::kMatMul, opts);
  EXPECT_LT(online.total_seconds, even.total_seconds);
  EXPECT_GE(online.repartitions, 1);
}

TEST(IterativeSim, OnlineRecoversFromLoadDrift) {
  // A heavy external job lands on the fast X3 mid-run: the static
  // functional distribution keeps overloading it; the online policy
  // re-learns and repartitions.
  const std::vector<DriftEvent> drift{{10, 2, 0.8}};
  IterativeOptions opts;
  opts.n = 3'000'000;
  opts.iterations = 60;

  auto c1 = sim::make_table2_cluster(7);
  opts.policy = BalancePolicy::StaticFunctional;
  const IterativeResult fixed =
      simulate_iterative(c1, sim::kMatMul, opts, drift);

  auto c2 = sim::make_table2_cluster(7);
  opts.policy = BalancePolicy::Online;
  const IterativeResult online =
      simulate_iterative(c2, sim::kMatMul, opts, drift);

  EXPECT_LT(online.total_seconds, fixed.total_seconds);
  EXPECT_GE(online.repartitions, 2);  // once at start, once after the drift
}

TEST(IterativeSim, ResultBookkeepingConsistent) {
  auto cluster = sim::make_table2_cluster(9);
  IterativeOptions opts;
  opts.n = 1'000'000;
  opts.iterations = 5;
  const IterativeResult r = simulate_iterative(cluster, sim::kMatMul, opts);
  ASSERT_EQ(r.iteration_seconds.size(), 5u);
  double sum = 0.0;
  for (const double t : r.iteration_seconds) {
    EXPECT_GT(t, 0.0);
    sum += t;
  }
  EXPECT_NEAR(sum, r.total_seconds, 1e-9 * sum);
  EXPECT_THROW(simulate_iterative(cluster, sim::kMatMul, IterativeOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpm::balance
