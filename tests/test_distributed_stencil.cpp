// Tests for the truly distributed Jacobi iteration: bit-identity with
// serial sweeps across band layouts, empty bands, heterogeneity emulation,
// and argument validation.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "linalg/kernels.hpp"
#include "mpp/distributed_stencil.hpp"

namespace fpm::mpp {
namespace {

util::MatrixD serial_sweeps(util::MatrixD grid, int iterations) {
  for (int i = 0; i < iterations; ++i) grid = apps::jacobi_sweep(grid);
  return grid;
}

TEST(DistributedStencil, MatchesSerialAcrossLayouts) {
  const util::MatrixD grid = linalg::random_matrix(30, 17, 3);
  for (const auto& rows : {std::vector<std::int64_t>{30},
                           {15, 15},
                           {1, 9, 20},
                           {0, 10, 0, 20},
                           {7, 0, 23}}) {
    const DistributedStencilResult result =
        distributed_jacobi(grid, rows, 5);
    EXPECT_DOUBLE_EQ(util::max_abs_diff(result.grid, serial_sweeps(grid, 5)),
                     0.0)
        << rows.size() << " ranks";
  }
}

TEST(DistributedStencil, ZeroIterationsIsIdentity) {
  const util::MatrixD grid = linalg::random_matrix(12, 12, 4);
  const std::vector<std::int64_t> rows{6, 6};
  const DistributedStencilResult result = distributed_jacobi(grid, rows, 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(result.grid, grid), 0.0);
}

TEST(DistributedStencil, ManyIterationsStayIdentical) {
  const util::MatrixD grid = linalg::random_matrix(25, 25, 5);
  const std::vector<std::int64_t> rows{8, 9, 8};
  const DistributedStencilResult result = distributed_jacobi(grid, rows, 40);
  EXPECT_DOUBLE_EQ(
      util::max_abs_diff(result.grid, serial_sweeps(grid, 40)), 0.0);
}

TEST(DistributedStencil, WorkMultiplierSlowsARank) {
  const util::MatrixD grid = linalg::random_matrix(64, 64, 6);
  const std::vector<std::int64_t> rows{32, 32};
  const std::vector<int> mult{1, 10};
  const DistributedStencilResult result =
      distributed_jacobi(grid, rows, 8, mult);
  EXPECT_DOUBLE_EQ(
      util::max_abs_diff(result.grid, serial_sweeps(grid, 8)), 0.0);
  EXPECT_GT(result.compute_seconds[1], 3.0 * result.compute_seconds[0]);
}

TEST(DistributedStencil, ValidatesArguments) {
  const util::MatrixD grid = linalg::random_matrix(10, 10, 1);
  EXPECT_THROW(distributed_jacobi(grid, std::vector<std::int64_t>{}, 1),
               std::invalid_argument);
  EXPECT_THROW(distributed_jacobi(grid, std::vector<std::int64_t>{5}, 1),
               std::invalid_argument);
  EXPECT_THROW(distributed_jacobi(grid, std::vector<std::int64_t>{10}, -1),
               std::invalid_argument);
  EXPECT_THROW(distributed_jacobi(grid, std::vector<std::int64_t>{10}, 1,
                                  std::vector<int>{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpm::mpp
