// Adversarial and degenerate configurations across the stack: identical
// processors (massive ties), near-duplicate breakpoints, extreme
// heterogeneity ratios, huge processor counts, single-element problems,
// and hostile simulator specs. Everything must stay well-defined — no
// crashes, invariants intact.
#include <gtest/gtest.h>

#include <memory>

#include "core/fpm.hpp"
#include "simcluster/machine.hpp"
#include "util/rng.hpp"

namespace fpm::core {
namespace {

TEST(EdgeCases, ManyIdenticalProcessorsSplitEvenly) {
  // 64 identical curves: ties everywhere; result must be the even split's
  // makespan (counts may permute).
  std::vector<std::shared_ptr<const SpeedFunction>> owned;
  for (int i = 0; i < 64; ++i)
    owned.push_back(std::make_shared<PowerDecaySpeed>(100.0, 1e6, 1.0, 1e9));
  const SpeedList speeds = make_speed_list(owned);
  const std::int64_t n = 64 * 1000 + 17;
  const PartitionResult r = partition_combined(speeds, n);
  EXPECT_EQ(r.distribution.total(), n);
  for (const std::int64_t c : r.distribution.counts) {
    EXPECT_GE(c, 1000);
    EXPECT_LE(c, 1001);
  }
}

TEST(EdgeCases, ExtremeHeterogeneityRatio) {
  // 1e6x speed ratio: the slow processor should receive (almost) nothing,
  // and the result must still be near-optimal.
  const ConstantSpeed fast(1e6, 1e12);
  const ConstantSpeed slow(1.0, 1e12);
  const SpeedList speeds{&fast, &slow};
  const std::int64_t n = 10'000'019;
  const PartitionResult r = partition_combined(speeds, n);
  EXPECT_EQ(r.distribution.total(), n);
  const Distribution best = exact_optimum(speeds, n);
  EXPECT_NEAR(makespan(speeds, r.distribution), makespan(speeds, best),
              1e-6 * makespan(speeds, best));
  EXPECT_LT(r.distribution.counts[1], 100);
}

TEST(EdgeCases, SingleElementManyProcessors) {
  const auto curves = [] {
    std::vector<std::shared_ptr<const SpeedFunction>> owned;
    for (int i = 0; i < 32; ++i)
      owned.push_back(std::make_shared<ConstantSpeed>(10.0 + i, 1e9));
    return owned;
  }();
  const SpeedList speeds = make_speed_list(curves);
  const PartitionResult r = partition_basic(speeds, 1);
  EXPECT_EQ(r.distribution.total(), 1);
  // The single element should land on the fastest processor.
  EXPECT_EQ(r.distribution.counts.back(), 1);
}

TEST(EdgeCases, NearDuplicateBreakpoints) {
  // Two breakpoints separated by 1 ulp-ish distance must not break
  // interpolation or intersection.
  const PiecewiseLinearSpeed f(
      {{1000.0, 100.0}, {1000.0000001, 99.9999}, {1e6, 10.0}});
  EXPECT_GT(f.speed(1000.00000005), 99.0);
  const double x = f.intersect(0.01);
  EXPECT_NEAR(0.01 * x, f.speed(x), 1e-6 * f.speed(x));
}

TEST(EdgeCases, VerySteepCliffCurve) {
  // A near-vertical paging cliff: speed collapses by 1000x across one part
  // in 1e6 of the range.
  std::vector<SteppedSpeed::Step> steps;
  steps.push_back({1e6, 0.1, 1.0});
  const SteppedSpeed f(100.0, std::move(steps), 1e8);
  const SpeedList speeds{&f, &f, &f};
  const PartitionResult r = partition_combined(speeds, 3'000'000);
  EXPECT_EQ(r.distribution.total(), 3'000'000);
  const Distribution best = exact_optimum(speeds, 3'000'000);
  EXPECT_LE(makespan(speeds, r.distribution),
            makespan(speeds, best) * 1.001);
}

TEST(EdgeCases, HugeProcessorCountSmallProblem) {
  std::vector<std::shared_ptr<const SpeedFunction>> owned;
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i)
    owned.push_back(
        std::make_shared<ConstantSpeed>(rng.uniform(1.0, 100.0), 1e9));
  const SpeedList speeds = make_speed_list(owned);
  const PartitionResult r = partition_modified(speeds, 100);
  EXPECT_EQ(r.distribution.total(), 100);
  for (const std::int64_t c : r.distribution.counts) EXPECT_GE(c, 0);
}

TEST(EdgeCases, BoundsAllZeroExceptOne) {
  const auto curves = [] {
    std::vector<std::shared_ptr<const SpeedFunction>> owned;
    for (int i = 0; i < 4; ++i)
      owned.push_back(std::make_shared<ConstantSpeed>(50.0, 1e9));
    return owned;
  }();
  const SpeedList speeds = make_speed_list(curves);
  const std::vector<std::int64_t> bounds{0, 0, 1000, 0};
  const PartitionResult r = partition_bounded(speeds, 1000, bounds);
  EXPECT_EQ(r.distribution.counts[2], 1000);
  EXPECT_EQ(r.distribution.counts[0], 0);
}

TEST(EdgeCases, BuilderOnFlatZeroishTail) {
  // A source that is effectively zero over most of the range: the builder
  // must terminate and produce a usable (floored) model.
  struct Source final : MeasurementSource {
    double measure(double size) override {
      return size < 1000.0 ? 100.0 : 1e-6;
    }
  } src;
  BuilderOptions opts;
  opts.min_size = 10.0;
  opts.max_size = 1e6;
  const BuiltModel m = build_speed_band(src, opts);
  EXPECT_GT(m.probes, 0);
  const PiecewiseLinearSpeed curve = m.band.center();
  EXPECT_TRUE(satisfies_shape_requirement(curve));
}

TEST(EdgeCases, GranularityCoarserThanProblem) {
  // Items of 1e6 elements each, but only 3 items to distribute.
  const PowerDecaySpeed base(100.0, 1e7, 1.0, 1e9);
  const GranularSpeedView items(base, 1e6);
  const SpeedList speeds{&items, &items};
  const PartitionResult r = partition_combined(speeds, 3);
  EXPECT_EQ(r.distribution.total(), 3);
}

}  // namespace
}  // namespace fpm::core

namespace fpm::sim {
namespace {

TEST(EdgeCases, HostileMachineSpecs) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Efficient;
  // Tiny memory relative to cache: onset below cache capacity must throw.
  MachineSpec tiny{"tiny", "Linux", "x", 100.0, 64, 32, 1024};
  EXPECT_THROW((void)MachineSpeed(tiny, app), std::invalid_argument);
  // Giant cache, modest memory, still valid when onset > cache.
  MachineSpec wide{"wide", "Windows XP", "x", 5000.0, 1 << 20, 1 << 19, 64};
  const MachineSpeed f(wide, app);
  EXPECT_TRUE(core::satisfies_shape_requirement(f));
}

}  // namespace
}  // namespace fpm::sim
