// Tests for the 2-D rectangular partitioning extension: exact tiling,
// area proportionality, column-count search, and the half-perimeter
// objective.
#include <gtest/gtest.h>

#include "core/combined.hpp"
#include "core/rect2d.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

TEST(Rect2d, SingleProcessorTakesWholeGrid) {
  const auto e = fpm::test::constant_ensemble(1);
  const RectPartition part = partition_rectangles(e.list(), 100, 200);
  ASSERT_EQ(part.rects.size(), 1u);
  EXPECT_EQ(part.rects[0].rows, 100);
  EXPECT_EQ(part.rects[0].cols, 200);
  EXPECT_TRUE(is_exact_tiling(part));
}

class Rect2dSweep : public ::testing::TestWithParam<int> {};

TEST_P(Rect2dSweep, TilesExactlyForEveryFamily) {
  const int p = GetParam();
  for (const auto& e : fpm::test::all_ensembles(p)) {
    for (const auto [rows, cols] :
         {std::pair<std::int64_t, std::int64_t>{64, 64},
          {100, 37},
          {1, 1000},
          {513, 511}}) {
      const RectPartition part = partition_rectangles(e.list(), rows, cols);
      EXPECT_TRUE(is_exact_tiling(part))
          << e.name << " " << rows << "x" << cols << " p=" << p;
      EXPECT_EQ(part.rects.size(), static_cast<std::size_t>(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, Rect2dSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 12),
                         [](const auto& suffix) {
                           return "p" + std::to_string(suffix.param);
                         });

TEST(Rect2d, AreasTrackOptimalShares) {
  const auto e = fpm::test::power_ensemble(4);
  const std::int64_t rows = 512, cols = 512;
  const RectPartition part = partition_rectangles(e.list(), rows, cols);
  const Distribution opt = partition_combined(e.list(), rows * cols).distribution;
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected = static_cast<double>(opt.counts[i]);
    const double got = static_cast<double>(part.rects[i].area());
    // Integer tiling distorts areas; stay within 15% on a 512x512 grid.
    EXPECT_NEAR(got, expected, 0.15 * expected + 600.0) << i;
  }
}

TEST(Rect2d, EqualSpeedsGiveBalancedRectangles) {
  std::vector<std::shared_ptr<const SpeedFunction>> owned;
  for (int i = 0; i < 4; ++i)
    owned.push_back(std::make_shared<ConstantSpeed>(100.0, 1e9));
  const SpeedList speeds = make_speed_list(owned);
  const RectPartition part = partition_rectangles(speeds, 100, 100);
  EXPECT_TRUE(is_exact_tiling(part));
  for (const Rect& r : part.rects) EXPECT_EQ(r.area(), 2500);
  // Four equal processors should form a 2x2 arrangement, beating strips on
  // the communication proxy: half-perimeter 4*(50+50) = 400 vs 4*(25+100).
  EXPECT_EQ(part.columns, 2u);
  EXPECT_EQ(part.total_half_perimeter(), 400);
}

TEST(Rect2d, ColumnSearchBeatsForcedStrips) {
  const auto e = fpm::test::linear_ensemble(9);
  Rect2dOptions strips;
  strips.force_columns = 1;  // horizontal slabs only
  const RectPartition best = partition_rectangles(e.list(), 300, 300);
  const RectPartition slab = partition_rectangles(e.list(), 300, 300, strips);
  EXPECT_TRUE(is_exact_tiling(best));
  EXPECT_TRUE(is_exact_tiling(slab));
  EXPECT_LE(best.total_half_perimeter(), slab.total_half_perimeter());
}

TEST(Rect2d, ForcedColumnCountIsHonoured) {
  const auto e = fpm::test::constant_ensemble(6);
  Rect2dOptions opts;
  opts.force_columns = 3;
  const RectPartition part = partition_rectangles(e.list(), 120, 120, opts);
  EXPECT_EQ(part.columns, 3u);
  EXPECT_TRUE(is_exact_tiling(part));
}

TEST(Rect2d, RejectsBadArguments) {
  const auto e = fpm::test::constant_ensemble(2);
  EXPECT_THROW(partition_rectangles({}, 10, 10), std::invalid_argument);
  EXPECT_THROW(partition_rectangles(e.list(), 0, 10), std::invalid_argument);
  Rect2dOptions opts;
  opts.force_columns = 5;
  EXPECT_THROW(partition_rectangles(e.list(), 10, 10, opts),
               std::invalid_argument);
}

TEST(Rect2d, TinyGridsWithManyProcessors) {
  // More processors than grid cells in one dimension: some rectangles must
  // come out empty, but the tiling stays exact.
  const auto e = fpm::test::constant_ensemble(8);
  const RectPartition part = partition_rectangles(e.list(), 3, 3);
  EXPECT_TRUE(is_exact_tiling(part));
  std::int64_t covered = 0;
  for (const Rect& r : part.rects) covered += r.area();
  EXPECT_EQ(covered, 9);
}

TEST(Rect2d, IsExactTilingDetectsViolations) {
  RectPartition bad;
  bad.grid_rows = 10;
  bad.grid_cols = 10;
  bad.rects = {{0, 0, 10, 6}, {0, 5, 10, 5}};  // overlap at column 5
  EXPECT_FALSE(is_exact_tiling(bad));
  bad.rects = {{0, 0, 10, 4}, {0, 5, 10, 5}};  // gap at column 4
  EXPECT_FALSE(is_exact_tiling(bad));
  bad.rects = {{0, 0, 10, 5}, {0, 5, 11, 5}};  // out of bounds
  EXPECT_FALSE(is_exact_tiling(bad));
  bad.rects = {{0, 0, 10, 5}, {0, 5, 10, 5}};  // correct
  EXPECT_TRUE(is_exact_tiling(bad));
}

TEST(Rect2d, FasterProcessorGetsBiggerRectangle) {
  const auto e = fpm::test::constant_ensemble(3);  // speeds 100,150,200
  const RectPartition part = partition_rectangles(e.list(), 200, 200);
  EXPECT_LT(part.rects[0].area(), part.rects[2].area());
}

}  // namespace
}  // namespace fpm::core
