// Tests for the simulated heterogeneous network: curve synthesis from
// machine specs (shapes, paging onsets), fluctuation bands, preset fidelity
// to Tables 1 and 2, measurement determinism, and model building over the
// cluster.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/combined.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/machine.hpp"
#include "simcluster/presets.hpp"
#include "simcluster/workload.hpp"
#include "util/rng.hpp"

namespace fpm::sim {
namespace {

MachineSpec demo_spec() {
  return {"demo", "Linux", "x86", 1000.0, 1048576, 524288, 512};
}

TEST(MachineSpeed, SatisfiesShapeRequirementForAllPatterns) {
  for (const MemoryPattern pat :
       {MemoryPattern::Efficient, MemoryPattern::Moderate,
        MemoryPattern::Inefficient}) {
    AppProfile app;
    app.name = "t";
    app.pattern = pat;
    const MachineSpeed f(demo_spec(), app);
    EXPECT_TRUE(core::satisfies_shape_requirement(f))
        << static_cast<int>(pat);
  }
}

TEST(MachineSpeed, PagingCliffDegradesSpeed) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Efficient;
  const MachineSpeed f(demo_spec(), app);
  const double onset = f.paging_onset();
  // Well below the onset the speed is healthy; well past it, it collapses.
  EXPECT_GT(f.speed(onset * 0.5), 0.5 * f.peak_speed());
  EXPECT_LT(f.speed(onset * 2.0), 0.05 * f.peak_speed());
}

TEST(MachineSpeed, EfficientPatternHoldsPlateauPastCache) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Efficient;
  const MachineSpeed f(demo_spec(), app);
  const double c = f.cache_capacity();
  // Blocked code barely notices leaving cache (>= ~80% of peak).
  EXPECT_GT(f.speed(c * 4.0), 0.75 * f.peak_speed());
}

TEST(MachineSpeed, InefficientPatternDecaysSmoothly) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Inefficient;
  const MachineSpeed f(demo_spec(), app);
  const double c = f.cache_capacity();
  // Clearly below peak well out of cache, well before paging.
  EXPECT_LT(f.speed(c * 64.0), 0.8 * f.peak_speed());
  // And strictly decreasing through that region.
  EXPECT_GT(f.speed(c * 4.0), f.speed(c * 16.0));
}

TEST(MachineSpeed, PagingOnsetOverrideIsHonoured) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Moderate;
  const double onset = 9e6;
  const MachineSpeed f(demo_spec(), app, onset);
  EXPECT_DOUBLE_EQ(f.paging_onset(), onset);
  EXPECT_DOUBLE_EQ(f.max_size(), onset * 8.0);
}

TEST(MachineSpeed, FasterClockMeansFasterPlateau) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Efficient;
  MachineSpec slow = demo_spec();
  MachineSpec fast = demo_spec();
  fast.cpu_mhz = 3000.0;
  const MachineSpeed fs(slow, app);
  const MachineSpeed ff(fast, app);
  EXPECT_GT(ff.peak_speed(), 2.5 * fs.peak_speed());
}

TEST(MachineSpeed, OsSelectsPagingSharpness) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Efficient;
  MachineSpec linux_box = demo_spec();
  MachineSpec sun_box = demo_spec();
  sun_box.os = "SunOS 5.8";
  const MachineSpeed fl(linux_box, app);
  const MachineSpeed fsun(sun_box, app);
  // Same onset; the SunOS decay is gentler, so just past the onset the
  // Solaris machine retains relatively more of its speed.
  const double x = fl.paging_onset() * 1.5;
  EXPECT_GT(fsun.speed(x) / fsun.peak_speed(),
            fl.speed(x) / fl.peak_speed());
}

TEST(MachineSpeed, RejectsIncompleteSpecs) {
  AppProfile app;
  app.name = "t";
  MachineSpec bad = demo_spec();
  bad.cpu_mhz = 0.0;
  EXPECT_THROW((void)MachineSpeed(bad, app), std::invalid_argument);
  bad = demo_spec();
  bad.cache_kb = 0;
  EXPECT_THROW((void)MachineSpeed(bad, app), std::invalid_argument);
  // Paging onset below cache capacity is meaningless.
  EXPECT_THROW((void)MachineSpeed(demo_spec(), app, 10.0),
               std::invalid_argument);
}

TEST(Workload, BandShrinksWithProblemSize) {
  AppProfile app;
  app.name = "t";
  app.pattern = MemoryPattern::Moderate;
  const MachineSpeed truth(demo_spec(), app);
  const FluctuationProfile p{0.40, 0.06, 0.0};
  const double w_small = band_width(p, truth, truth.max_size() * 1e-4);
  const double w_large = band_width(p, truth, truth.max_size() * 0.8);
  EXPECT_NEAR(w_small, 0.40, 0.02);
  EXPECT_NEAR(w_large, 0.06, 0.005);
  EXPECT_GT(w_small, w_large);
}

TEST(Workload, LowIntegrationBandIsFlat) {
  AppProfile app;
  app.name = "t";
  const MachineSpeed truth(demo_spec(), app);
  const FluctuationProfile p = FluctuationProfile::low_integration(0.06);
  EXPECT_DOUBLE_EQ(band_width(p, truth, 100.0),
                   band_width(p, truth, truth.max_size() * 0.5));
}

TEST(Workload, LoadShiftMovesBandNotWidth) {
  AppProfile app;
  app.name = "t";
  const MachineSpeed truth(demo_spec(), app);
  const FluctuationProfile idle{0.2, 0.06, 0.0};
  const FluctuationProfile loaded{0.2, 0.06, 0.3};
  const double x = truth.cache_capacity() * 10.0;
  const BandEdges a = band_edges(idle, truth, x);
  const BandEdges c = band_edges(loaded, truth, x);
  EXPECT_NEAR(c.upper / a.upper, 0.7, 1e-9);
  EXPECT_NEAR(c.lower / a.lower, 0.7, 1e-9);
  // Relative width identical: (upper-lower)/centre invariant to the shift.
  EXPECT_NEAR((a.upper - a.lower) / (a.upper + a.lower),
              (c.upper - c.lower) / (c.upper + c.lower), 1e-12);
}

TEST(Workload, SamplesStayInsideBand) {
  AppProfile app;
  app.name = "t";
  const MachineSpeed truth(demo_spec(), app);
  const FluctuationProfile p{0.40, 0.06, 0.0};
  util::Rng rng(3);
  const double x = truth.cache_capacity() * 3.0;
  const BandEdges e = band_edges(p, truth, x);
  for (int i = 0; i < 500; ++i) {
    const double s = sample_speed(p, truth, x, rng);
    ASSERT_GE(s, e.lower);
    ASSERT_LE(s, e.upper);
  }
}

TEST(Presets, Table1HasFourMachinesWithThreeApps) {
  const auto ms = table1_machines();
  ASSERT_EQ(ms.size(), 4u);
  EXPECT_EQ(ms[0].spec.name, "Comp1");
  EXPECT_EQ(ms[1].spec.name, "Comp2");
  for (const auto& m : ms) {
    EXPECT_EQ(m.apps.count(kArrayOps), 1u);
    EXPECT_EQ(m.apps.count(kMatMulAtlas), 1u);
    EXPECT_EQ(m.apps.count(kMatMul), 1u);
  }
  // Table 1 spot checks.
  EXPECT_DOUBLE_EQ(ms[0].spec.cpu_mhz, 2793.0);
  EXPECT_EQ(ms[1].spec.cache_kb, 2048);
  EXPECT_EQ(ms[3].spec.main_memory_kb, 254524);
}

TEST(Presets, Table2PagingColumnsArePinned) {
  const auto ms = table2_machines();
  ASSERT_EQ(ms.size(), 12u);
  // Paging(MM)=4500 for X1 means 3·4500² elements; Paging(LU)=6000 means
  // 6000² elements.
  const auto& x1 = ms[0];
  EXPECT_DOUBLE_EQ(x1.apps.at(kMatMul)->paging_onset(),
                   mm_problem_size(4500));
  EXPECT_DOUBLE_EQ(x1.apps.at(kLu)->paging_onset(), lu_problem_size(6000));
  const auto& x8 = ms[7];
  EXPECT_DOUBLE_EQ(x8.apps.at(kMatMul)->paging_onset(),
                   mm_problem_size(5500));
  EXPECT_DOUBLE_EQ(x8.apps.at(kLu)->paging_onset(), lu_problem_size(6500));
}

TEST(Presets, Table2EveryRowMatchesThePaper) {
  // Column-by-column fidelity check against the paper's Table 2.
  struct Row {
    const char* name;
    double mhz;
    std::int64_t main_kb;
    std::int64_t free_kb;
    std::int64_t cache_kb;
    std::int64_t paging_mm;
    std::int64_t paging_lu;
  };
  const Row expected[] = {
      {"X1", 997, 513304, 363264, 256, 4500, 6000},
      {"X2", 997, 254576, 65692, 256, 4000, 5000},
      {"X3", 2783, 7933500, 2221436, 512, 6400, 11000},
      {"X4", 2783, 7933500, 3073628, 512, 6400, 11000},
      {"X5", 1977, 1030508, 415904, 512, 6000, 8500},
      {"X6", 1977, 1030508, 364120, 512, 6000, 8500},
      {"X7", 1977, 1030508, 215752, 512, 6000, 8000},
      {"X8", 1977, 1030508, 134400, 512, 5500, 6500},
      {"X9", 1977, 1030508, 134400, 512, 5500, 6500},
      {"X10", 440, 524288, 409600, 2048, 4500, 5000},
      {"X11", 440, 524288, 418816, 2048, 4500, 5000},
      {"X12", 440, 524288, 395264, 2048, 4500, 5000},
  };
  const auto ms = table2_machines();
  ASSERT_EQ(ms.size(), std::size(expected));
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const Row& row = expected[i];
    const SimulatedMachine& m = ms[i];
    EXPECT_EQ(m.spec.name, row.name);
    EXPECT_DOUBLE_EQ(m.spec.cpu_mhz, row.mhz) << row.name;
    EXPECT_EQ(m.spec.main_memory_kb, row.main_kb) << row.name;
    EXPECT_EQ(m.spec.free_memory_kb, row.free_kb) << row.name;
    EXPECT_EQ(m.spec.cache_kb, row.cache_kb) << row.name;
    EXPECT_DOUBLE_EQ(m.apps.at(kMatMul)->paging_onset(),
                     mm_problem_size(row.paging_mm))
        << row.name;
    EXPECT_DOUBLE_EQ(m.apps.at(kLu)->paging_onset(),
                     lu_problem_size(row.paging_lu))
        << row.name;
  }
}

TEST(Presets, Table2IsReasonablyHeterogeneous) {
  // The paper reports max/min serial speed ratios of ~8 (MM) and ~6.8 (LU)
  // below the paging thresholds; the simulator should produce the same
  // order of heterogeneity.
  const auto cluster = make_table2_cluster();
  const double probe = mm_problem_size(3000);
  double fastest = 0.0, slowest = 1e18;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const double s = cluster.ground_truth(i, kMatMul).speed(probe);
    fastest = std::max(fastest, s);
    slowest = std::min(slowest, s);
  }
  const double ratio = fastest / slowest;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(Presets, ModernClusterIsValidAndHeterogeneous) {
  auto cluster = make_modern_cluster();
  ASSERT_EQ(cluster.size(), 5u);
  double fastest = 0.0, slowest = 1e18;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const MachineSpeed& f = cluster.ground_truth(i, kMatMul);
    EXPECT_TRUE(core::satisfies_shape_requirement(f))
        << cluster.machine(i).spec.name;
    const double s = f.speed(f.cache_capacity() * 4.0);
    fastest = std::max(fastest, s);
    slowest = std::min(slowest, s);
  }
  EXPECT_GT(fastest / slowest, 1.3);
  // The functional model still beats the naive baseline on modern specs.
  const core::SpeedList models = cluster.ground_truth_list(kMatMul);
  const std::int64_t n = 3'000'000'000;  // past the laptop/sbc walls
  const core::Distribution func =
      core::partition_combined(models, n).distribution;
  const core::Distribution even = core::partition_even(n, cluster.size());
  EXPECT_LT(core::makespan(models, func), core::makespan(models, even));
}

TEST(Cluster, MeasurementIsSeedDeterministic) {
  auto c1 = make_table2_cluster(111);
  auto c2 = make_table2_cluster(111);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(c1.measure(3, kMatMul, 1e6), c2.measure(3, kMatMul, 1e6));
  auto c3 = make_table2_cluster(222);
  EXPECT_NE(c1.measure(3, kMatMul, 1e6), c3.measure(3, kMatMul, 1e6));
}

TEST(Cluster, ThrowsOnUnknownAppOrMachine) {
  auto cluster = make_table2_cluster();
  EXPECT_THROW(cluster.ground_truth(0, "NoSuchApp"), std::invalid_argument);
  EXPECT_THROW(cluster.machine(99), std::out_of_range);
}

TEST(Cluster, ExpectedSecondsMatchesHandComputation) {
  auto cluster = make_table2_cluster();
  const double x = 1e6;
  const double fpe = 10.0;
  const double mflops = cluster.ground_truth(2, kMatMul).speed(x) *
                        (1.0 - cluster.machine(2).fluctuation.load_shift);
  EXPECT_NEAR(cluster.expected_seconds(2, kMatMul, x, fpe),
              x * fpe / (mflops * 1e6), 1e-12);
  EXPECT_DOUBLE_EQ(cluster.expected_seconds(2, kMatMul, 0.0, fpe), 0.0);
}

TEST(Cluster, GroundTruthListCoversAllMachines) {
  auto cluster = make_table2_cluster();
  const core::SpeedList list = cluster.ground_truth_list(kLu);
  ASSERT_EQ(list.size(), 12u);
  for (const auto* f : list) EXPECT_NE(f, nullptr);
}

TEST(Cluster, BuildClusterModelsProducesUsableCurves) {
  auto cluster = make_table2_cluster(77);
  const ClusterModels models = build_cluster_models(cluster, kMatMul);
  ASSERT_EQ(models.curves.size(), 12u);
  for (std::size_t i = 0; i < models.curves.size(); ++i) {
    EXPECT_GT(models.probes[i], 0) << i;
    EXPECT_TRUE(core::satisfies_shape_requirement(models.curves[i])) << i;
    // The built curve tracks the ground truth at a mid-range size within
    // the fluctuation band's order of magnitude.
    const double x = cluster.ground_truth(i, kMatMul).paging_onset() * 0.4;
    const double truth = cluster.ground_truth(i, kMatMul).speed(x);
    EXPECT_NEAR(models.curves[i].speed(x), truth, 0.35 * truth) << i;
  }
}

TEST(Faults, CrashIsPermanentFromItsTick) {
  FaultScript s;
  s.crash(1, 3);
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(s.crashed(1, 2));
  EXPECT_TRUE(s.crashed(1, 3));
  EXPECT_TRUE(s.crashed(1, 99));
  EXPECT_FALSE(s.crashed(0, 99));  // unscripted machines are healthy
  EXPECT_EQ(s.crash_tick(1), 3);
  EXPECT_EQ(s.crash_tick(0), -1);
}

TEST(Faults, StallWindowIsHalfOpen) {
  FaultScript s;
  s.stall(2, 4, 7);
  EXPECT_FALSE(s.stalled(2, 3));
  EXPECT_TRUE(s.stalled(2, 4));
  EXPECT_TRUE(s.stalled(2, 6));
  EXPECT_FALSE(s.stalled(2, 7));  // recovered
  EXPECT_FALSE(s.stalled(1, 5));
}

TEST(Faults, MessageFaultsDefaultToHealthy) {
  FaultScript s;
  s.glitch(0, 0.5).drop_messages(1, 0.25).delay_messages(2, 3.0);
  EXPECT_DOUBLE_EQ(s.glitch_probability(0), 0.5);
  EXPECT_DOUBLE_EQ(s.glitch_probability(3), 0.0);
  EXPECT_DOUBLE_EQ(s.drop_probability(1), 0.25);
  EXPECT_DOUBLE_EQ(s.drop_probability(3), 0.0);
  EXPECT_DOUBLE_EQ(s.delay_factor(2), 3.0);
  EXPECT_DOUBLE_EQ(s.delay_factor(3), 1.0);
}

TEST(Faults, ValidatesArguments) {
  FaultScript s;
  EXPECT_THROW(s.crash(0, -1), std::invalid_argument);
  EXPECT_THROW(s.stall(0, 5, 4), std::invalid_argument);
  EXPECT_THROW(s.glitch(0, 1.5), std::invalid_argument);
  EXPECT_THROW(s.glitch(0, -0.1), std::invalid_argument);
  EXPECT_THROW(s.drop_messages(0, 2.0), std::invalid_argument);
  EXPECT_THROW(s.delay_messages(0, 0.5), std::invalid_argument);
  EXPECT_TRUE(s.empty());
  util::Rng rng(1);
  EXPECT_THROW(FaultScript::random(rng, 0, 10, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(FaultScript::random(rng, 4, 0, 0.5, 0.5),
               std::invalid_argument);
}

TEST(Faults, RandomScriptIsSeedReproducibleAndSparesMachineZero) {
  util::Rng a(9), b(9);
  const FaultScript s1 = FaultScript::random(a, 8, 20, 0.7, 0.5);
  const FaultScript s2 = FaultScript::random(b, 8, 20, 0.7, 0.5);
  EXPECT_EQ(s1.crash_tick(0), -1);  // something must survive
  int crashes = 0;
  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_EQ(s1.crash_tick(m), s2.crash_tick(m)) << m;
    for (int t = 0; t < 20; ++t)
      EXPECT_EQ(s1.stalled(m, t), s2.stalled(m, t)) << m << "@" << t;
    if (s1.crash_tick(m) >= 0) ++crashes;
  }
  EXPECT_GE(crashes, 1);  // p = 0.7 over 7 machines
}

TEST(Cluster, CrashedMachineThrowsFromItsTickOn) {
  auto cluster = make_table2_cluster(13);
  FaultScript s;
  s.crash(2, 3);
  cluster.set_fault_script(s);
  EXPECT_EQ(cluster.tick(), 0);
  EXPECT_TRUE(cluster.machine_alive(2));
  EXPECT_GT(cluster.measure(2, kMatMul, 1e6), 0.0);
  cluster.advance_time(3);
  EXPECT_EQ(cluster.tick(), 3);
  EXPECT_FALSE(cluster.machine_alive(2));
  try {
    cluster.measure(2, kMatMul, 1e6);
    FAIL() << "crashed machine must not run benchmarks";
  } catch (const MachineFailedError& e) {
    EXPECT_EQ(e.machine(), 2u);
    EXPECT_EQ(e.tick(), 3);
  }
  EXPECT_TRUE(cluster.machine_alive(1));  // neighbours unaffected
  EXPECT_GT(cluster.measure(1, kMatMul, 1e6), 0.0);
}

TEST(Cluster, StalledMachineYieldsNoMeasurementForTheWindow) {
  auto cluster = make_table2_cluster(13);
  FaultScript s;
  s.stall(1, 1, 3);
  cluster.set_fault_script(s);
  EXPECT_GT(cluster.measure(1, kMatMul, 1e6), 0.0);
  cluster.advance_time(1);
  EXPECT_TRUE(cluster.machine_stalled(1));
  EXPECT_TRUE(std::isnan(cluster.measure(1, kMatMul, 1e6)));
  cluster.advance_time(2);
  EXPECT_FALSE(cluster.machine_stalled(1));
  EXPECT_GT(cluster.measure(1, kMatMul, 1e6), 0.0);  // recovered
}

TEST(Cluster, GlitchAndMessageFaultsAreSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    auto cluster = make_table2_cluster(seed);
    FaultScript s;
    s.glitch(0, 0.5).drop_messages(1, 0.5).delay_messages(1, 2.5);
    cluster.set_fault_script(s);
    std::vector<double> trace;
    for (int i = 0; i < 12; ++i) {
      const double m = cluster.measure(0, kMatMul, 1e6);
      trace.push_back(std::isnan(m) ? -1.0 : m);
      trace.push_back(cluster.message_dropped(1) ? 1.0 : 0.0);
    }
    return trace;
  };
  const auto t1 = run(33);
  EXPECT_EQ(t1, run(33));
  // With p = 0.5 twelve draws virtually surely contain both outcomes.
  EXPECT_NE(std::count(t1.begin(), t1.end(), -1.0), 0);
  auto cluster = make_table2_cluster(33);
  FaultScript s;
  s.delay_messages(1, 2.5);
  cluster.set_fault_script(s);
  EXPECT_DOUBLE_EQ(cluster.message_delay_factor(1), 2.5);
  EXPECT_DOUBLE_EQ(cluster.message_delay_factor(0), 1.0);
}

TEST(Cluster, FaultFreeScriptKeepsMeasurementsByteIdentical) {
  // Installing an empty script must not perturb the RNG streams: seeded
  // experiments from before the fault subsystem replay exactly.
  auto plain = make_table2_cluster(77);
  auto scripted = make_table2_cluster(77);
  scripted.set_fault_script(FaultScript{});
  for (int i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(plain.measure(3, kMatMul, 1e6),
                     scripted.measure(3, kMatMul, 1e6));
}

TEST(Cluster, BuildClusterModelsSurvivesAGlitchingMachine) {
  // Machine 5's benchmark runs fail a third of the time; the retrying
  // measurement source must absorb the NaNs and still deliver a usable
  // curve close to the ground truth.
  auto cluster = make_table2_cluster(77);
  FaultScript s;
  s.glitch(5, 0.33);
  cluster.set_fault_script(s);
  const ClusterModels models = build_cluster_models(cluster, kMatMul);
  ASSERT_EQ(models.curves.size(), 12u);
  EXPECT_TRUE(core::satisfies_shape_requirement(models.curves[5]));
  const double x = cluster.ground_truth(5, kMatMul).paging_onset() * 0.4;
  const double truth = cluster.ground_truth(5, kMatMul).speed(x);
  EXPECT_NEAR(models.curves[5].speed(x), truth, 0.35 * truth);
}

TEST(Cluster, MachineMeasurementAdapterForwardss) {
  auto c1 = make_table2_cluster(5);
  auto c2 = make_table2_cluster(5);
  MachineMeasurement src(c1, 4, kLu);
  EXPECT_DOUBLE_EQ(src.measure(2e6), c2.measure(4, kLu, 2e6));
}

}  // namespace
}  // namespace fpm::sim
