// Tests for the fault-tolerant execution stack: failure detection in the
// mpp runtime (peer exceptions, timeouts on hung ranks, fencing), seeded
// fault injection via FaultPlan, checkpoint storage, and checkpoint/restart
// recovery of the distributed kernels — recovered runs must re-partition
// over the survivors and stay bit-identical to the fault-free serial
// reference.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "apps/stencil.hpp"
#include "linalg/kernels.hpp"
#include "mpp/fault.hpp"
#include "mpp/recovery.hpp"
#include "mpp/runtime.hpp"
#include "util/rng.hpp"

namespace fpm::mpp {
namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Runtime failure detection
// ---------------------------------------------------------------------------

TEST(FtRuntime, PeerExceptionBecomesRankFailedError) {
  std::atomic<int> named{-1};
  RunOptions opts;
  opts.fault_tolerant = true;
  const RunReport report = run_parallel(2, [&](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("victim dies");
    try {
      comm.recv(1, 5);  // never satisfied
      FAIL() << "recv from a dead rank must not return";
    } catch (const RankFailedError& e) {
      named = e.failed_rank();
    }
  }, opts);
  EXPECT_EQ(named.load(), 1);
  EXPECT_EQ(report.failed_ranks, (std::vector<int>{1}));
}

TEST(FtRuntime, SurvivorsKeepAFunctionalWorld) {
  // After rank 2 dies, ranks 0 and 1 must still be able to message and
  // synchronize among themselves.
  std::atomic<int> exchanged{0};
  RunOptions opts;
  opts.fault_tolerant = true;
  const RunReport report = run_parallel(3, [&](Communicator& comm) {
    if (comm.rank() == 2) throw std::runtime_error("down");
    try {
      comm.barrier();  // blocks until the failure is observed
    } catch (const RankFailedError& e) {
      EXPECT_EQ(e.failed_rank(), 2);
    }
    EXPECT_EQ(comm.alive_ranks(), (std::vector<int>{0, 1}));
    EXPECT_FALSE(comm.is_alive(2));
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{4.5});
    } else {
      EXPECT_DOUBLE_EQ(comm.recv(0, 7)[0], 4.5);
      ++exchanged;
    }
    comm.barrier();  // two-rank barrier still works
  }, opts);
  EXPECT_EQ(exchanged.load(), 1);
  EXPECT_EQ(report.failed_ranks, (std::vector<int>{2}));
}

TEST(FtRuntime, AllRanksFailingRethrowsFirstError) {
  RunOptions opts;
  opts.fault_tolerant = true;
  EXPECT_THROW(run_parallel(2, [](Communicator&) {
    throw std::runtime_error("nobody left to report");
  }, opts),
               std::runtime_error);
}

TEST(FtRuntime, RecvTimeoutDetectsHungPeerWithinDeadline) {
  // Rank 1 goes silent for 2 s; rank 0's recv is armed with a 0.2 s
  // deadline and must convert the hang into RankFailedError(1) well before
  // the sleeper wakes.
  std::atomic<double> detected_after{-1.0};
  RunOptions opts;
  opts.fault_tolerant = true;
  opts.timeout_seconds = 0.2;
  const RunReport report = run_parallel(2, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2000));
      return;  // wakes long after being declared dead
    }
    const auto t0 = clock_type::now();
    try {
      comm.recv(1, 3);
      FAIL() << "recv must time out";
    } catch (const RankFailedError& e) {
      EXPECT_EQ(e.failed_rank(), 1);
      detected_after = seconds_since(t0);
    }
  }, opts);
  EXPECT_GE(detected_after.load(), 0.0);
  EXPECT_LT(detected_after.load(), 1.5);  // detected, not waited out
  EXPECT_EQ(report.failed_ranks, (std::vector<int>{1}));
}

TEST(FtRuntime, BarrierTimeoutDetectsHungPeerWithinDeadline) {
  std::atomic<double> detected_after{-1.0};
  RunOptions opts;
  opts.fault_tolerant = true;
  opts.timeout_seconds = 0.2;
  run_parallel(2, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2000));
      return;
    }
    const auto t0 = clock_type::now();
    try {
      comm.barrier();
      FAIL() << "barrier must time out";
    } catch (const RankFailedError& e) {
      EXPECT_EQ(e.failed_rank(), 1);
      detected_after = seconds_since(t0);
    }
  }, opts);
  EXPECT_GE(detected_after.load(), 0.0);
  EXPECT_LT(detected_after.load(), 1.5);
}

TEST(FtRuntime, TimedOutRankIsFencedFromItsOwnWorld) {
  // Once declared dead, the sleeper's own communication attempts must
  // throw RankFailedError on itself rather than corrupt the survivors.
  std::atomic<int> self_fenced{0};
  RunOptions opts;
  opts.fault_tolerant = true;
  opts.timeout_seconds = 0.15;
  run_parallel(2, [&](Communicator& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      try {
        comm.barrier();
      } catch (const RankFailedError& e) {
        if (e.failed_rank() == 1) ++self_fenced;
      }
      return;
    }
    try {
      comm.barrier();
    } catch (const RankFailedError&) {
    }
  }, opts);
  EXPECT_EQ(self_fenced.load(), 1);
}

TEST(FtRuntime, StrictModeStillAbortsEverybody) {
  // The pre-existing contract: without fault tolerance a rank exception
  // tears the whole run down with the original error.
  EXPECT_THROW(run_parallel(3,
                            [](Communicator& comm) {
                              if (comm.rank() == 1)
                                throw std::logic_error("strict abort");
                              comm.barrier();
                            }),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, CrashFiresAtExactlyTheScheduledStep) {
  FaultPlan plan;
  plan.crash(2, 5);
  EXPECT_FALSE(plan.empty());
  plan.fire(2, 4);  // not yet
  plan.fire(1, 5);  // wrong rank
  try {
    plan.fire(2, 5);
    FAIL() << "scheduled crash did not fire";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.step(), 5);
  }
}

TEST(FaultPlan, ValidatesArguments) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash(-1, 0), std::invalid_argument);
  EXPECT_THROW(plan.crash(0, -1), std::invalid_argument);
  EXPECT_THROW(plan.stall(0, 0, -1.0), std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RandomIsSeedReproducibleAndSparesRankZero) {
  const auto signature = [](const FaultPlan& plan, int ranks, int steps) {
    std::vector<std::pair<int, int>> crashes;
    for (int r = 0; r < ranks; ++r)
      for (int s = 0; s < steps; ++s)
        try {
          plan.fire(r, s);
        } catch (const InjectedFault&) {
          crashes.emplace_back(r, s);
        }
    return crashes;
  };
  util::Rng rng_a(42), rng_b(42);
  const FaultPlan a = FaultPlan::random(rng_a, 6, 10, 1.0);
  const FaultPlan b = FaultPlan::random(rng_b, 6, 10, 1.0);
  const auto sig = signature(a, 6, 10);
  EXPECT_EQ(sig, signature(b, 6, 10));
  ASSERT_EQ(sig.size(), 5u);  // certain crash for every rank but 0
  for (const auto& [rank, step] : sig) {
    EXPECT_NE(rank, 0);
    EXPECT_GE(step, 0);
    EXPECT_LT(step, 10);
  }
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

TEST(CheckpointStore, OnlyCompleteVersionsAreRestorable) {
  CheckpointStore store(3);
  EXPECT_EQ(store.latest_complete(), -1);
  store.save(0, 0, {1.0});
  store.save(0, 1, {2.0});
  EXPECT_EQ(store.latest_complete(), -1);  // item 2 missing
  store.save(0, 2, {3.0});
  EXPECT_EQ(store.latest_complete(), 0);
  // A newer partial version (a rank ran ahead, then died) must not win.
  store.save(4, 0, {9.0});
  EXPECT_EQ(store.latest_complete(), 0);
  store.purge_after(store.latest_complete());
  EXPECT_THROW(store.load(4, 0), std::out_of_range);
  EXPECT_EQ(store.load(0, 1), (std::vector<double>{2.0}));
}

TEST(CheckpointStore, ValidatesItemsAndIndices) {
  EXPECT_THROW(CheckpointStore(0), std::invalid_argument);
  CheckpointStore store(2);
  EXPECT_THROW(store.save(0, -1, {}), std::out_of_range);
  EXPECT_THROW(store.save(0, 2, {}), std::out_of_range);
  EXPECT_THROW(store.load(0, 0), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Fault-tolerant kernels: helpers
// ---------------------------------------------------------------------------

/// Heterogeneous constant speeds (elements/s) that outlive the SpeedList.
struct Speeds {
  explicit Speeds(std::initializer_list<double> s) {
    for (const double v : s) owned.emplace_back(v, 1e12);
    for (const auto& f : owned) list.push_back(&f);
  }
  std::vector<core::ConstantSpeed> owned;
  core::SpeedList list;
};

util::MatrixD serial_jacobi(util::MatrixD grid, int iterations) {
  for (int it = 0; it < iterations; ++it) grid = apps::jacobi_sweep(grid);
  return grid;
}

FaultToleranceOptions ft_options(const core::SpeedList& speeds,
                                 const FaultPlan* plan = nullptr) {
  FaultToleranceOptions options;
  options.speeds = speeds;
  options.faults = plan;
  // Generous: only real failures should trip it, never a slow CI machine.
  options.timeout_seconds = 10.0;
  return options;
}

// ---------------------------------------------------------------------------
// Fault-tolerant Jacobi
// ---------------------------------------------------------------------------

TEST(FtJacobi, FaultFreeRunMatchesSerialBitExactly) {
  const Speeds speeds{300.0, 100.0, 100.0};
  const util::MatrixD grid = linalg::random_matrix(20, 16, 31);
  const FtJacobiResult r =
      fault_tolerant_jacobi(grid, 3, 6, ft_options(speeds.list));
  EXPECT_TRUE(r.failed_ranks.empty());
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.grid, serial_jacobi(grid, 6)), 0.0);
  ASSERT_EQ(r.final_rows.size(), 3u);
  EXPECT_EQ(std::accumulate(r.final_rows.begin(), r.final_rows.end(),
                            std::int64_t{0}),
            20);
  // The 3x faster rank 0 holds the largest band.
  EXPECT_GT(r.final_rows[0], r.final_rows[1]);
}

TEST(FtJacobi, CrashedRankIsRecoveredBitExactly) {
  const Speeds speeds{200.0, 200.0, 100.0};
  const util::MatrixD grid = linalg::random_matrix(24, 12, 7);
  FaultPlan plan;
  plan.crash(1, 3);  // dies mid-run, after checkpoints exist
  const FtJacobiResult r =
      fault_tolerant_jacobi(grid, 3, 8, ft_options(speeds.list, &plan));
  EXPECT_EQ(r.failed_ranks, (std::vector<int>{1}));
  EXPECT_GE(r.recoveries, 1);
  ASSERT_EQ(r.final_rows.size(), 3u);
  EXPECT_EQ(r.final_rows[1], 0);  // the dead rank's band was drained
  EXPECT_GT(r.final_rows[0], 0);
  EXPECT_GT(r.final_rows[2], 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.grid, serial_jacobi(grid, 8)), 0.0);
}

TEST(FtJacobi, LosingTheLowestRankStillAssemblesTheResult) {
  // Rank 0 normally assembles the final grid; when it dies the new lowest
  // survivor must take over.
  const Speeds speeds{100.0, 100.0, 100.0};
  const util::MatrixD grid = linalg::random_matrix(18, 10, 11);
  FaultPlan plan;
  plan.crash(0, 2);
  const FtJacobiResult r =
      fault_tolerant_jacobi(grid, 3, 5, ft_options(speeds.list, &plan));
  EXPECT_EQ(r.failed_ranks, (std::vector<int>{0}));
  EXPECT_EQ(r.final_rows[0], 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.grid, serial_jacobi(grid, 5)), 0.0);
}

TEST(FtJacobi, SurvivesTwoFailuresWithSparseCheckpoints) {
  const Speeds speeds{100.0, 100.0, 100.0, 100.0};
  const util::MatrixD grid = linalg::random_matrix(21, 9, 3);
  FaultPlan plan;
  plan.crash(1, 2);
  plan.crash(3, 5);
  FaultToleranceOptions options = ft_options(speeds.list, &plan);
  options.checkpoint_interval = 3;  // rollback really re-executes work
  const FtJacobiResult r = fault_tolerant_jacobi(grid, 4, 7, options);
  EXPECT_EQ(r.failed_ranks, (std::vector<int>{1, 3}));
  EXPECT_GE(r.recoveries, 2);
  EXPECT_EQ(r.final_rows[1], 0);
  EXPECT_EQ(r.final_rows[3], 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.grid, serial_jacobi(grid, 7)), 0.0);
}

TEST(FtJacobi, StalledRankIsDetectedByTimeoutAndRecovered) {
  // The victim does not crash — it just stops making progress. Only the
  // deadline can unmask it; afterwards recovery proceeds as for a crash.
  const Speeds speeds{100.0, 100.0, 100.0};
  const util::MatrixD grid = linalg::random_matrix(15, 8, 19);
  FaultPlan plan;
  plan.stall(2, 1, 3.0);  // far longer than the detection deadline
  FaultToleranceOptions options = ft_options(speeds.list, &plan);
  options.timeout_seconds = 0.3;
  const auto t0 = clock_type::now();
  const FtJacobiResult r = fault_tolerant_jacobi(grid, 3, 4, options);
  EXPECT_EQ(r.failed_ranks, (std::vector<int>{2}));
  EXPECT_GE(r.recoveries, 1);
  EXPECT_EQ(r.final_rows[2], 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.grid, serial_jacobi(grid, 4)), 0.0);
  // The survivors finished while the victim was still asleep; only the
  // final join waits for it, bounding the run by the stall window.
  EXPECT_LT(seconds_since(t0), 8.0);
}

TEST(FtJacobi, ValidatesArguments) {
  const Speeds speeds{100.0};
  const util::MatrixD grid = linalg::random_matrix(4, 4, 1);
  EXPECT_THROW(fault_tolerant_jacobi(grid, 0, 1, ft_options(speeds.list)),
               std::invalid_argument);
  EXPECT_THROW(fault_tolerant_jacobi(grid, 1, -1, ft_options(speeds.list)),
               std::invalid_argument);
  FaultToleranceOptions bad = ft_options(speeds.list);
  bad.checkpoint_interval = 0;
  EXPECT_THROW(fault_tolerant_jacobi(grid, 1, 1, bad), std::invalid_argument);
  EXPECT_THROW(fault_tolerant_jacobi(util::MatrixD(), 1, 1,
                                     ft_options(speeds.list)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault-tolerant LU
// ---------------------------------------------------------------------------

TEST(FtLu, FaultFreeRunMatchesSerialBitExactly) {
  const Speeds speeds{200.0, 100.0, 100.0};
  const util::MatrixD a = linalg::random_matrix(36, 36, 23);
  const std::vector<int> owners{0, 1, 2, 0, 1, 2};  // 36/6 blocks
  const FtLuResult r =
      fault_tolerant_lu(a, 6, owners, 3, ft_options(speeds.list));
  ASSERT_TRUE(r.nonsingular);
  EXPECT_TRUE(r.failed_ranks.empty());
  EXPECT_EQ(r.final_block_owner, owners);
  util::MatrixD serial = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(linalg::lu_factor(serial, pivots));
  EXPECT_EQ(r.pivots, pivots);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.lu, serial), 0.0);
}

TEST(FtLu, CrashedOwnerIsRecoveredBitExactly) {
  const Speeds speeds{200.0, 100.0, 150.0};
  const util::MatrixD a = linalg::random_matrix(36, 36, 29);
  const std::vector<int> owners{0, 1, 2, 0, 1, 2};
  FaultPlan plan;
  plan.crash(2, 2);  // dies while still owning unfactored panels
  const FtLuResult r =
      fault_tolerant_lu(a, 6, owners, 3, ft_options(speeds.list, &plan));
  ASSERT_TRUE(r.nonsingular);
  EXPECT_EQ(r.failed_ranks, (std::vector<int>{2}));
  EXPECT_GE(r.recoveries, 1);
  // The dead rank's column blocks were dealt out to the survivors.
  ASSERT_EQ(r.final_block_owner.size(), owners.size());
  for (const int o : r.final_block_owner) EXPECT_NE(o, 2);
  util::MatrixD serial = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(linalg::lu_factor(serial, pivots));
  EXPECT_EQ(r.pivots, pivots);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.lu, serial), 0.0);
}

TEST(FtLu, SingularityIsStillDetected) {
  util::MatrixD a(12, 12);  // column 5 entirely zero
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      a(i, j) = (j == 5) ? 0.0 : 1.0 + double(i * 12 + j) * ((i + j) % 3);
  const Speeds speeds{100.0, 100.0};
  const std::vector<int> owners{0, 1, 0};
  const FtLuResult r =
      fault_tolerant_lu(a, 4, owners, 2, ft_options(speeds.list));
  EXPECT_FALSE(r.nonsingular);
}

TEST(FtLu, ValidatesArguments) {
  const Speeds speeds{100.0};
  const util::MatrixD sq = linalg::random_matrix(16, 16, 1);
  const util::MatrixD rect = linalg::random_matrix(16, 8, 1);
  const std::vector<int> owners{0, 0};
  EXPECT_THROW(fault_tolerant_lu(rect, 8, owners, 1, ft_options(speeds.list)),
               std::invalid_argument);
  EXPECT_THROW(fault_tolerant_lu(sq, 0, owners, 1, ft_options(speeds.list)),
               std::invalid_argument);
  EXPECT_THROW(fault_tolerant_lu(sq, 8, std::vector<int>{0}, 1,
                                 ft_options(speeds.list)),
               std::invalid_argument);
  EXPECT_THROW(fault_tolerant_lu(sq, 8, std::vector<int>{0, 5}, 2,
                                 ft_options(speeds.list)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault-tolerant matrix multiplication
// ---------------------------------------------------------------------------

TEST(FtMm, CrashedRankRestartsOverSurvivors) {
  const Speeds speeds{150.0, 100.0, 120.0};
  const util::MatrixD a = linalg::random_matrix(30, 30, 41);
  const util::MatrixD b = linalg::random_matrix(30, 30, 43);
  FaultPlan plan;
  plan.crash(1, 1);  // mid-ring
  const FtMmResult r =
      fault_tolerant_mm_abt(a, b, 3, ft_options(speeds.list, &plan));
  EXPECT_EQ(r.failed_ranks, (std::vector<int>{1}));
  EXPECT_GE(r.recoveries, 1);
  ASSERT_EQ(r.final_rows.size(), 3u);
  EXPECT_EQ(r.final_rows[1], 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.c, linalg::matmul_abt_naive(a, b)),
                   0.0);
}

TEST(FtMm, FaultFreeRunMatchesSerialExactly) {
  const Speeds speeds{100.0, 100.0};
  const util::MatrixD a = linalg::random_matrix(20, 20, 47);
  const util::MatrixD b = linalg::random_matrix(20, 20, 53);
  const FtMmResult r = fault_tolerant_mm_abt(a, b, 2, ft_options(speeds.list));
  EXPECT_TRUE(r.failed_ranks.empty());
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r.c, linalg::matmul_abt_naive(a, b)),
                   0.0);
}

// ---------------------------------------------------------------------------
// Seeded end-to-end fault schedule
// ---------------------------------------------------------------------------

TEST(FtJacobi, RandomFaultScheduleIsReplayableFromItsSeed) {
  const Speeds speeds{100.0, 100.0, 100.0, 100.0};
  const util::MatrixD grid = linalg::random_matrix(16, 8, 59);
  const auto run_with_seed = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    const FaultPlan plan = FaultPlan::random(rng, 4, 6, 0.8);
    return fault_tolerant_jacobi(grid, 4, 6, ft_options(speeds.list, &plan));
  };
  const FtJacobiResult r1 = run_with_seed(77);
  const FtJacobiResult r2 = run_with_seed(77);
  EXPECT_EQ(r1.failed_ranks, r2.failed_ranks);
  EXPECT_EQ(r1.final_rows, r2.final_rows);
  // Whatever the schedule killed, the result never degrades.
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r1.grid, serial_jacobi(grid, 6)), 0.0);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(r2.grid, serial_jacobi(grid, 6)), 0.0);
}

}  // namespace
}  // namespace fpm::mpp
