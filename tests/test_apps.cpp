// Tests for the driver applications: striped matrix multiplication
// (planning, simulation, numeric verification) and the Variable Group Block
// distribution with the LU makespan simulation.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/lu_app.hpp"
#include "apps/striped_mm.hpp"
#include "apps/vgb.hpp"
#include "linalg/kernels.hpp"
#include "simcluster/presets.hpp"

namespace fpm::apps {
namespace {

core::SpeedList truth_list(const sim::SimulatedCluster& cluster,
                           const char* app) {
  return cluster.ground_truth_list(app);
}

TEST(StripedMm, PlanCoversAllRows) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  for (const std::int64_t n : {12L, 100L, 3000L, 20000L}) {
    for (const ModelKind kind :
         {ModelKind::Functional, ModelKind::SingleNumber, ModelKind::Even}) {
      const StripedMmPlan plan = plan_striped_mm(models, n, kind);
      const std::int64_t total = std::accumulate(
          plan.rows.begin(), plan.rows.end(), std::int64_t{0});
      EXPECT_EQ(total, n) << n << " kind " << static_cast<int>(kind);
      for (const std::int64_t r : plan.rows) EXPECT_GE(r, 0);
    }
  }
}

TEST(StripedMm, FunctionalPlanFavoursFastMachines) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  const StripedMmPlan plan =
      plan_striped_mm(models, 10000, ModelKind::Functional);
  // X3/X4 (2783 MHz Xeon bigmem, indices 2 and 3) must get more rows than
  // the Solaris Ultra-5s (440 MHz, indices 9-11).
  EXPECT_GT(plan.rows[2], plan.rows[9]);
  EXPECT_GT(plan.rows[3], plan.rows[11]);
}

TEST(StripedMm, EvenPlanIsEven) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  const StripedMmPlan plan = plan_striped_mm(models, 120, ModelKind::Even);
  for (const std::int64_t r : plan.rows) EXPECT_EQ(r, 10);
}

TEST(StripedMm, RejectsBadArguments) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  EXPECT_THROW(plan_striped_mm({}, 10, ModelKind::Even),
               std::invalid_argument);
  EXPECT_THROW(plan_striped_mm(models, 0, ModelKind::Even),
               std::invalid_argument);
}

TEST(StripedMm, NumericsMatchSerialProduct) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  const std::int64_t n = 60;
  const StripedMmPlan plan =
      plan_striped_mm(models, n, ModelKind::Functional);
  const util::MatrixD a = linalg::random_matrix(n, n, 21);
  const util::MatrixD b = linalg::random_matrix(n, n, 22);
  const util::MatrixD striped = striped_mm_compute(a, b, plan);
  const util::MatrixD serial = linalg::matmul_abt_naive(a, b);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(striped, serial), 0.0);
}

TEST(StripedMm, SimulatedMakespanPositiveAndDeterministic) {
  auto c1 = sim::make_table2_cluster(9);
  auto c2 = sim::make_table2_cluster(9);
  const auto models = truth_list(c1, sim::kMatMul);
  const StripedMmPlan plan =
      plan_striped_mm(models, 5000, ModelKind::Functional);
  const double t1 = simulate_striped_mm_seconds(c1, sim::kMatMul, plan, 5000,
                                                /*sampled=*/true);
  const double t2 = simulate_striped_mm_seconds(c2, sim::kMatMul, plan, 5000,
                                                /*sampled=*/true);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(StripedMm, FunctionalBeatsSingleNumberOncePagingMatters) {
  // The paper's headline mechanism: at sizes where the single-number
  // reference misjudges paging behaviour, the functional plan wins.
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  const std::int64_t n = 20000;  // deep past the smaller machines' onsets
  const auto func = plan_striped_mm(models, n, ModelKind::Functional);
  const auto single =
      plan_striped_mm(models, n, ModelKind::SingleNumber, 500);
  const double t_func =
      simulate_striped_mm_seconds(cluster, sim::kMatMul, func, n, false);
  const double t_single =
      simulate_striped_mm_seconds(cluster, sim::kMatMul, single, n, false);
  EXPECT_LT(t_func, t_single);
}

TEST(StripedMm, CommVariantMatchesComputeOnlyOnFreeNetwork) {
  // With an effectively free network the ring simulation must reproduce
  // the compute-only makespan structure (same total flops per machine).
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  const std::int64_t n = 8000;
  const auto plan = plan_striped_mm(models, n, ModelKind::Functional);
  const comm::CommModel free_net =
      comm::CommModel::uniform(cluster.size(), {0.0, 1e18});
  const double t_plain =
      simulate_striped_mm_seconds(cluster, sim::kMatMul, plan, n, false);
  const double t_ring = simulate_striped_mm_with_comm_seconds(
      cluster, sim::kMatMul, plan, n, free_net, false);
  // The ring serializes into p steps with per-step maxima, so it is never
  // faster and close when machines are balanced by the plan.
  EXPECT_GE(t_ring, t_plain * (1.0 - 1e-9));
  EXPECT_LE(t_ring, t_plain * 2.0);
}

TEST(StripedMm, SlowNetworkInflatesRingTime) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kMatMul);
  const std::int64_t n = 8000;
  const auto plan = plan_striped_mm(models, n, ModelKind::Functional);
  const comm::CommModel fast =
      comm::CommModel::uniform(cluster.size(), {1e-5, 1.25e9});
  const comm::CommModel slow =
      comm::CommModel::uniform(cluster.size(), {1e-3, 1.25e6});
  EXPECT_LT(simulate_striped_mm_with_comm_seconds(cluster, sim::kMatMul, plan,
                                                  n, fast, false),
            simulate_striped_mm_with_comm_seconds(cluster, sim::kMatMul, plan,
                                                  n, slow, false));
}

TEST(LuSimulation, CommVariantAddsBroadcastCosts) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kLu);
  VgbOptions opts;
  opts.block = 128;
  const VgbDistribution d = variable_group_block(models, 4096, opts);
  const comm::CommModel net =
      comm::CommModel::uniform(cluster.size(), {1e-4, 12.5e6});
  const double t_plain = simulate_lu_seconds(cluster, sim::kLu, d, false);
  const double t_comm =
      simulate_lu_with_comm_seconds(cluster, sim::kLu, d, net, false);
  EXPECT_GT(t_comm, t_plain);
  // Free network converges back to the compute-only time.
  const comm::CommModel free_net =
      comm::CommModel::uniform(cluster.size(), {0.0, 1e18});
  EXPECT_NEAR(
      simulate_lu_with_comm_seconds(cluster, sim::kLu, d, free_net, false),
      t_plain, 1e-9 * t_plain);
}

TEST(Vgb, CoversAllBlocksExactly) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kLu);
  for (const std::int64_t n : {64L, 577L, 3000L}) {
    VgbOptions opts;
    opts.block = 32;
    const VgbDistribution d = variable_group_block(models, n, opts);
    EXPECT_EQ(d.total_blocks(), (n + 31) / 32) << n;
    const std::int64_t group_total = std::accumulate(
        d.group_sizes.begin(), d.group_sizes.end(), std::int64_t{0});
    EXPECT_EQ(group_total, d.total_blocks()) << n;
    for (const int owner : d.block_owner) {
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, 12);
    }
  }
}

TEST(Vgb, OwnedBlocksFromCountsSuffixes) {
  VgbDistribution d;
  d.n = 4;
  d.block = 1;
  d.block_owner = {0, 1, 0, 2};
  EXPECT_EQ(d.owned_blocks_from(0, 0), 2);
  EXPECT_EQ(d.owned_blocks_from(0, 1), 1);
  EXPECT_EQ(d.owned_blocks_from(0, 3), 0);
  EXPECT_EQ(d.owned_blocks_from(2, 0), 1);
}

TEST(Vgb, LastGroupStartsWithSlowestProcessors) {
  // Two constant speeds: fast (index 0) and slow (index 1). In every group
  // but the last, the fast processor's blocks come first; in the last
  // group the slow one leads (paper step 3).
  const core::ConstantSpeed fast(300.0, 1e10);
  const core::ConstantSpeed slow(100.0, 1e10);
  const core::SpeedList models{&fast, &slow};
  VgbOptions opts;
  opts.block = 8;
  const VgbDistribution d = variable_group_block(models, 512, opts);
  ASSERT_GE(d.group_sizes.size(), 2u);
  // First group leads with the fast processor.
  EXPECT_EQ(d.block_owner.front(), 0);
  // Last group leads with the slow processor.
  const std::int64_t last_start = d.total_blocks() - d.group_sizes.back();
  EXPECT_EQ(d.block_owner[static_cast<std::size_t>(last_start)], 1);
}

TEST(Vgb, GroupSharesFollowSpeedRatio) {
  const core::ConstantSpeed fast(300.0, 1e10);
  const core::ConstantSpeed slow(100.0, 1e10);
  const core::SpeedList models{&fast, &slow};
  VgbOptions opts;
  opts.block = 8;
  const VgbDistribution d = variable_group_block(models, 1024, opts);
  const std::int64_t fast_blocks = d.owned_blocks_from(0, 0);
  const std::int64_t slow_blocks = d.owned_blocks_from(1, 0);
  EXPECT_NEAR(static_cast<double>(fast_blocks) /
                  static_cast<double>(slow_blocks),
              3.0, 0.5);
}

TEST(Vgb, RejectsBadArguments) {
  const core::ConstantSpeed f(100.0, 1e10);
  const core::SpeedList models{&f};
  VgbOptions opts;
  EXPECT_THROW(variable_group_block({}, 100, opts), std::invalid_argument);
  opts.block = 0;
  EXPECT_THROW(variable_group_block(models, 100, opts),
               std::invalid_argument);
}

TEST(Vgb, SingleNumberModeUsesReferenceSpeeds) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kLu);
  VgbOptions opts;
  opts.block = 32;
  opts.model = VgbModel::SingleNumber;
  opts.reference_n = 2000;
  const VgbDistribution d = variable_group_block(models, 2048, opts);
  EXPECT_EQ(std::accumulate(d.group_sizes.begin(), d.group_sizes.end(),
                            std::int64_t{0}),
            d.total_blocks());
}

TEST(LuSimulation, PositiveDeterministicAndCoversAllSteps) {
  auto c1 = sim::make_table2_cluster(31);
  auto c2 = sim::make_table2_cluster(31);
  const auto models = truth_list(c1, sim::kLu);
  VgbOptions opts;
  opts.block = 64;
  const VgbDistribution d = variable_group_block(models, 2048, opts);
  const double t1 = simulate_lu_seconds(c1, sim::kLu, d, true);
  const double t2 = simulate_lu_seconds(c2, sim::kLu, d, true);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(LuSimulation, FunctionalBeatsSingleNumberOncePagingMatters) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kLu);
  const std::int64_t n = 20480;
  VgbOptions func;
  func.block = 128;
  VgbOptions single;
  single.block = 128;
  single.model = VgbModel::SingleNumber;
  single.reference_n = 2000;
  const VgbDistribution df = variable_group_block(models, n, func);
  const VgbDistribution ds = variable_group_block(models, n, single);
  const double tf = simulate_lu_seconds(cluster, sim::kLu, df, false);
  const double ts = simulate_lu_seconds(cluster, sim::kLu, ds, false);
  EXPECT_LT(tf, ts);
}

TEST(LuSimulation, MoreWorkTakesLonger) {
  auto cluster = sim::make_table2_cluster();
  const auto models = truth_list(cluster, sim::kLu);
  VgbOptions opts;
  opts.block = 64;
  const VgbDistribution small = variable_group_block(models, 1024, opts);
  const VgbDistribution large = variable_group_block(models, 4096, opts);
  EXPECT_LT(simulate_lu_seconds(cluster, sim::kLu, small, false),
            simulate_lu_seconds(cluster, sim::kLu, large, false));
}

TEST(LuTotalFlops, LeadingOrderCubeTerm) {
  EXPECT_NEAR(lu_total_flops(900), (2.0 / 3.0) * 900.0 * 900.0 * 900.0,
              0.01 * (2.0 / 3.0) * 900.0 * 900.0 * 900.0);
}

}  // namespace
}  // namespace fpm::apps
