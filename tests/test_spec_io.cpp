// Tests for cluster-definition persistence: round trips of the Table
// presets through the fpm-cluster format, curve equivalence after reload,
// and parse-error reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "simcluster/presets.hpp"
#include "simcluster/spec_io.hpp"

namespace fpm::sim {
namespace {

TEST(SpecIo, PatternNamesRoundTrip) {
  for (const MemoryPattern p :
       {MemoryPattern::Efficient, MemoryPattern::Moderate,
        MemoryPattern::Inefficient})
    EXPECT_EQ(pattern_from_string(to_string(p)), p);
  EXPECT_THROW(pattern_from_string("bogus"), std::runtime_error);
}

TEST(SpecIo, Table2RoundTripPreservesEverything) {
  const auto original = table2_machines();
  std::stringstream file;
  save_cluster(file, original);
  const auto loaded = load_cluster(file);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const SimulatedMachine& a = original[i];
    const SimulatedMachine& b = loaded[i];
    EXPECT_EQ(a.spec.name, b.spec.name);
    EXPECT_EQ(a.spec.os, b.spec.os);
    EXPECT_EQ(a.spec.arch, b.spec.arch);
    EXPECT_DOUBLE_EQ(a.spec.cpu_mhz, b.spec.cpu_mhz);
    EXPECT_EQ(a.spec.free_memory_kb, b.spec.free_memory_kb);
    EXPECT_EQ(a.spec.cache_kb, b.spec.cache_kb);
    EXPECT_DOUBLE_EQ(a.fluctuation.width_small, b.fluctuation.width_small);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (const auto& [name, curve] : a.apps) {
      ASSERT_EQ(b.apps.count(name), 1u) << name;
      const MachineSpeed& ca = *curve;
      const MachineSpeed& cb = *b.apps.at(name);
      EXPECT_DOUBLE_EQ(ca.paging_onset(), cb.paging_onset()) << name;
      EXPECT_DOUBLE_EQ(ca.peak_speed(), cb.peak_speed()) << name;
      // Curves must agree pointwise (same synthesis inputs).
      for (double x = 1e4; x < ca.max_size(); x *= 3.7)
        EXPECT_DOUBLE_EQ(ca.speed(x), cb.speed(x)) << name << " x=" << x;
    }
  }
}

TEST(SpecIo, ReloadedClusterSimulatesIdentically) {
  std::stringstream file;
  save_cluster(file, table2_machines());
  SimulatedCluster reloaded(load_cluster(file), 42);
  SimulatedCluster direct(table2_machines(), 42);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(reloaded.measure(3, kMatMul, 2e6),
                     direct.measure(3, kMatMul, 2e6));
}

TEST(SpecIo, FileRoundTrip) {
  const std::string path = "/tmp/fpm_cluster_io_test.cluster";
  save_cluster_file(path, table1_machines());
  const auto loaded = load_cluster_file(path);
  EXPECT_EQ(loaded.size(), 4u);
  EXPECT_EQ(loaded[2].spec.name, "Comp3");
  std::remove(path.c_str());
  EXPECT_THROW(load_cluster_file("/nonexistent/x.cluster"),
               std::runtime_error);
}

TEST(SpecIo, ParseErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::stringstream ss(text);
    try {
      load_cluster(ss);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
          << err.what();
    }
  };
  expect_error("os Linux\n", "outside machine");
  expect_error("machine a\nmachine b\n", "nested");
  expect_error("machine a\nend\n", "lacks fluctuation");
  expect_error(
      "machine a\ncpu_mhz 100\nmain_kb 10\nfree_kb 5\ncache_kb 1\n"
      "fluctuation 0.1 0.05 0\nend\n",
      "has no apps");
  expect_error("machine a\nbogus 1\nend\n", "unknown keyword");
  expect_error("machine a\ncpu_mhz nope\n", "bad cpu_mhz");
  expect_error("machine a\n", "unterminated");
  // Invalid synthesized machine (onset below cache) surfaces as a parse
  // error with the line number of 'end'.
  expect_error(
      "machine a\nos L\narch x\ncpu_mhz 100\nmain_kb 1000\nfree_kb 500\n"
      "cache_kb 1024\nfluctuation 0.1 0.05 0\n"
      "app T moderate 8 0.5 1 10\nend\n",
      "invalid machine/app");
}

TEST(SpecIo, PolicyLineRoundTrips) {
  ClusterSpec spec;
  spec.machines = table1_machines();
  spec.policy = core::parse_policy(
      core::kAlgorithmCombined,
      std::vector<std::string>{"stall_window", "7"});
  spec.has_policy = true;
  std::stringstream file;
  save_cluster_spec(file, spec);
  EXPECT_NE(file.str().find("policy combined stall_window 7"),
            std::string::npos);
  const ClusterSpec loaded = load_cluster_spec(file);
  EXPECT_TRUE(loaded.has_policy);
  EXPECT_EQ(core::format_policy(loaded.policy), "combined stall_window 7");
  EXPECT_EQ(loaded.machines.size(), spec.machines.size());
}

TEST(SpecIo, MissingPolicyLineMeansDefaultPolicy) {
  std::stringstream file;
  save_cluster(file, table1_machines());
  EXPECT_EQ(file.str().find("policy"), std::string::npos);
  const ClusterSpec loaded = load_cluster_spec(file);
  EXPECT_FALSE(loaded.has_policy);
  EXPECT_EQ(loaded.policy.algorithm, core::kAlgorithmCombined);
  EXPECT_EQ(core::format_policy(loaded.policy), "combined");
}

TEST(SpecIo, PolicyLineErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::stringstream ss(text);
    try {
      load_cluster_spec(ss);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
          << err.what();
    }
  };
  expect_error("policy annealing\n", "unknown algorithm");
  expect_error("policy combined stall_window\n", "missing its value");
  expect_error("policy combined cooling_rate 3\n", "has no key");
  expect_error("policy\n", "missing policy algorithm");
  expect_error("policy combined\npolicy basic\n", "duplicate 'policy'");
  expect_error("machine a\npolicy combined\n", "'policy' inside machine");
}

TEST(SpecIo, SaveRejectsBadNames) {
  auto ms = table1_machines();
  ms[0].spec.name = "has space";
  std::stringstream ss;
  EXPECT_THROW(save_cluster(ss, ms), std::runtime_error);
}

TEST(SpecIo, HandWrittenClusterWorksEndToEnd) {
  std::stringstream file(R"(# my lab
machine big
os Linux 6.1
arch x86_64
cpu_mhz 3000
main_kb 16000000
free_kb 8000000
cache_kb 32768
fluctuation 0.1 0.05 0
app Solver moderate 8 0.6 1.5 500000000
end
machine small
os Linux 6.1
arch arm64
cpu_mhz 1500
main_kb 4000000
free_kb 1000000
cache_kb 4096
fluctuation 0.3 0.06 0
app Solver moderate 8 0.6 1.5 60000000
end
)");
  SimulatedCluster cluster(load_cluster(file), 7);
  ASSERT_EQ(cluster.size(), 2u);
  // The big machine is faster at any shared size.
  EXPECT_GT(cluster.ground_truth(0, "Solver").speed(1e7),
            cluster.ground_truth(1, "Solver").speed(1e7));
  // And models can be built and used directly.
  const ClusterModels models = build_cluster_models(cluster, "Solver");
  EXPECT_EQ(models.curves.size(), 2u);
}

}  // namespace
}  // namespace fpm::sim
