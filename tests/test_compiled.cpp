// Equivalence tests for the compiled speed-model layer (core/compiled.*):
// bit-identical speed() / intersect() per family, closed-form intersections
// against the generic bisection, bit-identical distributions and stats for
// every registry algorithm with the compiled path toggled on and off, and
// content-hash fingerprint semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/fpm.hpp"
#include "helpers.hpp"

namespace fpm {
namespace {

using core::CompiledSpeedList;

/// RAII guard pinning the bit-exact scalar batch kernels: the SIMD lanes
/// are only ULP-equivalent to the virtual path (tests/test_simd.cpp owns
/// that gate), so the bit-identity assertions below run in scalar mode.
class ScalarKernelsGuard {
 public:
  ScalarKernelsGuard() : old_(core::simd_kernels_enabled()) {
    core::set_simd_kernels(false);
  }
  ~ScalarKernelsGuard() { core::set_simd_kernels(old_); }

 private:
  bool old_;
};

/// RAII guard flipping the process-wide compiled-partitioning switch.
class CompiledToggle {
 public:
  explicit CompiledToggle(bool enabled)
      : old_(core::compiled_partitioning_enabled()) {
    core::set_compiled_partitioning(enabled);
  }
  ~CompiledToggle() { core::set_compiled_partitioning(old_); }

 private:
  bool old_;
};

/// Every ensemble the suite knows, plus mixed and a piecewise curve set.
std::vector<test::Ensemble> equivalence_ensembles() {
  auto out = test::all_ensembles(4);
  out.push_back(test::mixed_ensemble());
  test::Ensemble pw{"piecewise", {}};
  for (int i = 0; i < 3; ++i) {
    const double d = static_cast<double>(i);
    std::vector<core::SpeedPoint> pts{{1e3, 180.0 + 20.0 * d},
                                      {5e5, 160.0 + 20.0 * d},
                                      {2e7, 90.0 + 10.0 * d},
                                      {4e8, 12.0 + d}};
    pw.owned.push_back(
        std::make_shared<core::PiecewiseLinearSpeed>(std::move(pts)));
  }
  out.push_back(std::move(pw));
  return out;
}

TEST(Compiled, SpeedAndIntersectBitIdenticalPerFamily) {
  for (const test::Ensemble& e : equivalence_ensembles()) {
    const core::SpeedList list = e.list();
    const CompiledSpeedList compiled = CompiledSpeedList::compile(list);
    ASSERT_EQ(compiled.size(), list.size());
    EXPECT_TRUE(compiled.fully_compiled()) << e.name;
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (double x = 1.0; x <= 4e9; x *= 3.7)
        EXPECT_EQ(compiled.speed(i, x), list[i]->speed(x))
            << e.name << " curve " << i << " at x=" << x;
      for (double x = 10.0; x <= 1e8; x *= 10.0) {
        const double slope = list[i]->speed(x) / x;
        EXPECT_EQ(compiled.intersect(i, slope), list[i]->intersect(slope))
            << e.name << " curve " << i << " slope through x=" << x;
      }
    }
  }
}

TEST(Compiled, WrappersCompileOneLevelDeep) {
  auto power = std::make_shared<core::PowerDecaySpeed>(170.0, 3e7, 1.1, 1e9);
  auto exp = std::make_shared<core::ExpDecaySpeed>(150.0, 5e4, 2e6);
  const core::ScaledSpeed scaled(power, 0.75);
  const core::GranularSpeed granular(exp, 48.0);
  const core::GranularSpeedView view(*power, 9.0);

  const core::SpeedList list{&scaled, &granular, &view};
  const CompiledSpeedList compiled = CompiledSpeedList::compile(list);
  EXPECT_TRUE(compiled.fully_compiled());
  EXPECT_EQ(compiled.wrap(0), CompiledSpeedList::Wrap::Scaled);
  EXPECT_EQ(compiled.family(0), CompiledSpeedList::Family::PowerDecay);
  EXPECT_EQ(compiled.wrap(1), CompiledSpeedList::Wrap::Granular);
  EXPECT_EQ(compiled.family(1), CompiledSpeedList::Family::ExpDecay);
  EXPECT_EQ(compiled.wrap(2), CompiledSpeedList::Wrap::Granular);
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(compiled.max_size(i), list[i]->max_size());
    for (double x = 1.0; x <= 1e8; x *= 2.9)
      EXPECT_EQ(compiled.speed(i, x), list[i]->speed(x)) << "curve " << i;
    for (double x = 100.0; x <= 1e6; x *= 10.0) {
      const double slope = list[i]->speed(x) / x;
      EXPECT_EQ(compiled.intersect(i, slope), list[i]->intersect(slope))
          << "curve " << i;
    }
  }
}

/// An unknown SpeedFunction subclass must fall back to a Generic entry that
/// forwards to the virtual object.
class OddSpeed final : public core::SpeedFunction {
 public:
  double speed(double x) const override { return 130.0 / (1.0 + x / 1e6); }
  double max_size() const override { return 1e8; }
};

TEST(Compiled, UnknownSubclassFallsBackToGeneric) {
  const OddSpeed odd;
  auto constant = std::make_shared<core::ConstantSpeed>(100.0, 1e9);
  const core::SpeedList list{&odd, constant.get()};
  const CompiledSpeedList compiled = CompiledSpeedList::compile(list);
  EXPECT_FALSE(compiled.fully_compiled());
  EXPECT_EQ(compiled.generic_entries(), 1u);
  EXPECT_EQ(compiled.family(0), CompiledSpeedList::Family::Generic);
  EXPECT_EQ(compiled.family(1), CompiledSpeedList::Family::Constant);
  for (double x = 1.0; x <= 1e8; x *= 5.1)
    EXPECT_EQ(compiled.speed(0, x), odd.speed(x));
  for (double slope : {1e-4, 1e-2, 1.0, 50.0})
    EXPECT_EQ(compiled.intersect(0, slope), odd.intersect(slope));
}

/// Satellite regression: the closed-form intersections of the power- and
/// exponential-decay families must agree with the generic bisection (the
/// SpeedFunction base implementation, reached via a qualified call) to 1e-9
/// relative across slopes spanning ~300 orders of magnitude.
void expect_close(double a, double b, const char* what, double slope) {
  const double scale = std::max(std::abs(a), std::abs(b));
  EXPECT_LE(std::abs(a - b), 1e-9 * scale)
      << what << " at slope " << slope << ": closed " << a << " generic " << b;
}

TEST(Compiled, PowerDecayClosedFormMatchesBisection) {
  for (const double x0 : {3e5, 2e7}) {
    for (const double k : {0.5, 1.0, 2.0, 3.5, 8.0, 20.0}) {
      const core::PowerDecaySpeed f(150.0, x0, k, 1e9);
      for (int e = -300; e <= 6; e += 3)
        expect_close(f.intersect(std::pow(10.0, e)),
                     f.SpeedFunction::intersect(std::pow(10.0, e)),
                     "power-decay", std::pow(10.0, e));
    }
  }
}

TEST(Compiled, ExpDecayClosedFormMatchesBisection) {
  for (const double lambda : {5e3, 4.5e4, 4e5, 2e6, 1.2e7}) {
    const core::ExpDecaySpeed f(150.0, lambda, 2e6);
    for (int e = -300; e <= 6; e += 3)
      expect_close(f.intersect(std::pow(10.0, e)),
                   f.SpeedFunction::intersect(std::pow(10.0, e)), "exp-decay",
                   std::pow(10.0, e));
  }
}

TEST(Compiled, AllAlgorithmsBitIdenticalAcrossToggle) {
  ScalarKernelsGuard scalar;
  std::vector<test::Ensemble> ensembles = equivalence_ensembles();
  for (const test::Ensemble& e : ensembles) {
    const core::SpeedList list = e.list();
    for (const std::string& alg : core::partitioner_registry().ids()) {
      core::PartitionPolicy policy;
      policy.algorithm = alg;
      for (const std::int64_t n : {1000LL, 1000000LL}) {
        core::PartitionResult on, off;
        {
          CompiledToggle guard(true);
          on = core::partition(list, n, policy);
        }
        {
          CompiledToggle guard(false);
          off = core::partition(list, n, policy);
        }
        EXPECT_EQ(on.distribution.counts, off.distribution.counts)
            << e.name << " " << alg << " n=" << n;
        EXPECT_EQ(on.stats.iterations, off.stats.iterations)
            << e.name << " " << alg << " n=" << n;
        EXPECT_EQ(on.stats.intersections, off.stats.intersections)
            << e.name << " " << alg << " n=" << n;
        EXPECT_EQ(on.stats.final_slope, off.stats.final_slope)
            << e.name << " " << alg << " n=" << n;
        EXPECT_EQ(on.stats.speed_evals, off.stats.speed_evals)
            << e.name << " " << alg << " n=" << n;
        EXPECT_EQ(on.stats.intersect_solves, off.stats.intersect_solves)
            << e.name << " " << alg << " n=" << n;
        EXPECT_EQ(on.stats.switched_to_modified, off.stats.switched_to_modified)
            << e.name << " " << alg << " n=" << n;
      }
    }
  }
}

TEST(Compiled, BracketAndSizesMatchVirtualHelpers) {
  ScalarKernelsGuard scalar;
  for (const test::Ensemble& e : equivalence_ensembles()) {
    const core::SpeedList list = e.list();
    const CompiledSpeedList compiled = CompiledSpeedList::compile(list);
    for (const std::int64_t n : {100LL, 5000000LL}) {
      core::EvalCounters counters;
      const core::SlopeBracket a = detect_bracket(compiled, n, &counters);
      const core::SlopeBracket b = detect_bracket(list, n);
      EXPECT_EQ(a.lo_slope, b.lo_slope) << e.name << " n=" << n;
      EXPECT_EQ(a.hi_slope, b.hi_slope) << e.name << " n=" << n;
      EXPECT_GT(counters.speed_evals, 0) << e.name;
      EXPECT_GT(counters.intersect_solves, 0) << e.name;
      EXPECT_EQ(sizes_at(compiled, a.lo_slope, nullptr),
                sizes_at(list, b.lo_slope))
          << e.name << " n=" << n;
      EXPECT_EQ(total_size_at(compiled, a.hi_slope, nullptr),
                total_size_at(list, b.hi_slope))
          << e.name << " n=" << n;
    }
  }
}

TEST(Compiled, FingerprintIsContentHashForKnownFamilies) {
  const test::Ensemble a = test::power_ensemble(5);
  const test::Ensemble b = test::power_ensemble(5);  // distinct objects
  EXPECT_EQ(CompiledSpeedList::compile(a.list()).fingerprint(),
            CompiledSpeedList::compile(b.list()).fingerprint());

  const test::Ensemble c = test::power_ensemble(4);  // different p
  EXPECT_NE(CompiledSpeedList::compile(a.list()).fingerprint(),
            CompiledSpeedList::compile(c.list()).fingerprint());

  const core::PowerDecaySpeed p1(90.0, 2e7, 0.8, 1e9);
  const core::PowerDecaySpeed p2(90.0, 2e7, 0.9, 1e9);  // one param differs
  EXPECT_NE(CompiledSpeedList::compile({&p1}).fingerprint(),
            CompiledSpeedList::compile({&p2}).fingerprint());

  // Families with identical raw parameters must still hash apart.
  const core::ConstantSpeed k1(100.0, 1e9);
  const core::ExpDecaySpeed k2(100.0, 1e9, 1e9);
  EXPECT_NE(CompiledSpeedList::compile({&k1}).fingerprint(),
            CompiledSpeedList::compile({&k2}).fingerprint());
}

TEST(Compiled, FingerprintUsesIdentityForGenericEntries) {
  const OddSpeed odd1, odd2;
  EXPECT_EQ(CompiledSpeedList::compile({&odd1}).fingerprint(),
            CompiledSpeedList::compile({&odd1}).fingerprint());
  EXPECT_NE(CompiledSpeedList::compile({&odd1}).fingerprint(),
            CompiledSpeedList::compile({&odd2}).fingerprint());
}

TEST(Compiled, FingerprintOfMatchesCompileAcrossAllEnsembles) {
  // fingerprint_of is the cache-key fast path: it must reproduce the exact
  // hash compile() stores, for every family, wrapper, and the piecewise
  // breakpoint pools.
  for (const test::Ensemble& e : equivalence_ensembles()) {
    const core::SpeedList list = e.list();
    EXPECT_EQ(CompiledSpeedList::fingerprint_of(list),
              CompiledSpeedList::compile(list).fingerprint())
        << e.name;
  }
  // Wrappers and generic (unknown-subclass) entries.
  const OddSpeed odd;
  auto base = std::make_shared<core::ConstantSpeed>(100.0, 1e9);
  const core::ScaledSpeed scaled(base, 0.5);
  const core::GranularSpeed granular(base, 8.0);
  const core::SpeedList wrapped{&odd, &scaled, &granular, base.get()};
  EXPECT_EQ(CompiledSpeedList::fingerprint_of(wrapped),
            CompiledSpeedList::compile(wrapped).fingerprint());
  EXPECT_THROW(CompiledSpeedList::fingerprint_of({nullptr}),
               std::invalid_argument);
}

TEST(Compiled, PrecompiledGuardReusesTheInstalledModel) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  const core::PartitionResult plain = core::partition(list, 123456);
  const CompiledSpeedList compiled = CompiledSpeedList::compile(list);
  {
    core::PrecompiledGuard guard(list, compiled);
    EXPECT_EQ(core::precompiled_match(list), &compiled);
    // An element-wise equal copy of the list matches too (the server's
    // BatchRequest copies the pointer vector).
    const core::SpeedList copy = list;
    EXPECT_EQ(core::precompiled_match(copy), &compiled);
    // A different list (e.g. a hierarchy sub-list) must not match.
    core::SpeedList sub(list.begin(), list.begin() + 2);
    EXPECT_EQ(core::precompiled_match(sub), nullptr);
    // Partitioning under the guard is bit-identical to compiling inline.
    const core::PartitionResult guarded = core::partition(list, 123456);
    EXPECT_EQ(guarded.distribution.counts, plain.distribution.counts);
    EXPECT_EQ(guarded.stats.speed_evals, plain.stats.speed_evals);
    EXPECT_EQ(guarded.stats.intersect_solves, plain.stats.intersect_solves);
  }
  EXPECT_EQ(core::precompiled_match(list), nullptr);  // guard restored
}

TEST(Compiled, CompiledEntryViewCountsAtTheBoundary) {
  const test::Ensemble e = test::power_ensemble(3);
  const core::SpeedList list = e.list();
  const CompiledSpeedList compiled = CompiledSpeedList::compile(list);
  core::EvalCounters counters;
  core::CompiledEntryView view(compiled, 1, &counters);
  EXPECT_EQ(view.speed(1e6), list[1]->speed(1e6));
  EXPECT_EQ(view.max_size(), list[1]->max_size());
  EXPECT_EQ(view.intersect(1e-3), list[1]->intersect(1e-3));
  EXPECT_EQ(counters.speed_evals, 1);
  EXPECT_EQ(counters.intersect_solves, 1);
}

}  // namespace
}  // namespace fpm
