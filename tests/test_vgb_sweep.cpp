// Parameterized property sweep over the Variable Group Block distribution:
// structural invariants across block sizes, matrix sizes and models, plus
// the paper's structural claims about group composition.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "apps/vgb.hpp"
#include "helpers.hpp"

namespace fpm::apps {
namespace {

class VgbSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(VgbSweep, StructuralInvariantsAcrossFamilies) {
  const auto [n, b] = GetParam();
  for (const auto& e : fpm::test::all_ensembles(5)) {
    VgbOptions opts;
    opts.block = b;
    const VgbDistribution d = variable_group_block(e.list(), n, opts);
    // Exactly one owner per block, all in range.
    EXPECT_EQ(d.total_blocks(), (n + b - 1) / b) << e.name;
    for (const int owner : d.block_owner) {
      EXPECT_GE(owner, 0) << e.name;
      EXPECT_LT(owner, 5) << e.name;
    }
    // Group sizes positive and summing to the block count.
    std::int64_t sum = 0;
    for (const std::int64_t g : d.group_sizes) {
      EXPECT_GE(g, 1) << e.name;
      sum += g;
    }
    EXPECT_EQ(sum, d.total_blocks()) << e.name;
    // Bookkeeping fields round-trip.
    EXPECT_EQ(d.n, n);
    EXPECT_EQ(d.block, b);
    // owned_blocks_from(_, 0) partitions the blocks.
    std::int64_t owned = 0;
    for (int p = 0; p < 5; ++p) owned += d.owned_blocks_from(p, 0);
    EXPECT_EQ(owned, d.total_blocks()) << e.name;
  }
}

TEST_P(VgbSweep, GroupsShrinkOrHoldAsSpeedRatiosCompress) {
  // With constant speeds the group structure is stationary: every group
  // except possibly the last has the same size (the remaining problem has
  // the same relative speeds at every scale).
  const auto [n, b] = GetParam();
  const auto e = fpm::test::constant_ensemble(5);
  VgbOptions opts;
  opts.block = b;
  const VgbDistribution d = variable_group_block(e.list(), n, opts);
  for (std::size_t g = 1; g + 1 < d.group_sizes.size(); ++g)
    EXPECT_EQ(d.group_sizes[g], d.group_sizes[0]) << "group " << g;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, VgbSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(64, 577, 2048, 10000),
                       ::testing::Values<std::int64_t>(1, 32, 100)),
    [](const auto& suffix) {
      return "n" + std::to_string(std::get<0>(suffix.param)) + "_b" +
             std::to_string(std::get<1>(suffix.param));
    });

TEST(VgbStructure, FigureSeventeenExampleShape) {
  // The paper's worked example (Figure 17b): n=576, b=32, p=3 with speed
  // ratios ~3:2:1 produced groups starting fastest-first and a final group
  // reordered slowest-first. Reproduce the structure with constant 3:2:1
  // speeds (the paper's exact group sizes {6,5,7} depended on its measured
  // curves; with constant speeds the invariant parts are testable).
  const core::ConstantSpeed s0(300.0, 1e9), s1(200.0, 1e9), s2(100.0, 1e9);
  const core::SpeedList models{&s0, &s1, &s2};
  VgbOptions opts;
  opts.block = 32;
  const VgbDistribution d = variable_group_block(models, 576, opts);
  ASSERT_GE(d.group_sizes.size(), 2u);
  // First group: fastest processor's blocks first, shares ~3:2:1.
  const std::int64_t g1 = d.group_sizes[0];
  std::vector<int> first_group(d.block_owner.begin(),
                               d.block_owner.begin() + g1);
  EXPECT_EQ(first_group.front(), 0);
  // Monotone owner sequence 0...1...2 inside the group.
  for (std::size_t i = 1; i < first_group.size(); ++i)
    EXPECT_GE(first_group[i], first_group[i - 1]);
  // Last group starts with the slowest processor.
  EXPECT_EQ(d.block_owner.back(), 0);  // fastest last
  EXPECT_EQ(d.block_owner[d.block_owner.size() -
                          static_cast<std::size_t>(d.group_sizes.back())],
            2);  // slowest first
  // Overall shares track 3:2:1.
  const std::int64_t b0 = d.owned_blocks_from(0, 0);
  const std::int64_t b2 = d.owned_blocks_from(2, 0);
  EXPECT_NEAR(static_cast<double>(b0) / static_cast<double>(b2), 3.0, 0.8);
}

}  // namespace
}  // namespace fpm::apps
