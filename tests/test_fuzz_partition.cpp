// Property-based fuzzing of the partitioning stack: random piece-wise-
// linear speed curves (valid by construction), random processor counts and
// problem sizes, checked against the exact-optimum oracle. Every seed is a
// distinct deterministic instance.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/fpm.hpp"
#include "util/rng.hpp"

namespace fpm::core {
namespace {

/// Random speed curve satisfying the shape requirement: random positive
/// speeds at geometrically spread sizes, passed through the monotone-ratio
/// repair (which preserves validity and only lowers offending speeds).
PiecewiseLinearSpeed random_curve(util::Rng& rng) {
  const int breakpoints = static_cast<int>(rng.uniform_int(1, 12));
  const double x0 = rng.uniform(10.0, 1e4);
  const double growth = rng.uniform(1.5, 8.0);
  const double s0 = rng.uniform(10.0, 500.0);
  std::vector<SpeedPoint> pts;
  double x = x0;
  double s = s0;
  for (int i = 0; i < breakpoints; ++i) {
    pts.push_back({x, s});
    x *= growth * rng.uniform(0.8, 1.25);
    // Speeds drift downward on average but may locally rise — the repair
    // keeps the ratio monotone either way.
    s = std::max(1e-3, s * rng.uniform(0.3, 1.15));
  }
  return PiecewiseLinearSpeed(repair_shape_requirement(std::move(pts)));
}

struct Instance {
  std::vector<std::shared_ptr<const PiecewiseLinearSpeed>> owned;
  SpeedList speeds;
  std::int64_t n = 0;
};

Instance random_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  Instance inst;
  const int p = static_cast<int>(rng.uniform_int(1, 16));
  for (int i = 0; i < p; ++i) {
    util::Rng child = rng.split();
    inst.owned.push_back(
        std::make_shared<PiecewiseLinearSpeed>(random_curve(child)));
  }
  for (const auto& c : inst.owned) inst.speeds.push_back(c.get());
  // Problem sizes from trivial to far beyond the modelled ranges.
  const double scale = std::pow(10.0, rng.uniform(0.0, 9.0));
  inst.n = std::max<std::int64_t>(1, static_cast<std::int64_t>(scale));
  return inst;
}

class FuzzPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPartition, AllAlgorithmsNearOptimal) {
  const Instance inst = random_instance(GetParam());
  const Distribution best = exact_optimum(inst.speeds, inst.n);
  const double t_best = makespan(inst.speeds, best);
  double slack = 0.0;
  for (std::size_t i = 0; i < inst.speeds.size(); ++i) {
    const double x = static_cast<double>(best.counts[i]);
    slack = std::max(slack,
                     inst.speeds[i]->time(x + 1.0) - inst.speeds[i]->time(x));
  }
  for (const auto& [name, result] :
       {std::pair{"basic", partition_basic(inst.speeds, inst.n)},
        {"modified", partition_modified(inst.speeds, inst.n)},
        {"combined", partition_combined(inst.speeds, inst.n)}}) {
    EXPECT_EQ(result.distribution.total(), inst.n)
        << name << " seed=" << GetParam();
    for (const std::int64_t c : result.distribution.counts)
      ASSERT_GE(c, 0) << name << " seed=" << GetParam();
    const double t = makespan(inst.speeds, result.distribution);
    EXPECT_LE(t, t_best + slack + 1e-9 * t_best)
        << name << " seed=" << GetParam() << " p=" << inst.speeds.size()
        << " n=" << inst.n;
  }
}

TEST_P(FuzzPartition, IntersectionsSatisfyLineEquation) {
  const Instance inst = random_instance(GetParam());
  util::Rng rng(GetParam() ^ 0xabcdef);
  for (const SpeedFunction* f : inst.speeds) {
    for (int k = 0; k < 8; ++k) {
      const double x_ref = f->max_size() * rng.uniform(0.01, 1.0);
      const double c = f->ratio(x_ref);
      const double x = f->intersect(c);
      ASSERT_GT(x, 0.0);
      EXPECT_NEAR(c * x, f->speed(x), 1e-6 * std::max(1e-12, f->speed(x)))
          << " seed=" << GetParam();
    }
  }
}

TEST_P(FuzzPartition, BoundedRespectsRandomBounds) {
  const Instance inst = random_instance(GetParam());
  util::Rng rng(GetParam() * 7919 + 1);
  std::vector<std::int64_t> bounds(inst.speeds.size());
  std::int64_t capacity = 0;
  for (auto& b : bounds) {
    b = rng.uniform_int(0, inst.n);
    capacity += b;
  }
  if (capacity < inst.n) {
    bounds.back() += inst.n - capacity;  // ensure feasibility
  }
  const PartitionResult r = partition_bounded(inst.speeds, inst.n, bounds);
  EXPECT_EQ(r.distribution.total(), inst.n) << " seed=" << GetParam();
  for (std::size_t i = 0; i < bounds.size(); ++i)
    EXPECT_LE(r.distribution.counts[i], bounds[i])
        << i << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPartition,
                         ::testing::Range<std::uint64_t>(1, 41),
                         [](const auto& suffix) {
                           return "seed" + std::to_string(suffix.param);
                         });

}  // namespace
}  // namespace fpm::core
