// Tests for the communication extension: the two-parameter link model,
// serialized collectives, and communication-aware partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comm/model.hpp"
#include "helpers.hpp"

namespace fpm::comm {
namespace {

TEST(CommModel, PointToPointCost) {
  const CommModel m = CommModel::uniform(3, {1e-4, 12.5e6});  // 100 Mbit
  // 1 MB: 1e6 / 12.5e6 = 0.08 s plus startup.
  EXPECT_NEAR(m.send_seconds(0, 1, 1e6), 0.0801, 1e-6);
  EXPECT_DOUBLE_EQ(m.send_seconds(1, 1, 1e6), 0.0);  // self-send is free
  EXPECT_DOUBLE_EQ(m.send_seconds(0, 2, 0.0), 0.0);  // empty message
}

TEST(CommModel, RejectsBadParameters) {
  EXPECT_THROW(CommModel::uniform(0, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(CommModel::uniform(2, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(CommModel::uniform(2, {-1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(CommModel({{LinkParams{}}, {LinkParams{}}}),
               std::invalid_argument);  // non-square
}

TEST(CommModel, HeterogeneousLinksAreDirectional) {
  std::vector<std::vector<LinkParams>> links(2, std::vector<LinkParams>(2));
  links[0][1] = {0.0, 1e6};
  links[1][0] = {0.0, 2e6};
  const CommModel m(links);
  EXPECT_DOUBLE_EQ(m.send_seconds(0, 1, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(m.send_seconds(1, 0, 1e6), 0.5);
}

TEST(CommModel, SerializedCollectivesSumSends) {
  const CommModel m = CommModel::uniform(3, {0.01, 1e6});
  const std::vector<double> bytes{0.0, 1e6, 2e6};  // root sends to 1 and 2
  // scatter: (0.01 + 1) + (0.01 + 2); the root's own share is free.
  EXPECT_NEAR(m.scatter_seconds(0, bytes), 3.02, 1e-9);
  EXPECT_NEAR(m.gather_seconds(0, bytes), 3.02, 1e-9);
  EXPECT_NEAR(m.broadcast_seconds(0, 1e6), 2.02, 1e-9);
}

TEST(CommModel, IndexBoundsChecked) {
  const CommModel m = CommModel::uniform(2, {0.0, 1e6});
  EXPECT_THROW(m.send_seconds(0, 5, 10.0), std::out_of_range);
}

TEST(PartitionCommAware, ZeroCommMatchesComputeOnlyOptimum) {
  const auto e = fpm::test::power_ensemble(4);
  const core::SpeedList speeds = e.list();
  // Effectively free network: the result must match the compute optimum.
  const CommModel free_net = CommModel::uniform(4, {0.0, 1e18});
  CommAwareProblem prob;
  prob.flops_per_element = 1.0;
  const std::int64_t n = 100000;
  const auto r = partition_comm_aware(speeds, n, free_net, prob);
  const auto best = core::exact_optimum(speeds, n);
  EXPECT_EQ(r.distribution.total(), n);
  EXPECT_NEAR(core::makespan(speeds, r.distribution),
              core::makespan(speeds, best),
              0.01 * core::makespan(speeds, best));
}

TEST(PartitionCommAware, ExpensiveLinksShiftWorkToRoot) {
  // Identical processors, but only the root avoids the receive cost: with
  // an expensive network the root must receive a strictly larger share.
  const core::ConstantSpeed f(100.0, 1e9);
  const core::SpeedList speeds{&f, &f, &f};
  const CommModel slow_net = CommModel::uniform(3, {0.0, 1e3});
  CommAwareProblem prob;
  prob.root = 0;
  prob.bytes_per_element = 8.0;
  prob.flops_per_element = 1.0;
  const std::int64_t n = 30000;
  const auto r = partition_comm_aware(speeds, n, slow_net, prob);
  EXPECT_EQ(r.distribution.total(), n);
  EXPECT_GT(r.distribution.counts[0], r.distribution.counts[1]);
  EXPECT_GT(r.distribution.counts[0], n / 3);
}

TEST(PartitionCommAware, ValidatesArguments) {
  const core::ConstantSpeed f(100.0, 1e9);
  const core::SpeedList speeds{&f, &f};
  const CommModel net = CommModel::uniform(3, {0.0, 1e6});
  CommAwareProblem prob;
  EXPECT_THROW(partition_comm_aware(speeds, 10, net, prob),
               std::invalid_argument);  // p mismatch
  const CommModel net2 = CommModel::uniform(2, {0.0, 1e6});
  prob.root = 7;
  EXPECT_THROW(partition_comm_aware(speeds, 10, net2, prob),
               std::invalid_argument);
}

class CommSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CommSweep, CommAwareInvariantsAcrossNetworks) {
  const auto [startup, rate] = GetParam();
  const auto e = fpm::test::power_ensemble(5);
  const core::SpeedList speeds = e.list();
  const CommModel net = CommModel::uniform(5, {startup, rate});
  CommAwareProblem prob;
  prob.root = 2;
  prob.flops_per_element = 60.0;
  const std::int64_t n = 123457;
  const auto r = partition_comm_aware(speeds, n, net, prob);
  EXPECT_EQ(r.distribution.total(), n);
  for (const std::int64_t c : r.distribution.counts) EXPECT_GE(c, 0);
  // The root's share never shrinks when the network gets slower with
  // everything else fixed — checked against the near-free baseline.
  const CommModel free_net = CommModel::uniform(5, {0.0, 1e18});
  const auto baseline = partition_comm_aware(speeds, n, free_net, prob);
  EXPECT_GE(r.distribution.counts[prob.root] + 2,
            baseline.distribution.counts[prob.root]);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, CommSweep,
    ::testing::Combine(::testing::Values(0.0, 1e-4, 1e-2),
                       ::testing::Values(1e4, 1e6, 1e9)),
    [](const auto& suffix) {
      return "s" + std::to_string(static_cast<int>(
                       std::get<0>(suffix.param) * 10000)) +
             "_r" + std::to_string(static_cast<long long>(
                        std::get<1>(suffix.param)));
    });

TEST(PartitionCommAware, HandlesZeroElements) {
  const core::ConstantSpeed f(100.0, 1e9);
  const core::SpeedList speeds{&f, &f};
  const CommModel net = CommModel::uniform(2, {0.0, 1e6});
  const auto r = partition_comm_aware(speeds, 0, net, CommAwareProblem{});
  EXPECT_EQ(r.distribution.total(), 0);
}

TEST(SerializedMakespan, AccountsForStaggeredStarts) {
  // Two identical processors, root = 0. Processor 1's compute starts only
  // after its receive completes.
  const core::ConstantSpeed f(1.0, 1e9);  // speed 1 => seconds = x*fpe/1e6
  const core::SpeedList speeds{&f, &f};
  const CommModel net = CommModel::uniform(2, {0.0, 1e6});  // 1 B/us
  CommAwareProblem prob;
  prob.bytes_per_element = 1.0;
  prob.flops_per_element = 1.0;
  core::Distribution d;
  d.counts = {1000000, 1000000};
  // Root computes immediately: 1e6*1/(1*1e6) = 1 s. Peer receives 1e6 B in
  // 1 s, then computes 1 s => finishes at 2 s.
  EXPECT_NEAR(serialized_makespan_seconds(speeds, d, net, prob), 2.0, 1e-9);
}

TEST(SerializedMakespan, OrderedVariantMatchesIdentityOrder) {
  const auto e = fpm::test::linear_ensemble(3);
  const core::SpeedList speeds = e.list();
  const CommModel net = CommModel::uniform(3, {1e-4, 1e6});
  CommAwareProblem prob;
  core::Distribution d;
  d.counts = {1000, 2000, 3000};
  const std::vector<std::size_t> identity{0, 1, 2};
  EXPECT_DOUBLE_EQ(
      serialized_makespan_seconds(speeds, d, net, prob),
      serialized_makespan_seconds_ordered(speeds, d, net, prob, identity));
}

TEST(SerializedMakespan, SendOrderChangesTheMakespan) {
  // One slow-computing and one fast-computing worker: serving the slow one
  // first overlaps its long computation with the other send.
  const core::ConstantSpeed slow(10.0, 1e9);
  const core::ConstantSpeed fast(1000.0, 1e9);
  const core::SpeedList speeds{&slow, &fast};
  const CommModel net = CommModel::uniform(2, {0.0, 1e3});
  CommAwareProblem prob;
  prob.root = 0;  // the *slow* machine holds the data...
  core::Distribution d;
  d.counts = {0, 10000};
  // ...so ordering is trivial here; use a 3-proc case instead.
  const core::ConstantSpeed mid(100.0, 1e9);
  const core::SpeedList speeds3{&fast, &slow, &mid};
  const CommModel net3 = CommModel::uniform(3, {0.0, 1e4});
  CommAwareProblem prob3;
  prob3.root = 0;
  core::Distribution d3;
  d3.counts = {100, 5000, 5000};
  const std::vector<std::size_t> slow_first{1, 2, 0};
  const std::vector<std::size_t> slow_last{2, 1, 0};
  EXPECT_LT(serialized_makespan_seconds_ordered(speeds3, d3, net3, prob3,
                                                slow_first),
            serialized_makespan_seconds_ordered(speeds3, d3, net3, prob3,
                                                slow_last));
}

TEST(SerializedMakespan, OptimizedOrderNeverWorseThanIdentity) {
  const auto e = fpm::test::power_ensemble(5);
  const core::SpeedList speeds = e.list();
  const CommModel net = CommModel::uniform(5, {1e-3, 1e5});
  CommAwareProblem prob;
  prob.root = 1;
  prob.flops_per_element = 50.0;
  const auto aware = partition_comm_aware(speeds, 100000, net, prob);
  const auto order = optimize_send_order(speeds, aware.distribution, net, prob);
  EXPECT_LE(serialized_makespan_seconds_ordered(speeds, aware.distribution,
                                                net, prob, order),
            serialized_makespan_seconds(speeds, aware.distribution, net, prob) *
                (1.0 + 1e-12));
  // The root appears last in the optimized order.
  EXPECT_EQ(order.back(), prob.root);
  // And it is a permutation.
  std::vector<std::size_t> sorted(order.begin(), order.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RefineSerialized, NeverWorseThanSeedAndPreservesTotal) {
  const auto e = fpm::test::power_ensemble(5);
  const core::SpeedList speeds = e.list();
  const CommModel net = CommModel::uniform(5, {1e-3, 2e5});
  CommAwareProblem prob;
  prob.root = 0;
  prob.flops_per_element = 80.0;
  const std::int64_t n = 300000;
  const auto seed = partition_comm_aware(speeds, n, net, prob);
  const core::Distribution refined =
      refine_serialized(speeds, seed.distribution, net, prob);
  EXPECT_EQ(refined.total(), n);
  for (const std::int64_t c : refined.counts) EXPECT_GE(c, 0);
  const auto eval = [&](const core::Distribution& d) {
    const auto order = optimize_send_order(speeds, d, net, prob);
    return serialized_makespan_seconds_ordered(speeds, d, net, prob, order);
  };
  EXPECT_LE(eval(refined), eval(seed.distribution) * (1.0 + 1e-12));
}

TEST(RefineSerialized, DeterministicAcrossRuns) {
  const auto e = fpm::test::linear_ensemble(4);
  const core::SpeedList speeds = e.list();
  const CommModel net = CommModel::uniform(4, {1e-4, 1e5});
  CommAwareProblem prob;
  const auto seed = partition_comm_aware(speeds, 50000, net, prob);
  const core::Distribution a =
      refine_serialized(speeds, seed.distribution, net, prob);
  const core::Distribution b =
      refine_serialized(speeds, seed.distribution, net, prob);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(SerializedMakespan, CommAwarePlanBeatsNaiveUnderSerialization) {
  // Sanity: with a costly serialized network, the comm-aware plan's
  // serialized makespan is no worse than the compute-only plan's.
  const auto e = fpm::test::linear_ensemble(4);
  const core::SpeedList speeds = e.list();
  const CommModel net = CommModel::uniform(4, {1e-3, 1e5});
  CommAwareProblem prob;
  prob.bytes_per_element = 8.0;
  prob.flops_per_element = 100.0;
  const std::int64_t n = 200000;
  const auto aware = partition_comm_aware(speeds, n, net, prob);
  const auto naive = core::exact_optimum(speeds, n);
  EXPECT_LE(serialized_makespan_seconds(speeds, aware.distribution, net, prob),
            serialized_makespan_seconds(speeds, naive, net, prob) * 1.25);
}

}  // namespace
}  // namespace fpm::comm
