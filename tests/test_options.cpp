// Targeted tests of the algorithm option knobs: iteration caps, stall
// windows, interpolation safeguards, and the granularity wrapper inside
// real partition calls — behaviours not covered by the main sweeps.
#include <gtest/gtest.h>

#include "core/fpm.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

TEST(Options, BasicIterationCapStillYieldsValidDistribution) {
  const auto e = fpm::test::power_ensemble(5);
  BasicBisectionOptions opts;
  opts.max_iterations = 3;  // far too few to converge
  const PartitionResult r = partition_basic(e.list(), 10'000'019, opts);
  EXPECT_EQ(r.distribution.total(), 10'000'019);
  EXPECT_LE(r.stats.iterations, 3);
  for (const std::int64_t c : r.distribution.counts) EXPECT_GE(c, 0);
  // With so few iterations the result may be worse than optimal but must
  // not be catastrophically so on benign curves (fine-tuning does the
  // heavy lifting from the bracket).
  const double t = makespan(e.list(), r.distribution);
  const double best = makespan(e.list(), exact_optimum(e.list(), 10'000'019));
  EXPECT_LE(t, best * 2.0);
}

TEST(Options, CombinedStallWindowForcesEarlySwitch) {
  // A stall window of 1 makes the combined algorithm switch on any family
  // (a single basic step cannot halve the candidate count reliably); the
  // result must stay near-optimal regardless.
  const auto e = fpm::test::stepped_ensemble(4);
  CombinedOptions opts;
  opts.stall_window = 1;
  const PartitionResult r = partition_combined(e.list(), 5'000'011, opts);
  EXPECT_EQ(r.distribution.total(), 5'000'011);
  const double t = makespan(e.list(), r.distribution);
  const double best = makespan(e.list(), exact_optimum(e.list(), 5'000'011));
  EXPECT_LE(t, best * 1.001 + 1e-9);
}

TEST(Options, InterpolationSafeguardZeroStillConverges) {
  // Margin 0 lets the secant land on the bracket boundary; the step_custom
  // guard must keep the search sound.
  const auto e = fpm::test::linear_ensemble(4);
  InterpolationOptions opts;
  opts.safeguard_margin = 0.0;
  const PartitionResult r =
      partition_interpolation(e.list(), 1'000'003, opts);
  EXPECT_EQ(r.distribution.total(), 1'000'003);
  const double t = makespan(e.list(), r.distribution);
  const double best = makespan(e.list(), exact_optimum(e.list(), 1'000'003));
  EXPECT_LE(t, best * 1.001 + 1e-9);
}

TEST(Options, InterpolationHugeSafeguardDegradesToBisection) {
  // Margin 0.5 rejects every secant step: pure log-space bisection. Still
  // correct, just more iterations than the default.
  const auto e = fpm::test::power_ensemble(4);
  InterpolationOptions tight;
  tight.safeguard_margin = 0.5;
  const PartitionResult r = partition_interpolation(e.list(), 777'777, tight);
  EXPECT_EQ(r.distribution.total(), 777'777);
}

TEST(Options, ModifiedIterationCapRespected) {
  const auto e = fpm::test::unimodal_ensemble(4);
  ModifiedBisectionOptions opts;
  opts.max_iterations = 2;
  const PartitionResult r = partition_modified(e.list(), 999'983, opts);
  EXPECT_LE(r.stats.iterations, 2);
  EXPECT_EQ(r.distribution.total(), 999'983);
}

TEST(Options, RowGranularityInsidePartitioners) {
  // Partition 10 rows of 1e6 elements each over two machines whose curves
  // differ only beyond 4e6 elements: the row wrapper must place the split
  // where the element curves say, not at the naive midpoint.
  const PiecewiseLinearSpeed fast(
      {{1e5, 100.0}, {4e6, 100.0 * 0.99}, {2e7, 90.0}});
  const PiecewiseLinearSpeed cliff(
      {{1e5, 100.0}, {4e6, 100.0 * 0.98}, {6e6, 10.0}, {2e7, 5.0}});
  const GranularSpeedView fast_rows(fast, 1e6);
  const GranularSpeedView cliff_rows(cliff, 1e6);
  const SpeedList rows{&fast_rows, &cliff_rows};
  const PartitionResult r = partition_combined(rows, 10);
  EXPECT_EQ(r.distribution.total(), 10);
  // The cliff machine pages past 4-6 rows; it must get fewer than half.
  EXPECT_LT(r.distribution.counts[1], 5);
}

}  // namespace
}  // namespace fpm::core
