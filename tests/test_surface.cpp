// Tests for the two-parameter problem-size reduction (paper §3.1): speed
// surfaces, shape invariance, and the fixed-parameter reduction the striped
// applications rely on.
#include <gtest/gtest.h>

#include <memory>

#include "core/surface.hpp"
#include "core/speed_function.hpp"
#include "core/combined.hpp"
#include "core/partition.hpp"

namespace fpm::core {
namespace {

std::shared_ptr<const SpeedFunction> base_curve() {
  return std::make_shared<PowerDecaySpeed>(200.0, 1e6, 1.0, 1e9);
}

TEST(ShapeInvariantSurface, DependsOnlyOnElementCount) {
  const ShapeInvariantSurface s(base_curve());
  // Same element count, wildly different shapes (the Table 3/4 property).
  EXPECT_DOUBLE_EQ(s.speed(1000.0, 1000.0), s.speed(100.0, 10000.0));
  EXPECT_DOUBLE_EQ(s.speed(256.0, 256.0), s.speed(32.0, 2048.0));
}

TEST(ShapeInvariantSurface, AspectSensitivityPenalizesExtremes) {
  const ShapeInvariantSurface s(base_curve(), 0.1);
  EXPECT_GT(s.speed(1000.0, 1000.0), s.speed(10.0, 100000.0));
  EXPECT_DOUBLE_EQ(s.speed(10.0, 100000.0), s.speed(100000.0, 10.0));
}

TEST(ShapeInvariantSurface, MaxN1ScalesInversely) {
  const ShapeInvariantSurface s(base_curve());
  EXPECT_DOUBLE_EQ(s.max_n1(1000.0), 1e6);
  EXPECT_DOUBLE_EQ(s.max_n1(1e6), 1000.0);
  EXPECT_THROW(s.max_n1(0.0), std::invalid_argument);
}

TEST(ShapeInvariantSurface, RejectsBadArguments) {
  EXPECT_THROW(ShapeInvariantSurface(nullptr), std::invalid_argument);
  EXPECT_THROW(ShapeInvariantSurface(base_curve(), -1.0),
               std::invalid_argument);
}

TEST(FixedParamSpeed, ReducesSurfaceToElementCurve) {
  auto surface = std::make_shared<ShapeInvariantSurface>(base_curve());
  const FixedParamSpeed reduced(surface, 5000.0);
  const auto base = base_curve();
  // With perfect shape invariance the reduction equals the element curve.
  for (double x = 1e4; x < 1e8; x *= 3.7)
    EXPECT_DOUBLE_EQ(reduced.speed(x), base->speed(x));
  EXPECT_DOUBLE_EQ(reduced.max_size(), base->max_size());
}

TEST(FixedParamSpeed, SatisfiesShapeRequirement) {
  auto surface = std::make_shared<ShapeInvariantSurface>(base_curve(), 0.05);
  const FixedParamSpeed reduced(surface, 2000.0);
  EXPECT_TRUE(satisfies_shape_requirement(reduced));
}

TEST(FixedParamSpeed, RejectsBadArguments) {
  auto surface = std::make_shared<ShapeInvariantSurface>(base_curve());
  EXPECT_THROW(FixedParamSpeed(nullptr, 10.0), std::invalid_argument);
  EXPECT_THROW(FixedParamSpeed(surface, 0.0), std::invalid_argument);
}

TEST(FixedParamSpeed, PartitionableLikeAnyCurve) {
  // The reduction plugs straight into the partitioners (the MM use-case:
  // n2 fixed at n during set partitioning, Figure 16b).
  auto s1 = std::make_shared<ShapeInvariantSurface>(base_curve());
  auto s2 = std::make_shared<ShapeInvariantSurface>(
      std::make_shared<PowerDecaySpeed>(120.0, 5e5, 1.3, 1e9));
  const FixedParamSpeed f1(s1, 4096.0);
  const FixedParamSpeed f2(s2, 4096.0);
  const SpeedList speeds{&f1, &f2};
  const PartitionResult r = partition_combined(speeds, 1000000);
  EXPECT_EQ(r.distribution.total(), 1000000);
  // The faster surface receives the larger share.
  EXPECT_GT(r.distribution.counts[0], r.distribution.counts[1]);
}

}  // namespace
}  // namespace fpm::core
