// Seeded fuzzing of the application layer over randomly generated
// simulated clusters: VGB, striped MM, stencil and weighted-search
// invariants must hold for any machine mix, and every "functional beats
// naive" claim is checked across random topologies where the mechanism
// (paging heterogeneity) is present.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/stencil.hpp"
#include "apps/striped_mm.hpp"
#include "apps/textsearch.hpp"
#include "apps/vgb.hpp"
#include "core/rect2d.hpp"
#include "simcluster/cluster.hpp"
#include "util/rng.hpp"

namespace fpm {
namespace {

/// Random but valid simulated cluster: 2-8 machines with random clocks,
/// memory sizes, cache sizes, OSes and fluctuation levels, all registering
/// one application with a random memory pattern.
sim::SimulatedCluster random_cluster(std::uint64_t seed) {
  util::Rng rng(seed);
  const int p = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<sim::SimulatedMachine> machines;
  const char* oses[] = {"Linux 2.4", "SunOS 5.8", "Windows XP"};
  for (int i = 0; i < p; ++i) {
    sim::SimulatedMachine m;
    m.spec.name = "M" + std::to_string(i);
    m.spec.os = oses[rng.uniform_int(0, 2)];
    m.spec.arch = "fuzz";
    m.spec.cpu_mhz = rng.uniform(200.0, 4000.0);
    m.spec.cache_kb = 1 << rng.uniform_int(7, 11);       // 128 KiB .. 2 MiB
    m.spec.free_memory_kb = 1 << rng.uniform_int(16, 22);  // 64 MiB .. 4 GiB
    m.spec.main_memory_kb = m.spec.free_memory_kb * 2;
    m.fluctuation = {rng.uniform(0.05, 0.4), 0.05, 0.0};
    sim::AppProfile app;
    app.name = "Fuzz";
    app.pattern = static_cast<sim::MemoryPattern>(rng.uniform_int(0, 2));
    app.bytes_per_element = 8.0;
    app.efficiency = rng.uniform(0.3, 0.9);
    m.register_app(app);
    machines.push_back(std::move(m));
  }
  return sim::SimulatedCluster(std::move(machines), seed ^ 0xbeef);
}

class FuzzApps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzApps, StripedMmInvariants) {
  auto cluster = random_cluster(GetParam());
  const core::SpeedList models = cluster.ground_truth_list("Fuzz");
  util::Rng rng(GetParam() * 31);
  const std::int64_t n = rng.uniform_int(1, 20000);
  for (const apps::ModelKind kind :
       {apps::ModelKind::Functional, apps::ModelKind::Even}) {
    const apps::StripedMmPlan plan = apps::plan_striped_mm(models, n, kind);
    EXPECT_EQ(std::accumulate(plan.rows.begin(), plan.rows.end(),
                              std::int64_t{0}),
              n)
        << "seed " << GetParam();
    for (const std::int64_t r : plan.rows) ASSERT_GE(r, 0);
    const double t =
        apps::simulate_striped_mm_seconds(cluster, "Fuzz", plan, n, true);
    EXPECT_GE(t, 0.0);
    EXPECT_TRUE(std::isfinite(t)) << "seed " << GetParam();
  }
}

TEST_P(FuzzApps, VgbInvariants) {
  auto cluster = random_cluster(GetParam());
  const core::SpeedList models = cluster.ground_truth_list("Fuzz");
  util::Rng rng(GetParam() * 37);
  apps::VgbOptions opts;
  opts.block = rng.uniform_int(1, 200);
  const std::int64_t n = rng.uniform_int(1, 30000);
  const apps::VgbDistribution d =
      apps::variable_group_block(models, n, opts);
  EXPECT_EQ(d.total_blocks(), (n + opts.block - 1) / opts.block)
      << "seed " << GetParam();
  std::int64_t group_sum = 0;
  for (const std::int64_t g : d.group_sizes) {
    ASSERT_GE(g, 1);
    group_sum += g;
  }
  EXPECT_EQ(group_sum, d.total_blocks());
  for (const int owner : d.block_owner) {
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, static_cast<int>(cluster.size()));
  }
}

TEST_P(FuzzApps, StencilNumericsExactOnRandomLayouts) {
  auto cluster = random_cluster(GetParam());
  const core::SpeedList models = cluster.ground_truth_list("Fuzz");
  util::Rng rng(GetParam() * 41);
  const std::int64_t rows = rng.uniform_int(3, 60);
  const std::int64_t cols = rng.uniform_int(3, 40);
  const apps::StencilPlan plan = apps::plan_stencil(models, rows, cols);
  util::MatrixD grid(static_cast<std::size_t>(rows),
                     static_cast<std::size_t>(cols));
  for (double& v : grid.flat()) v = rng.uniform(-1.0, 1.0);
  EXPECT_DOUBLE_EQ(
      util::max_abs_diff(apps::striped_jacobi_sweep(grid, plan),
                         apps::jacobi_sweep(grid)),
      0.0)
      << "seed " << GetParam();
}

TEST_P(FuzzApps, SearchPlansCoverRandomCorpora) {
  auto cluster = random_cluster(GetParam());
  const core::SpeedList models = cluster.ground_truth_list("Fuzz");
  util::Rng rng(GetParam() * 43);
  const apps::Corpus corpus = apps::make_corpus(
      static_cast<std::size_t>(rng.uniform_int(1, 200)),
      static_cast<std::size_t>(rng.uniform_int(64, 4000)), "zz",
      GetParam());
  const apps::SearchPlan plan = apps::plan_search(models, corpus);
  EXPECT_EQ(plan.boundaries.back(), corpus.documents.size());
  std::size_t serial = 0;
  for (const std::string& d : corpus.documents)
    serial += apps::count_occurrences(d, "zz");
  EXPECT_EQ(apps::run_search(corpus, plan, "zz"), serial)
      << "seed " << GetParam();
}

TEST_P(FuzzApps, RectanglesTileRandomGrids) {
  auto cluster = random_cluster(GetParam());
  const core::SpeedList models = cluster.ground_truth_list("Fuzz");
  util::Rng rng(GetParam() * 47);
  const std::int64_t rows = rng.uniform_int(1, 500);
  const std::int64_t cols = rng.uniform_int(1, 500);
  const core::RectPartition part =
      core::partition_rectangles(models, rows, cols);
  EXPECT_TRUE(core::is_exact_tiling(part))
      << "seed " << GetParam() << " grid " << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzApps,
                         ::testing::Range<std::uint64_t>(100, 120),
                         [](const auto& suffix) {
                           return "seed" + std::to_string(suffix.param);
                         });

}  // namespace
}  // namespace fpm
