// Integration & property tests for the three partitioning algorithms
// (basic, modified, combined): invariants (sum == n, non-negative counts),
// optimality against the exact integer optimum, mutual agreement, and the
// complexity behaviour the paper claims (modified beats basic on the
// exponential family; basic is cheap on polynomial-slope families).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/fpm.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

using fpm::test::Ensemble;

void expect_valid(const Distribution& d, std::int64_t n,
                  const std::string& context) {
  std::int64_t sum = 0;
  for (const std::int64_t c : d.counts) {
    EXPECT_GE(c, 0) << context;
    sum += c;
  }
  EXPECT_EQ(sum, n) << context;
}

/// The partitioned makespan must match the exact optimum to within the
/// tolerance implied by integer granularity: we allow the cost of one extra
/// element on the bottleneck processor.
void expect_near_optimal(const SpeedList& speeds, const Distribution& got,
                         std::int64_t n, const std::string& context) {
  const Distribution best = exact_optimum(speeds, n);
  const double t_got = makespan(speeds, got);
  const double t_best = makespan(speeds, best);
  // One-element slack on the bottleneck: t(x+1) - t(x) at the bottleneck
  // size, which the fine-tuning greedy can differ by.
  double slack = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double x = static_cast<double>(best.counts[i]);
    slack = std::max(slack, speeds[i]->time(x + 1.0) - speeds[i]->time(x));
  }
  EXPECT_LE(t_got, t_best + slack + 1e-9 * t_best) << context;
  EXPECT_GE(t_got, t_best * (1.0 - 1e-12)) << context << " (oracle beaten?!)";
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every family x processor count x problem size.
// ---------------------------------------------------------------------------

class AlgorithmSweep
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(AlgorithmSweep, BasicMatchesExactOptimum) {
  const auto [p, n] = GetParam();
  for (const Ensemble& e : fpm::test::all_ensembles(p)) {
    const SpeedList speeds = e.list();
    const PartitionResult r = partition_basic(speeds, n);
    expect_valid(r.distribution, n, e.name);
    expect_near_optimal(speeds, r.distribution, n, "basic/" + e.name);
  }
}

TEST_P(AlgorithmSweep, ModifiedMatchesExactOptimum) {
  const auto [p, n] = GetParam();
  for (const Ensemble& e : fpm::test::all_ensembles(p)) {
    const SpeedList speeds = e.list();
    const PartitionResult r = partition_modified(speeds, n);
    expect_valid(r.distribution, n, e.name);
    expect_near_optimal(speeds, r.distribution, n, "modified/" + e.name);
  }
}

TEST_P(AlgorithmSweep, CombinedMatchesExactOptimum) {
  const auto [p, n] = GetParam();
  for (const Ensemble& e : fpm::test::all_ensembles(p)) {
    const SpeedList speeds = e.list();
    const PartitionResult r = partition_combined(speeds, n);
    expect_valid(r.distribution, n, e.name);
    expect_near_optimal(speeds, r.distribution, n, "combined/" + e.name);
  }
}

TEST_P(AlgorithmSweep, InterpolationMatchesExactOptimum) {
  const auto [p, n] = GetParam();
  for (const Ensemble& e : fpm::test::all_ensembles(p)) {
    const SpeedList speeds = e.list();
    const PartitionResult r = partition_interpolation(speeds, n);
    expect_valid(r.distribution, n, e.name);
    expect_near_optimal(speeds, r.distribution, n, "interpolation/" + e.name);
  }
}

TEST_P(AlgorithmSweep, AlgorithmsAgreeOnMakespan) {
  const auto [p, n] = GetParam();
  for (const Ensemble& e : fpm::test::all_ensembles(p)) {
    const SpeedList speeds = e.list();
    const double tb = makespan(speeds, partition_basic(speeds, n).distribution);
    const double tm =
        makespan(speeds, partition_modified(speeds, n).distribution);
    const double tc =
        makespan(speeds, partition_combined(speeds, n).distribution);
    // All three complete the same bracket with the same greedy; any residual
    // difference is bounded by the one-element slack tested above, so here
    // a relative agreement check suffices.
    EXPECT_NEAR(tb, tm, 0.02 * tb) << e.name;
    EXPECT_NEAR(tb, tc, 0.02 * tb) << e.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByPandN, AlgorithmSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13),
                       ::testing::Values<std::int64_t>(1, 2, 17, 1000, 123457,
                                                       20000000)),
    [](const auto& suffix) {
      return "p" + std::to_string(std::get<0>(suffix.param)) + "_n" +
             std::to_string(std::get<1>(suffix.param));
    });

// ---------------------------------------------------------------------------
// Directed cases.
// ---------------------------------------------------------------------------

TEST(PartitionBasic, SingleProcessorTakesAll) {
  const auto e = fpm::test::unimodal_ensemble(1);
  const PartitionResult r = partition_basic(e.list(), 54321);
  ASSERT_EQ(r.distribution.counts.size(), 1u);
  EXPECT_EQ(r.distribution.counts[0], 54321);
}

TEST(PartitionBasic, ZeroElementsYieldsAllZeros) {
  const auto e = fpm::test::linear_ensemble(4);
  const PartitionResult r = partition_basic(e.list(), 0);
  for (const std::int64_t c : r.distribution.counts) EXPECT_EQ(c, 0);
}

TEST(PartitionBasic, FewerElementsThanProcessors) {
  const auto e = fpm::test::mixed_ensemble();
  const PartitionResult r = partition_basic(e.list(), 3);
  expect_valid(r.distribution, 3, "n<p");
}

TEST(PartitionBasic, ThrowsOnEmptySpeedList) {
  EXPECT_THROW(partition_basic({}, 10), std::invalid_argument);
  EXPECT_THROW(partition_modified({}, 10), std::invalid_argument);
  EXPECT_THROW(partition_combined({}, 10), std::invalid_argument);
}

TEST(PartitionBasic, ConstantSpeedsReduceToProportional) {
  // With constant speeds the functional partitioning must coincide with the
  // classic proportional distribution.
  const auto e = fpm::test::constant_ensemble(5);
  const SpeedList speeds = e.list();
  const std::int64_t n = 1000003;
  const PartitionResult r = partition_basic(speeds, n);
  std::vector<double> constants;
  for (const SpeedFunction* f : speeds) constants.push_back(f->speed(1.0));
  const Distribution prop = partition_single_number(n, constants);
  EXPECT_EQ(makespan(speeds, r.distribution), makespan(speeds, prop));
}

TEST(PartitionBasic, TangentOptionConverges) {
  BasicBisectionOptions opts;
  opts.bisect_angles = false;  // the paper's practical shortcut
  const auto e = fpm::test::power_ensemble(6);
  const PartitionResult r = partition_basic(e.list(), 999983, opts);
  expect_valid(r.distribution, 999983, "tangent");
  expect_near_optimal(e.list(), r.distribution, 999983, "tangent");
}

TEST(PartitionBasic, AngleAndTangentVariantsAgree) {
  const auto e = fpm::test::unimodal_ensemble(4);
  BasicBisectionOptions tangent;
  tangent.bisect_angles = false;
  const double ta =
      makespan(e.list(), partition_basic(e.list(), 777777).distribution);
  const double tt = makespan(
      e.list(), partition_basic(e.list(), 777777, tangent).distribution);
  EXPECT_NEAR(ta, tt, 0.01 * ta);
}

TEST(PartitionProportionality, CountsTrackSpeedAtOwnSize) {
  // The defining property (Figure 4): x_i / s_i(x_i) equalizes across
  // processors, up to integer granularity.
  const auto e = fpm::test::power_ensemble(6);
  const SpeedList speeds = e.list();
  const std::int64_t n = 5000011;
  const PartitionResult r = partition_combined(speeds, n);
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double x = static_cast<double>(r.distribution.counts[i]);
    ASSERT_GT(x, 0.0);
    const double t = x / speeds[i]->speed(x);
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
  // Times agree to within the cost of a couple of elements.
  EXPECT_LT((t_max - t_min) / t_max, 1e-4);
}

TEST(Complexity, ModifiedBeatsBasicOnExponentialFamily) {
  // Paper §2: with theta_opt(n) = O(e^-n) the basic algorithm degrades to
  // O(n)-ish step counts while the modified one stays O(p·log n). At
  // n = 1e8 on this family the gap is an order of magnitude.
  const auto e = fpm::test::exponential_ensemble(4);
  const std::int64_t n = 100000000;
  const PartitionResult basic = partition_basic(e.list(), n);
  const PartitionResult modified = partition_modified(e.list(), n);
  expect_valid(basic.distribution, n, "basic/exp");
  expect_valid(modified.distribution, n, "modified/exp");
  EXPECT_GT(basic.stats.iterations, 5 * modified.stats.iterations);
}

TEST(Complexity, BasicIterationsScaleSuperlogOnExponentialFamily) {
  // The same pathology seen as scaling: growing n by 100x grows the basic
  // iteration count far faster than the logarithmic growth seen on
  // well-behaved families, while the modified count barely moves.
  const auto e = fpm::test::exponential_ensemble(4);
  const int basic_small = partition_basic(e.list(), 1000000).stats.iterations;
  const int basic_large =
      partition_basic(e.list(), 100000000).stats.iterations;
  const int modified_small =
      partition_modified(e.list(), 1000000).stats.iterations;
  const int modified_large =
      partition_modified(e.list(), 100000000).stats.iterations;
  EXPECT_GT(basic_large, basic_small * 10);
  EXPECT_LT(modified_large, modified_small + 16);
}

TEST(Complexity, BasicIsCheapOnPolynomialFamilies) {
  // O(log n)-ish iteration counts on the well-behaved families.
  const auto e = fpm::test::power_ensemble(8);
  const PartitionResult r = partition_basic(e.list(), 100000000);
  EXPECT_LT(r.stats.iterations, 200);
}

TEST(Complexity, ModifiedIterationsWithinGuaranteedBound) {
  for (const Ensemble& e : fpm::test::all_ensembles(6)) {
    const std::int64_t n = 10000019;
    const PartitionResult r = partition_modified(e.list(), n);
    const double bound =
        6.0 * (std::log2(static_cast<double>(n) * 6.0) + 4.0) + 64.0;
    EXPECT_LE(r.stats.iterations, static_cast<int>(bound)) << e.name;
  }
}

TEST(Complexity, CombinedSwitchesOnExponentialFamilyOnly) {
  const auto exp_e = fpm::test::exponential_ensemble(4);
  const PartitionResult r_exp = partition_combined(exp_e.list(), 100000000);
  EXPECT_TRUE(r_exp.stats.switched_to_modified);

  const auto poly_e = fpm::test::power_ensemble(4);
  const PartitionResult r_poly = partition_combined(poly_e.list(), 100000000);
  EXPECT_FALSE(r_poly.stats.switched_to_modified);
}

TEST(Complexity, CombinedStaysNearModifiedOnPathologicalFamily) {
  // The point of the hybrid: on the bad family it must track the modified
  // algorithm's cost, not the basic one's.
  const auto e = fpm::test::exponential_ensemble(4);
  const std::int64_t n = 100000000;
  const int basic = partition_basic(e.list(), n).stats.iterations;
  const int combined = partition_combined(e.list(), n).stats.iterations;
  EXPECT_LT(combined, basic / 5);
}

TEST(Complexity, InterpolationStaysFlatOnExponentialFamily) {
  // The candidate answer to the paper's "ideal algorithm" challenge: the
  // safeguarded log-log secant search must not inherit basic bisection's
  // linear-in-n degradation on the exponential family.
  const auto e = fpm::test::exponential_ensemble(4);
  const int small = partition_interpolation(e.list(), 1000000).stats.iterations;
  const int large =
      partition_interpolation(e.list(), 100000000).stats.iterations;
  const int basic_large = partition_basic(e.list(), 100000000).stats.iterations;
  EXPECT_LT(large, small + 32);           // near-flat growth
  EXPECT_LT(large * 5, basic_large);      // an order of magnitude below basic
}

TEST(Complexity, InterpolationCompetitiveOnBenignFamilies) {
  for (const Ensemble& e : fpm::test::all_ensembles(6)) {
    const int interp =
        partition_interpolation(e.list(), 10000019).stats.iterations;
    const int basic = partition_basic(e.list(), 10000019).stats.iterations;
    EXPECT_LE(interp, 2 * basic + 8) << e.name;
  }
}

TEST(Determinism, RepeatedRunsIdentical) {
  const auto e = fpm::test::mixed_ensemble();
  const PartitionResult a = partition_combined(e.list(), 31415926);
  const PartitionResult b = partition_combined(e.list(), 31415926);
  EXPECT_EQ(a.distribution.counts, b.distribution.counts);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

TEST(Stats, ReportsAlgorithmNames) {
  const auto e = fpm::test::linear_ensemble(3);
  EXPECT_EQ(partition_basic(e.list(), 100).stats.algorithm, "basic");
  EXPECT_EQ(partition_modified(e.list(), 100).stats.algorithm, "modified");
  EXPECT_EQ(partition_combined(e.list(), 100).stats.algorithm, "combined");
}

TEST(Stats, IntersectionCountsAreConsistent) {
  const auto e = fpm::test::power_ensemble(5);
  const PartitionResult r = partition_basic(e.list(), 1000000);
  // Two bracket lines plus one line per iteration, each solving p curves.
  EXPECT_EQ(r.stats.intersections, 5 * (r.stats.iterations + 2));
}

}  // namespace
}  // namespace fpm::core
