// Unit tests for the partitioning common layer: bracket detection
// (Figure 18), the single-number baseline, even distribution, and makespan
// evaluation.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

TEST(DetectBracket, StraddlesTheProblemSize) {
  for (const auto& e : fpm::test::all_ensembles(5)) {
    const SpeedList speeds = e.list();
    for (const std::int64_t n : {100L, 100000L, 50000000L}) {
      const SlopeBracket br = detect_bracket(speeds, n);
      EXPECT_LE(br.lo_slope, br.hi_slope) << e.name;
      EXPECT_LE(total_size_at(speeds, br.hi_slope),
                static_cast<double>(n) * (1.0 + 1e-12))
          << e.name << " n=" << n;
      EXPECT_GE(total_size_at(speeds, br.lo_slope),
                static_cast<double>(n) * (1.0 - 1e-12))
          << e.name << " n=" << n;
    }
  }
}

TEST(DetectBracket, RejectsBadInput) {
  EXPECT_THROW(detect_bracket({}, 10), std::invalid_argument);
  const auto e = fpm::test::constant_ensemble(2);
  EXPECT_THROW(detect_bracket(e.list(), 0), std::invalid_argument);
}

TEST(DetectBracket, HandlesOverCapacityProblems) {
  // n far beyond the modelled ranges: intersections extend, so the shallow
  // line must still reach the sum.
  const auto e = fpm::test::stepped_ensemble(3);
  double capacity = 0.0;
  for (const auto& f : e.owned) capacity += f->max_size();
  const auto n = static_cast<std::int64_t>(capacity * 3.0);
  const SlopeBracket br = detect_bracket(e.list(), n);
  EXPECT_GE(total_size_at(e.list(), br.lo_slope), static_cast<double>(n));
}

TEST(TotalSizeAt, StrictlyDecreasingInSlope) {
  const auto e = fpm::test::mixed_ensemble();
  const SpeedList speeds = e.list();
  double prev = std::numeric_limits<double>::infinity();
  for (double c = 1e-7; c < 1.0; c *= 5.0) {
    const double s = total_size_at(speeds, c);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(SizesAt, OneCoordinatePerProcessor) {
  const auto e = fpm::test::linear_ensemble(4);
  const auto xs = sizes_at(e.list(), 1e-4);
  ASSERT_EQ(xs.size(), 4u);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(PartitionEven, SpreadsRemainder) {
  const Distribution d = partition_even(10, 3);
  EXPECT_EQ(d.counts, (std::vector<std::int64_t>{4, 3, 3}));
  EXPECT_EQ(d.total(), 10);
}

TEST(PartitionEven, HandlesZeroAndRejectsNoProcessors) {
  EXPECT_EQ(partition_even(0, 4).total(), 0);
  EXPECT_THROW(partition_even(10, 0), std::invalid_argument);
}

TEST(PartitionSingleNumber, ProportionalForExactRatios) {
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  const Distribution d = partition_single_number(60, speeds);
  EXPECT_EQ(d.counts, (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(PartitionSingleNumber, SumsExactlyDespiteRounding) {
  const std::vector<double> speeds{1.0, 1.0, 1.0};
  for (std::int64_t n = 0; n <= 17; ++n)
    EXPECT_EQ(partition_single_number(n, speeds).total(), n);
}

TEST(PartitionSingleNumber, RoundingMinimizesCompletionTime) {
  // 7 elements over speeds {3, 1}: floor gives {5, 1}; the leftover element
  // must go to the fast processor (time 2 vs 2.333... wait: (5+1)/3 = 2.0
  // vs (1+1)/1 = 2.0 — tie; then the next tick matters). Use a sharper
  // case: speeds {10, 1}, n = 12: floor {10, 1}, leftover to the fast one.
  const Distribution d = partition_single_number(12, std::vector<double>{10.0, 1.0});
  EXPECT_EQ(d.counts[0], 11);
  EXPECT_EQ(d.counts[1], 1);
}

TEST(PartitionSingleNumber, RejectsBadSpeeds) {
  EXPECT_THROW(partition_single_number(10, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(partition_single_number(10, std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(partition_single_number(10, std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(PartitionSingleNumberAt, ReadsSpeedsAtReferenceSize) {
  const auto e = fpm::test::linear_ensemble(3);
  const SpeedList speeds = e.list();
  const double ref = 1e6;
  const Distribution a = partition_single_number_at(speeds, 1000, ref);
  std::vector<double> constants;
  for (const SpeedFunction* f : speeds) constants.push_back(f->speed(ref));
  const Distribution b = partition_single_number(1000, constants);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(Makespan, MaxOfPerProcessorTimes) {
  const auto e = fpm::test::constant_ensemble(2);  // speeds 100 and 150
  Distribution d;
  d.counts = {100, 300};
  // times: 1.0 and 2.0.
  EXPECT_DOUBLE_EQ(makespan(e.list(), d), 2.0);
  const auto ts = execution_times(e.list(), d);
  EXPECT_DOUBLE_EQ(ts[0], 1.0);
  EXPECT_DOUBLE_EQ(ts[1], 2.0);
}

TEST(Makespan, ZeroCountsContributeNothing) {
  const auto e = fpm::test::constant_ensemble(2);
  Distribution d;
  d.counts = {0, 150};
  EXPECT_DOUBLE_EQ(makespan(e.list(), d), 1.0);
  EXPECT_DOUBLE_EQ(execution_times(e.list(), d)[0], 0.0);
}

TEST(Distribution, TotalSums) {
  Distribution d;
  d.counts = {1, 2, 3};
  EXPECT_EQ(d.total(), 6);
  EXPECT_EQ(d.processors(), 3u);
}

}  // namespace
}  // namespace fpm::core
