// SLO-aware serving: the degraded-answer error bound (property-tested
// against every registry algorithm), the queue-delay estimator, admission
// control, priority shedding, run_batch's 1:1 contract, drain(), and the
// offered == admitted + degraded + shed accounting invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/fpm.hpp"
#include "core/server.hpp"
#include "core/slo.hpp"
#include "helpers.hpp"

namespace fpm {
namespace {

using namespace std::chrono_literals;

core::SloStats expect_invariant(const core::PartitionServer& server) {
  const core::SloStats s = server.slo_stats();
  EXPECT_EQ(s.offered, s.admitted + s.degraded + s.shed);
  EXPECT_EQ(s.shed, s.shed_admission + s.shed_queue_full + s.shed_expired +
                        s.shed_shutdown);
  return s;
}

// ---------------------------------------------------------------------------
// degraded_answer: construction and the error bound
// ---------------------------------------------------------------------------

TEST(DegradedAnswer, RescalesToExactlyN) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  const core::PartitionResult prev = core::partition(list, 100000);
  for (const std::int64_t n : {1LL, 7LL, 99999LL, 100001LL, 500000LL}) {
    const auto ans =
        core::degraded_answer(list, n, prev.distribution.counts, 100000);
    ASSERT_TRUE(ans.has_value()) << "n=" << n;
    EXPECT_EQ(ans->distribution.total(), n);
    EXPECT_GE(ans->error_bound, 0.0);
    EXPECT_TRUE(std::isfinite(ans->error_bound));
  }
}

TEST(DegradedAnswer, RejectsUnusableInputs) {
  const test::Ensemble e = test::constant_ensemble(3);
  const core::SpeedList list = e.list();
  const std::vector<std::int64_t> prev{400, 300, 300};
  // Size mismatch, bad n, bad prev_n, negative and all-zero counts.
  EXPECT_FALSE(core::degraded_answer(list, 100, {{1, 2}}, 3).has_value());
  EXPECT_FALSE(core::degraded_answer(list, 0, prev, 1000).has_value());
  EXPECT_FALSE(core::degraded_answer(list, 100, prev, 0).has_value());
  EXPECT_FALSE(
      core::degraded_answer(list, 100, {{-1, 500, 501}}, 1000).has_value());
  EXPECT_FALSE(core::degraded_answer(list, 100, {{0, 0, 0}}, 1).has_value());
  EXPECT_FALSE(
      core::degraded_answer(core::SpeedList{}, 100, {}, 1).has_value());
}

// The tentpole property: the reported bound dominates the true relative
// makespan error versus a cold exact solve, for every registry algorithm,
// every curve family, and a spread of (previous n, requested n) pairs —
// including heavy up- and down-scaling.
TEST(DegradedAnswer, BoundDominatesTrueErrorAcrossRegistry) {
  const std::vector<std::pair<std::int64_t, std::int64_t>> scales = {
      {100000, 100000}, {100000, 93000},  {100000, 140000},
      {100000, 10000},  {50000, 400000},  {300000, 17}};
  int checked = 0;
  for (const test::Ensemble& e : test::all_ensembles(4)) {
    const core::SpeedList list = e.list();
    for (const std::string& id : core::partitioner_registry().ids()) {
      core::PartitionPolicy policy;
      policy.algorithm = id;
      if (id == core::kAlgorithmBounded) continue;  // needs bounds; and the
      // server never degrades bounded requests (a rescale may violate them)
      for (const auto& [prev_n, n] : scales) {
        const core::PartitionResult prev =
            core::partition(list, prev_n, policy);
        const auto ans = core::degraded_answer(
            list, n, prev.distribution.counts, prev_n);
        if (!ans) continue;  // rescale left the modelled range: no answer,
                             // and therefore no bound to check
        const core::PartitionResult exact = core::partition(list, n, policy);
        const double exact_makespan = core::makespan(list, exact.distribution);
        ASSERT_GT(exact_makespan, 0.0);
        const double true_error = ans->makespan / exact_makespan - 1.0;
        EXPECT_GE(ans->error_bound, true_error - 1e-9)
            << e.name << "/" << id << " prev_n=" << prev_n << " n=" << n;
        ++checked;
      }
    }
  }
  // The sweep must have exercised a real cross-section of the registry.
  EXPECT_GE(checked, 50);
}

// ---------------------------------------------------------------------------
// QueueDelayEstimator
// ---------------------------------------------------------------------------

TEST(QueueDelayEstimator, FallsBackAcrossClassesAndConverges) {
  core::QueueDelayEstimator est(0.5);
  // Nothing observed: optimistic zero (admit everything).
  EXPECT_EQ(est.service_estimate(core::Priority::Normal), 0.0);
  // High-only samples: Normal falls back to the all-class average.
  est.record(core::Priority::High, 0.010);
  EXPECT_DOUBLE_EQ(est.service_estimate(core::Priority::High), 0.010);
  EXPECT_DOUBLE_EQ(est.service_estimate(core::Priority::Normal), 0.010);
  // Class samples take precedence once they exist, and the EWMA moves
  // toward recent observations.
  est.record(core::Priority::Normal, 0.002);
  EXPECT_DOUBLE_EQ(est.service_estimate(core::Priority::Normal), 0.002);
  for (int i = 0; i < 20; ++i) est.record(core::Priority::Normal, 0.004);
  EXPECT_NEAR(est.service_estimate(core::Priority::Normal), 0.004, 1e-4);
  // Queue delay scales with depth and divides over workers.
  const double one = est.queue_delay(core::Priority::Normal, 10, 1);
  const double four = est.queue_delay(core::Priority::Normal, 10, 4);
  EXPECT_NEAR(one, 4.0 * four, 1e-12);
  EXPECT_EQ(est.queue_delay(core::Priority::Normal, 0, 1), 0.0);
  // Garbage samples are dropped.
  est.record(core::Priority::Low, -1.0);
  est.record(core::Priority::Low, std::nan(""));
  EXPECT_EQ(est.samples(core::Priority::Low), 0);
}

// ---------------------------------------------------------------------------
// serve_slo
// ---------------------------------------------------------------------------

TEST(ServeSlo, GenerousDeadlineServesExactly) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::PartitionServer server({.threads = 1});
  core::Slo slo;
  slo.deadline_s = 60.0;
  const core::ServeResult r = server.serve_slo(list, 123457, {}, slo);
  EXPECT_EQ(r.status, core::ServeStatus::Ok);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_EQ(r.result.distribution.counts,
            core::partition(list, 123457).distribution.counts);
  const core::SloStats s = expect_invariant(server);
  EXPECT_EQ(s.offered, 1);
  EXPECT_EQ(s.admitted, 1);
}

TEST(ServeSlo, ImpossibleDeadlineDegradesFromHintStore) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::PartitionServer server({.threads = 1});
  // Prime the hint store and the estimator with real solves (the plain
  // serve() is not SLO-accounted; serve_slo trains the estimator).
  server.serve(list, 200000);
  for (int i = 0; i < 5; ++i)
    (void)server.serve_slo(list, 200000 + 1000 * (i + 1), {}, {60.0});
  // A sub-nanosecond budget cannot beat the learned service time: the
  // admission controller must answer from the hint store instead.
  core::Slo tight;
  tight.deadline_s = 1e-9;
  const core::ServeResult r = server.serve_slo(list, 250000, {}, tight);
  EXPECT_EQ(r.status, core::ServeStatus::Degraded);
  EXPECT_EQ(r.shed_reason, core::ShedReason::Admission);
  EXPECT_EQ(r.result.distribution.total(), 250000);
  EXPECT_EQ(r.result.stats.algorithm, core::kAlgorithmDegraded);
  EXPECT_GE(r.error_bound, 0.0);
  // The degraded answer really is within its own bound of the optimum.
  const double exact = core::makespan(
      list, core::partition(list, 250000).distribution);
  const double degraded = core::makespan(list, r.result.distribution);
  EXPECT_LE(degraded, exact * (1.0 + r.error_bound) + 1e-9);
  const core::SloStats s = expect_invariant(server);
  EXPECT_EQ(s.degraded, 1);
}

TEST(ServeSlo, DegradationConsentRefusedMeansShed) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::PartitionServer server({.threads = 1});
  server.serve(list, 200000);
  for (int i = 0; i < 5; ++i)
    (void)server.serve_slo(list, 201000 + 1000 * i, {}, {60.0});
  core::Slo tight;
  tight.deadline_s = 1e-9;
  tight.allow_degraded = false;
  const core::ServeResult r = server.serve_slo(list, 777777, {}, tight);
  EXPECT_EQ(r.status, core::ServeStatus::Shed);
  EXPECT_EQ(r.shed_reason, core::ShedReason::Admission);
  EXPECT_FALSE(r.answered());
  const core::SloStats s = expect_invariant(server);
  EXPECT_EQ(s.shed_admission, 1);
}

TEST(ServeSlo, CacheHitBeatsAnyDeadline) {
  const test::Ensemble e = test::constant_ensemble(3);
  const core::SpeedList list = e.list();
  core::PartitionServer server({.threads = 1});
  server.serve(list, 55555);  // warm the cache
  for (int i = 0; i < 3; ++i)
    (void)server.serve_slo(list, 60000 + i, {}, {60.0});  // train estimator
  core::Slo tight;
  tight.deadline_s = 1e-9;
  const core::ServeResult r = server.serve_slo(list, 55555, {}, tight);
  EXPECT_EQ(r.status, core::ServeStatus::Ok) << "cached answers are free";
  EXPECT_EQ(r.result.distribution.total(), 55555);
}

// ---------------------------------------------------------------------------
// submit / run_batch
// ---------------------------------------------------------------------------

TEST(SubmitSlo, AccountingInvariantHoldsUnderQueuePressure) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 0;  // every request must solve: real queue pressure
  opts.max_queue_depth = 2;
  core::PartitionServer server(opts);
  constexpr int kRequests = 64;
  std::vector<std::future<core::ServeResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    core::BatchRequest req{list, 100000 + 101LL * i, {}, {}};
    req.slo.priority = static_cast<core::Priority>(i % 3);
    req.slo.allow_degraded = false;  // make sheds visible as sheds
    futures.push_back(server.submit(std::move(req)));
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    const core::ServeResult r = f.get();
    if (r.status == core::ServeStatus::Ok) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, core::ServeStatus::Shed);
      EXPECT_EQ(r.shed_reason, core::ShedReason::QueueFull);
      ++shed;
    }
  }
  const core::SloStats s = expect_invariant(server);
  EXPECT_EQ(s.offered, kRequests);
  EXPECT_EQ(s.admitted, ok);
  EXPECT_EQ(s.shed_queue_full, shed);
  // A depth-2 queue in front of one worker cannot absorb 64 requests.
  EXPECT_GT(shed, 0);
  EXPECT_GT(ok, 0);
}

TEST(SubmitSlo, DisplacementPrefersLowestPriorityLatestDeadline) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 0;
  opts.max_queue_depth = 1;
  core::PartitionServer server(opts);
  // Occupy the worker, then the depth-1 queue, with Low requests; a High
  // submission must displace the queued Low one, not be rejected itself.
  std::vector<std::future<core::ServeResult>> lows;
  for (int i = 0; i < 6; ++i) {
    core::BatchRequest req{list, 400000 + 7919LL * i, {}, {}};
    req.slo.priority = core::Priority::Low;
    req.slo.allow_degraded = false;
    lows.push_back(server.submit(std::move(req)));
  }
  core::BatchRequest high{list, 999999, {}, {}};
  high.slo.priority = core::Priority::High;
  high.slo.allow_degraded = false;
  core::ServeResult hr = server.submit(std::move(high)).get();
  EXPECT_EQ(hr.status, core::ServeStatus::Ok)
      << "a High request must never lose a full queue to Low requests";
  int low_shed = 0;
  for (auto& f : lows)
    if (f.get().status == core::ServeStatus::Shed) ++low_shed;
  EXPECT_GT(low_shed, 0);
  expect_invariant(server);
}

TEST(RunBatch, ResultsMapOneToOneWithShedEntriesMarkedInPlace) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 0;
  opts.max_queue_depth = 2;
  core::PartitionServer server(opts);
  constexpr int kRequests = 32;
  std::vector<core::BatchRequest> batch;
  std::vector<std::int64_t> ns;
  for (int i = 0; i < kRequests; ++i) {
    const std::int64_t n = 50000 + 997LL * i;  // all distinct: n identifies
    ns.push_back(n);                           // the request
    core::BatchRequest req{list, n, {}, {}};
    req.slo.allow_degraded = false;
    batch.push_back(std::move(req));
  }
  const std::vector<core::ServeResult> results =
      server.run_batch(std::move(batch));
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const core::ServeResult& r = results[static_cast<std::size_t>(i)];
    if (r.answered()) {
      // Distinct n per request: the total proves result i answers request i.
      EXPECT_EQ(r.result.distribution.total(), ns[static_cast<std::size_t>(i)])
          << "result " << i << " answers a different request";
    } else {
      EXPECT_EQ(r.shed_reason, core::ShedReason::QueueFull);
      EXPECT_TRUE(r.result.distribution.counts.empty());
    }
  }
  expect_invariant(server);
}

// ---------------------------------------------------------------------------
// Hint-store bounds
// ---------------------------------------------------------------------------

TEST(HintStore, FingerprintChurnEvictsLruAndCounts) {
  core::ServerOptions opts;
  opts.threads = 1;
  opts.hint_capacity = 16;  // one hint per shard
  core::PartitionServer server(opts);
  // 48 distinct fingerprints (distinct constant speeds) through 16 shards:
  // the store must stay bounded and count its evictions.
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  for (int i = 0; i < 48; ++i) {
    owned.clear();
    for (int p = 0; p < 3; ++p)
      owned.push_back(std::make_shared<core::ConstantSpeed>(
          100.0 + i * 10.0 + p * 3.0, 1e9));
    core::SpeedList list;
    for (const auto& f : owned) list.push_back(f.get());
    (void)server.serve(list, 10000 + i);
  }
  const core::CacheStats s = server.cache_stats();
  EXPECT_LE(s.hint_entries, 16u);
  EXPECT_GT(s.hint_evictions, 0);
  EXPECT_GE(obs::metrics().counter(obs::names::kServerHintsEvicted).value(),
            s.hint_evictions);
}

// ---------------------------------------------------------------------------
// drain
// ---------------------------------------------------------------------------

TEST(Drain, TimeoutShedsQueuedWorkAndServerStaysUsable) {
  const test::Ensemble e = test::mixed_ensemble();
  const core::SpeedList list = e.list();
  core::ServerOptions opts;
  opts.threads = 1;
  opts.cache_capacity = 0;
  core::PartitionServer server(opts);
  std::vector<std::future<core::ServeResult>> futures;
  for (int i = 0; i < 32; ++i) {
    core::BatchRequest req{list, 300000 + 1009LL * i, {}, {}};
    req.slo.allow_degraded = false;
    futures.push_back(server.submit(std::move(req)));
  }
  // A zero-ish timeout cannot drain 32 solves through one worker: the
  // leftovers are shed, every future is fulfilled, nothing hangs.
  const bool drained = server.drain(1us);
  int answered = 0, shed = 0;
  for (auto& f : futures) {
    const core::ServeResult r = f.get();
    (r.status == core::ServeStatus::Shed ? shed : answered) += 1;
    if (r.status == core::ServeStatus::Shed) {
      EXPECT_EQ(r.shed_reason, core::ShedReason::Shutdown);
    }
  }
  if (!drained) {
    EXPECT_GT(shed, 0);
  }
  EXPECT_EQ(answered + shed, 32);
  // The server accepts and completes new work after a timed-out drain.
  const core::ServeResult after = server.submit({list, 4242, {}, {}}).get();
  EXPECT_EQ(after.status, core::ServeStatus::Ok);
  EXPECT_EQ(after.result.distribution.total(), 4242);
  EXPECT_TRUE(server.drain(30s));
  expect_invariant(server);
}

}  // namespace
}  // namespace fpm
