// Unit tests for the piece-wise-linear speed function, the shape-requirement
// validation/repair, and the performance band.
#include <gtest/gtest.h>

#include "core/piecewise.hpp"

namespace fpm::core {
namespace {

std::vector<SpeedPoint> good_points() {
  return {{100.0, 200.0}, {1000.0, 180.0}, {10000.0, 90.0}, {50000.0, 5.0}};
}

TEST(PiecewiseLinearSpeed, FlatHeadBelowFirstPoint) {
  const PiecewiseLinearSpeed f(good_points());
  EXPECT_DOUBLE_EQ(f.speed(0.0), 200.0);
  EXPECT_DOUBLE_EQ(f.speed(50.0), 200.0);
  EXPECT_DOUBLE_EQ(f.speed(100.0), 200.0);
}

TEST(PiecewiseLinearSpeed, LinearInterpolationBetweenPoints) {
  const PiecewiseLinearSpeed f(good_points());
  EXPECT_DOUBLE_EQ(f.speed(550.0), 190.0);   // halfway 200 -> 180
  EXPECT_DOUBLE_EQ(f.speed(5500.0), 135.0);  // halfway 180 -> 90
}

TEST(PiecewiseLinearSpeed, ContinuesTrendBeyondLastPoint) {
  const PiecewiseLinearSpeed f(good_points());
  // Last segment slope: (5-90)/(50000-10000) per element.
  const double m = (5.0 - 90.0) / 40000.0;
  EXPECT_NEAR(f.speed(52000.0), 5.0 + m * 2000.0, 1e-9);
  // Far beyond, the positive floor takes over.
  EXPECT_GT(f.speed(1e9), 0.0);
}

TEST(PiecewiseLinearSpeed, MaxSizeIsLastBreakpoint) {
  const PiecewiseLinearSpeed f(good_points());
  EXPECT_DOUBLE_EQ(f.max_size(), 50000.0);
}

TEST(PiecewiseLinearSpeed, SinglePointActsAsConstant) {
  const PiecewiseLinearSpeed f({{100.0, 42.0}});
  EXPECT_DOUBLE_EQ(f.speed(1.0), 42.0);
  EXPECT_DOUBLE_EQ(f.speed(1e6), 42.0);
  EXPECT_NEAR(f.intersect(1.0), 42.0, 1e-9);
}

TEST(PiecewiseLinearSpeed, IntersectOnFlatHead) {
  const PiecewiseLinearSpeed f(good_points());
  // Steep line crosses the flat 200-speed head: x = 200/c.
  EXPECT_NEAR(f.intersect(10.0), 20.0, 1e-9);
}

TEST(PiecewiseLinearSpeed, IntersectOnInteriorSegments) {
  const PiecewiseLinearSpeed f(good_points());
  for (const double c : {1.0, 0.1, 0.02, 0.005, 0.0002}) {
    const double x = f.intersect(c);
    EXPECT_NEAR(c * x, f.speed(x), 1e-9 * std::max(1.0, f.speed(x)))
        << "slope " << c;
  }
}

TEST(PiecewiseLinearSpeed, IntersectBeyondLastPoint) {
  const PiecewiseLinearSpeed f(good_points());
  // Shallow enough that the crossing lies past 50000 on the extended trend.
  const double c = 1e-5;
  const double x = f.intersect(c);
  EXPECT_GT(x, 50000.0);
  EXPECT_NEAR(c * x, f.speed(x), 1e-6 * f.speed(x));
}

TEST(PiecewiseLinearSpeed, RejectsBadInput) {
  EXPECT_THROW(PiecewiseLinearSpeed({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearSpeed({{0.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearSpeed({{10.0, 5.0}, {10.0, 4.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearSpeed({{10.0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearSpeed({{10.0, 0.0}, {20.0, 0.0}}),
               std::invalid_argument);
}

TEST(PiecewiseLinearSpeed, RejectsShapeViolation) {
  // Ratio rises from 1.0 at x=100 to 2.0 at x=200: two intersections with
  // some lines — must be rejected.
  EXPECT_THROW(PiecewiseLinearSpeed({{100.0, 100.0}, {200.0, 400.0}}),
               std::invalid_argument);
}

TEST(RepairShapeRequirement, LeavesValidPointsUnchanged) {
  const auto pts = good_points();
  const auto repaired = repair_shape_requirement(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(repaired[i].size, pts[i].size);
    EXPECT_DOUBLE_EQ(repaired[i].speed, pts[i].speed);
  }
}

TEST(RepairShapeRequirement, LowersViolatingPoints) {
  const auto repaired = repair_shape_requirement(
      {{100.0, 100.0}, {200.0, 400.0}, {400.0, 100.0}});
  // After repair the points must construct successfully.
  EXPECT_NO_THROW((void)PiecewiseLinearSpeed{repaired});
  EXPECT_LT(repaired[1].speed, 400.0);
  // Untouched points keep their values.
  EXPECT_DOUBLE_EQ(repaired[0].speed, 100.0);
}

TEST(RepairShapeRequirement, HandlesNoisyMeasurements) {
  // A realistic noisy curve: overall decreasing with a bump.
  std::vector<SpeedPoint> pts;
  for (int i = 1; i <= 20; ++i) {
    const double x = 1000.0 * i;
    double s = 300.0 - 10.0 * i;
    if (i == 7) s += 90.0;  // a fluctuation spike
    pts.push_back({x, s});
  }
  EXPECT_NO_THROW((void)PiecewiseLinearSpeed{repair_shape_requirement(pts)});
}

TEST(PerformanceBand, CenterBisectsEnvelopes) {
  std::vector<SpeedPoint> lo{{100.0, 90.0}, {1000.0, 40.0}};
  std::vector<SpeedPoint> hi{{100.0, 110.0}, {1000.0, 60.0}};
  const PerformanceBand band(lo, hi);
  const PiecewiseLinearSpeed centre = band.center();
  EXPECT_DOUBLE_EQ(centre.speed(100.0), 100.0);
  EXPECT_DOUBLE_EQ(centre.speed(1000.0), 50.0);
}

TEST(PerformanceBand, RelativeWidth) {
  std::vector<SpeedPoint> lo{{100.0, 90.0}, {1000.0, 45.0}};
  std::vector<SpeedPoint> hi{{100.0, 110.0}, {1000.0, 55.0}};
  const PerformanceBand band(lo, hi);
  EXPECT_NEAR(band.relative_width(100.0), 0.2, 1e-9);
  EXPECT_NEAR(band.relative_width(1000.0), 0.2, 1e-9);
}

TEST(PerformanceBand, RejectsMismatchedEnvelopes) {
  EXPECT_THROW(
      PerformanceBand({{100.0, 90.0}}, {{100.0, 110.0}, {200.0, 80.0}}),
      std::invalid_argument);
  EXPECT_THROW(PerformanceBand({{100.0, 120.0}}, {{100.0, 110.0}}),
               std::invalid_argument);
  EXPECT_THROW(PerformanceBand({{100.0, 90.0}}, {{150.0, 110.0}}),
               std::invalid_argument);
}

TEST(PerformanceBand, EnvelopeCurvesAreOrdered) {
  std::vector<SpeedPoint> lo{{100.0, 90.0}, {1000.0, 40.0}, {5000.0, 10.0}};
  std::vector<SpeedPoint> hi{{100.0, 110.0}, {1000.0, 60.0}, {5000.0, 14.0}};
  const PerformanceBand band(lo, hi);
  const auto lower = band.lower_curve();
  const auto upper = band.upper_curve();
  for (double x = 100.0; x <= 5000.0; x *= 1.7)
    EXPECT_LE(lower.speed(x), upper.speed(x) + 1e-12) << x;
}

}  // namespace
}  // namespace fpm::core
