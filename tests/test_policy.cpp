// The unified partitioner engine: registry contents, policy dispatch
// bit-identity against the direct entry points, the parse/format grammar,
// and the shared search instrumentation (per-call counters + step traces).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fpm.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

using fpm::test::Ensemble;

std::vector<std::int64_t> capacity_bounds(const SpeedList& speeds) {
  std::vector<std::int64_t> bounds;
  for (const SpeedFunction* f : speeds)
    bounds.push_back(static_cast<std::int64_t>(std::ceil(f->max_size())));
  return bounds;
}

TEST(PartitionerRegistry, HoldsTheFiveFamilyMembers) {
  const std::vector<std::string> ids = partitioner_registry().ids();
  const std::vector<std::string> expected{
      kAlgorithmBasic, kAlgorithmModified, kAlgorithmCombined,
      kAlgorithmInterpolation, kAlgorithmBounded};
  EXPECT_EQ(ids, expected);
  for (const PartitionerInfo& info : partitioner_registry().entries()) {
    EXPECT_FALSE(info.summary.empty()) << info.id;
    EXPECT_FALSE(info.complexity.empty()) << info.id;
    EXPECT_EQ(info.needs_bounds, info.id == kAlgorithmBounded) << info.id;
    EXPECT_TRUE(partitioner_registry().contains(info.id));
  }
  EXPECT_FALSE(partitioner_registry().contains("simulated-annealing"));
  for (const std::string& id : ids)
    EXPECT_NE(partitioner_registry().joined_ids().find(id), std::string::npos);
}

TEST(PartitionEngine, DefaultPolicyIsExactlyCombined) {
  for (const Ensemble& e : fpm::test::all_ensembles(6)) {
    const SpeedList speeds = e.list();
    const PartitionResult direct = partition_combined(speeds, 1'000'000);
    const PartitionResult engine = partition(speeds, 1'000'000);
    EXPECT_EQ(engine.distribution.counts, direct.distribution.counts)
        << e.name;
    EXPECT_EQ(engine.stats.iterations, direct.stats.iterations) << e.name;
    EXPECT_EQ(engine.stats.intersections, direct.stats.intersections)
        << e.name;
    EXPECT_EQ(engine.stats.algorithm, kAlgorithmCombined) << e.name;
  }
}

TEST(PartitionEngine, EveryIdMatchesItsDirectEntryPoint) {
  const Ensemble e = fpm::test::mixed_ensemble();
  const SpeedList speeds = e.list();
  const std::int64_t n = 31'415'926;
  for (const PartitionerInfo& info : partitioner_registry().entries()) {
    PartitionPolicy policy;
    policy.algorithm = info.id;
    const PartitionResult engine = partition(speeds, n, policy);
    PartitionResult direct;
    if (info.id == kAlgorithmBasic)
      direct = partition_basic(speeds, n);
    else if (info.id == kAlgorithmModified)
      direct = partition_modified(speeds, n);
    else if (info.id == kAlgorithmCombined)
      direct = partition_combined(speeds, n);
    else if (info.id == kAlgorithmInterpolation)
      direct = partition_interpolation(speeds, n);
    else
      direct = partition_bounded(speeds, n, capacity_bounds(speeds));
    EXPECT_EQ(engine.distribution.counts, direct.distribution.counts)
        << info.id;
    EXPECT_EQ(engine.stats.iterations, direct.stats.iterations) << info.id;
    EXPECT_EQ(engine.stats.algorithm, info.id) << info.id;
  }
}

TEST(PartitionEngine, OptionsVariantIsHonoured) {
  const Ensemble e = fpm::test::power_ensemble(5);
  CombinedOptions tuned;
  tuned.stall_window = 2;
  PartitionPolicy policy;
  policy.options = tuned;
  const PartitionResult engine = partition(e.list(), 10'000'019, policy);
  const PartitionResult direct = partition_combined(e.list(), 10'000'019,
                                                    tuned);
  EXPECT_EQ(engine.distribution.counts, direct.distribution.counts);
  EXPECT_EQ(engine.stats.iterations, direct.stats.iterations);
}

TEST(PartitionEngine, UnknownIdNamesTheValidOnes) {
  const Ensemble e = fpm::test::power_ensemble(3);
  PartitionPolicy policy;
  policy.algorithm = "annealing";
  try {
    partition(e.list(), 1000, policy);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("annealing"), std::string::npos);
    for (const std::string& id : partitioner_registry().ids())
      EXPECT_NE(what.find(id), std::string::npos) << what;
  }
}

TEST(PartitionEngine, MismatchedOptionsVariantThrows) {
  const Ensemble e = fpm::test::power_ensemble(3);
  PartitionPolicy policy;
  policy.algorithm = kAlgorithmBasic;
  policy.options = CombinedOptions{};
  EXPECT_THROW(partition(e.list(), 1000, policy), std::invalid_argument);
}

TEST(PartitionEngine, BoundedDerivesBoundsFromCurveCapacity) {
  // Exponential curves have max_size 2e6 each: 6 of them hold 1.2e7.
  const Ensemble e = fpm::test::exponential_ensemble(6);
  PartitionPolicy policy;
  policy.algorithm = kAlgorithmBounded;
  const std::int64_t feasible = 6'000'000;
  const PartitionResult engine = partition(e.list(), feasible, policy);
  const PartitionResult direct =
      partition_bounded(e.list(), feasible, capacity_bounds(e.list()));
  EXPECT_EQ(engine.distribution.counts, direct.distribution.counts);
  for (std::size_t i = 0; i < e.owned.size(); ++i)
    EXPECT_LE(engine.distribution.counts[i],
              static_cast<std::int64_t>(std::ceil(e.list()[i]->max_size())));
  // More than the curves can hold is infeasible, like the direct call.
  EXPECT_THROW(partition(e.list(), 13'000'000, policy), std::invalid_argument);
  // Explicit bounds override the derived ones.
  policy.bounds.assign(6, 2'000'000);
  policy.bounds[0] = 0;
  const PartitionResult clamped = partition(e.list(), feasible, policy);
  EXPECT_EQ(clamped.distribution.counts[0], 0);
  EXPECT_EQ(clamped.distribution.total(), feasible);
}

// ---------------------------------------------------------------------------
// Shared instrumentation: counters and the step trace.
// ---------------------------------------------------------------------------

TEST(SearchInstrumentation, CountersAreAliveForEveryAlgorithm) {
  const Ensemble e = fpm::test::mixed_ensemble();
  for (const PartitionerInfo& info : partitioner_registry().entries()) {
    PartitionPolicy policy;
    policy.algorithm = info.id;
    const PartitionResult r = partition(e.list(), 31'415'926, policy);
    EXPECT_GT(r.stats.speed_evals, 0) << info.id;
    EXPECT_GT(r.stats.intersect_solves, 0) << info.id;
  }
}

TEST(SearchInstrumentation, TraceStepCountMatchesIterationStats) {
  const Ensemble e = fpm::test::mixed_ensemble();
  for (const PartitionerInfo& info : partitioner_registry().entries()) {
    StepTrace trace;
    PartitionPolicy policy;
    policy.algorithm = info.id;
    policy.observer = trace.observer();
    const PartitionResult r = partition(e.list(), 31'415'926, policy);
    EXPECT_EQ(trace.search_steps(), r.stats.iterations) << info.id;
    EXPECT_GE(trace.brackets(), 1) << info.id;
    EXPECT_FALSE(trace.truncated()) << info.id;
    // Iterations are numbered 1..k within each line search; the bracket
    // record of each search carries iteration 0.
    int last = -1;
    for (const SearchStep& s : trace.steps()) {
      if (s.kind == SearchStepKind::Bracket) {
        EXPECT_EQ(s.iteration, 0) << info.id;
        last = 0;
      } else {
        EXPECT_EQ(s.iteration, last + 1) << info.id;
        last = s.iteration;
        EXPECT_LE(s.lo_slope, s.hi_slope) << info.id;
      }
    }
  }
}

TEST(SearchInstrumentation, ObserverDoesNotChangeTheDistribution) {
  for (const Ensemble& e : fpm::test::all_ensembles(5)) {
    StepTrace trace;
    PartitionPolicy observed;
    observed.observer = trace.observer();
    const PartitionResult with = partition(e.list(), 2'000'003, observed);
    const PartitionResult without = partition(e.list(), 2'000'003);
    EXPECT_EQ(with.distribution.counts, without.distribution.counts) << e.name;
    EXPECT_EQ(with.stats.iterations, without.stats.iterations) << e.name;
    EXPECT_EQ(with.stats.speed_evals, without.stats.speed_evals) << e.name;
    EXPECT_EQ(with.stats.intersect_solves, without.stats.intersect_solves)
        << e.name;
  }
}

TEST(SearchInstrumentation, TraceTruncatesButKeepsCounting) {
  const Ensemble e = fpm::test::exponential_ensemble(6);
  StepTrace trace(3);
  PartitionPolicy policy;
  policy.algorithm = kAlgorithmBasic;
  policy.observer = trace.observer();
  const PartitionResult r = partition(e.list(), 1'000'000, policy);
  ASSERT_GT(r.stats.iterations, 3);
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.steps().size(), 3u);
  EXPECT_EQ(trace.search_steps(), r.stats.iterations);
}

// ---------------------------------------------------------------------------
// The policy grammar shared by spec files and CLIs.
// ---------------------------------------------------------------------------

TEST(PolicyGrammar, ParsesKeysIntoTheMatchingOptions) {
  const std::vector<std::string> tokens{"stall_window", "7", "bisect_angles",
                                        "false"};
  const PartitionPolicy policy = parse_policy(kAlgorithmCombined, tokens);
  const auto* opts = std::get_if<CombinedOptions>(&policy.options);
  ASSERT_NE(opts, nullptr);
  EXPECT_EQ(opts->stall_window, 7);
  EXPECT_FALSE(opts->bisect_angles);
}

TEST(PolicyGrammar, FormatRoundTrips) {
  const std::vector<std::string> tokens{"stall_window", "7", "bisect_angles",
                                        "false"};
  const PartitionPolicy policy = parse_policy(kAlgorithmCombined, tokens);
  const std::string text = format_policy(policy);
  EXPECT_EQ(text, "combined stall_window 7 bisect_angles false");
  // Defaults collapse to the bare id.
  EXPECT_EQ(format_policy(parse_policy(kAlgorithmModified, {})), "modified");
  EXPECT_EQ(format_policy(PartitionPolicy{}), "combined");
}

TEST(PolicyGrammar, RejectsMalformedInput) {
  EXPECT_THROW(parse_policy("annealing", {}), std::invalid_argument);
  const std::vector<std::string> dangling{"stall_window"};
  EXPECT_THROW(parse_policy(kAlgorithmCombined, dangling),
               std::invalid_argument);
  const std::vector<std::string> unknown{"cooling_rate", "3"};
  EXPECT_THROW(parse_policy(kAlgorithmCombined, unknown),
               std::invalid_argument);
  const std::vector<std::string> bad_value{"stall_window", "many"};
  EXPECT_THROW(parse_policy(kAlgorithmCombined, bad_value),
               std::invalid_argument);
  const std::vector<std::string> trailing_junk{"max_iterations", "3x"};
  EXPECT_THROW(parse_policy(kAlgorithmModified, trailing_junk),
               std::invalid_argument);
}

TEST(PolicyGrammar, BoundedKeysTuneTheInnerSolve) {
  const std::vector<std::string> tokens{"stall_window", "9"};
  const PartitionPolicy policy = parse_policy(kAlgorithmBounded, tokens);
  const auto* opts = std::get_if<BoundedOptions>(&policy.options);
  ASSERT_NE(opts, nullptr);
  EXPECT_EQ(opts->inner.stall_window, 9);
  EXPECT_EQ(format_policy(policy), "bounded stall_window 9");
}

// ---------------------------------------------------------------------------
// Consumers dispatch through the engine.
// ---------------------------------------------------------------------------

TEST(PolicyConsumers, HierarchicalRejectsPerProcessorBounds) {
  std::vector<SpeedList> groups;
  const Ensemble e = fpm::test::power_ensemble(4);
  const SpeedList flat = e.list();
  groups.push_back({flat[0], flat[1]});
  groups.push_back({flat[2], flat[3]});
  PartitionPolicy policy;
  policy.bounds = {1, 2, 3, 4};
  EXPECT_THROW(partition_hierarchical(groups, 1000, policy),
               std::invalid_argument);
}

TEST(PolicyConsumers, HierarchicalHonoursTheAlgorithmChoice) {
  std::vector<SpeedList> groups;
  const Ensemble e = fpm::test::power_ensemble(4);
  const SpeedList flat = e.list();
  groups.push_back({flat[0], flat[1]});
  groups.push_back({flat[2], flat[3]});
  PartitionPolicy policy;
  policy.algorithm = kAlgorithmModified;
  const HierarchicalResult r = partition_hierarchical(groups, 100'003, policy);
  EXPECT_EQ(r.stats.algorithm, kAlgorithmHierarchical);
  std::int64_t total = 0;
  for (const std::int64_t c : r.flatten()) total += c;
  EXPECT_EQ(total, 100'003);
}

}  // namespace
}  // namespace fpm::core
