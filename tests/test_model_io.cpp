// Tests for model persistence: round-tripping curves and bands through the
// fpm-model text format, and parse-error reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/builder.hpp"
#include "core/model_io.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

NamedModel sample_band_model() {
  NamedModel m;
  m.name = "X8-MatrixMult";
  m.epsilon = 0.05;
  m.lower = {{100.0, 90.0}, {10000.0, 45.0}, {1e6, 2.0}};
  m.upper = {{100.0, 110.0}, {10000.0, 55.0}, {1e6, 3.0}};
  return m;
}

TEST(ModelIo, RoundTripsBandExactly) {
  const std::vector<NamedModel> models{sample_band_model()};
  std::stringstream ss;
  save_models(ss, models);
  const std::vector<NamedModel> loaded = load_models(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "X8-MatrixMult");
  EXPECT_DOUBLE_EQ(loaded[0].epsilon, 0.05);
  ASSERT_EQ(loaded[0].lower.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(loaded[0].lower[i].size, models[0].lower[i].size);
    EXPECT_DOUBLE_EQ(loaded[0].lower[i].speed, models[0].lower[i].speed);
    EXPECT_DOUBLE_EQ(loaded[0].upper[i].speed, models[0].upper[i].speed);
  }
}

TEST(ModelIo, RoundTripsMultipleModels) {
  std::vector<NamedModel> models{sample_band_model(), sample_band_model()};
  models[1].name = "second";
  std::stringstream ss;
  save_models(ss, models);
  const auto loaded = load_models(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].name, "second");
}

TEST(ModelIo, CurveAccessorBuildsCentre) {
  const NamedModel m = sample_band_model();
  const PiecewiseLinearSpeed c = m.curve();
  EXPECT_DOUBLE_EQ(c.speed(100.0), 100.0);
  EXPECT_DOUBLE_EQ(c.speed(10000.0), 50.0);
}

TEST(ModelIo, MakeNamedModelFromCurve) {
  const PiecewiseLinearSpeed curve({{100.0, 200.0}, {1000.0, 100.0}});
  const NamedModel m = make_named_model("c", curve, 0.1);
  EXPECT_EQ(m.lower.size(), m.upper.size());
  EXPECT_DOUBLE_EQ(m.lower[0].speed, m.upper[0].speed);
  const PiecewiseLinearSpeed back = m.curve();
  EXPECT_DOUBLE_EQ(back.speed(500.0), curve.speed(500.0));
}

TEST(ModelIo, RoundTripsBuilderOutput) {
  // End-to-end: trisection-built band -> save -> load -> same curve.
  const auto e = fpm::test::stepped_ensemble(1);
  struct Src final : MeasurementSource {
    const SpeedFunction* f;
    double measure(double size) override { return f->speed(size); }
  } src;
  src.f = e.owned[0].get();
  BuilderOptions opts;
  opts.min_size = 100.0;
  opts.max_size = e.owned[0]->max_size();
  const BuiltModel built = build_speed_band(src, opts);
  const NamedModel named = make_named_model("built", built.band, opts.epsilon);

  std::stringstream ss;
  save_models(ss, {named});
  const auto loaded = load_models(ss);
  ASSERT_EQ(loaded.size(), 1u);
  const PiecewiseLinearSpeed a = built.band.center();
  const PiecewiseLinearSpeed b = loaded[0].curve();
  for (double x = 200.0; x < opts.max_size; x *= 2.3)
    EXPECT_NEAR(a.speed(x), b.speed(x), 1e-9 * a.speed(x)) << x;
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = "/tmp/fpm_model_io_test.fpm";
  save_models_file(path, {sample_band_model()});
  const auto loaded = load_models_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "X8-MatrixMult");
  std::remove(path.c_str());
}

TEST(ModelIo, FileErrorsThrow) {
  EXPECT_THROW(load_models_file("/nonexistent/dir/m.fpm"),
               std::runtime_error);
  EXPECT_THROW(save_models_file("/nonexistent/dir/m.fpm", {}),
               std::runtime_error);
}

TEST(ModelIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# header\n\nmodel a\n# inner comment\nband 0.05\npoint 10 5 6\nend\n");
  const auto loaded = load_models(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "a");
}

TEST(ModelIo, ParseErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::stringstream ss(text);
    try {
      load_models(ss);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
          << err.what();
    }
  };
  expect_error("point 1 2 3\n", "outside a model");
  expect_error("model a\nmodel b\n", "nested");
  expect_error("model a\npoint 10 5 6\n", "unterminated");
  expect_error("model a\npoint -1 5 6\nend\n", "size must be > 0");
  expect_error("model a\npoint 10 6 5\nend\n", "lower <= upper");
  expect_error("model a\npoint 10 5 6\npoint 5 4 5\nend\n",
               "strictly increasing");
  expect_error("model a\nend\n", "no points");
  expect_error("bogus\n", "unknown keyword");
}

TEST(ModelIo, RejectsNonFiniteAndNegativeValues) {
  // NaN compares false against every range check, so without explicit
  // isfinite guards these would parse "successfully" and poison the
  // partitioners downstream.
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::stringstream ss(text);
    try {
      load_models(ss);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
          << err.what();
    }
  };
  // Whether "nan"/"inf" fail at extraction (libstdc++) or at the explicit
  // isfinite guard (platforms whose num_get accepts them), the line must
  // be rejected either way.
  expect_error("model a\nband nan\npoint 10 5 6\nend\n", "finite");
  expect_error("model a\nband inf\npoint 10 5 6\nend\n", "finite");
  expect_error("model a\nband -0.1\npoint 10 5 6\nend\n", "finite");
  expect_error("model a\npoint nan 5 6\nend\n", "point");
  expect_error("model a\npoint 10 nan 6\nend\n", "point");
  expect_error("model a\npoint 10 5 nan\nend\n", "point");
  expect_error("model a\npoint 10 5 inf\nend\n", "point");
  expect_error("model a\npoint 10 -2 6\nend\n", "negative");
}

TEST(ModelIo, RejectsBadNamesOnSave) {
  NamedModel m = sample_band_model();
  m.name = "has space";
  std::stringstream ss;
  EXPECT_THROW(save_models(ss, {m}), std::runtime_error);
  m.name = "";
  EXPECT_THROW(save_models(ss, {m}), std::runtime_error);
}

}  // namespace
}  // namespace fpm::core
