// Shared fixtures for the fpmlib test suite: canonical heterogeneous curve
// families covering every shape class of the paper (Figure 5), plus
// optimality checking helpers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fpm.hpp"

namespace fpm::test {

using CurveSet = std::vector<std::shared_ptr<const core::SpeedFunction>>;

/// A named heterogeneous processor ensemble.
struct Ensemble {
  std::string name;
  CurveSet owned;

  core::SpeedList list() const {
    core::SpeedList l;
    l.reserve(owned.size());
    for (const auto& f : owned) l.push_back(f.get());
    return l;
  }
};

/// p constant speeds 100, 150, 200, ... (the degenerate single-number case).
inline Ensemble constant_ensemble(std::size_t p, double max_size = 1e9) {
  Ensemble e{"constant", {}};
  for (std::size_t i = 0; i < p; ++i)
    e.owned.push_back(std::make_shared<core::ConstantSpeed>(
        100.0 + 50.0 * static_cast<double>(i), max_size));
  return e;
}

/// Strictly decreasing linear curves with staggered ranges (Figure 5 s1).
inline Ensemble linear_ensemble(std::size_t p, double base_max = 4e8) {
  Ensemble e{"linear-decay", {}};
  for (std::size_t i = 0; i < p; ++i)
    e.owned.push_back(std::make_shared<core::LinearDecaySpeed>(
        120.0 + 40.0 * static_cast<double>(i),
        base_max * (1.0 + 0.35 * static_cast<double>(i))));
  return e;
}

/// Smooth power decays of varying sharpness (the "MatrixMult" shape).
inline Ensemble power_ensemble(std::size_t p, double max_size = 1e9) {
  Ensemble e{"power-decay", {}};
  for (std::size_t i = 0; i < p; ++i)
    e.owned.push_back(std::make_shared<core::PowerDecaySpeed>(
        90.0 + 60.0 * static_cast<double>(i),
        2e7 * (1.0 + static_cast<double>(i)),
        0.8 + 0.3 * static_cast<double>(i % 3), max_size));
  return e;
}

/// Rising-then-falling curves (Figure 5 s2).
inline Ensemble unimodal_ensemble(std::size_t p, double max_size = 6e8) {
  Ensemble e{"unimodal", {}};
  for (std::size_t i = 0; i < p; ++i) {
    const double d = static_cast<double>(i);
    e.owned.push_back(std::make_shared<core::UnimodalSpeed>(
        40.0 + 10.0 * d, 150.0 + 45.0 * d, 1e6 * (1.0 + d),
        5e7 * (1.0 + 0.5 * d), 3.0, max_size));
  }
  return e;
}

/// Plateaus with cache and paging cliffs at staggered positions.
inline Ensemble stepped_ensemble(std::size_t p, double max_size = 8e8) {
  Ensemble e{"stepped", {}};
  for (std::size_t i = 0; i < p; ++i) {
    const double d = static_cast<double>(i);
    std::vector<core::SteppedSpeed::Step> steps;
    steps.push_back({3e5 * (1.0 + d), (220.0 + 40.0 * d) * 0.8, 1e5});
    steps.push_back({8e7 * (1.0 + 0.6 * d), (220.0 + 40.0 * d) * 0.05, 6e6});
    e.owned.push_back(std::make_shared<core::SteppedSpeed>(
        220.0 + 40.0 * d, std::move(steps), max_size));
  }
  return e;
}

/// The pathological family for the basic algorithm: exponentially decaying
/// speeds with widely spread decay constants, so the optimal slope decays
/// exponentially in n and the Figure-18 bracket opens exponentially wide.
inline Ensemble exponential_ensemble(std::size_t p, double max_size = 2e6) {
  Ensemble e{"exp-decay", {}};
  double lambda = 5e3;
  for (std::size_t i = 0; i < p; ++i) {
    e.owned.push_back(std::make_shared<core::ExpDecaySpeed>(
        150.0 + 30.0 * static_cast<double>(i), lambda, max_size));
    lambda *= 3.0;
  }
  return e;
}

/// A mixed ensemble with one curve of every shape class.
inline Ensemble mixed_ensemble() {
  Ensemble e{"mixed", {}};
  e.owned.push_back(std::make_shared<core::ConstantSpeed>(140.0, 1e9));
  e.owned.push_back(std::make_shared<core::LinearDecaySpeed>(200.0, 5e8));
  e.owned.push_back(std::make_shared<core::PowerDecaySpeed>(170.0, 3e7, 1.1, 1e9));
  e.owned.push_back(std::make_shared<core::UnimodalSpeed>(60.0, 260.0, 2e6,
                                                          9e7, 2.5, 7e8));
  std::vector<core::SteppedSpeed::Step> steps;
  steps.push_back({5e5, 180.0, 2e5});
  steps.push_back({1.2e8, 12.0, 8e6});
  e.owned.push_back(
      std::make_shared<core::SteppedSpeed>(230.0, std::move(steps), 9e8));
  return e;
}

/// All families at the given p, for parameterized sweeps.
inline std::vector<Ensemble> all_ensembles(std::size_t p) {
  return {constant_ensemble(p), linear_ensemble(p),   power_ensemble(p),
          unimodal_ensemble(p), stepped_ensemble(p),  exponential_ensemble(p)};
}

}  // namespace fpm::test
