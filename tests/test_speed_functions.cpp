// Unit tests for the analytic speed-function families: construction
// contracts, the single-intersection shape requirement, and intersection
// solving.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/speed_function.hpp"
#include "helpers.hpp"

namespace fpm::core {
namespace {

TEST(ConstantSpeed, ReturnsConstantEverywhere) {
  const ConstantSpeed f(120.0, 1e6);
  EXPECT_DOUBLE_EQ(f.speed(0.0), 120.0);
  EXPECT_DOUBLE_EQ(f.speed(1.0), 120.0);
  EXPECT_DOUBLE_EQ(f.speed(1e6), 120.0);
}

TEST(ConstantSpeed, RejectsNonPositiveParameters) {
  EXPECT_THROW(ConstantSpeed(0.0, 1e6), std::invalid_argument);
  EXPECT_THROW(ConstantSpeed(-5.0, 1e6), std::invalid_argument);
  EXPECT_THROW(ConstantSpeed(10.0, 0.0), std::invalid_argument);
}

TEST(ConstantSpeed, IntersectSolvesClosedForm) {
  const ConstantSpeed f(100.0, 1e9);
  // c*x = 100 => x = 100/c.
  EXPECT_DOUBLE_EQ(f.intersect(1.0), 100.0);
  EXPECT_DOUBLE_EQ(f.intersect(0.5), 200.0);
}

TEST(ConstantSpeed, IntersectExtendsBeyondModelledRange) {
  // max_size is modelled-range metadata, not a wall: a shallow line crosses
  // the constant graph beyond it.
  const ConstantSpeed f(100.0, 50.0);
  EXPECT_DOUBLE_EQ(f.intersect(1e-2), 1e4);
}

TEST(LinearDecaySpeed, MatchesClosedForm) {
  const LinearDecaySpeed f(100.0, 1000.0);
  EXPECT_DOUBLE_EQ(f.speed(0.0), 100.0);
  EXPECT_DOUBLE_EQ(f.speed(500.0), 50.0);
  EXPECT_NEAR(f.speed(1000.0), 0.1, 1e-12);  // the 1e-3 floor
}

TEST(LinearDecaySpeed, IntersectSatisfiesLineEquation) {
  const LinearDecaySpeed f(100.0, 1e6);
  for (const double c : {1e-3, 0.01, 0.1, 1.0, 10.0}) {
    const double x = f.intersect(c);
    EXPECT_NEAR(c * x, f.speed(x), 1e-6 * f.speed(x)) << "slope " << c;
  }
}

TEST(PowerDecaySpeed, HalvesAtScaleSize) {
  const PowerDecaySpeed f(200.0, 1e4, 2.0, 1e8);
  EXPECT_DOUBLE_EQ(f.speed(0.0), 200.0);
  EXPECT_DOUBLE_EQ(f.speed(1e4), 100.0);  // (x/x0)^k == 1 halves the speed
}

TEST(UnimodalSpeed, RisesThenFalls) {
  const UnimodalSpeed f(50.0, 200.0, 1e5, 1e6, 3.0, 1e8);
  EXPECT_LT(f.speed(10.0), f.speed(1e5));       // rising part
  EXPECT_GT(f.speed(1e5), f.speed(5e6));        // falling part
  EXPECT_GT(f.speed(5e6), f.speed(5e7));        // monotone decay
}

TEST(UnimodalSpeed, PeakNearConfiguredLocation) {
  const UnimodalSpeed f(50.0, 200.0, 1e5, 1e6, 3.0, 1e8);
  // The decay term barely bites at x_peak when decay_x0 >> x_peak.
  EXPECT_NEAR(f.speed(1e5), 200.0, 2.0);
}

TEST(SteppedSpeed, PlateausAndCliffs) {
  std::vector<SteppedSpeed::Step> steps;
  steps.push_back({1e4, 80.0, 1e3});
  steps.push_back({1e6, 5.0, 1e5});
  const SteppedSpeed f(100.0, std::move(steps), 1e7);
  EXPECT_NEAR(f.speed(100.0), 100.0, 1.0);   // first plateau
  EXPECT_NEAR(f.speed(2e5), 80.0, 1.0);      // second plateau
  EXPECT_NEAR(f.speed(5e6), 5.0, 0.5);       // after the paging cliff
}

TEST(SteppedSpeed, RejectsUnorderedSteps) {
  std::vector<SteppedSpeed::Step> rising;
  rising.push_back({1e4, 80.0, 1e3});
  rising.push_back({1e6, 90.0, 1e5});  // plateau rises: invalid
  EXPECT_THROW(SteppedSpeed(100.0, std::move(rising), 1e7),
               std::invalid_argument);
  std::vector<SteppedSpeed::Step> backwards;
  backwards.push_back({1e6, 80.0, 1e3});
  backwards.push_back({1e4, 40.0, 1e3});  // positions out of order
  EXPECT_THROW(SteppedSpeed(100.0, std::move(backwards), 1e7),
               std::invalid_argument);
}

TEST(ExpDecaySpeed, MatchesExponential) {
  const ExpDecaySpeed f(100.0, 1000.0, 1e5);
  EXPECT_DOUBLE_EQ(f.speed(0.0), 100.0);
  EXPECT_NEAR(f.speed(1000.0), 100.0 / std::exp(1.0), 1e-9);
}

TEST(ScaledSpeed, ScalesUniformly) {
  auto base = std::make_shared<LinearDecaySpeed>(100.0, 1e6);
  const ScaledSpeed half(base, 0.5);
  EXPECT_DOUBLE_EQ(half.speed(0.0), 50.0);
  EXPECT_DOUBLE_EQ(half.speed(5e5), 25.0);
  EXPECT_DOUBLE_EQ(half.max_size(), 1e6);
}

TEST(GranularSpeed, PreservesExecutionTime) {
  auto base = std::make_shared<PowerDecaySpeed>(150.0, 1e5, 1.2, 1e8);
  const double k = 3000.0;  // elements per row
  const GranularSpeed rows(base, k);
  for (const double r : {1.0, 10.0, 500.0, 2e4}) {
    EXPECT_NEAR(rows.time(r), base->time(r * k), 1e-9 * base->time(r * k));
  }
  EXPECT_DOUBLE_EQ(rows.max_size(), base->max_size() / k);
}

TEST(GranularSpeedView, MatchesOwningWrapper) {
  const PowerDecaySpeed base(150.0, 1e5, 1.2, 1e8);
  const GranularSpeedView view(base, 128.0);
  EXPECT_DOUBLE_EQ(view.speed(100.0), base.speed(12800.0) / 128.0);
}

TEST(ShapeRequirement, HoldsForEveryFamilyInstance) {
  for (const auto& ensemble : fpm::test::all_ensembles(4)) {
    for (std::size_t i = 0; i < ensemble.owned.size(); ++i) {
      EXPECT_TRUE(satisfies_shape_requirement(*ensemble.owned[i]))
          << ensemble.name << " curve " << i;
    }
  }
}

TEST(ShapeRequirement, DetectsViolations) {
  // A superlinearly growing speed has an increasing ratio, so some lines
  // through the origin cross the graph twice — the check must fail.
  class Violator final : public SpeedFunction {
   public:
    double speed(double x) const override { return 1.0 + x * x; }
    double max_size() const override { return 1e6; }
  } v;
  EXPECT_FALSE(satisfies_shape_requirement(v));
}

TEST(DefaultIntersect, AgreesWithClosedFormsAcrossFamilies) {
  // The generic ratio-bisection must match each family's own geometry:
  // verify c·x == speed(x) at the returned point.
  for (const auto& ensemble : fpm::test::all_ensembles(3)) {
    for (const auto& f : ensemble.owned) {
      for (const double frac : {0.9, 0.5, 0.1, 0.01}) {
        // A slope that crosses inside the range: pick from the ratio at a
        // point well inside the domain.
        const double x_ref = f->max_size() * frac;
        const double c = f->ratio(x_ref);
        const double x = f->intersect(c);
        EXPECT_NEAR(c * x, f->speed(x),
                    1e-6 * std::max(1.0, f->speed(x)))
            << ensemble.name;
      }
    }
  }
}

TEST(DefaultIntersect, MonotoneInSlope) {
  const UnimodalSpeed f(50.0, 200.0, 1e5, 1e6, 3.0, 1e8);
  double prev = f.intersect(1e-6);
  for (double c = 1e-5; c < 1.0; c *= 10.0) {
    const double x = f.intersect(c);
    EXPECT_LE(x, prev) << "slope " << c;
    prev = x;
  }
}

TEST(ExecutionTime, NonDecreasingUnderShapeRequirement) {
  for (const auto& ensemble : fpm::test::all_ensembles(3)) {
    for (const auto& f : ensemble.owned) {
      double prev = 0.0;
      for (double x = 1.0; x < f->max_size(); x *= 4.0) {
        const double t = f->time(x);
        EXPECT_GE(t, prev) << ensemble.name << " at x=" << x;
        prev = t;
      }
    }
  }
}

}  // namespace
}  // namespace fpm::core
