// Warm-started partitioning: a PartitionHint must never change the answer —
// only the search cost. Covers bit-identity for every registry algorithm
// across drifting n, perturbed models, and deliberately wrong hints; the
// hit/stale classification and its metrics; the cost advantage of a good
// hint; the server's per-fingerprint hint store; and the batched SoA
// kernel toggle.
//
// The constant ensemble is deliberately absent from the hint sweeps: with
// piecewise-constant speeds the optimum can land exactly on an integer, and
// two *valid* converged brackets may then legitimately disagree about the
// boundary element. Every other family has strictly varying curves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled.hpp"
#include "core/fpm.hpp"
#include "core/server.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"

namespace fpm::core {
namespace {

using fpm::test::Ensemble;

/// Hint-sweep families: every non-constant ensemble plus the mixed one.
std::vector<Ensemble> hint_ensembles(std::size_t p) {
  std::vector<Ensemble> out;
  for (Ensemble& e : fpm::test::all_ensembles(p))
    if (e.name != "constant") out.push_back(std::move(e));
  out.push_back(fpm::test::mixed_ensemble());
  return out;
}

PartitionHint hint_from(const PartitionResult& result, std::int64_t n,
                        std::uint64_t fingerprint) {
  PartitionHint hint;
  hint.slope = result.stats.final_slope;
  hint.n = n;
  hint.fingerprint = fingerprint;
  hint.baseline_iterations = result.stats.iterations;
  hint.counts = result.distribution.counts;
  return hint;
}

TEST(WarmStart, BitIdenticalAcrossRegistryOnDriftingN) {
  constexpr std::int64_t kBase = 1'000'003;
  const std::vector<std::int64_t> drifts{-250'000, -37, -1, 0,
                                         1,        23,  4'001, 250'000};
  for (const Ensemble& e : hint_ensembles(6)) {
    const SpeedList speeds = e.list();
    const std::uint64_t fp = CompiledSpeedList::fingerprint_of(speeds);
    for (const std::string& id : partitioner_registry().ids()) {
      PartitionPolicy cold_policy;
      cold_policy.algorithm = id;
      const PartitionResult seed = partition(speeds, kBase, cold_policy);
      const PartitionHint hint = hint_from(seed, kBase, fp);
      for (const std::int64_t drift : drifts) {
        const std::int64_t n = kBase + drift;
        const PartitionResult cold = partition(speeds, n, cold_policy);
        PartitionPolicy warm_policy = cold_policy;
        warm_policy.hint = hint;
        const PartitionResult warm = partition(speeds, n, warm_policy);
        EXPECT_EQ(warm.distribution.counts, cold.distribution.counts)
            << e.name << " " << id << " n=" << n;
      }
    }
  }
}

TEST(WarmStart, BitIdenticalWhenModelsDriftUnderTheHint) {
  // A hint learned on one model set applied to a slightly different one —
  // the rebalancer's situation every round (fingerprint 0: no staleness
  // check, the verified bracket alone decides).
  constexpr std::int64_t kN = 600'000;
  const Ensemble before = fpm::test::linear_ensemble(6, 4.0e8);
  const Ensemble after = fpm::test::linear_ensemble(6, 4.3e8);
  const SpeedList drifted = after.list();
  for (const std::string& id : partitioner_registry().ids()) {
    PartitionPolicy cold_policy;
    cold_policy.algorithm = id;
    const PartitionResult seed = partition(before.list(), kN, cold_policy);
    const PartitionResult cold = partition(drifted, kN, cold_policy);
    PartitionPolicy warm_policy = cold_policy;
    warm_policy.hint = hint_from(seed, kN, 0);
    const PartitionResult warm = partition(drifted, kN, warm_policy);
    EXPECT_EQ(warm.distribution.counts, cold.distribution.counts) << id;
  }
}

TEST(WarmStart, WrongHintsNeverChangeTheAnswer) {
  constexpr std::int64_t kN = 750'011;
  const Ensemble e = fpm::test::mixed_ensemble();
  const SpeedList speeds = e.list();
  const std::uint64_t fp = CompiledSpeedList::fingerprint_of(speeds);
  struct Case {
    const char* label;
    double slope;
    std::uint64_t fingerprint;
    WarmStart expected;
  };
  const std::vector<Case> cases{
      {"absurdly-high", 1e300, fp, WarmStart::Stale},
      {"absurdly-low", 1e-300, fp, WarmStart::Stale},
      {"wrong-fingerprint", 0.0 /* filled below */, fp ^ 0xdeadbeefULL,
       WarmStart::Stale},
      {"nan", std::numeric_limits<double>::quiet_NaN(), fp, WarmStart::None},
      {"infinite", std::numeric_limits<double>::infinity(), fp,
       WarmStart::None},
      {"negative", -3.5, fp, WarmStart::None},
      {"zero", 0.0, fp, WarmStart::None},
  };
  for (const std::string& id : partitioner_registry().ids()) {
    PartitionPolicy cold_policy;
    cold_policy.algorithm = id;
    const PartitionResult cold = partition(speeds, kN, cold_policy);
    for (const Case& c : cases) {
      PartitionHint hint;
      hint.slope = c.slope;
      if (std::string(c.label) == "wrong-fingerprint")
        hint.slope = cold.stats.final_slope;  // right slope, wrong models
      hint.n = kN;
      hint.fingerprint = c.fingerprint;
      PartitionPolicy warm_policy = cold_policy;
      warm_policy.hint = hint;
      const PartitionResult warm = partition(speeds, kN, warm_policy);
      EXPECT_EQ(warm.distribution.counts, cold.distribution.counts)
          << id << " " << c.label;
      EXPECT_EQ(warm.stats.warmstart, c.expected) << id << " " << c.label;
    }
  }
}

TEST(WarmStart, GoodHintHitsAndCostsNoMoreEvals) {
  constexpr std::int64_t kN = 900'007;
  for (const Ensemble& e : hint_ensembles(6)) {
    const SpeedList speeds = e.list();
    const std::uint64_t fp = CompiledSpeedList::fingerprint_of(speeds);
    for (const std::string& id : partitioner_registry().ids()) {
      if (id == kAlgorithmBounded) continue;  // final_slope is the residual
                                              // round's, not the problem's
      PartitionPolicy cold_policy;
      cold_policy.algorithm = id;
      const PartitionResult cold = partition(speeds, kN, cold_policy);
      PartitionPolicy warm_policy = cold_policy;
      warm_policy.hint = hint_from(cold, kN, fp);
      const PartitionResult warm = partition(speeds, kN, warm_policy);
      EXPECT_EQ(warm.distribution.counts, cold.distribution.counts)
          << e.name << " " << id;
      EXPECT_EQ(warm.stats.warmstart, WarmStart::Hit) << e.name << " " << id;
      EXPECT_LE(warm.stats.speed_evals, cold.stats.speed_evals)
          << e.name << " " << id;
      EXPECT_LE(warm.stats.iterations, cold.stats.iterations)
          << e.name << " " << id;
      EXPECT_EQ(warm.stats.iterations_saved,
                cold.stats.iterations - warm.stats.iterations)
          << e.name << " " << id;
    }
  }
}

TEST(WarmStart, MetricsClassifyHitsAndStaleness) {
  constexpr std::int64_t kN = 512'009;
  const Ensemble e = fpm::test::power_ensemble(5);
  const SpeedList speeds = e.list();
  const std::uint64_t fp = CompiledSpeedList::fingerprint_of(speeds);
  auto& hits = obs::metrics().counter(obs::names::kPartitionWarmstartHits);
  auto& stale = obs::metrics().counter(obs::names::kPartitionWarmstartStale);
  auto& saved =
      obs::metrics().counter(obs::names::kPartitionWarmstartIterationsSaved);

  const PartitionResult cold = partition(speeds, kN);
  PartitionPolicy good;
  good.hint = hint_from(cold, kN, fp);
  const std::int64_t hits0 = hits.value();
  const std::int64_t stale0 = stale.value();
  const std::int64_t saved0 = saved.value();
  const PartitionResult warm = partition(speeds, kN + 17, good);
  EXPECT_EQ(warm.stats.warmstart, WarmStart::Hit);
  EXPECT_EQ(hits.value(), hits0 + 1);
  EXPECT_EQ(stale.value(), stale0);
  EXPECT_EQ(saved.value(), saved0 + warm.stats.iterations_saved);

  PartitionPolicy bad = good;
  bad.hint->fingerprint = fp ^ 1;
  const PartitionResult stale_run = partition(speeds, kN + 17, bad);
  EXPECT_EQ(stale_run.stats.warmstart, WarmStart::Stale);
  EXPECT_EQ(stale.value(), stale0 + 1);
  EXPECT_EQ(hits.value(), hits0 + 1);
  EXPECT_EQ(stale_run.distribution.counts, warm.distribution.counts);
}

TEST(WarmStart, ServerWarmStartsNearMissTraffic) {
  constexpr std::int64_t kBase = 820'001;
  const Ensemble e = fpm::test::power_ensemble(6);
  const SpeedList speeds = e.list();
  auto& hits = obs::metrics().counter(obs::names::kPartitionWarmstartHits);

  ServerOptions opts;
  opts.threads = 1;
  PartitionServer server(opts);
  ASSERT_EQ(server.serve(speeds, kBase).distribution.counts,
            partition(speeds, kBase).distribution.counts);
  const std::int64_t hits0 = hits.value();
  for (std::int64_t drift : {3, 7, 19, 101}) {
    const std::int64_t n = kBase + drift;
    const PartitionResult served = server.serve(speeds, n);
    EXPECT_EQ(served.distribution.counts,
              partition(speeds, n).distribution.counts)
        << n;
    EXPECT_EQ(served.stats.warmstart, WarmStart::Hit) << n;
  }
  EXPECT_EQ(hits.value(), hits0 + 4);

  // Repeats of an already-served n are cache hits: no new solve, no new
  // warm-start classification.
  const std::int64_t hits_after = hits.value();
  server.serve(speeds, kBase + 3);
  EXPECT_EQ(hits.value(), hits_after);

  // With warm-starting off the server still answers identically, cold.
  ServerOptions off = opts;
  off.warm_start = false;
  PartitionServer cold_server(off);
  cold_server.serve(speeds, kBase);
  const PartitionResult cold_served = cold_server.serve(speeds, kBase + 19);
  EXPECT_EQ(cold_served.stats.warmstart, WarmStart::None);
  EXPECT_EQ(cold_served.distribution.counts,
            partition(speeds, kBase + 19).distribution.counts);
}

TEST(WarmStart, CallerSuppliedHintWinsOverTheServerStore) {
  const Ensemble e = fpm::test::linear_ensemble(4);
  const SpeedList speeds = e.list();
  PartitionServer server(ServerOptions{.threads = 1});
  const PartitionResult seed = server.serve(speeds, 300'000);
  PartitionPolicy policy;
  policy.hint = hint_from(seed, 300'000,
                          CompiledSpeedList::fingerprint_of(speeds));
  const PartitionResult served = server.serve(speeds, 300'021, policy);
  EXPECT_EQ(served.stats.warmstart, WarmStart::Hit);
  EXPECT_EQ(served.distribution.counts,
            partition(speeds, 300'021).distribution.counts);
}

TEST(WarmStart, BatchedKernelToggleIsBitIdentical) {
  constexpr std::int64_t kN = 1'000'003;
  ASSERT_TRUE(batched_kernels_enabled());
  // Scalar batch mode: the SIMD lanes are only ULP-equivalent (the
  // equivalence gate lives in tests/test_simd.cpp); this test pins the
  // batched-vs-per-entry bit-identity contract of the scalar kernels.
  const bool simd_was = simd_kernels_enabled();
  set_simd_kernels(false);
  std::vector<Ensemble> ensembles = fpm::test::all_ensembles(6);
  ensembles.push_back(fpm::test::mixed_ensemble());
  for (const Ensemble& e : ensembles) {
    const SpeedList speeds = e.list();
    for (const std::string& id : partitioner_registry().ids()) {
      PartitionPolicy policy;
      policy.algorithm = id;
      const PartitionResult batched = partition(speeds, kN, policy);
      set_batched_kernels(false);
      const PartitionResult scalar = partition(speeds, kN, policy);
      set_batched_kernels(true);
      EXPECT_EQ(batched.distribution.counts, scalar.distribution.counts)
          << e.name << " " << id;
      EXPECT_EQ(batched.stats.iterations, scalar.stats.iterations)
          << e.name << " " << id;
      EXPECT_EQ(batched.stats.speed_evals, scalar.stats.speed_evals)
          << e.name << " " << id;
      EXPECT_EQ(batched.stats.final_slope, scalar.stats.final_slope)
          << e.name << " " << id;
    }
  }
  set_simd_kernels(simd_was);
}

TEST(WarmStart, BatchPlanCoversClosedFormFamilies) {
  // Unwrapped constant/linear/power/exp entries ride the SoA lanes, and the
  // mixed ensemble's well-behaved unimodal and stepped members now ride the
  // vector bisection lanes too — the whole ensemble is batched.
  const Ensemble closed = fpm::test::power_ensemble(5);
  const CompiledSpeedList compiled_closed =
      CompiledSpeedList::compile(closed.list());
  EXPECT_EQ(compiled_closed.batched_entries(), 5u);

  const Ensemble mixed = fpm::test::mixed_ensemble();
  const CompiledSpeedList compiled_mixed =
      CompiledSpeedList::compile(mixed.list());
  EXPECT_EQ(compiled_mixed.batched_entries(), 5u);
}

}  // namespace
}  // namespace fpm::core
