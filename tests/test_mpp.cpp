// Tests for the message-passing runtime and the truly distributed striped
// multiplication: point-to-point ordering, collectives, error propagation,
// and distributed-vs-serial numerical identity.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "linalg/kernels.hpp"
#include "mpp/distributed_mm.hpp"
#include "mpp/runtime.hpp"

namespace fpm::mpp {
namespace {

TEST(Runtime, RanksSeeTheirIdentity) {
  std::atomic<int> sum{0};
  run_parallel(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(Runtime, SendRecvDeliversPayload) {
  run_parallel(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.5, 2.5, 3.5});
    } else {
      const auto got = comm.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
    }
  });
}

TEST(Runtime, FifoOrderPerSourceAndTag) {
  run_parallel(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (double v = 0.0; v < 32.0; v += 1.0)
        comm.send(1, 1, std::vector<double>{v});
    } else {
      for (double v = 0.0; v < 32.0; v += 1.0) {
        const auto got = comm.recv(0, 1);
        ASSERT_EQ(got.size(), 1u);
        EXPECT_DOUBLE_EQ(got[0], v);
      }
    }
  });
}

TEST(Runtime, TagsDoNotCross) {
  run_parallel(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 2, std::vector<double>{22.0});
      comm.send(1, 1, std::vector<double>{11.0});
    } else {
      // Receive in the opposite order of sending: tags must select.
      EXPECT_DOUBLE_EQ(comm.recv(0, 1)[0], 11.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 2)[0], 22.0);
    }
  });
}

TEST(Runtime, BarrierSynchronizes) {
  // Phase counter: every rank increments before the barrier; after it,
  // every rank must observe the full count.
  std::atomic<int> before{0};
  run_parallel(6, [&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(before.load(), 6);
    comm.barrier();  // reusable (generation counting)
  });
}

TEST(Runtime, BroadcastFromEveryRoot) {
  run_parallel(3, [](Communicator& comm) {
    for (int root = 0; root < 3; ++root) {
      std::vector<double> data;
      if (comm.rank() == root) data = {static_cast<double>(root), 42.0};
      const auto got = comm.broadcast(root, data);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_DOUBLE_EQ(got[0], root);
      EXPECT_DOUBLE_EQ(got[1], 42.0);
    }
  });
}

TEST(Runtime, GatherCollectsByRank) {
  run_parallel(4, [](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() * 10)};
    const auto all = comm.gather(2, mine);
    if (comm.rank() == 2) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(all[r][0], r * 10.0);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Runtime, ExceptionsPropagateAndUnblockPeers) {
  // Rank 1 throws while rank 0 is blocked in recv: the run must terminate
  // and rethrow the original error.
  EXPECT_THROW(run_parallel(2,
                            [](Communicator& comm) {
                              if (comm.rank() == 0) {
                                comm.recv(1, 9);  // never satisfied
                              } else {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
}

TEST(Runtime, ValidatesArguments) {
  EXPECT_THROW(run_parallel(0, [](Communicator&) {}), std::invalid_argument);
  run_parallel(2, [](Communicator& comm) {
    EXPECT_THROW(comm.send(5, 0, std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(comm.send(-1, 0, std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(comm.recv(-1, 0), std::invalid_argument);
    EXPECT_THROW(comm.recv(2, 0), std::invalid_argument);
    EXPECT_THROW(comm.broadcast(9, std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(comm.gather(-3, std::vector<double>{}),
                 std::invalid_argument);
  });
}

TEST(Runtime, UnsatisfiableSelfRecvIsRejectedNotDeadlocked) {
  run_parallel(2, [](Communicator& comm) {
    // No queued self-message exists, and no other thread can ever produce
    // one: blocking would deadlock the rank forever.
    EXPECT_THROW(comm.recv(comm.rank(), 4), std::invalid_argument);
    // A buffered self-send makes the same recv legitimate.
    comm.send(comm.rank(), 4, std::vector<double>{9.0});
    EXPECT_DOUBLE_EQ(comm.recv(comm.rank(), 4)[0], 9.0);
  });
}

TEST(DistributedMm, MatchesSerialProductExactly) {
  for (const auto& rows : {std::vector<std::int64_t>{40},
                           {13, 27},
                           {10, 14, 16},
                           {1, 2, 3, 34},
                           {0, 20, 0, 20}}) {
    const std::int64_t n =
        std::accumulate(rows.begin(), rows.end(), std::int64_t{0});
    const util::MatrixD a =
        linalg::random_matrix(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n), 5);
    const util::MatrixD b =
        linalg::random_matrix(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n), 6);
    const DistributedMmResult result = distributed_mm_abt(a, b, rows);
    const util::MatrixD serial = linalg::matmul_abt_naive(a, b);
    EXPECT_DOUBLE_EQ(util::max_abs_diff(result.c, serial), 0.0)
        << rows.size() << " ranks";
  }
}

TEST(DistributedMm, ReportsPerRankComputeTimes) {
  const std::vector<std::int64_t> rows{24, 24};
  const util::MatrixD a = linalg::random_matrix(48, 48, 7);
  const util::MatrixD b = linalg::random_matrix(48, 48, 8);
  const DistributedMmResult result = distributed_mm_abt(a, b, rows);
  ASSERT_EQ(result.compute_seconds.size(), 2u);
  for (const double t : result.compute_seconds) EXPECT_GT(t, 0.0);
}

TEST(DistributedMm, WorkMultiplierSlowsARank) {
  const std::vector<std::int64_t> rows{32, 32};
  const util::MatrixD a = linalg::random_matrix(64, 64, 9);
  const util::MatrixD b = linalg::random_matrix(64, 64, 10);
  const std::vector<int> mult{1, 8};
  const DistributedMmResult result = distributed_mm_abt(a, b, rows, mult);
  // Numerics unaffected...
  EXPECT_DOUBLE_EQ(
      util::max_abs_diff(result.c, linalg::matmul_abt_naive(a, b)), 0.0);
  // ...but rank 1 measurably slower.
  EXPECT_GT(result.compute_seconds[1], 3.0 * result.compute_seconds[0]);
}

TEST(DistributedMm, ValidatesArguments) {
  const util::MatrixD sq = linalg::random_matrix(8, 8, 1);
  const util::MatrixD rect = linalg::random_matrix(8, 4, 1);
  EXPECT_THROW(distributed_mm_abt(rect, rect, std::vector<std::int64_t>{8}),
               std::invalid_argument);
  EXPECT_THROW(distributed_mm_abt(sq, sq, std::vector<std::int64_t>{4}),
               std::invalid_argument);
  EXPECT_THROW(distributed_mm_abt(sq, sq, std::vector<std::int64_t>{}),
               std::invalid_argument);
  EXPECT_THROW(distributed_mm_abt(sq, sq, std::vector<std::int64_t>{8},
                                  std::vector<int>{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpm::mpp
