// Tests for the truly distributed LU factorization: bit-identity with the
// serial factorization across ownership maps, block sizes and rank counts;
// VGB-driven ownership; singularity handling; heterogeneity emulation.
#include <gtest/gtest.h>

#include "apps/vgb.hpp"
#include "linalg/kernels.hpp"
#include "mpp/distributed_lu.hpp"
#include "simcluster/presets.hpp"

namespace fpm::mpp {
namespace {

void expect_matches_serial(const util::MatrixD& a, std::size_t block,
                           std::span<const int> owners, int ranks,
                           const std::string& context) {
  const DistributedLuResult dist = distributed_lu(a, block, owners, ranks);
  ASSERT_TRUE(dist.nonsingular) << context;
  util::MatrixD serial = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(linalg::lu_factor(serial, pivots)) << context;
  EXPECT_EQ(dist.pivots, pivots) << context;
  EXPECT_DOUBLE_EQ(util::max_abs_diff(dist.lu, serial), 0.0) << context;
}

TEST(DistributedLu, SingleRankMatchesSerial) {
  const util::MatrixD a = linalg::random_matrix(24, 24, 1);
  const std::vector<int> owners(3, 0);  // 24/8 = 3 blocks, all on rank 0
  expect_matches_serial(a, 8, owners, 1, "single rank");
}

TEST(DistributedLu, RoundRobinOwnershipMatchesSerial) {
  for (const int ranks : {2, 3, 4}) {
    for (const std::size_t block : {4u, 8u, 16u}) {
      const std::size_t n = 48;
      const util::MatrixD a = linalg::random_matrix(n, n, 100 + ranks);
      const std::size_t nb = (n + block - 1) / block;
      std::vector<int> owners(nb);
      for (std::size_t i = 0; i < nb; ++i)
        owners[i] = static_cast<int>(i % static_cast<std::size_t>(ranks));
      expect_matches_serial(a, block, owners, ranks,
                            "rr ranks=" + std::to_string(ranks) +
                                " b=" + std::to_string(block));
    }
  }
}

TEST(DistributedLu, RaggedFinalBlockMatchesSerial) {
  const util::MatrixD a = linalg::random_matrix(37, 37, 5);  // 37 = 4*8 + 5
  const std::vector<int> owners{1, 0, 2, 0, 1};
  expect_matches_serial(a, 8, owners, 3, "ragged");
}

TEST(DistributedLu, VgbOwnershipMatchesSerial) {
  // The production pairing: owners from the Variable Group Block
  // distribution of the simulated cluster, execution on the mpp runtime.
  auto cluster = sim::make_table2_cluster();
  core::SpeedList models;
  for (std::size_t i = 0; i < 4; ++i)
    models.push_back(&cluster.ground_truth(i, sim::kLu));
  apps::VgbOptions opts;
  opts.block = 8;
  const std::int64_t n = 64;
  const apps::VgbDistribution vgb =
      apps::variable_group_block(models, n, opts);
  const util::MatrixD a = linalg::random_matrix(
      static_cast<std::size_t>(n), static_cast<std::size_t>(n), 9);
  expect_matches_serial(a, 8, vgb.block_owner, 4, "vgb");
}

TEST(DistributedLu, DetectsSingularity) {
  util::MatrixD a(12, 12);  // column 5 entirely zero
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      a(i, j) = (j == 5) ? 0.0 : 1.0 + double(i * 12 + j) * ((i + j) % 3);
  const std::vector<int> owners{0, 1, 0};
  const DistributedLuResult dist = distributed_lu(a, 4, owners, 2);
  EXPECT_FALSE(dist.nonsingular);
}

TEST(DistributedLu, WorkMultiplierSlowsARankWithoutChangingResults) {
  const util::MatrixD a = linalg::random_matrix(40, 40, 12);
  const std::vector<int> owners{0, 1, 0, 1, 0};
  const std::vector<int> mult{1, 6};
  const DistributedLuResult dist = distributed_lu(a, 8, owners, 2, mult);
  ASSERT_TRUE(dist.nonsingular);
  util::MatrixD serial = a;
  std::vector<std::size_t> pivots;
  linalg::lu_factor(serial, pivots);
  EXPECT_DOUBLE_EQ(util::max_abs_diff(dist.lu, serial), 0.0);
  EXPECT_GT(dist.compute_seconds[1], dist.compute_seconds[0]);
}

TEST(DistributedLu, ValidatesArguments) {
  const util::MatrixD sq = linalg::random_matrix(16, 16, 1);
  const util::MatrixD rect = linalg::random_matrix(16, 8, 1);
  const std::vector<int> owners{0, 0};
  EXPECT_THROW(distributed_lu(rect, 8, owners, 1), std::invalid_argument);
  EXPECT_THROW(distributed_lu(sq, 0, owners, 1), std::invalid_argument);
  EXPECT_THROW(distributed_lu(sq, 8, std::vector<int>{0}, 1),
               std::invalid_argument);
  EXPECT_THROW(distributed_lu(sq, 8, std::vector<int>{0, 5}, 2),
               std::invalid_argument);
  EXPECT_THROW(distributed_lu(sq, 8, owners, 1, std::vector<int>{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpm::mpp
