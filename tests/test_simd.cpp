// Equivalence and edge-case coverage for the vectorized batch-intersect
// kernels (core/detail/simd.hpp wired through CompiledSpeedList):
//
//  * the ULP-toleranced SIMD-vs-scalar gate on intersect_all, with the
//    virtual SpeedFunction path as the oracle,
//  * bit-identity guarantees that survive the toggle (per-entry intersect,
//    scalar batch mode, the piecewise vector scan),
//  * speed_kernels.hpp edge cases near the punt boundaries: exp-decay's
//    1e-280 underflow floor plateau, power-decay's beyond-2^256 delegation
//    to generic_intersect (and its bracket-saturation tally), piecewise
//    tail intersects across rising / flat / falling final segments,
//  * the registry-wide equivalence gate (exact sum to n, makespan within
//    fine-tune tolerance) for every algorithm with SIMD on,
//  * the O(p)-parallel intersect_all path and the synthetic fleet
//    generator's determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/detail/parallel.hpp"
#include "core/detail/simd.hpp"
#include "core/detail/speed_kernels.hpp"
#include "core/detail/search_state.hpp"
#include "core/fleetgen.hpp"
#include "core/fpm.hpp"

namespace fpm {
namespace {

using core::CompiledSpeedList;

/// RAII guard that restores auto backend dispatch (and the SIMD toggle it
/// re-enables) when a test forced a specific variant.
class BackendGuard {
 public:
  BackendGuard() : was_enabled_(core::simd_kernels_enabled()) {}
  ~BackendGuard() {
    core::force_simd_backend("auto");
    core::set_simd_kernels(was_enabled_);
  }

 private:
  bool was_enabled_;
};

/// The compiled-in variants this CPU can actually run.
std::vector<const core::detail::simd::SimdKernels*> runnable_variants() {
  std::vector<const core::detail::simd::SimdKernels*> out;
  for (const auto* k : core::detail::simd::compiled_simd_variants())
    if (core::detail::simd::simd_variant_supported(*k)) out.push_back(k);
  return out;
}

/// RAII guard around the process-wide SIMD kernel toggle.
class SimdToggle {
 public:
  explicit SimdToggle(bool enabled) : old_(core::simd_kernels_enabled()) {
    core::set_simd_kernels(enabled);
  }
  ~SimdToggle() { core::set_simd_kernels(old_); }

 private:
  bool old_;
};

/// RAII guard around the parallel-sweep threshold.
class ThresholdGuard {
 public:
  explicit ThresholdGuard(std::size_t t)
      : old_(core::parallel_intersect_threshold()) {
    core::set_parallel_intersect_threshold(t);
  }
  ~ThresholdGuard() { core::set_parallel_intersect_threshold(old_); }

 private:
  std::size_t old_;
};

constexpr double kUlpTolerance = 1e-12;  // relative, generous vs ~1e-15 seen

double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(b), 1e-300);
  return std::abs(a - b) / denom;
}

/// An unknown SpeedFunction subclass: compiles to a Generic entry, so every
/// intersect goes through the generic bisection of speed_kernels.hpp.
class OpaqueConstantSpeed final : public core::SpeedFunction {
 public:
  OpaqueConstantSpeed(double s0, double max_size) : s0_(s0), max_(max_size) {}
  double speed(double) const override { return s0_; }
  double max_size() const override { return max_; }

 private:
  double s0_;
  double max_;
};

std::vector<double> sweep_slopes() {
  std::vector<double> slopes;
  for (int i = -6; i <= 6; i += 2) slopes.push_back(std::pow(10.0, i));
  return slopes;
}

TEST(Simd, IntersectAllMatchesVirtualOracleWithinTolerance) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(512, 7);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  SimdToggle simd(true);
  for (const double slope : sweep_slopes()) {
    c.intersect_all(slope, xs);
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_LE(rel_diff(xs[i], list[i]->intersect(slope)), kUlpTolerance)
          << "entry " << i << " slope " << slope;
    }
  }
}

TEST(Simd, ScalarToggleRestoresBitIdentity) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(256, 11);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  SimdToggle scalar(false);
  for (const double slope : sweep_slopes()) {
    c.intersect_all(slope, xs);
    for (std::size_t i = 0; i < list.size(); ++i)
      EXPECT_EQ(xs[i], list[i]->intersect(slope))
          << "entry " << i << " slope " << slope;
  }
}

TEST(Simd, PerEntryIntersectBitIdenticalRegardlessOfToggle) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(128, 3);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  for (const bool enabled : {true, false}) {
    SimdToggle toggle(enabled);
    for (const double slope : sweep_slopes())
      for (std::size_t i = 0; i < list.size(); ++i)
        EXPECT_EQ(c.intersect(i, slope), list[i]->intersect(slope))
            << "entry " << i << " slope " << slope << " simd " << enabled;
  }
}

// --- speed_kernels.hpp edge cases, against the virtual oracle. ----------

TEST(Simd, ExpDecayUnderflowFloorPlateau) {
  // Deep in the tail the curve underflows the 1e-280 floor: the crossing
  // is the plateau point floor/slope for both paths. Several lambdas so a
  // whole batch lane runs the vector kernel.
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  for (int i = 0; i < 8; ++i)
    owned.push_back(std::make_shared<core::ExpDecaySpeed>(
        100.0 + i, 1.0 + 0.125 * i, 1e6));
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  // Slopes shallow enough that the root lands far beyond the floor
  // crossing (s0·e^-x/lambda < 1e-280 at the line), plus one regular one.
  for (const double slope : {1e-290, 1e-300, 0.5}) {
    SimdToggle simd(true);
    c.intersect_all(slope, xs);
    for (std::size_t i = 0; i < list.size(); ++i) {
      const double oracle = list[i]->intersect(slope);
      EXPECT_LE(rel_diff(xs[i], oracle), kUlpTolerance)
          << "entry " << i << " slope " << slope;
      if (slope < 1e-285) {
        // On the plateau the answer is exactly floor/slope — one IEEE
        // division in both kernels, so exact equality is expected.
        EXPECT_EQ(xs[i], oracle) << "entry " << i << " slope " << slope;
      }
    }
  }
}

TEST(Simd, PowerDecayBeyondDelegationThreshold) {
  // A slope so shallow the closed-form root exceeds max_size·2^256: the
  // scalar kernel delegates to generic_intersect; the vector kernel must
  // punt (NaN sentinel) so the same scalar delegation decides. Results are
  // therefore exactly equal, and the generic bracket saturates (root far
  // beyond max_size·2^256), which the tally must record.
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  for (int i = 0; i < 8; ++i)
    owned.push_back(std::make_shared<core::PowerDecaySpeed>(
        100.0 + i, 10.0, 0.001 + 0.0001 * i, 1e6));
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  const double slope = 1e-120;  // root ~ e^280, max_size·2^256 ~ 1e83

  std::int64_t& tally = core::detail::bracket_saturation_tally();
  const std::int64_t before = tally;
  SimdToggle simd(true);
  c.intersect_all(slope, xs);
  EXPECT_GT(tally, before) << "delegated brackets should saturate";
  for (std::size_t i = 0; i < list.size(); ++i)
    EXPECT_EQ(xs[i], list[i]->intersect(slope)) << "entry " << i;
}

TEST(Simd, PiecewiseTailIntersectAcrossFinalSegmentShapes) {
  // >= 16 breakpoints engages the vectorized segment scan. Three final
  // segment shapes — rising (allowed while s/x still falls), flat, and
  // falling — exercised at slopes crossing the head, the interior, and the
  // extrapolated tail.
  const auto make = [](double last_step) {
    std::vector<core::SpeedPoint> pts;
    double x = 1e3, s = 500.0;
    for (int j = 0; j < 19; ++j) {
      pts.push_back({x, s});
      x *= 1.9;
      s *= 0.93;
    }
    pts.push_back({x, s * last_step});
    return std::make_shared<core::PiecewiseLinearSpeed>(std::move(pts));
  };
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned{
      make(1.2),  // rising final segment (x grows 1.9x, speed only 1.2x)
      make(1.0),  // flat
      make(0.6),  // falling
  };
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  for (const double slope : {1.0, 1e-2, 1e-4, 1e-6, 1e-9}) {
    for (const bool enabled : {true, false}) {
      SimdToggle toggle(enabled);
      c.intersect_all(slope, xs);
      for (std::size_t i = 0; i < list.size(); ++i) {
        // The vector scan picks the same segment as the binary search and
        // the segment solve is the same scalar arithmetic: bit-identical.
        EXPECT_EQ(xs[i], list[i]->intersect(slope))
            << "entry " << i << " slope " << slope << " simd " << enabled;
      }
    }
  }
}

// --- Registry-wide equivalence with SIMD on. ----------------------------

double makespan(const core::SpeedList& speeds,
                const std::vector<std::int64_t>& counts) {
  double worst = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] <= 0) continue;
    const double x = static_cast<double>(counts[i]);
    worst = std::max(worst, x / speeds[i]->speed(x));
  }
  return worst;
}

TEST(Simd, EveryRegistryAlgorithmEquivalentToScalarOracle) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(96, 5);
  const core::SpeedList list = fleet.list();
  const std::int64_t n = 40'000'000;
  for (const core::PartitionerInfo& info :
       core::partitioner_registry().entries()) {
    core::PartitionPolicy policy;
    policy.algorithm = info.id;
    core::PartitionResult oracle, simd;
    {
      SimdToggle off(false);
      oracle = core::partition(list, n, policy);
    }
    {
      SimdToggle on(true);
      simd = core::partition(list, n, policy);
    }
    EXPECT_EQ(simd.distribution.total(), n) << info.id;
    EXPECT_EQ(oracle.distribution.total(), n) << info.id;
    // Few-ULP slope differences may break integer ties differently, but
    // fine-tuning must land on an equally good makespan.
    EXPECT_LE(rel_diff(makespan(list, simd.distribution.counts),
                       makespan(list, oracle.distribution.counts)),
              1e-9)
        << info.id;
  }
}

// --- Parallel sweep path. -----------------------------------------------

TEST(Simd, ParallelSweepMatchesSerialSweep) {
  core::detail::set_lane_pool_threads(2);  // before the pool lazily starts
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(700, 13);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> serial(list.size()), parallel(list.size());
  for (const bool enabled : {true, false}) {
    SimdToggle toggle(enabled);
    for (const double slope : sweep_slopes()) {
      {
        ThresholdGuard serial_only(100'000);  // above p: serial path
        c.intersect_all(slope, serial);
      }
      {
        ThresholdGuard always(1);  // below p: parallel path
        c.intersect_all(slope, parallel);
      }
      // Chunks write disjoint ranges with the same kernels: the split must
      // be invisible in the output, bit for bit.
      EXPECT_EQ(serial, parallel) << "slope " << slope << " simd " << enabled;
    }
  }
}

TEST(Simd, ParallelSweepMigratesSaturationTally) {
  core::detail::set_lane_pool_threads(2);
  // Generic entries whose brackets saturate at this slope: the tally delta
  // must land on the calling thread even when pool workers ran the chunks.
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  for (int i = 0; i < 40; ++i)
    owned.push_back(std::make_shared<OpaqueConstantSpeed>(100.0 + i, 1.0));
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  const auto c = CompiledSpeedList::compile(list);
  ASSERT_EQ(c.batched_entries(), 0u);  // all Generic -> fallback lane
  std::vector<double> xs(list.size());
  ThresholdGuard always(1);
  std::int64_t& tally = core::detail::bracket_saturation_tally();
  const std::int64_t before = tally;
  c.intersect_all(1e-80, xs);  // 100 >= 1e-80·(2^256) never crosses
  EXPECT_EQ(tally - before, static_cast<std::int64_t>(list.size()));
}

// --- PartitionStats / SearchState plumbing. -----------------------------

TEST(Simd, SearchStateSnapshotsSaturationTally) {
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned{
      std::make_shared<OpaqueConstantSpeed>(100.0, 1.0),
      std::make_shared<OpaqueConstantSpeed>(50.0, 1.0)};
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  core::detail::SearchState state(list, 1000);
  EXPECT_EQ(state.bracket_saturations(), 0);
  // A follow-up solve under the same counters (the fine-tuning pattern)
  // that saturates must be visible in the snapshot delta.
  state.counted_speeds()[0]->intersect(1e-80);
  EXPECT_EQ(state.bracket_saturations(), 1);
}

TEST(Simd, PartitionStatsReportZeroSaturationsOnHealthyFleets) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(64, 9);
  const core::PartitionResult res = core::partition(fleet.list(), 1'000'000);
  EXPECT_EQ(res.stats.bracket_saturations, 0);
  EXPECT_EQ(res.distribution.total(), 1'000'000);
}

// --- Fleet generator. ---------------------------------------------------

TEST(Simd, FleetGeneratorIsDeterministicPerSeed) {
  const core::SyntheticFleet a = core::make_synthetic_fleet(333, 21);
  const core::SyntheticFleet b = core::make_synthetic_fleet(333, 21);
  const core::SyntheticFleet other = core::make_synthetic_fleet(333, 22);
  EXPECT_EQ(CompiledSpeedList::fingerprint_of(a.list()),
            CompiledSpeedList::fingerprint_of(b.list()));
  EXPECT_NE(CompiledSpeedList::fingerprint_of(a.list()),
            CompiledSpeedList::fingerprint_of(other.list()));
}

TEST(Simd, FleetGeneratorScalesToLargeP) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(4096, 1);
  ASSERT_EQ(fleet.owned.size(), 4096u);
  const auto c = CompiledSpeedList::compile(fleet.list());
  EXPECT_TRUE(c.fully_compiled());
  EXPECT_GT(c.batched_entries(), 3000u);  // closed-form families dominate
}

// --- Cross-backend equivalence. -----------------------------------------

TEST(Simd, EveryCompiledBackendMatchesScalarOracle) {
  const auto variants = runnable_variants();
  if (variants.empty()) GTEST_SKIP() << "no vector variants in this build";
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(512, 17);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  BackendGuard restore;
  for (const auto* k : variants) {
    SCOPED_TRACE(k->name);
    core::force_simd_backend(k->name);
    for (const double slope : sweep_slopes()) {
      c.intersect_all(slope, xs);
      for (std::size_t i = 0; i < list.size(); ++i)
        EXPECT_LE(rel_diff(xs[i], list[i]->intersect(slope)), kUlpTolerance)
            << "entry " << i << " slope " << slope;
    }
  }
}

TEST(Simd, UnimodalAndSteppedLanesMatchOracleOnEveryBackend) {
  // A fleet made purely of the new bisection lanes: 24 unimodal curves, 24
  // stepped curves with 1..4 steps, plus one stepped curve with more steps
  // than kMaxVecSteps (compile-time punt to the per-entry path). Shallow
  // slopes push some crossings to max_size, exercising the runtime punt.
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  for (int i = 0; i < 24; ++i)
    owned.push_back(std::make_shared<core::UnimodalSpeed>(
        10.0 + i, 120.0 + 3.0 * i, 1e4 * (1.0 + i % 5), 2e5 + 1e4 * i,
        1.2 + 0.05 * i, 5e6));
  for (int i = 0; i < 24; ++i) {
    std::vector<core::SteppedSpeed::Step> steps;
    double at = 3e3 * (1.0 + i % 3), to = 90.0 + i;
    for (int s = 0; s <= i % 4; ++s) {
      steps.push_back({at, to, 50.0 + 10.0 * s});
      at *= 7.0;
      to *= 0.55;
    }
    owned.push_back(
        std::make_shared<core::SteppedSpeed>(140.0 + i, std::move(steps), 8e6));
  }
  {
    std::vector<core::SteppedSpeed::Step> many;
    double at = 1e3, to = 200.0;
    for (int s = 0; s < 12; ++s) {
      many.push_back({at, to, 40.0});
      at *= 3.0;
      to *= 0.8;
    }
    owned.push_back(
        std::make_shared<core::SteppedSpeed>(250.0, std::move(many), 1e9));
  }
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  const auto c = CompiledSpeedList::compile(list);
  EXPECT_EQ(c.batched_entries(), list.size() - 1);  // the 12-step curve punts
  std::vector<double> xs(list.size());
  BackendGuard restore;
  for (const auto* k : runnable_variants()) {
    SCOPED_TRACE(k->name);
    core::force_simd_backend(k->name);
    for (const double slope : {1e3, 1.0, 1e-2, 1e-5, 1e-9}) {
      c.intersect_all(slope, xs);
      for (std::size_t i = 0; i < list.size(); ++i)
        EXPECT_LE(rel_diff(xs[i], list[i]->intersect(slope)), kUlpTolerance)
            << "entry " << i << " slope " << slope;
    }
    // Beyond-max_size crossings must punt to the scalar bisection: with a
    // slope so shallow every crossing clears even max_size·2^256 the
    // answers are exactly the per-entry results, bracket expansion and its
    // saturation tally included.
    std::int64_t& tally = core::detail::bracket_saturation_tally();
    const std::int64_t before = tally;
    c.intersect_all(1e-300, xs);
    EXPECT_GT(tally, before) << "saturating brackets must be tallied";
    for (std::size_t i = 0; i < list.size(); ++i)
      EXPECT_EQ(xs[i], list[i]->intersect(1e-300)) << "entry " << i;
  }
}

TEST(Simd, EightWidePuntBoundaryFuzz) {
  // 64 exp-decay curves straddling the 1e-280 underflow floor and 64
  // power-decay curves straddling the 2^256 delegation threshold: at 8-wide
  // every register mixes punting and non-punting lanes, so a mask handled
  // per 4-wide assumptions would corrupt neighbours. Deterministic LCG
  // parameters; every backend must stay inside the tolerance, and punted
  // decisions must be exactly scalar.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto rnd = [&state] {  // uniform in [0, 1)
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  std::vector<std::shared_ptr<const core::SpeedFunction>> owned;
  for (int i = 0; i < 64; ++i)
    owned.push_back(std::make_shared<core::ExpDecaySpeed>(
        50.0 + 200.0 * rnd(), 0.5 + 2.0 * rnd(), 1e8));
  for (int i = 0; i < 64; ++i)
    owned.push_back(std::make_shared<core::PowerDecaySpeed>(
        50.0 + 200.0 * rnd(), 5.0 + 20.0 * rnd(), 0.0005 + 0.1 * rnd(), 1e6));
  core::SpeedList list;
  for (const auto& f : owned) list.push_back(f.get());
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  BackendGuard restore;
  for (const auto* k : runnable_variants()) {
    SCOPED_TRACE(k->name);
    core::force_simd_backend(k->name);
    for (const double slope :
         {1e2, 1.0, 1e-30, 1e-120, 1e-200, 1e-285, 1e-295, 1e-305}) {
      c.intersect_all(slope, xs);
      for (std::size_t i = 0; i < list.size(); ++i)
        EXPECT_LE(rel_diff(xs[i], list[i]->intersect(slope)), kUlpTolerance)
            << "entry " << i << " slope " << slope;
    }
  }
}

TEST(Simd, RegistryAlgorithmsEquivalentOnEveryBackend) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(96, 5);
  const core::SpeedList list = fleet.list();
  const std::int64_t n = 40'000'000;
  std::vector<core::PartitionResult> oracle;
  {
    SimdToggle off(false);
    for (const core::PartitionerInfo& info :
         core::partitioner_registry().entries()) {
      core::PartitionPolicy policy;
      policy.algorithm = info.id;
      oracle.push_back(core::partition(list, n, policy));
    }
  }
  BackendGuard restore;
  for (const auto* k : runnable_variants()) {
    SCOPED_TRACE(k->name);
    core::force_simd_backend(k->name);
    std::size_t a = 0;
    for (const core::PartitionerInfo& info :
         core::partitioner_registry().entries()) {
      core::PartitionPolicy policy;
      policy.algorithm = info.id;
      const core::PartitionResult r = core::partition(list, n, policy);
      EXPECT_EQ(r.distribution.total(), n) << info.id;
      EXPECT_LE(rel_diff(makespan(list, r.distribution.counts),
                         makespan(list, oracle[a].distribution.counts)),
                1e-9)
          << info.id;
      ++a;
    }
  }
}

// --- speeds_at / the fine-tune epilogue sweep. --------------------------

TEST(Simd, SpeedsAtMatchesPerEntrySpeeds) {
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(512, 23);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  std::vector<double> xs(list.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = 1.0 + static_cast<double>((i * 37) % 100000);
  // Scalar mode: the batched sweep is the same per-entry arithmetic in a
  // different loop — bit-identical.
  {
    SimdToggle off(false);
    core::EvalCounters counters;
    const std::vector<double> got = core::speeds_at(c, xs, &counters);
    EXPECT_EQ(counters.speed_evals, static_cast<std::int64_t>(list.size()));
    for (std::size_t i = 0; i < list.size(); ++i)
      EXPECT_EQ(got[i], list[i]->speed(xs[i])) << "entry " << i;
  }
  // Vector mode, every backend: power/exp lanes run the polynomial kernels,
  // everything else stays bit-identical.
  BackendGuard restore;
  for (const auto* k : runnable_variants()) {
    SCOPED_TRACE(k->name);
    core::force_simd_backend(k->name);
    const std::vector<double> got = core::speeds_at(c, xs, nullptr);
    for (std::size_t i = 0; i < list.size(); ++i)
      EXPECT_LE(rel_diff(got[i], list[i]->speed(xs[i])), kUlpTolerance)
          << "entry " << i;
  }
}

TEST(Simd, SizesAtBitIdenticalPerAlgorithmSlopesInScalarMode) {
  // One registry-algorithm solve per family mix, then replay its final
  // slope through sizes_at in batched and per-entry form: with the scalar
  // kernels the two must agree bit for bit for every algorithm.
  const core::SyntheticFleet fleet = core::make_synthetic_fleet(128, 29);
  const core::SpeedList list = fleet.list();
  const auto c = CompiledSpeedList::compile(list);
  SimdToggle off(false);
  for (const core::PartitionerInfo& info :
       core::partitioner_registry().entries()) {
    core::PartitionPolicy policy;
    policy.algorithm = info.id;
    const core::PartitionResult r = core::partition(list, 5'000'000, policy);
    const double slope = r.stats.final_slope;
    if (!(slope > 0.0)) continue;  // bounded may finish outside the bracket
    const std::vector<double> batched = core::sizes_at(c, slope, nullptr);
    core::set_batched_kernels(false);
    const std::vector<double> per_entry = core::sizes_at(c, slope, nullptr);
    core::set_batched_kernels(true);
    EXPECT_EQ(batched, per_entry) << info.id;
  }
}

// --- Backend forcing / rejection. ---------------------------------------

TEST(Simd, ForceBackendRoundTripsAndRejectsUnknownNames) {
  BackendGuard restore;
  EXPECT_THROW(core::force_simd_backend("bogus"), std::invalid_argument);
  EXPECT_THROW(core::force_simd_backend(""), std::invalid_argument);
  for (const auto* k : core::detail::simd::compiled_simd_variants()) {
    if (!core::detail::simd::simd_variant_supported(*k)) {
      // Compiled in but not runnable here: forcing must refuse, not crash.
      EXPECT_THROW(core::force_simd_backend(k->name), std::invalid_argument);
      continue;
    }
    core::force_simd_backend(k->name);
    EXPECT_TRUE(core::simd_kernels_enabled());
    EXPECT_STREQ(core::to_string(core::active_simd_backend()), k->name);
  }
  core::force_simd_backend("off");
  EXPECT_EQ(core::active_simd_backend(), core::SimdBackend::Disabled);
  core::force_simd_backend("auto");
  if (core::simd_kernels_available()) {
    EXPECT_NE(core::active_simd_backend(), core::SimdBackend::Disabled);
  }
}

// --- Backend introspection. ---------------------------------------------

TEST(Simd, BackendIntrospectionIsConsistent) {
  const bool available = core::simd_kernels_available();
  const core::SimdBackend backend = core::active_simd_backend();
  if (!available) {
    EXPECT_EQ(backend, core::SimdBackend::Disabled);
  } else {
    SimdToggle on(true);
    EXPECT_NE(core::active_simd_backend(), core::SimdBackend::Disabled);
    SimdToggle off(false);
    EXPECT_EQ(core::active_simd_backend(), core::SimdBackend::Disabled);
  }
}

}  // namespace
}  // namespace fpm
